"""Docs check: every repo path referenced by README.md and
docs/ARCHITECTURE.md must exist.

Scans the two documents for things that look like repository paths
(`src/repro/...`, `tests/`, `benchmarks/...py`, bare module files inside
backticks or links) and fails if any referenced file or directory is
missing -- so the architecture map cannot silently rot as the tree
changes.

Run: python tools/check_docs.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "docs" / "ARCHITECTURE.md"]

# path-like tokens inside backticks or markdown links
BACKTICK = re.compile(r"`([A-Za-z0-9_./-]+)`")
LINK = re.compile(r"\]\(([A-Za-z0-9_./-]+)\)")

# roots a doc reference may start with; anything else in backticks is
# treated as code, not a path
PATH_ROOTS = (
    "src/",
    "tests/",
    "benchmarks/",
    "examples/",
    "docs/",
    "tools/",
)
SUFFIXES = (".py", ".md")


def candidate_paths(text):
    for pattern in (BACKTICK, LINK):
        for token in pattern.findall(text):
            token = token.rstrip("/")
            if token.startswith(PATH_ROOTS) or token.endswith(SUFFIXES):
                # `module.py` without a directory is ambiguous -- skip
                if "/" not in token:
                    continue
                yield token


def main():
    missing = []
    checked = 0
    for doc in DOCS:
        if not doc.exists():
            missing.append((str(doc.relative_to(ROOT)), "(document itself)"))
            continue
        text = doc.read_text()
        for ref in sorted(set(candidate_paths(text))):
            checked += 1
            # package-relative references (e.g. `rtl/scheduler.py`)
            # resolve against src/repro/
            in_repo = (ROOT / ref).exists()
            in_package = (ROOT / "src" / "repro" / ref).exists()
            if not in_repo and not in_package:
                missing.append((doc.name, ref))
    if missing:
        for doc, ref in missing:
            print(
                "{}: missing referenced path: {}".format(doc, ref),
                file=sys.stderr,
            )
        return 1
    print("docs check OK: {} path references resolve".format(checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())
