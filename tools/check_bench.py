"""Bench-regression gate for CI.

Compares a fresh ``benchmarks/bench_simulator.py --json`` blob against
the committed reference (``BENCH_PR5.json``) and fails when the stack
got slower than the committed floors allow:

1. every equivalence flag in the current blob must hold -- an
   unverified (``--no-check``) blob is rejected outright, a divergent
   one doubly so;
2. the engine/backend speedups (per-design geomean and the design-sweep
   row) must stay above ``reference * tolerance`` -- the tolerance
   absorbs CI-runner noise, the reference pins the order of magnitude;
3. the compiled cycle kernel must stay ahead of the levelized engine:
   the per-design geomean of the engine axis' ``kernel_speedup``
   column must clear ``--kernel-floor * --kernel-tolerance`` (1.5x
   target, 0.9 noise fraction) on full runs, and the relaxed absolute
   ``--kernel-quick-floor`` (1.2x) on ``--quick`` blobs, whose
   single-repeat measurements are noisier still;
4. the batched lock-step kernels must stay honest: every batch-axis
   row bit-identical to its scalar fleet, geomean ``parity`` (batched
   vs M sequential scalar runs at plain fixed-cycle work) above an
   absolute floor near 1x (the slot-unrolled body is the same compiled
   code, so batching must not tax plain sweeps), and geomean
   ``campaign_speedup`` (compiled in-kernel stop checks vs the
   interpreted per-cycle stop loop) above its absolute floor.  The
   floors are absolute, not baseline-relative -- blobs committed
   before the batch axis carry no reference column -- and they encode
   what a single shared CI core actually measured in the committed
   ``BENCH_PR7.json`` (full-run geomeans: parity 0.85x, campaign
   1.13x; module-eval bodies dominate each cycle, so batching buys
   loop/stop overhead, not eval time);
5. the process executor must beat serial by the multicore floor
   (2x by default), but only for *full* benchmark runs on machines
   that actually have cores to parallelize over (``--min-cores``,
   default 4).  ``--quick`` blobs carry too little work per job for
   the floor to be signal (pool spawn + IPC dominate), so they -- and
   small runners -- gate on the equivalence flags plus a pool-overhead
   sanity bound instead.

Exit codes: 0 pass, 1 regression, 2 unusable input.

Run: python tools/check_bench.py bench.json [--baseline BENCH_PR5.json]
"""

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def axis_speedups(blob, axis):
    """(per-design geomean, sweep-row speedup) of one axis' row list."""
    rows = blob[axis]
    per_design = geomean(r["speedup"] for r in rows[:-1])
    return per_design, rows[-1]["speedup"]


def check_equivalence(blob, failures):
    if blob.get("equivalent") is not True:
        failures.append(
            "current blob is not equivalence-checked or diverged "
            "(equivalent={!r}); run without --no-check".format(
                blob.get("equivalent")
            )
        )
    executors = blob.get("executor_axis", {}).get("executors", {})
    for name, row in executors.items():
        if row.get("equivalent") is not True:
            failures.append(
                "executor {!r} is not bit-identical to serial "
                "(equivalent={!r})".format(name, row.get("equivalent"))
            )


def check_axis_floors(blob, baseline, tolerance, failures):
    for axis in ("engine_axis", "backend_axis"):
        cur_geo, cur_sweep = axis_speedups(blob, axis)
        ref_geo, ref_sweep = axis_speedups(baseline, axis)
        for label, current, reference in (
            ("geomean", cur_geo, ref_geo),
            ("sweep", cur_sweep, ref_sweep),
        ):
            floor = reference * tolerance
            status = "ok" if current >= floor else "REGRESSED"
            print(
                "{:12s} {:8s} speedup {:8.2f}x  floor {:6.2f}x "
                "(reference {:.2f}x * tolerance {:.2f})  {}".format(
                    axis, label, current, floor, reference, tolerance, status
                )
            )
            if current < floor:
                failures.append(
                    "{} {} speedup {:.2f}x fell below the floor "
                    "{:.2f}x".format(axis, label, current, floor)
                )


def check_kernel_floor(blob, target, tolerance, quick_floor, failures):
    """The compiled cycle kernel must beat the levelized engine by the
    committed geomean target across the six design families (the sweep
    row is informational: one giant simulator amortizes differently).

    Like the axis floors, the full-run gate applies a noise tolerance
    to the target -- the committed blob clears 1.5x with little margin,
    and same-run engine ratios still wobble a few percent on shared
    runners.  Quick blobs (single-repeat rows) use their own relaxed
    absolute floor instead."""
    rows = blob.get("engine_axis", [])
    speedups = [r.get("kernel_speedup") for r in rows[:-1]]
    if not speedups or any(s is None for s in speedups):
        failures.append(
            "engine_axis carries no kernel_speedup column -- the blob "
            "predates the kernel engine; rerun the benchmark"
        )
        return
    kgeo = geomean(speedups)
    quick = blob.get("config", {}).get("quick", False)
    if quick:
        floor = quick_floor
        detail = "quick run"
    else:
        floor = target * tolerance
        detail = "target {:.2f}x * tolerance {:.2f}".format(
            target, tolerance
        )
    status = "ok" if kgeo >= floor else "REGRESSED"
    print(
        "kernel-vs-levelized geomean {:.2f}x  floor {:.2f}x ({})  "
        "{}".format(kgeo, floor, detail, status)
    )
    if kgeo < floor:
        failures.append(
            "kernel-vs-levelized geomean {:.2f}x fell below the "
            "{:.2f}x floor".format(kgeo, floor)
        )


def check_batch_floor(
    blob,
    parity_floor,
    campaign_floor,
    quick_parity_floor,
    quick_campaign_floor,
    failures,
):
    """The columnar lock-step kernels must hold their committed
    geomeans across the twelve families: ``parity`` close to 1x
    (batching must not tax plain fixed-cycle sweeps) and
    ``campaign_speedup`` above 1x-ish (the compiled in-kernel stop
    must beat the interpreted per-cycle stop loop).  Floors are
    absolute: pre-batch blobs carry no reference column, and the
    committed numbers (0.85x / 1.13x full-run geomean on one shared
    core) already say "overhead parity", not "M-fold speedup" -- the
    per-cycle module evaluations dominate and are identical on both
    sides.  Every row must also be bit-identical to its scalar fleet.
    """
    axis = blob.get("batch_axis")
    if not axis or not axis.get("rows"):
        failures.append(
            "current blob has no batch_axis section -- the blob "
            "predates the batched kernels; rerun the benchmark"
        )
        return
    rows = axis["rows"]
    for row in rows:
        if row.get("equivalent") is not True:
            failures.append(
                "batch_axis row {!r} is not bit-identical to its "
                "scalar fleet (equivalent={!r})".format(
                    row.get("name"), row.get("equivalent")
                )
            )
    quick = blob.get("config", {}).get("quick", False)
    if quick:
        parity_gate = quick_parity_floor
        campaign_gate = quick_campaign_floor
        detail = "quick run, absolute floor"
    else:
        parity_gate = parity_floor
        campaign_gate = campaign_floor
        detail = "absolute floor"
    parity_geo = geomean(r.get("parity", 0.0) for r in rows)
    campaign_geo = geomean(r.get("campaign_speedup", 0.0) for r in rows)
    checks = (
        ("parity", parity_geo, parity_gate),
        ("campaign", campaign_geo, campaign_gate),
    )
    for label, value, floor in checks:
        status = "ok" if value >= floor else "REGRESSED"
        print(
            "batch-axis {:9s} geomean {:.2f}x (m={})  floor "
            "{:.2f}x ({})  {}".format(
                label, value, axis.get("m"), floor, detail, status
            )
        )
        if value < floor:
            failures.append(
                "batch-axis {} geomean {:.2f}x fell below the "
                "{:.2f}x floor".format(label, value, floor)
            )


def check_executor_floor(blob, min_cores, multicore_floor, failures):
    axis = blob.get("executor_axis")
    if not axis:
        failures.append("current blob has no executor_axis section")
        return
    cpu_count = axis.get("cpu_count", 1)
    process = axis.get("executors", {}).get("process")
    if process is None:
        failures.append("executor_axis has no process row")
        return
    speedup = process.get("speedup_vs_serial", 0.0)
    quick = blob.get("config", {}).get("quick", False)
    if quick:
        # a --quick sweep carries so little work per job that pool
        # spawn + IPC dominate even on big runners -- the full-run
        # floor would be pure noise, so gate quick blobs on the
        # equivalence flags plus a sanity bound only
        status = "ok" if speedup >= 0.2 else "REGRESSED"
        print(
            "process executor speedup {:.2f}x vs serial (quick run, "
            "{} core(s)) -- multi-core floor applies to full runs "
            "only; sanity bound 0.20x  {}".format(
                speedup, cpu_count, status
            )
        )
        if speedup < 0.2:
            failures.append(
                "process executor fell below the quick-run sanity "
                "bound (speedup {:.2f}x)".format(speedup)
            )
        return
    if cpu_count >= min_cores:
        status = "ok" if speedup >= multicore_floor else "REGRESSED"
        print(
            "process executor speedup {:.2f}x vs serial on {} cores  "
            "floor {:.2f}x  {}".format(
                speedup, cpu_count, multicore_floor, status
            )
        )
        if speedup < multicore_floor:
            failures.append(
                "process executor speedup {:.2f}x is below the "
                "multi-core floor {:.2f}x ({} cores)".format(
                    speedup, multicore_floor, cpu_count
                )
            )
    else:
        # a small runner cannot demonstrate parallel speedup; gate on
        # pool overhead staying sane instead of skipping silently
        status = "ok" if speedup >= 0.2 else "REGRESSED"
        print(
            "process executor speedup {:.2f}x vs serial -- only {} "
            "core(s) (< {}), multi-core floor not applicable; sanity "
            "bound 0.20x  {}".format(speedup, cpu_count, min_cores, status)
        )
        if speedup < 0.2:
            failures.append(
                "process executor fell below the single-core sanity "
                "bound (speedup {:.2f}x)".format(speedup)
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench_simulator --json blob")
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_PR5.json"),
        help="committed reference blob (default: BENCH_PR5.json)",
    )
    parser.add_argument(
        "--kernel-floor",
        type=float,
        default=1.5,
        help="kernel-vs-levelized geomean target for full runs "
        "(gated at target * --kernel-tolerance)",
    )
    parser.add_argument(
        "--kernel-tolerance",
        type=float,
        default=0.9,
        help="fraction of the kernel target required on full runs "
        "(same-run engine ratios wobble a few percent on shared "
        "runners)",
    )
    parser.add_argument(
        "--kernel-quick-floor",
        type=float,
        default=1.2,
        help="relaxed absolute kernel-vs-levelized floor for --quick "
        "blobs (single-repeat rows are noisier still)",
    )
    parser.add_argument(
        "--parity-floor",
        type=float,
        default=0.6,
        help="absolute geomean floor for batched-vs-scalar parity on "
        "full runs (committed full-run geomean: 0.85x on one shared "
        "core)",
    )
    parser.add_argument(
        "--campaign-floor",
        type=float,
        default=0.85,
        help="absolute geomean floor for the stop-campaign speedup on "
        "full runs (committed full-run geomean: 1.13x)",
    )
    parser.add_argument(
        "--quick-parity-floor",
        type=float,
        default=0.45,
        help="relaxed absolute parity floor for --quick blobs "
        "(single-repeat, ~100-cycle measurements)",
    )
    parser.add_argument(
        "--quick-campaign-floor",
        type=float,
        default=0.6,
        help="relaxed absolute stop-campaign floor for --quick blobs "
        "(single-repeat per-row numbers swing 0.3x-2.4x; only the "
        "12-family geomean is signal)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="fraction of the reference speedup required (default 0.4; "
        "CI runners are noisy and share cores)",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help="cores required before the multi-core floor applies",
    )
    parser.add_argument(
        "--multicore-floor",
        type=float,
        default=2.0,
        help="required process-vs-serial speedup on >= min-cores cores",
    )
    args = parser.parse_args(argv)

    try:
        blob = json.loads(Path(args.current).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, ValueError) as exc:
        print("error: cannot load blobs: {}".format(exc), file=sys.stderr)
        return 2
    # say which floors come from where: the CI step name references
    # these blobs and must not drift from what the gate actually loads
    print("relative axis floors:  baseline blob {}".format(args.baseline))
    print(
        "absolute batch floors: CLI defaults committed from "
        "BENCH_PR7.json full-run geomeans (parity {:.2f}x / campaign "
        "{:.2f}x; quick {:.2f}x / {:.2f}x)".format(
            args.parity_floor, args.campaign_floor,
            args.quick_parity_floor, args.quick_campaign_floor
        )
    )
    for axis in ("engine_axis", "backend_axis"):
        if axis not in blob or axis not in baseline:
            print(
                "error: blob missing {!r} section".format(axis),
                file=sys.stderr,
            )
            return 2

    failures = []
    check_equivalence(blob, failures)
    check_axis_floors(blob, baseline, args.tolerance, failures)
    check_kernel_floor(
        blob, args.kernel_floor, args.kernel_tolerance,
        args.kernel_quick_floor, failures
    )
    check_batch_floor(
        blob,
        args.parity_floor,
        args.campaign_floor,
        args.quick_parity_floor,
        args.quick_campaign_floor,
        failures,
    )
    check_executor_floor(
        blob, args.min_cores, args.multicore_floor, failures
    )

    if failures:
        print("\nBENCH GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print("  - {}".format(failure), file=sys.stderr)
        return 1
    print("\nbench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
