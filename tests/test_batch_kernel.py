"""Lock-step batched cycle kernels (``repro.rtl.batch.run_lockstep``
and the columnar ``_BATCH_KERNEL`` emitter): bit-identical observables
against per-instance scalar runs across every registry scenario, both
FSM backends and all executors; compiled stop-condition semantics
pinned to the interpreted per-cycle reference (including per-slot
peeling); the fallback discipline (brute engine, monitors, mixed
shapes, singleton chunks, unregistered stop wires); the ``batch``
config knob and ``REPRO_BATCH``; the layout-tagged compile cache; and
the batched differential-fuzzing path."""

import pytest

from repro import Session, SimConfig, SimulationError, Simulator, get_registry
from repro.rtl import kernel
from repro.rtl.batch import (
    MAX_BATCH,
    StopCondition,
    _env_batch,
    run_lockstep,
    run_stop_scalar,
)
from repro.rtl.testing import PortSink, PortSource, make_port

ALL_SCENARIOS = get_registry().names()
M = 3


def _fleet(name, m=M, cycles=0, **config):
    """``m`` same-topology instances (seeds ``0..m-1``), optionally
    pre-advanced ``cycles`` each."""
    sims = [get_registry().build(name, SimConfig(seed=s, **config))
            for s in range(m)]
    for sim in sims:
        if cycles:
            sim.run(cycles)
    return sims


def _state(sim):
    return (sim.cycle, sim.waveform.samples, sim.activity,
            sim.total_activity())


def _states(sims):
    return [_state(s) for s in sims]


def _counter_fleet(m=M, engine="kernel", depth=60):
    """``m`` small source->sink pipelines whose ``data`` wire steps
    through ``1..depth`` -- a deterministic target for stop conditions.
    Returns ``(sims, data_wires)``."""
    sims, wires = [], []
    for _ in range(m):
        sim = Simulator(engine=engine)
        port = make_port("p", 8)
        src = PortSource("src", port)
        src.push(*range(1, depth + 1))
        sink = PortSink("sink", port)
        sim.add(src)
        sim.add(sink)
        sim.watch(port.data, "data")
        sims.append(sim)
        wires.append(port.data)
    return sims, wires


# ---------------------------------------------------------------------------
# equivalence: every scenario, both backends, all executors
# ---------------------------------------------------------------------------
class TestLockstepEquivalence:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_all_scenarios_bit_identical_to_scalar_runs(self, name):
        ref = _fleet(name, cycles=60, stim=150, engine="kernel",
                     backend="pycompiled")
        sims = _fleet(name, stim=150, engine="kernel",
                      backend="pycompiled")
        res = run_lockstep(sims, 60)
        assert _states(sims) == _states(ref)
        assert res.cycles == [60] * M
        assert res.stopped == [False] * M
        assert all(res.batched) and res.groups == 1

    @pytest.mark.parametrize("name", ["streams", "anvil_aes", "y86_sum"])
    def test_interp_backend_bit_identical(self, name):
        ref = _fleet(name, cycles=40, stim=120, engine="kernel",
                     backend="interp")
        sims = _fleet(name, stim=120, engine="kernel", backend="interp")
        res = run_lockstep(sims, 40)
        assert _states(sims) == _states(ref)
        assert all(res.batched)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sweep_seeds_bit_identical_across_executors(self, executor):
        names = ["streams", "anvil_mmu"]
        seeds = [2, 3, 4]
        reference = Session(SimConfig(
            seed=0, stim=120, engine="kernel", backend="pycompiled",
            executor="serial", batch=1,
        )).sweep(names, cycles=50, seeds=seeds)
        batched = Session(SimConfig(
            seed=0, stim=120, engine="kernel", backend="pycompiled",
            executor=executor, jobs=2, batch=3,
        )).sweep(names, cycles=50, seeds=seeds)
        assert set(batched) == set(reference) == {
            f"{n}@s{s}" for n in names for s in seeds
        }
        for key, ref in reference.items():
            assert batched[key].activity == ref.activity
            assert (batched[key].waveform.samples
                    == ref.waveform.samples)

    def test_resumes_and_interleaves_with_scalar_running(self):
        # lock-step passes and plain run() calls can alternate freely
        ref = _fleet("memory", cycles=50, stim=160, engine="kernel")
        sims = _fleet("memory", stim=160, engine="kernel")
        run_lockstep(sims, 20)
        for sim in sims:
            sim.run(7)
        run_lockstep(sims, 23)
        assert _states(sims) == _states(ref)


# ---------------------------------------------------------------------------
# stop conditions: compiled in-kernel checks vs the interpreted loop
# ---------------------------------------------------------------------------
class TestStopConditions:
    def _scalar_reference(self, op, values, cycles=50, m=M):
        sims, wires = _counter_fleet(m)
        outs = [
            run_stop_scalar(
                sims[k], cycles,
                StopCondition(op, [wires[k]],
                              None if op == "nonzero" else [values[k]]),
                0)
            for k in range(m)
        ]
        return outs, _states(sims)

    @pytest.mark.parametrize("op,values", [
        ("eq", [5, 9, 13]),
        ("ne", [0, 0, 0]),
        ("nonzero", [None, None, None]),
    ])
    def test_ops_match_the_interpreted_reference(self, op, values):
        ref_outs, ref_states = self._scalar_reference(op, values)
        sims, wires = _counter_fleet()
        stop = StopCondition(op, wires,
                             None if op == "nonzero" else values)
        res = run_lockstep(sims, 50, stop=stop)
        assert list(zip(res.cycles, res.stopped)) == ref_outs
        assert _states(sims) == ref_states
        assert all(res.batched)

    def test_slots_peel_at_their_own_cycles(self):
        # staggered targets: each slot leaves the batch the cycle its
        # own condition first holds while the others keep lock-step
        sims, wires = _counter_fleet()
        res = run_lockstep(sims, 50,
                           stop=StopCondition("eq", wires, [13, 5, 9]))
        assert res.stopped == [True] * M
        # later targets stop later; the peel order follows the values
        assert res.cycles[1] < res.cycles[2] < res.cycles[0]

    def test_never_firing_stop_runs_the_full_budget(self):
        ref = _fleet("streams", cycles=40, stim=120, engine="kernel")
        sims = _fleet("streams", stim=120, engine="kernel")
        wires = []
        for sim in sims:
            sim.scheduler._ensure_built()
            wires.append(sim.scheduler._wires[0])
        res = run_lockstep(sims, 40,
                           stop=StopCondition("eq", wires, [-1] * M))
        assert res.cycles == [40] * M
        assert res.stopped == [False] * M
        assert _states(sims) == _states(ref)

    def test_condition_already_true_on_entry(self):
        # the contract is post-cycle checking: a condition that holds
        # before the first cycle still advances exactly one cycle,
        # batched and scalar alike
        sims, wires = _counter_fleet()
        scalar_sims, scalar_wires = _counter_fleet()
        scalar = [run_stop_scalar(scalar_sims[k], 30,
                                  StopCondition("ne", [scalar_wires[k]],
                                                [255]), 0)
                  for k in range(M)]
        res = run_lockstep(sims, 30,
                           stop=StopCondition("ne", wires, [255] * M))
        assert list(zip(res.cycles, res.stopped)) == scalar
        assert _states(sims) == _states(scalar_sims)

    def test_stop_validation(self):
        sims, wires = _counter_fleet()
        with pytest.raises(ValueError, match="unknown stop op"):
            StopCondition("gt", wires, [1, 2, 3])
        with pytest.raises(ValueError, match="comparison value"):
            StopCondition("eq", wires)
        with pytest.raises(ValueError, match="comparison value"):
            StopCondition("eq", wires, [1])
        stop = StopCondition("eq", wires[:2], [1, 2])
        with pytest.raises(ValueError, match="2 instance"):
            run_lockstep(sims, 10, stop=stop)


# ---------------------------------------------------------------------------
# fallback discipline
# ---------------------------------------------------------------------------
class TestFallbacks:
    def test_brute_engine_stays_scalar(self):
        ref = _fleet("streams", cycles=30, stim=120, engine="brute")
        sims = _fleet("streams", stim=120, engine="brute")
        res = run_lockstep(sims, 30)
        assert res.batched == [False] * M
        assert res.cycles == [30] * M
        assert _states(sims) == _states(ref)

    def test_monitored_instance_peels_to_scalar(self):
        seen = []
        ref = _fleet("streams", cycles=30, stim=120, engine="kernel")
        sims = _fleet("streams", stim=120, engine="kernel")
        sims[0].on_cycle(seen.append)
        res = run_lockstep(sims, 30)
        assert res.batched == [False, True, True]
        assert seen == list(range(30))  # the monitor saw every cycle
        assert _states(sims) == _states(ref)

    def test_mixed_shapes_group_separately(self):
        ref = (_fleet("streams", m=2, cycles=30, stim=120,
                      engine="kernel")
               + _fleet("memory", m=2, cycles=30, stim=120,
                        engine="kernel"))
        sims = (_fleet("streams", m=2, stim=120, engine="kernel")
                + _fleet("memory", m=2, stim=120, engine="kernel"))
        res = run_lockstep(sims, 30)
        assert res.groups == 2
        assert res.batched == [True] * 4
        assert _states(sims) == _states(ref)

    def test_width_chunks_the_group(self):
        sims = _fleet("streams", m=4, stim=120, engine="kernel")
        res = run_lockstep(sims, 20, width=2)
        assert res.groups == 2 and all(res.batched)
        assert _states(sims) == _states(
            _fleet("streams", m=4, cycles=20, stim=120, engine="kernel"))

    def test_width_one_means_all_scalar(self):
        sims = _fleet("streams", m=2, stim=120, engine="kernel")
        res = run_lockstep(sims, 20, width=1)
        assert res.batched == [False, False]
        assert res.groups == 0

    def test_singleton_group_stays_scalar(self):
        sims = (_fleet("streams", m=2, stim=120, engine="kernel")
                + _fleet("memory", m=1, stim=120, engine="kernel"))
        res = run_lockstep(sims, 20)
        assert res.batched == [True, True, False]

    def test_foreign_stop_wire_forces_scalar(self):
        # a stop wire outside its simulator's scheduler table cannot be
        # compiled into the batch; the instance runs the interpreted
        # loop (which reads the wire object directly) instead
        sims, wires = _counter_fleet()
        foreign = wires[0]
        res = run_lockstep(sims, 50, stop=StopCondition(
            "eq", [wires[0], wires[1], foreign], [5, 5, 5]))
        assert res.batched[2] is False
        assert res.batched[0] and res.batched[1]

    def test_detached_simulator_raises_like_scalar_run(self):
        sim = Simulator("remote", engine="kernel")
        sim.adopt_remote(10, {("m", "w"): 3}, {"sig": [1] * 10})
        with pytest.raises(SimulationError, match="adopted a remote run"):
            run_lockstep([sim], 5)


# ---------------------------------------------------------------------------
# the batch knob: SimConfig field and REPRO_BATCH
# ---------------------------------------------------------------------------
class TestBatchKnob:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert _env_batch() is None
        for text in ("", "  ", "auto", "AUTO"):
            monkeypatch.setenv("REPRO_BATCH", text)
            assert _env_batch() is None
        monkeypatch.setenv("REPRO_BATCH", "8")
        assert _env_batch() == 8
        for junk in ("0", "-2", "wide", "3.5", str(MAX_BATCH + 1)):
            monkeypatch.setenv("REPRO_BATCH", junk)
            with pytest.raises(ValueError, match="REPRO_BATCH"):
                _env_batch()

    def test_config_default_resolves_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert SimConfig().batch == 1
        monkeypatch.setenv("REPRO_BATCH", "16")
        assert SimConfig().batch == 16
        # an explicit value beats the environment
        assert SimConfig(batch=4).batch == 4
        monkeypatch.setenv("REPRO_BATCH", "not-a-width")
        with pytest.raises(ValueError, match="REPRO_BATCH"):
            SimConfig()

    @pytest.mark.parametrize("bad", [0, -3, "wide", True, MAX_BATCH + 1])
    def test_invalid_batch_values_rejected(self, bad):
        with pytest.raises(ValueError):
            SimConfig(batch=bad)


# ---------------------------------------------------------------------------
# the layout-tagged compile cache
# ---------------------------------------------------------------------------
class TestLayoutCache:
    def test_scalar_and_batched_kernels_coexist(self):
        kernel.clear_cache()
        _fleet("streams", m=1, cycles=10, stim=120, engine="kernel")
        sims = _fleet("streams", stim=120, engine="kernel")
        run_lockstep(sims, 10)
        stats = kernel.cache_stats()
        assert stats["layouts"]["scalar"]["entries"] >= 1
        assert stats["layouts"]["batch"]["entries"] >= 1
        assert stats["entries"] == (
            stats["layouts"]["scalar"]["entries"]
            + stats["layouts"]["batch"]["entries"])

    def test_second_fleet_hits_the_batch_cache(self):
        kernel.clear_cache()
        run_lockstep(_fleet("streams", stim=120, engine="kernel"), 10)
        before = kernel.cache_stats()["layouts"]["batch"]
        run_lockstep(_fleet("streams", stim=120, engine="kernel"), 10)
        after = kernel.cache_stats()["layouts"]["batch"]
        assert after["entries"] == before["entries"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_widths_and_stop_shapes_are_distinct_entries(self):
        kernel.clear_cache()
        run_lockstep(_fleet("streams", m=2, stim=120,
                            engine="kernel"), 5)
        run_lockstep(_fleet("streams", m=3, stim=120,
                            engine="kernel"), 5)
        sims = _fleet("streams", m=2, stim=120, engine="kernel")
        wires = []
        for sim in sims:
            sim.scheduler._ensure_built()
            wires.append(sim.scheduler._wires[0])
        run_lockstep(sims, 5, stop=StopCondition("eq", wires, [-1, -1]))
        assert kernel.cache_stats()["layouts"]["batch"]["entries"] == 3


# ---------------------------------------------------------------------------
# the batched differential-fuzzing path
# ---------------------------------------------------------------------------
class TestBatchedFuzz:
    def test_batched_fuzz_matches_scalar(self):
        from repro.isa.fuzz import run_fuzz

        scalar = run_fuzz(5, seed=11, engines=("kernel",), batch=1)
        batched = run_fuzz(5, seed=11, engines=("kernel",), batch=3)
        # identical cases pass with identical architectural outcomes;
        # the cycle counts differ by design: the scalar path's
        # run_to_halt advances in chunks (so its count overshoots to
        # the chunk boundary) while the lock-step stop peels the exact
        # halt cycle
        assert [(r.seed, r.instret, r.stat) for r in batched] \
            == [(r.seed, r.instret, r.stat) for r in scalar]
        for b, s in zip(batched, scalar):
            (label, exact), = b.cycles.items()
            assert 0 < exact <= s.cycles[label]
