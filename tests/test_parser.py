"""Textual front-end tests: parsed designs behave like DSL-built ones."""

import pytest

from repro import ParseError, Side, check_process
from repro.lang.parser import parse, parse_process

RUNNING_EXAMPLE = """
chan cache_ch {
  right req : (logic[8] @res),
  left  res : (logic[8] @#1)
}

proc top_safe(cache : left cache_ch) {
  reg address : logic[8];
  reg enq_data : logic[8];
  loop {
    send cache.req (*address) >>
    let d = recv cache.res >>
    d >>
    { set address := *address + 1 ; set enq_data := d }
  }
}

proc top_unsafe(cache : left cache_ch) {
  reg address : logic[8];
  loop {
    send cache.req (*address) >>
    set address := *address + 1 >>
    let d = recv cache.res >> d
  }
}
"""


class TestChannelParsing:
    def test_messages_and_contracts(self):
        p = parse(RUNNING_EXAMPLE)
        ch = p.channels["cache_ch"]
        req = ch.message("req")
        assert req.direction is Side.RIGHT      # travels right
        assert req.dtype.width == 8
        assert not req.lifetime.is_static
        assert req.lifetime.message == "res"
        res = ch.message("res")
        assert res.lifetime.is_static and res.lifetime.cycles == 1

    def test_sync_modes(self):
        p = parse("""
        chan m {
          left rd_req : (logic[8] @#1) @#2-@dyn,
          left wr_res : (logic[1] @#1) @#wr_req+1-@#wr_req+1
        }
        """)
        ch = p.channels["m"]
        rd = ch.message("rd_req")
        assert rd.direction is Side.LEFT
        assert not rd.left_sync.is_dynamic
        assert rd.left_sync.interval == 2
        assert rd.right_sync.is_dynamic
        wr = ch.message("wr_res")
        assert wr.left_sync.message == "wr_req"
        assert wr.left_sync.offset == 1

    def test_unknown_channel_rejected(self):
        with pytest.raises(ParseError):
            parse("proc p(e : left nope) { loop { cycle 1 } }")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("banana")


class TestProcessParsing:
    def test_structure(self):
        proc = parse_process(RUNNING_EXAMPLE, "top_safe")
        assert set(proc.registers) == {"address", "enq_data"}
        assert "cache" in proc.endpoints
        assert len(proc.threads) == 1

    def test_parsed_safe_process_typechecks(self):
        proc = parse_process(RUNNING_EXAMPLE, "top_safe")
        report = check_process(proc)
        assert report.ok, [str(e) for e in report.errors]

    def test_parsed_unsafe_process_rejected(self):
        proc = parse_process(RUNNING_EXAMPLE, "top_unsafe")
        assert not check_process(proc).ok

    def test_parsed_process_simulates(self):
        from repro import System, build_simulation
        src = """
        chan out_ch { right data : (logic[8] @#1) }
        proc counter(out : left out_ch) {
          reg cnt : logic[8];
          loop {
            send out.data (*cnt) >>
            set cnt := *cnt + 1
          }
        }
        """
        proc = parse_process(src)
        assert check_process(proc).ok
        sys_ = System()
        inst = sys_.add(proc)
        ch = sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ext.always_receive("data")
        ss.sim.run(8)
        assert [v for _, v in ext.received["data"]] == list(range(8))

    def test_if_else_and_literals(self):
        src = """
        chan in_ch { right data : (logic[8] @#1) }
        proc filt(inp : right in_ch) {
          reg buf : logic[8];
          loop {
            let d = recv inp.data >>
            if d == 8'd0 { set buf := 8'd170 }
            else { set buf := d + 1 }
          }
        }
        """
        proc = parse_process(src)
        assert check_process(proc).ok

    def test_verilog_literal_forms(self):
        from repro.lang.parser import _parse_number
        assert _parse_number("8'd170") == (170, 8)
        assert _parse_number("8'hAA".lower()) == (170, 8)
        assert _parse_number("4'b1010") == (10, 4)
        assert _parse_number("0x1f") == (31, None)
        assert _parse_number("42") == (42, None)

    def test_multiple_processes_need_name(self):
        with pytest.raises(ParseError):
            parse_process(RUNNING_EXAMPLE)
