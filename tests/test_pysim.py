"""Backend equivalence: the generated-Python FSM backend must be
observationally identical to the plan interpreter -- bit-identical
waveforms and activity counts, identical debug logs and register files,
identical diagnostics -- plus the plan extraction, expression lowering
and compile-cache machinery underneath it."""

import random

import pytest

from repro import Process, Side, SimConfig, System, build_simulation, get_registry
from repro.codegen import pysim
from repro.codegen import rexpr as rx
from repro.codegen.simfsm import compile_process
from repro.core.fsmplan import build_process_plan, port_reads, port_writes
from repro.errors import ContractViolationError
from repro.lang.channels import ChannelDef, LifetimeSpec, MessageDef
from repro.lang.terms import let, read, recv, send, set_reg, var
from repro.lang.types import Logic

BACKENDS = ("interp", "pycompiled")

#: the compiled-only workloads, enumerated from the canonical registry
ANVIL_SCENARIOS = get_registry().names("anvil", exclude="sweep")


def _build(name, **config):
    """Registry-backed scenario elaboration (the canonical code path)."""
    return get_registry().build(name, SimConfig(**config))


# ---------------------------------------------------------------------------
# expression lowering: to_python must equal eval
# ---------------------------------------------------------------------------
def _random_expr(rng, depth, width):
    """A random RExpr over two registers and two slots."""
    if depth == 0 or rng.random() < 0.25:
        return rng.choice([
            rx.RLit(rng.getrandbits(width), width),
            rx.RReg("a", width),
            rx.RReg("b", width),
            rx.RSlot(0, width),
            rx.RSlot(1, width),
        ])
    pick = rng.random()
    a = _random_expr(rng, depth - 1, width)
    b = _random_expr(rng, depth - 1, width)
    if pick < 0.55:
        op = rng.choice(["add", "sub", "mul", "and", "or", "xor", "eq",
                         "ne", "lt", "le", "gt", "ge", "concat"])
        w = width if op not in ("eq", "ne", "lt", "le", "gt", "ge") \
            else 1
        return rx.RBin(op, a, b, w)
    if pick < 0.7:
        return rx.RUn(rng.choice(["not", "neg", "redor", "redand",
                                  "redxor"]), a,
                      width if rng.random() < 0.5 else 1)
    if pick < 0.8:
        hi = rng.randrange(a.width) if a.width > 1 else 0
        lo = rng.randrange(hi + 1)
        return rx.RSlice(a, hi, lo)
    if pick < 0.9:
        return rx.RMux(_random_expr(rng, depth - 1, 1), a, b, width)
    return rx.RTable(a, [rng.getrandbits(width) for _ in range(8)], width)


class _BareCtx:
    """Context for rendering expressions outside a process plan."""

    def __init__(self):
        self._n = 0

    def sub(self, node):
        return node.to_python(self)

    def const(self, value):
        return repr(value)

    def temp(self):
        self._n += 1
        return f"_t{self._n}"

    def ready(self, endpoint, message):  # pragma: no cover - unused here
        raise AssertionError("no ports in this test")


class TestExprLowering:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("width", [1, 5, 16])
    def test_to_python_matches_eval_on_random_trees(self, seed, width):
        rng = random.Random(seed)
        regs = {"a": rng.getrandbits(width), "b": rng.getrandbits(width)}
        slots = {0: rng.getrandbits(width), 1: rng.getrandbits(width)}
        env = rx.REnv(regs, slots)
        namespace = {"_r": regs, "_sl": slots, "_ov": {}}
        for _ in range(40):
            expr = _random_expr(rng, 4, width)
            rendered = expr.to_python(_BareCtx())
            assert eval(rendered, dict(namespace)) == expr.eval(env), \
                rendered

    def test_overlay_shadows_committed_slots(self):
        expr = rx.RSlot(3, 8)
        rendered = expr.to_python(_BareCtx())
        assert eval(rendered, {"_sl": {3: 10}, "_ov": {3: 7}}) == 7
        assert eval(rendered, {"_sl": {3: 10}, "_ov": {}}) == 10


# ---------------------------------------------------------------------------
# plan extraction
# ---------------------------------------------------------------------------
def _echo_process():
    ch = ChannelDef("echo_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
        MessageDef("unused", Side.LEFT, Logic(4), LifetimeSpec.static(1)),
    ])
    p = Process("echo")
    p.endpoint("host", ch, Side.RIGHT)
    p.register("acc", Logic(8))
    p.loop(
        let("x", recv("host", "req"),
            var("x") >> set_reg("acc", var("x") + read("acc"))
            >> send("host", "res", read("acc")))
    )
    return p


class TestPlanExtraction:
    def test_unused_messages_absent_from_port_table(self):
        plan = build_process_plan(_echo_process())
        keys = {pp.key for pp in plan.ports}
        assert ("host", "req") in keys
        assert ("host", "res") in keys
        assert ("host", "unused") not in keys

    def test_sensitivity_roles_match_direction(self):
        plan = build_process_plan(_echo_process())
        by_key = {pp.key: pp for pp in plan.ports}
        recv_port = by_key[("host", "req")]
        send_port = by_key[("host", "res")]
        assert not recv_port.is_sender and send_port.is_sender
        assert port_reads(recv_port) == ("valid", "data")
        assert port_writes(recv_port) == ("ack",)
        assert port_reads(send_port) == ("ack",)
        assert port_writes(send_port) == ("valid", "data")

    def test_module_comb_sets_cover_only_used_messages(self):
        sys_ = System()
        inst = sys_.add(_echo_process())
        sys_.expose(inst, "host")
        ss = build_simulation(sys_)
        mod = ss.module("echo")
        names = {w.name for w in mod.comb_inputs()} | {
            w.name for w in mod.comb_outputs()
        }
        assert names == {
            "ch0.req.valid", "ch0.req.data", "ch0.req.ack",
            "ch0.res.valid", "ch0.res.data", "ch0.res.ack",
        }


# ---------------------------------------------------------------------------
# backend equivalence on the six design families
# ---------------------------------------------------------------------------
def _state_of(sim):
    anvil = [m for m in sim.modules
             if hasattr(m, "plan") and hasattr(m, "regs")]
    return (
        sim.activity,
        sim.waveform.samples,
        [(m.name, dict(m.regs), list(m.debug_log)) for m in anvil],
    )


class TestBackendEquivalence:
    @pytest.mark.parametrize("name", sorted(ANVIL_SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 11])
    def test_randomized_anvil_scenarios_bit_identical(self, name, seed):
        cycles = 120 if name == "anvil_aes" else 300
        states = {}
        for backend in BACKENDS:
            sim = _build(name, seed=seed, stim=400, backend=backend)
            sim.run(cycles)
            states[backend] = _state_of(sim)
        assert states["interp"] == states["pycompiled"]

    @pytest.mark.parametrize("name", ["streams", "pipeline"])
    def test_mixed_scenarios_bit_identical(self, name):
        """Baseline RTL + compiled twins in one simulator: waveforms and
        activity must not depend on the backend."""
        states = {}
        for backend in BACKENDS:
            sim = _build(name, seed=5, stim=300, backend=backend)
            sim.run(250)
            states[backend] = _state_of(sim)
        assert states["interp"] == states["pycompiled"]

    def test_anvil_sweep_identical_across_engine_backend_matrix(self):
        """All four engine x backend combinations agree on the sweep."""
        states = {}
        for engine in ("brute", "levelized"):
            for backend in BACKENDS:
                sim = _build("anvil_sweep", engine=engine, seed=2,
                             stim=150, backend=backend)
                sim.run(60)
                states[(engine, backend)] = _state_of(sim)
        baseline = states[("levelized", "interp")]
        for key, state in states.items():
            assert state == baseline, key

    def test_contract_violations_identical_across_backends(self):
        """Driving a channel from the wrong side raises the same
        ContractViolationError no matter the backend."""
        messages = {}
        for backend in BACKENDS:
            sys_ = System()
            inst = sys_.add(_echo_process())
            ch = sys_.expose(inst, "host")
            ss = build_simulation(sys_, backend=backend)
            ext = ss.external(ch)
            with pytest.raises(ContractViolationError) as exc:
                ext.send("res", 1)      # the process sends res, not us
            messages[backend] = str(exc.value)
            with pytest.raises(ContractViolationError):
                ext.always_receive("req")
        assert messages["interp"] == messages["pycompiled"]

    def test_debug_prints_identical(self, capsys):
        from repro.lang.terms import dprint

        logs = {}
        for backend in BACKENDS:
            ch = ChannelDef("c", [MessageDef("m", Side.RIGHT, Logic(8),
                                             LifetimeSpec.static(1))])
            p = Process("printer")
            p.endpoint("src", ch, Side.RIGHT)
            p.loop(
                let("x", recv("src", "m"),
                    var("x") >> dprint("got", var("x")))
            )
            sys_ = System()
            inst = sys_.add(p)
            c = sys_.expose(inst, "src")
            ss = build_simulation(sys_, backend=backend)
            ext = ss.external(c)
            for v in (3, 5, 250):
                ext.send("m", v)
            ss.sim.run(12)
            logs[backend] = ss.module("printer").debug_log
        assert logs["interp"] == logs["pycompiled"]
        assert [v for _c, _f, v in logs["interp"]] == [3, 5, 250]


# ---------------------------------------------------------------------------
# compile cache
# ---------------------------------------------------------------------------
class TestCompileCache:
    def test_identical_processes_share_one_compilation(self):
        pysim.clear_cache()
        from repro.anvil_designs.streams import spill_register

        for _ in range(3):
            # a fresh Process object each time -- the cache must key on
            # the generated source, not object identity
            pysim.backend_for(compile_process(spill_register()).plan)
        stats = pysim.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["entries"] == 1

    def test_optimize_flag_changes_the_key(self):
        pysim.clear_cache()
        from repro.anvil_designs.streams import spill_register

        pysim.backend_for(compile_process(spill_register(), True).plan)
        pysim.backend_for(compile_process(spill_register(), False).plan)
        assert pysim.cache_stats()["entries"] == 2

    def test_generated_source_is_deterministic(self):
        from repro.anvil_designs.memory import cached_memory_process

        a = pysim.generate_source(
            build_process_plan(cached_memory_process()))
        b = pysim.generate_source(
            build_process_plan(cached_memory_process()))
        assert a == b

    def test_batch_add_scenario_backend_wiring(self):
        from repro import BatchSimulator

        batch = BatchSimulator(parallel=False)
        for backend in BACKENDS:
            batch.add_scenario("memory", anvil=True, stim=200,
                               backend=backend,
                               as_name=f"memory/{backend}")
        batch.run(100)
        acts = batch.total_activity()
        assert acts["memory/interp"] == acts["memory/pycompiled"] > 0
