"""BSV scheduler, bounded model checker and synthesis cost model tests."""

import pytest

from repro.bsv import Rule, RuleScheduler, RuleState, TimingContractMonitor
from repro.verif import Assertion, BoundedModelChecker, TransitionSystem


class TestRuleState:
    def test_staged_writes_commit_atomically(self):
        s = RuleState(a=1, b=2)
        s.write("a", 10)
        assert s.read("a") == 1      # pre-cycle value until commit
        s.commit()
        assert s.read("a") == 10

    def test_unknown_register_rejected(self):
        s = RuleState(a=1)
        with pytest.raises(KeyError):
            s.write("nope", 0)

    def test_method_calls_returned_on_commit(self):
        s = RuleState(a=1)
        s.call("fifo.enq", 42)
        calls = s.commit()
        assert calls == [("fifo.enq", 42)]


class TestScheduler:
    def make(self, priority):
        state = RuleState(x=0, y=0)
        rules = [
            Rule("inc_x", lambda s: True,
                 lambda s: s.write("x", s.read("x") + 1)),
            Rule("also_x", lambda s: True,
                 lambda s: s.write("x", s.read("x") + 100)),
            Rule("inc_y", lambda s: True,
                 lambda s: s.write("y", s.read("y") + 1)),
        ]
        return state, RuleScheduler(state, rules, priority)

    def test_conflicting_rules_not_cofired(self):
        state, sched = self.make(["inc_x", "also_x", "inc_y"])
        sched.step()
        # also_x conflicts with inc_x on register x: only one fires
        assert state.read("x") == 1
        assert state.read("y") == 1
        assert sched.trace.fired[0] == ["inc_x", "inc_y"]

    def test_priority_decides_winner(self):
        state, sched = self.make(["also_x", "inc_x", "inc_y"])
        sched.step()
        assert state.read("x") == 100

    def test_guards_respected(self):
        state = RuleState(x=0)
        r = Rule("bounded", lambda s: s.read("x") < 3,
                 lambda s: s.write("x", s.read("x") + 1))
        sched = RuleScheduler(state, [r])
        sched.run(10)
        assert state.read("x") == 3
        assert sched.trace.count("bounded") == 3


class TestContractMonitor:
    def test_detects_pinned_change(self):
        m = TimingContractMonitor()
        m.pin("addr", 5, "in flight")
        m.observe(3, "addr", 5)
        assert m.ok
        m.observe(4, "addr", 6)
        assert not m.ok
        assert "cycle 4" in m.violations[0]

    def test_release_stops_checking(self):
        m = TimingContractMonitor()
        m.pin("addr", 5, "x")
        m.release("addr")
        m.observe(9, "addr", 99)
        assert m.ok


class TestBmc:
    def counter_system(self, bits=4):
        mask = (1 << bits) - 1
        return TransitionSystem(
            {"cnt": 0},
            lambda s, i: {"cnt": (s["cnt"] + 1) & mask},
        )

    def test_finds_violation(self):
        sys_ = self.counter_system()
        bmc = BoundedModelChecker(
            sys_, [Assertion("cnt<10", lambda p, s: s["cnt"] < 10)],
            max_depth=64,
        )
        r = bmc.run()
        assert r.found_violation
        assert r.trace  # counterexample trace provided

    def test_no_violation_on_true_property(self):
        sys_ = self.counter_system()
        bmc = BoundedModelChecker(
            sys_, [Assertion("cnt<16", lambda p, s: s["cnt"] < 16)],
            max_depth=64,
        )
        assert bmc.run().verdict == "no_violation"

    def test_state_budget_exhaustion(self):
        sys_ = TransitionSystem(
            {"cnt": 0},
            lambda s, i: {"cnt": s["cnt"] + 1 + i["x"]},
            input_space=[("x", [0, 1, 2, 3])],
        )
        bmc = BoundedModelChecker(
            sys_, [Assertion("never", lambda p, s: s["cnt"] < 10**9)],
            max_depth=100, max_states=500,
        )
        r = bmc.run()
        assert r.verdict == "budget"
        assert r.states > 0

    def test_input_space_enumerated(self):
        sys_ = TransitionSystem(
            {"v": 0},
            lambda s, i: {"v": i["x"]},
            input_space=[("x", [0, 7])],
        )
        bmc = BoundedModelChecker(
            sys_, [Assertion("v!=7", lambda p, s: s["v"] != 7)],
            max_depth=4,
        )
        assert bmc.run().found_violation


class TestSynthCost:
    def test_fifo_cost_sane(self):
        from repro.anvil_designs.streams import fifo_buffer
        from repro.codegen.simfsm import compile_process
        from repro.synth import estimate_compiled
        r = estimate_compiled(compile_process(fifo_buffer(4, 32)))
        assert r.flops >= 4 * 32          # at least the payload bits
        assert r.area > r.noncomb_area    # some combinational logic
        assert r.fmax > 500               # MHz

    def test_larger_design_costs_more(self):
        from repro.anvil_designs.streams import fifo_buffer
        from repro.codegen.simfsm import compile_process
        from repro.synth import estimate_compiled
        small = estimate_compiled(compile_process(fifo_buffer(2, 8)))
        big = estimate_compiled(compile_process(fifo_buffer(8, 32)))
        assert big.area > 2 * small.area

    def test_baseline_inventories_available(self):
        from repro.synth import baselines
        for name in ("fifo_buffer", "spill_register", "tlb", "ptw",
                     "aes_core", "axi_demux", "axi_mux", "pipelined_alu",
                     "systolic_array"):
            report = getattr(baselines, name)()
            assert report.area > 0
            assert report.fmax > 0

    def test_power_increases_with_activity_and_area(self):
        from repro.synth.baselines import fifo_buffer
        r = fifo_buffer()
        assert r.power(100, 1000) > r.power(10, 1000)
        assert r.power(10, 1000) > 0
