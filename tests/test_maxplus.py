"""Unit and property tests for the max-plus timestamp algebra.

The key soundness property (used throughout the type checker): whenever the
symbolic comparison says ``A <= B``, every concrete assignment of
non-negative slacks satisfies ``value(A) <= value(B)``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maxplus import MaxExpr, MinExpr, MpTerm


def term(const, *vars_):
    return MpTerm(const, tuple(sorted(vars_)))


class TestMpTerm:
    def test_domination_constant(self):
        assert term(1).dominated_by(term(2))
        assert not term(3).dominated_by(term(2))
        assert term(2).dominated_by(term(2))

    def test_domination_vars(self):
        assert term(0).dominated_by(term(0, 1))
        assert not term(0, 1).dominated_by(term(0))
        assert term(1, 2).dominated_by(term(1, 2, 3))

    def test_domination_var_multiset(self):
        assert term(0, 1, 1).dominated_by(term(0, 1, 1, 2))
        assert not term(0, 1, 1).dominated_by(term(0, 1, 2))

    def test_strict_domination_needs_smaller_const(self):
        assert not term(2).strictly_dominated_by(term(2, 5))
        assert term(1).strictly_dominated_by(term(2, 5))

    def test_evaluate(self):
        assert term(3, 1, 1, 2).evaluate({1: 2, 2: 5}) == 12

    def test_shift_and_var(self):
        t = term(1, 4).shifted(2).with_var(3)
        assert t.const == 3
        assert t.vars == (3, 4)


class TestMaxExpr:
    def test_zero(self):
        assert MaxExpr.zero().evaluate({}) == 0

    def test_inf_absorbs(self):
        assert MaxExpr.maximum([MaxExpr.zero(), MaxExpr.inf()]).infinite

    def test_pruning_drops_dominated_terms(self):
        e = MaxExpr([term(0), term(0, 7)])
        assert e.terms == frozenset([term(0, 7)])

    def test_le_simple(self):
        a = MaxExpr([term(1, 5)])
        b = MaxExpr([term(2, 5)])
        assert a.le(b)
        assert not b.le(a)

    def test_le_against_inf(self):
        assert MaxExpr([term(9)]).le(MaxExpr.inf())
        assert not MaxExpr.inf().le(MaxExpr([term(9)]))

    def test_lt_requires_strict_constant(self):
        a = MaxExpr([term(1, 5)])
        assert not a.lt(MaxExpr([term(1, 5)]))
        assert a.lt(MaxExpr([term(2, 5)]))

    def test_le_incomparable_vars(self):
        a = MaxExpr([term(0, 1)])
        b = MaxExpr([term(0, 2)])
        assert not a.le(b)
        assert not b.le(a)

    def test_max_of_branches(self):
        a = MaxExpr([term(1)])
        b = MaxExpr([term(0, 3)])
        m = MaxExpr.maximum([a, b])
        assert m.evaluate({3: 0}) == 1
        assert m.evaluate({3: 5}) == 5


class TestMinExpr:
    def test_empty_is_infinite(self):
        assert MinExpr.inf().infinite

    def test_le_expr(self):
        m = MinExpr([MaxExpr([term(3)]), MaxExpr([term(1, 2)])])
        assert m.le_expr(MaxExpr([term(3)]))

    def test_ge_expr_requires_all(self):
        m = MinExpr([MaxExpr([term(3)]), MaxExpr([term(1)])])
        assert m.ge_expr(MaxExpr([term(1)]))
        assert not m.ge_expr(MaxExpr([term(2)]))

    def test_infinite_alternatives_dropped(self):
        m = MinExpr([MaxExpr.inf(), MaxExpr([term(2)])])
        assert not m.infinite
        assert m.evaluate({}) == 2

    def test_min_le_min(self):
        a = MinExpr([MaxExpr([term(1)])])
        b = MinExpr([MaxExpr([term(2)]), MaxExpr([term(5)])])
        assert a.le(b)
        assert not b.le(a)


# ---------------------------------------------------------------------------
# property-based soundness
# ---------------------------------------------------------------------------
terms_st = st.builds(
    lambda c, vs: MpTerm(c, tuple(sorted(vs))),
    st.integers(min_value=0, max_value=6),
    st.lists(st.integers(min_value=0, max_value=4), max_size=3),
)
maxexpr_st = st.builds(
    lambda ts: MaxExpr(ts),
    st.lists(terms_st, min_size=1, max_size=4),
)
assignment_st = st.fixed_dictionaries(
    {i: st.integers(min_value=0, max_value=8) for i in range(5)}
)


@settings(max_examples=300, deadline=None)
@given(a=maxexpr_st, b=maxexpr_st, assignment=assignment_st)
def test_le_soundness(a, b, assignment):
    """Symbolic <= implies concrete <= for every assignment."""
    if a.le(b):
        assert a.evaluate(assignment) <= b.evaluate(assignment)


@settings(max_examples=300, deadline=None)
@given(a=maxexpr_st, b=maxexpr_st, assignment=assignment_st)
def test_lt_soundness(a, b, assignment):
    if a.lt(b):
        assert a.evaluate(assignment) < b.evaluate(assignment)


@settings(max_examples=200, deadline=None)
@given(a=maxexpr_st, b=maxexpr_st, assignment=assignment_st)
def test_maximum_is_pointwise_max(a, b, assignment):
    m = MaxExpr.maximum([a, b])
    assert m.evaluate(assignment) == max(
        a.evaluate(assignment), b.evaluate(assignment)
    )


@settings(max_examples=200, deadline=None)
@given(
    alts_a=st.lists(maxexpr_st, min_size=1, max_size=3),
    alts_b=st.lists(maxexpr_st, min_size=1, max_size=3),
    assignment=assignment_st,
)
def test_minexpr_le_soundness(alts_a, alts_b, assignment):
    a, b = MinExpr(alts_a), MinExpr(alts_b)
    if a.le(b):
        assert a.evaluate(assignment) <= b.evaluate(assignment)


@settings(max_examples=200, deadline=None)
@given(e=maxexpr_st, k=st.integers(min_value=0, max_value=5),
       assignment=assignment_st)
def test_shift_adds_constant(e, k, assignment):
    assert e.shifted(k).evaluate(assignment) == e.evaluate(assignment) + k
