"""Execution-log semantics and the Theorem C.20 property.

The dynamic oracle replays sampled executions (random handshake slacks,
random branch outcomes) against the Definition C.15 safety condition:
well-typed processes must yield only safe logs; the paper's ill-typed
examples must exhibit unsafe ones.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph_builder import GraphBuilder
from repro.core.typecheck import check_process
from repro.semantics import (
    check_log,
    concrete_times,
    log_is_safe,
    sample_log,
    sample_process_logs,
)

from helpers import top_safe, top_unsafe


class TestConcreteTimes:
    def test_linear_times(self):
        from repro import Logic, Process
        from repro.lang.terms import cycle, set_reg, read
        p = Process("t")
        p.register("r", Logic(4))
        p.loop(cycle(2) >> set_reg("r", read("r") + 1))
        built = GraphBuilder(p, p.threads[0]).build(1)
        times = concrete_times(built, {}, {})
        assert times[0] == 0          # root
        assert max(t for t in times if t is not None) == 3

    def test_slack_shifts_downstream(self):
        built = GraphBuilder(
            top_safe(), top_safe().threads[0]
        ).build(1)
        proc = top_safe()
        built = GraphBuilder(proc, proc.threads[0]).build(1)
        sync_eids = [e.eid for e in built.graph.events
                     if e.kind.value == "sync"]
        t0 = concrete_times(built, {eid: 0 for eid in sync_eids}, {})
        t3 = concrete_times(built, {eid: 3 for eid in sync_eids}, {})
        last0 = max(t for t in t0 if t is not None)
        last3 = max(t for t in t3 if t is not None)
        assert last3 > last0

    def test_untaken_branch_is_none(self):
        from repro import Logic, Process
        from repro.lang.terms import cycle, if_, read
        p = Process("t")
        p.register("r", Logic(1))
        p.loop(if_(read("r").eq(0), cycle(1), cycle(3)))
        built = GraphBuilder(p, p.threads[0]).build(1)
        conds = {0: True}
        times = concrete_times(built, {}, conds)
        assert any(t is None for t in times)  # the untaken arm


class TestSafetyOracle:
    def test_safe_process_all_logs_safe(self):
        logs = sample_process_logs(top_safe(), samples=60, seed=3)
        for log in logs:
            violations = check_log(log)
            assert not violations, violations

    def test_unsafe_process_logs_unsafe(self):
        logs = sample_process_logs(top_unsafe(), samples=60, seed=3)
        assert any(not log_is_safe(log) for log in logs)

    @pytest.mark.parametrize("factory_name", [
        "fifo_buffer", "spill_register", "passthrough_stream_fifo",
    ])
    def test_stream_designs_dynamically_safe(self, factory_name):
        from repro.anvil_designs import streams
        factory = getattr(streams, factory_name)
        logs = sample_process_logs(factory(), samples=25, seed=7)
        assert all(log_is_safe(log) for log in logs)

    def test_mmu_designs_dynamically_safe(self):
        from repro.anvil_designs.mmu import ptw_process, tlb_process
        for factory in (ptw_process, tlb_process):
            logs = sample_process_logs(factory(), samples=20, seed=11)
            assert all(log_is_safe(log) for log in logs)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       max_slack=st.integers(min_value=0, max_value=6))
def test_theorem_c20_well_typed_implies_safe(seed, max_slack):
    """Property: every sampled execution of the well-typed Top_Safe is
    safe, for arbitrary handshake slacks."""
    proc = top_safe()
    assert check_process(proc).ok
    built = GraphBuilder(proc, proc.threads[0]).build(2)
    rng = random.Random(seed)
    log = sample_log(built, rng, max_slack=max_slack)
    assert log_is_safe(log), check_log(log)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_ill_typed_counterexamples_exist(seed):
    """The unsafe Top violates Definition C.15 under every sampled slack
    assignment with nonzero memory delay."""
    proc = top_unsafe()
    assert not check_process(proc).ok
    built = GraphBuilder(proc, proc.threads[0]).build(2)
    rng = random.Random(seed)
    log = sample_log(built, rng, max_slack=3)
    # the static 2-cycle contract is violated by construction here
    assert not log_is_safe(log)
