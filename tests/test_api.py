"""The unified run-time surface (`repro.api`) and the `python -m repro`
CLI: SimConfig validation, the scenario registry, Session runs/sweeps,
the deprecation shims (pinned bit-identical to the new path), and a
smoke pass over every CLI subcommand."""

import json
import os
import subprocess
import sys

import pytest

from repro import (
    RunResult,
    ScenarioRegistry,
    Session,
    SimConfig,
    Simulator,
    get_registry,
    list_scenarios,
    resolve_config,
)
from repro.__main__ import main as cli_main

#: small workloads throughout -- these tests pin behaviour, not perf
FAST = dict(stim=150, cycles=60)


# ---------------------------------------------------------------------------
# SimConfig
# ---------------------------------------------------------------------------
class TestSimConfig:
    def test_defaults(self, monkeypatch):
        # the executor/engine defaults are env-sensitive by design;
        # this test pins the unset behaviour (the CI smoke jobs run the
        # whole suite under REPRO_EXECUTOR=process and REPRO_ENGINE=
        # kernel)
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        cfg = SimConfig()
        assert cfg.engine == "levelized"
        assert cfg.backend == "interp"
        assert cfg.parallel is None
        assert cfg.executor == "thread"
        assert cfg.jobs is None
        assert cfg.seed == 0
        assert cfg.stim is None
        assert not cfg.trace

    def test_executor_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert SimConfig().executor == "process"
        # an explicit value beats the environment
        assert SimConfig(executor="serial").executor == "serial"
        monkeypatch.setenv("REPRO_EXECUTOR", "warp-drive")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            SimConfig()

    def test_unknown_engine_names_the_choices(self):
        with pytest.raises(ValueError, match="'levelized'"):
            SimConfig(engine="warp")

    def test_unknown_backend_names_the_choices(self):
        with pytest.raises(ValueError, match="'pycompiled'"):
            SimConfig(backend="llvm")

    @pytest.mark.parametrize("bad", [
        dict(cycles=0), dict(cycles=-5), dict(cycles="many"),
        dict(stim=0), dict(stim="lots"),
        dict(seed="abc"), dict(parallel="yes"),
        dict(executor="warp"), dict(jobs=0), dict(jobs="four"),
        dict(jobs=True),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            SimConfig(**bad)

    def test_frozen(self):
        cfg = SimConfig()
        with pytest.raises(AttributeError):
            cfg.engine = "brute"

    def test_replace_revalidates(self):
        cfg = SimConfig().replace(engine="brute", seed=7)
        assert (cfg.engine, cfg.seed) == ("brute", 7)
        with pytest.raises(ValueError):
            cfg.replace(backend="bogus")

    def test_dict_roundtrip(self):
        cfg = SimConfig(engine="brute", backend="pycompiled", seed=3,
                        cycles=42, stim=99, trace=True)
        assert SimConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="turbo"):
            SimConfig.from_dict({"turbo": True})

    def test_resolve_config_layers(self):
        base = SimConfig(seed=5)
        assert resolve_config(None) == SimConfig()
        assert resolve_config(base) is base
        assert resolve_config(base, backend="pycompiled").seed == 5
        assert resolve_config(Session(base)).seed == 5
        # None overrides are "not given", they never clobber the config
        assert resolve_config(base, seed=None).seed == 5
        with pytest.raises(TypeError):
            resolve_config("levelized")


# ---------------------------------------------------------------------------
# environment knobs: junk values fail loudly, never fall back silently
# ---------------------------------------------------------------------------
class TestEnvKnobGarbage:
    """Every ``REPRO_*`` tuning knob rejects garbage with one clear
    ValueError naming the variable and echoing the offending value --
    a typo'd override must never silently run the default path."""

    KNOBS = ("REPRO_BATCH", "REPRO_ENGINE", "REPRO_EXECUTOR",
             "REPRO_PARALLEL")

    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        for var in self.KNOBS:
            monkeypatch.delenv(var, raising=False)

    @pytest.mark.parametrize("var", ["REPRO_BATCH", "REPRO_ENGINE",
                                     "REPRO_EXECUTOR"])
    def test_config_construction_rejects_garbage(self, var, monkeypatch):
        monkeypatch.setenv(var, "garbage?!")
        with pytest.raises(ValueError, match=var) as exc:
            SimConfig()
        assert "garbage?!" in str(exc.value)

    def test_sweep_rejects_garbage_parallel(self, monkeypatch):
        # REPRO_PARALLEL is read at pool-sizing time, not construction
        monkeypatch.setenv("REPRO_PARALLEL", "garbage?!")
        session = Session(SimConfig(**FAST))
        with pytest.raises(ValueError, match="REPRO_PARALLEL") as exc:
            session.sweep(["streams"])
        assert "garbage?!" in str(exc.value)

    @pytest.mark.parametrize("var", ["REPRO_BATCH", "REPRO_ENGINE",
                                     "REPRO_EXECUTOR", "REPRO_PARALLEL"])
    def test_cli_reports_garbage_and_exits_two(self, var, monkeypatch,
                                               capsys):
        monkeypatch.setenv(var, "garbage?!")
        assert cli_main(["run", "streams", "--cycles", "5"]) == 2
        err = capsys.readouterr().err
        assert var in err and "garbage?!" in err


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------
class TestScenarioRegistry:
    def test_bundled_scenarios_registered_with_tags(self):
        reg = get_registry()
        names = reg.names()
        for family in ("streams", "memory", "aes", "axi", "mmu",
                       "pipeline"):
            assert family in names
            assert f"anvil_{family}" in names
        for workload in ("sum", "sort", "memcpy"):
            assert f"y86_{workload}" in names
        assert reg.names("sweep") == ["sweep", "anvil_sweep"]
        assert set(reg.tags()) == {"rtl", "anvil", "sweep", "cpu"}
        assert len(reg.names("anvil", exclude="sweep")) == 6
        assert reg.names("cpu") == ["y86_sum", "y86_sort", "y86_memcpy"]
        assert list_scenarios() == names

    def test_unknown_name_suggests_and_enumerates(self):
        with pytest.raises(KeyError) as exc:
            get_registry().get("anvil_aess")
        msg = str(exc.value)
        assert "did you mean" in msg and "anvil_aes" in msg

    def test_decorator_registration_and_duplicates(self):
        reg = ScenarioRegistry()

        @reg.scenario("toy", tags=("rtl", "tiny"))
        def build_toy(engine="levelized", seed=0, stim=10, sim=None,
                      backend="interp"):
            """A toy scenario."""
            return sim or Simulator("toy", engine=engine)

        assert "toy" in reg and len(reg) == 1
        assert reg.get("toy").description == "A toy scenario."
        assert reg.get("toy").tags == frozenset({"rtl", "tiny"})
        sim = reg.build("toy", SimConfig(engine="brute"))
        assert sim.engine == "brute"
        with pytest.raises(ValueError, match="already registered"):
            reg.add("toy", build_toy)

    def test_build_threads_the_whole_config(self):
        sim = get_registry().build(
            "anvil_memory",
            SimConfig(engine="brute", backend="pycompiled", seed=4,
                      stim=100))
        assert sim.engine == "brute"
        anvil = [m for m in sim.modules if hasattr(m, "plan")]
        assert anvil and all(m.backend == "pycompiled" for m in anvil)


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------
class TestSession:
    def test_run_returns_structured_result(self):
        result = Session(SimConfig(**FAST)).run("streams")
        assert isinstance(result, RunResult)
        assert result.scenario == "streams"
        assert result.cycles == FAST["cycles"] == result.sim.cycle
        assert result.total_activity == sum(result.activity.values()) > 0
        assert result.seconds > 0 and result.cycles_per_second > 0
        assert result.trace is None
        assert result.diagnostics["modules"] == len(result.sim.modules)
        blob = result.to_dict(include_activity=True)
        assert blob["config"]["cycles"] == FAST["cycles"]
        assert sum(blob["activity"].values()) == result.total_activity

    def test_trace_renders_waveform(self):
        result = Session(SimConfig(trace=True, stim=50, cycles=20)).run(
            "streams")
        assert "st.out.data" in result.trace
        assert result.to_dict()["trace"] == result.trace

    def test_per_call_overrides_do_not_mutate_the_session(self):
        session = Session(SimConfig(**FAST))
        result = session.run("anvil_memory", backend="pycompiled",
                             cycles=30)
        assert result.config.backend == "pycompiled"
        assert result.cycles == 30
        assert session.config.backend == "interp"

    def test_with_config_derives_a_new_session(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        a = Session()
        b = a.with_config(engine="brute")
        assert a.config.engine == "levelized"
        assert b.config.engine == "brute"

    def test_sweep_by_tag(self):
        results = Session(SimConfig(**FAST)).sweep(tag="anvil",
                                                   cycles=40)
        assert list(results) == get_registry().names("anvil",
                                                     exclude="sweep")
        assert all(r.cycles == 40 for r in results.values())
        assert all(r.total_activity > 0 for r in results.values())

    def test_sweep_matches_individual_runs(self):
        session = Session(SimConfig(**FAST))
        swept = session.sweep(["streams", "memory"])
        for name in ("streams", "memory"):
            solo = session.run(name)
            assert swept[name].activity == solo.activity
            assert (swept[name].waveform.samples
                    == solo.waveform.samples)

    def test_bench_reports_equivalent_speedup_rows(self):
        cfg = SimConfig(stim=100, cycles=50)
        rows = Session(cfg).bench(["streams"], warmup=5)
        (row,) = rows
        assert row["scenario"] == "streams"
        assert row["equivalent"] is True
        assert row["speedup"] > 0
        assert row["baseline"]["config"]["engine"] == "brute"
        # the configured side carries the resolved session engine
        # (levelized unless REPRO_ENGINE says otherwise)
        assert row["configured"]["config"]["engine"] == cfg.engine

    def test_unknown_scenario_raises_actionably(self):
        with pytest.raises(KeyError, match="known scenarios"):
            Session().run("nonesuch")


# ---------------------------------------------------------------------------
# deprecation shims: old kwargs path pinned bit-identical to the new one
# ---------------------------------------------------------------------------
class TestDeprecationShims:
    def _state(self, sim, cycles):
        sim.run(cycles)
        return sim.activity, sim.waveform.samples

    @pytest.mark.parametrize("name", ["memory", "anvil_pipeline"])
    def test_build_scenario_shims_match_session(self, name):
        from repro.harness.scenarios import (
            build_anvil_scenario,
            build_scenario,
        )

        cfg = SimConfig(seed=3, stim=150, backend="pycompiled")
        new = self._state(get_registry().build(name, cfg), 60)
        with pytest.warns(DeprecationWarning):
            if name.startswith("anvil_"):
                old_sim = build_anvil_scenario(
                    name.removeprefix("anvil_"), seed=3, stim=150,
                    backend="pycompiled")
            else:
                old_sim = build_scenario(name, seed=3, stim=150,
                                         backend="pycompiled")
        assert self._state(old_sim, 60) == new

    def test_sweep_shims_match_registered_sweeps(self):
        from repro.harness.scenarios import build_anvil_sweep, build_sweep

        session = Session(SimConfig(seed=2, stim=80))
        for shim, name in ((build_sweep, "sweep"),
                           (build_anvil_sweep, "anvil_sweep")):
            new = self._state(session.build(name), 30)
            with pytest.warns(DeprecationWarning):
                old_sim = shim(seed=2, stim=80)
            assert self._state(old_sim, 30) == new

    def test_add_scenario_legacy_kwargs_match_config_path(self):
        from repro import BatchSimulator

        batch = BatchSimulator(parallel=False)
        batch.add_scenario("memory", SimConfig(seed=1, stim=120),
                           as_name="via_config")
        batch.add_scenario("memory", seed=1, stim=120,
                           as_name="via_kwargs")
        # the old positional-engine call shape still resolves
        batch.add_scenario("memory", "levelized", seed=1, stim=120,
                           as_name="via_positional")
        batch.run(50)
        acts = batch.total_activity()
        assert acts["via_config"] == acts["via_kwargs"] \
            == acts["via_positional"] > 0

    def test_add_scenario_anvil_flag_maps_to_registry_name(self):
        from repro import BatchSimulator

        batch = BatchSimulator(parallel=False)
        sim = batch.add_scenario("aes", stim=64, anvil=True)
        assert sim.name == "anvil_aes"

    def test_harness_driver_kwargs_match_config(self):
        from repro.harness import generate_table1, generate_table2

        cfg = SimConfig(backend="pycompiled", parallel=False)
        assert generate_table1(fast=True, parallel=False) \
            == generate_table1(fast=True, config=cfg)
        assert generate_table2(parallel=False, backend="pycompiled") \
            == generate_table2(config=cfg)

    def test_legacy_scenario_dicts_still_enumerate(self):
        from repro.harness.scenarios import ANVIL_SCENARIOS, SCENARIOS

        assert set(SCENARIOS) == set(ANVIL_SCENARIOS) \
            == {"streams", "memory", "aes", "axi", "mmu", "pipeline"}


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------
def _cli_json(capsys, argv):
    assert cli_main(argv + ["--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestCli:
    def test_list_scenarios_matches_registry(self, capsys):
        payload = _cli_json(capsys, ["list-scenarios"])
        assert [s["name"] for s in payload] == get_registry().names()
        assert cli_main(["list-scenarios", "--tag", "anvil"]) == 0
        out = capsys.readouterr().out
        assert "anvil_aes" in out and "streams [" not in out

    def test_run_json_roundtrips(self, capsys):
        payload = _cli_json(capsys, [
            "run", "streams", "--cycles", "50", "--stim", "100",
            "--activity",
        ])
        assert payload["scenario"] == "streams"
        assert payload["cycles"] == 50
        assert payload["config"]["stim"] == 100
        assert sum(payload["activity"].values()) \
            == payload["total_activity"] > 0

    def test_run_trace_prints_waveform(self, capsys):
        assert cli_main(["run", "streams", "--cycles", "20",
                         "--stim", "40", "--trace"]) == 0
        assert "st.out.data" in capsys.readouterr().out

    def test_run_unknown_scenario_is_a_clean_error(self, capsys):
        assert cli_main(["run", "nonesuch", "--cycles", "10"]) == 2
        assert "known scenarios" in capsys.readouterr().err

    def test_run_rejects_sweep_only_executor_flags(self, capsys):
        # a single run has no sweep: it must not accept (and then
        # silently ignore) the executor knobs
        with pytest.raises(SystemExit):
            cli_main(["run", "streams", "--executor", "process"])
        assert "--executor" in capsys.readouterr().err

    def test_invalid_config_value_is_a_clean_error(self, capsys):
        assert cli_main(["run", "streams", "--cycles", "0"]) == 2
        assert "cycles must be" in capsys.readouterr().err

    def test_unknown_tag_fails_in_both_output_modes(self, capsys):
        assert cli_main(["list-scenarios", "--tag", "nosuch"]) == 1
        assert cli_main(["list-scenarios", "--tag", "nosuch",
                         "--json"]) == 1
        assert "known tags" in capsys.readouterr().err

    def test_harness_json_echoes_only_consumed_config(self, capsys):
        payload = _cli_json(capsys, ["table1", "--fast"])
        assert set(payload["config"]) == {"engine", "backend", "parallel",
                                          "executor", "jobs"}
        payload = _cli_json(capsys, ["appendix-a", "--fast"])
        assert set(payload["config"]) == {"engine", "backend"}

    def test_sweep_json(self, capsys):
        payload = _cli_json(capsys, [
            "sweep", "streams", "memory", "--cycles", "40",
            "--stim", "80",
        ])
        assert set(payload["result"]) == {"streams", "memory"}
        assert payload["config"]["cycles"] == 40

    def test_bench_json(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        payload = _cli_json(capsys, [
            "bench", "streams", "--cycles", "40", "--stim", "80",
            "--warmup", "5",
        ])
        (row,) = payload["result"]
        assert row["equivalent"] is True
        assert payload["config"]["engine"] == "levelized"

    def test_table1_fast_json(self, capsys):
        payload = _cli_json(capsys, ["table1", "--fast"])
        rows = payload["result"]
        assert len(rows) == 10
        assert {"design", "area_overhead"} <= set(rows[0])

    def test_table2_json(self, capsys):
        payload = _cli_json(capsys, ["table2", "--parallel", "0"])
        assert payload["result"]["opentitan"]["unsafe_rejected"]
        assert not payload["result"]["stream_fifo"]["anvil_data_lost"]

    def test_appendix_a_fast_json(self, capsys):
        payload = _cli_json(capsys, ["appendix-a", "--fast"])
        result = payload["result"]
        assert result["anvil"]["verdict"] == "rejected"
        assert result["bmc_reduced_width"]["found_violation"]
        assert not result["bmc_full_width"]["found_violation"]

    def test_figures_smoke(self, capsys):
        assert cli_main(["figures", "--parallel", "0"]) == 0
        out = capsys.readouterr().out
        for fig in ("figure1", "figure2_bsv", "figure4", "figure8"):
            assert fig in out

    def test_json_to_path(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert cli_main(["run", "memory", "--cycles", "30",
                         "--stim", "60", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["scenario"] == "memory"

    def test_python_dash_m_entry_point(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH")
            else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list-scenarios"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0
        for name in get_registry().names():
            assert name in proc.stdout
