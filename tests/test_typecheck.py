"""Type checker tests: the paper's running examples and the three checks.

These mirror Figures 2 and 5 and the Encrypt example of Figure 6; the
expected verdicts and error classes come straight from the paper.
"""

import pytest

from repro import (
    ChannelDef,
    LifetimeSpec,
    LoanedRegisterMutationError,
    MessageDef,
    MessageSendError,
    Process,
    Side,
    ValueNotLiveError,
    assert_safe,
    check_process,
)
from repro.lang.terms import (
    cycle,
    if_,
    let,
    lit,
    par,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)
from repro.lang.types import Logic

from helpers import cache_channel, fifo_channel, memory_channel, top_safe, top_unsafe


class TestFigure5:
    """The running example: Top interfacing a memory, without/with cache."""

    def test_top_unsafe_rejected(self):
        report = check_process(top_unsafe())
        assert not report.ok
        kinds = {type(e) for e in report.errors}
        assert LoanedRegisterMutationError in kinds
        assert MessageSendError in kinds

    def test_top_safe_accepted(self):
        assert check_process(top_safe()).ok

    def test_unsafe_error_mentions_register(self):
        report = check_process(top_unsafe())
        loan_errors = [
            e for e in report.errors
            if isinstance(e, LoanedRegisterMutationError)
        ]
        assert any("address" in str(e) for e in loan_errors)

    def test_waiting_two_cycles_fixes_static_contract(self):
        """With the static 2-cycle contract, waiting for the response slot
        and only then mutating is safe."""
        p = Process("top_static_safe")
        p.endpoint("mem", memory_channel(2), Side.LEFT)
        p.register("address", Logic(8))
        p.loop(
            send("mem", "req", read("address"))
            >> let("d", recv("mem", "res"),
                   var("d") >> cycle(1)
                   >> set_reg("address", read("address") + 1))
        )
        report = check_process(p)
        assert report.ok, [str(e) for e in report.errors]


class TestFigure2:
    """Cache -> FIFO forwarding: BSV's unsafe schedules vs Anvil."""

    def _process(self, body, name):
        p = Process(name)
        p.endpoint("cache", cache_channel(), Side.LEFT)
        p.endpoint("fifo", fifo_channel(), Side.LEFT)
        p.register("address", Logic(8))
        p.register("enq_data", Logic(8))
        p.loop(body)
        return check_process(p)

    def test_direct_forward_value_not_live(self):
        """`send fifo.enq_req(data)` where data lives one cycle: the send
        may synchronize arbitrarily late -> 'value does not live long
        enough'."""
        report = self._process(
            send("cache", "req", read("address"))
            >> let("d", recv("cache", "res"),
                   var("d")
                   >> par(set_reg("address", read("address") + 1),
                          send("fifo", "enq_req", var("d")))),
            "direct_forward",
        )
        assert any(isinstance(e, ValueNotLiveError) for e in report.errors)

    def test_early_address_mutation_rejected(self):
        report = self._process(
            send("cache", "req", read("address"))
            >> set_reg("address", read("address") + 1)
            >> let("d", recv("cache", "res"),
                   var("d") >> set_reg("enq_data", var("d"))
                   >> send("fifo", "enq_req", read("enq_data"))),
            "early_mutation",
        )
        assert any(
            isinstance(e, LoanedRegisterMutationError) for e in report.errors
        )

    def test_registered_forward_accepted(self):
        report = self._process(
            send("cache", "req", read("address"))
            >> let("d", recv("cache", "res"),
                   var("d")
                   >> par(set_reg("address", read("address") + 1),
                          set_reg("enq_data", var("d")))
                   >> send("fifo", "enq_req", read("enq_data"))),
            "registered_forward",
        )
        assert report.ok, [str(e) for e in report.errors]


class TestEncryptFigure6:
    """The Encrypt process of Figure 6 with its two bugs."""

    def channels(self):
        encrypt_ch = ChannelDef("encrypt_ch", [
            MessageDef("enc_req", Side.RIGHT, Logic(8),
                       LifetimeSpec.until("enc_res")),
            MessageDef("enc_res", Side.LEFT, Logic(8),
                       LifetimeSpec.until("enc_req")),
        ])
        rng_ch = ChannelDef("rng_ch", [
            MessageDef("rng_req", Side.RIGHT, Logic(8),
                       LifetimeSpec.static(1)),
            MessageDef("rng_res", Side.LEFT, Logic(8),
                       LifetimeSpec.static(2)),
        ])
        return encrypt_ch, rng_ch

    def _encrypt(self, body):
        encrypt_ch, rng_ch = self.channels()
        p = Process("encrypt")
        p.endpoint("ch1", encrypt_ch, Side.RIGHT)
        p.endpoint("ch2", rng_ch, Side.RIGHT)
        p.register("rd1_ctext", Logic(8))
        p.register("r2_key", Logic(8))
        p.loop(body)
        return check_process(p)

    def test_paper_version_has_both_bugs(self):
        """The paper's Encrypt misuses `noise` (dead by assignment time)
        and double-sends enc_res with overlapping lifetimes."""
        report = self._encrypt(
            let("ptext", recv("ch1", "enc_req"),
            let("noise", recv("ch2", "rng_req"),
            let("r1_key", lit(25, 8),
                var("ptext")
                >> if_(var("ptext").ne(0),
                       set_reg("rd1_ctext",
                               (var("ptext") ^ var("r1_key")) + var("noise")),
                       set_reg("rd1_ctext", var("ptext")))
                >> cycle(1)
                >> par(set_reg("r2_key", var("r1_key") ^ var("noise")),
                       send("ch2", "rng_res", read("r2_key")))
                >> send("ch1", "enc_res", read("rd1_ctext"))
                >> send("ch1", "enc_res", var("r1_key")))))
        )
        assert not report.ok
        kinds = {type(e) for e in report.errors}
        assert ValueNotLiveError in kinds       # noise already dead
        assert MessageSendError in kinds        # overlapping enc_res sends

    def test_fixed_version_accepted(self):
        """Registering noise immediately and sending enc_res once passes."""
        encrypt_ch, rng_ch = self.channels()
        p = Process("encrypt_fixed")
        p.endpoint("ch1", encrypt_ch, Side.RIGHT)
        p.endpoint("ch2", rng_ch, Side.RIGHT)
        p.register("rd1_ctext", Logic(8))
        p.register("noise_q", Logic(8))
        p.loop(
            let("ptext", recv("ch1", "enc_req"),
            let("noise", recv("ch2", "rng_req"),
                var("noise") >> set_reg("noise_q", var("noise"))
                >> var("ptext")
                >> set_reg("rd1_ctext",
                           (var("ptext") ^ lit(25, 8)) + read("noise_q"))
                >> send("ch1", "enc_res", read("rd1_ctext"))
                >> let("_", recv("ch1", "enc_req"), unit())))
        )
        # note: re-recv of enc_req only to give the dynamic contract a next
        # event; the check target is rd1_ctext's stability
        report = check_process(p)
        assert report.ok, [str(e) for e in report.errors]


class TestCrossThread:
    def test_register_mutated_by_two_threads_rejected(self):
        p = Process("multi")
        p.register("r", Logic(8))
        p.loop(set_reg("r", read("r") + 1))
        p.loop(set_reg("r", read("r") + 2))
        report = check_process(p)
        assert any(
            isinstance(e, LoanedRegisterMutationError) for e in report.errors
        )

    def test_message_sent_by_two_threads_rejected(self):
        p = Process("multi2")
        p.endpoint("f", fifo_channel(), Side.LEFT)
        p.register("a", Logic(8))
        p.loop(send("f", "enq_req", read("a")) >> cycle(1))
        p.loop(send("f", "enq_req", 5) >> cycle(1))
        report = check_process(p)
        assert any(isinstance(e, MessageSendError) for e in report.errors)

    def test_disjoint_threads_accepted(self):
        p = Process("multi3")
        p.register("a", Logic(8))
        p.register("b", Logic(8))
        p.loop(set_reg("a", read("a") + 1))
        p.loop(set_reg("b", read("b") + 1))
        assert check_process(p).ok


class TestBasics:
    def test_self_increment_allowed(self):
        p = Process("counter")
        p.register("cnt", Logic(32))
        p.loop(set_reg("cnt", read("cnt") + 1))
        assert check_process(p).ok

    def test_assert_safe_raises_on_error(self):
        with pytest.raises(LoanedRegisterMutationError):
            assert_safe(top_unsafe())

    def test_report_repr(self):
        assert "SAFE" in repr(check_process(top_safe()))
        assert "UNSAFE" in repr(check_process(top_unsafe()))

    def test_recv_on_sending_endpoint_rejected(self):
        from repro.errors import ElaborationError
        p = Process("bad")
        p.endpoint("mem", memory_channel(), Side.LEFT)
        p.loop(let("x", recv("mem", "req"), unit()))
        with pytest.raises(ElaborationError):
            check_process(p)
