"""Tests for the event-graph optimization passes (Figure 8)."""

from repro.core.events import EventGraph, EventKind, SyncDir
from repro.core.optimize import (
    optimize,
    pass_merge_labels,
    pass_remove_branch_joins,
    pass_shift_branch_joins,
    pass_unbalanced_joins,
)
from repro.core.oracle import TimingOracle


class TestMergeLabels:
    def test_merges_identical_delays(self):
        """Figure 8 (a): two #N successors of one event merge."""
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.DELAY, (r.eid,), delay=2)
        b = g.add(EventKind.DELAY, (r.eid,), delay=2)
        ta = g.add(EventKind.DELAY, (a.eid,), delay=1)
        tb = g.add(EventKind.DELAY, (b.eid,), delay=1)
        new, mapping, removed = pass_merge_labels(g)
        assert removed >= 1
        assert mapping[a.eid] == mapping[b.eid]

    def test_keeps_different_delays(self):
        g = EventGraph()
        r = g.root()
        g.add(EventKind.DELAY, (r.eid,), delay=1)
        g.add(EventKind.DELAY, (r.eid,), delay=2)
        _, _, removed = pass_merge_labels(g)
        assert removed == 0

    def test_never_merges_syncs(self):
        g = EventGraph()
        r = g.root()
        g.add(EventKind.SYNC, (r.eid,), endpoint="e", message="m",
              direction=SyncDir.SEND)
        g.add(EventKind.SYNC, (r.eid,), endpoint="e", message="m",
              direction=SyncDir.SEND)
        _, _, removed = pass_merge_labels(g)
        assert removed == 0


class TestUnbalancedJoins:
    def test_removes_join_dominated_by_one_pred(self):
        """Figure 8 (b): join(a, b) with a <= b and a an ancestor of b."""
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.DELAY, (r.eid,), delay=1)
        b = g.add(EventKind.DELAY, (a.eid,), delay=2)
        j = g.add(EventKind.JOIN_ALL, (a.eid, b.eid))
        tail = g.add(EventKind.DELAY, (j.eid,), delay=1)
        new, mapping, removed = pass_unbalanced_joins(g)
        assert removed == 1
        assert mapping[j.eid] == mapping[b.eid]

    def test_keeps_joins_of_incomparable_preds(self):
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.SYNC, (r.eid,), endpoint="e", message="a",
                  direction=SyncDir.RECV)
        b = g.add(EventKind.SYNC, (r.eid,), endpoint="e", message="b",
                  direction=SyncDir.RECV)
        g.add(EventKind.JOIN_ALL, (a.eid, b.eid))
        _, _, removed = pass_unbalanced_joins(g)
        assert removed == 0

    def test_requires_structural_dominance(self):
        """Timing-equality alone must not merge: a zero-slack sync is
        timing-equal to its sibling but carries a data dependency."""
        g = EventGraph()
        r = g.root()
        s = g.add(EventKind.SYNC, (r.eid,), endpoint="e", message="m",
                  direction=SyncDir.RECV, static_slack=0)
        j = g.add(EventKind.JOIN_ALL, (r.eid, s.eid))
        new, mapping, removed = pass_unbalanced_joins(g)
        if removed:
            # if merged, it must merge into the sync, never into the root
            assert mapping[j.eid] == mapping[s.eid]


class TestBranchJoins:
    def test_removes_empty_branch_join(self):
        """Figure 8 (d): a join of two empty branches folds into parent."""
        g = EventGraph()
        r = g.root()
        bt = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=True)
        bf = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=False)
        j = g.add(EventKind.JOIN_ANY, (bt.eid, bf.eid))
        tail = g.add(EventKind.DELAY, (j.eid,), delay=1)
        new, mapping, removed = pass_remove_branch_joins(g)
        assert removed == 3  # join + both branch events
        assert mapping[j.eid] == mapping[r.eid]

    def test_keeps_join_with_actions_in_branches(self):
        from repro.core.events import RegWriteAction
        from repro.codegen.rexpr import RLit
        g = EventGraph()
        r = g.root()
        bt = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=True)
        bf = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=False)
        bt.actions.append(RegWriteAction("r", RLit(1, 1)))
        g.add(EventKind.JOIN_ANY, (bt.eid, bf.eid))
        _, _, removed = pass_remove_branch_joins(g)
        assert removed == 0

    def test_shift_branch_joins(self):
        """Figure 8 (c): identical action-free #N tails shift past join."""
        g = EventGraph()
        r = g.root()
        bt = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=True)
        bf = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=False)
        dt = g.add(EventKind.DELAY, (bt.eid,), delay=2)
        df = g.add(EventKind.DELAY, (bf.eid,), delay=2)
        j = g.add(EventKind.JOIN_ANY, (dt.eid, df.eid))
        new, mapping, removed = pass_shift_branch_joins(g)
        assert removed == 1
        # one fewer event: two delays became one
        assert len(new) == len(g) - 1


class TestOptimizePipeline:
    def test_fixpoint_reduces_and_preserves_reachability(self):
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.DELAY, (r.eid,), delay=1)
        b = g.add(EventKind.DELAY, (r.eid,), delay=1)
        j = g.add(EventKind.JOIN_ALL, (a.eid, b.eid))
        tail = g.add(EventKind.DELAY, (j.eid,), delay=2)
        opt, mapping, stats = optimize(g)
        assert stats.total_removed >= 2  # duplicate delay + trivial join
        assert len(opt) < len(g)
        # the mapped tail still exists and is 3 cycles after the root
        o = TimingOracle(opt)
        t = mapping[tail.eid]
        case = ()
        assert o.ts(t, case).evaluate({}) == 3

    def test_identity_when_nothing_to_do(self):
        g = EventGraph()
        r = g.root()
        g.add(EventKind.DELAY, (r.eid,), delay=1)
        opt, mapping, stats = optimize(g)
        assert stats.total_removed == 0
        assert len(opt) == len(g)

    def test_actions_preserved_across_merge(self):
        from repro.core.events import RegWriteAction
        from repro.codegen.rexpr import RLit
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.DELAY, (r.eid,), delay=1)
        b = g.add(EventKind.DELAY, (r.eid,), delay=1)
        b.actions.append(RegWriteAction("x", RLit(1, 1)))
        opt, mapping, stats = optimize(g)
        total_actions = sum(len(e.actions) for e in opt.events)
        assert total_actions == 1
