"""The checkpoint layer: snapshot/restore bit-identity, the prefix
cache, cross-process resumption, and the error surface.

The correctness bar for everything here is *bit-identity*: a simulator
restored at cycle k and run to N must be indistinguishable -- waveform
samples, per-wire activity, totals, cycle count -- from one that ran
0..N without stopping.  That property is what makes warm-prefix re-runs
(the :class:`~repro.rtl.snapshot.CheckpointStore` consulted by
``Session.run``/``sweep`` and the job queue) safe to apply silently.
"""

import pickle

import pytest

from repro import Session, SimConfig, get_registry
from repro.errors import SimulationError
from repro.rtl import snapshot as snap_mod
from repro.rtl.batch import BatchSimulator
from repro.rtl.executors import JobSpec, get_executor
from repro.rtl.kernel import fast_path_ready
from repro.rtl.simulator import ENGINES
from repro.rtl.snapshot import (
    CheckpointStore,
    capture,
    load_checkpoint,
    prefix_key,
    reset_checkpoint_store,
    restore,
    run_with_checkpoints,
    save_checkpoint,
)

ALL_SCENARIOS = get_registry().names()


@pytest.fixture(autouse=True)
def _fresh_store():
    """The process-wide store is shared state; isolate every test."""
    reset_checkpoint_store()
    yield
    reset_checkpoint_store()


def _build(name, **config):
    return get_registry().build(name, SimConfig(**config))


def _state(sim):
    return (sim.cycle, sim.waveform.samples, sim.activity,
            sim.total_activity())


# ---------------------------------------------------------------------------
# bit-identity: every scenario, every engine
# ---------------------------------------------------------------------------
class TestRestoreBitIdentity:
    CYCLES = 60
    SPLIT = 30

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_restored_run_matches_from_zero(self, name, engine):
        reference = _build(name, engine=engine, cycles=self.CYCLES,
                           stim=200)
        reference.run(self.CYCLES)

        prefix = _build(name, engine=engine, cycles=self.CYCLES, stim=200)
        prefix.run(self.SPLIT)
        snap = prefix.snapshot()

        resumed = _build(name, engine=engine, cycles=self.CYCLES, stim=200)
        resumed.restore(snap)
        assert resumed.cycle == self.SPLIT
        resumed.run(self.CYCLES - self.SPLIT)
        assert _state(resumed) == _state(reference)

    @pytest.mark.parametrize("backend", ["interp", "pycompiled"])
    @pytest.mark.parametrize("name", ["anvil_streams", "anvil_aes"])
    def test_restored_run_matches_across_backends(self, name, backend):
        reference = _build(name, backend=backend, cycles=self.CYCLES,
                           stim=200)
        reference.run(self.CYCLES)
        prefix = _build(name, backend=backend, cycles=self.CYCLES,
                        stim=200)
        prefix.run(self.SPLIT)
        resumed = _build(name, backend=backend, cycles=self.CYCLES,
                         stim=200)
        resumed.restore(prefix.snapshot())
        resumed.run(self.CYCLES - self.SPLIT)
        assert _state(resumed) == _state(reference)

    @pytest.mark.parametrize("source,target", [("kernel", "brute"),
                                               ("brute", "kernel"),
                                               ("levelized", "kernel")])
    def test_snapshots_are_engine_portable(self, source, target):
        reference = _build("streams", engine=target, cycles=self.CYCLES,
                           stim=200)
        reference.run(self.CYCLES)
        prefix = _build("streams", engine=source, cycles=self.CYCLES,
                        stim=200)
        prefix.run(self.SPLIT)
        resumed = _build("streams", engine=target, cycles=self.CYCLES,
                         stim=200)
        resumed.restore(prefix.snapshot())
        resumed.run(self.CYCLES - self.SPLIT)
        assert _state(resumed) == _state(reference)

    def test_in_place_restore_rewinds_a_live_simulator(self):
        sim = _build("memory", cycles=100, stim=200)
        sim.run(40)
        snap = sim.snapshot()
        sim.run(60)
        reference = _state(sim)
        restore(sim, snap)
        assert sim.cycle == 40
        sim.run(60)
        assert _state(sim) == reference

    def test_restore_leaves_the_kernel_fast_path_armed(self):
        sim = _build("streams", engine="kernel", cycles=100, stim=200)
        sim.run(50)
        resumed = _build("streams", engine="kernel", cycles=100, stim=200)
        resumed.restore(sim.snapshot())
        assert fast_path_ready(resumed)

    def test_restore_then_poke_diverges_only_after_the_fork(self):
        reference = _build("streams", cycles=120, stim=300)
        reference.run(120)
        prefix = _build("streams", cycles=120, stim=300)
        prefix.run(60)
        forked = _build("streams", cycles=120, stim=300)
        forked.restore(prefix.snapshot())
        source = next(m for m in forked.modules if m.name == "st_src")
        source.queue = [word ^ 0xFF for word in source.queue]
        forked.run(60)

        ref_samples = reference.waveform.samples
        fork_samples = forked.waveform.samples
        assert fork_samples != ref_samples
        for label in ref_samples:
            assert (fork_samples[label][:60] == ref_samples[label][:60]), (
                f"{label}: prefix diverged before the fork cycle"
            )


# ---------------------------------------------------------------------------
# snapshots travel: pickling, disk files, the process pool
# ---------------------------------------------------------------------------
class TestSnapshotTransport:
    def test_snapshot_pickle_round_trip(self):
        sim = _build("anvil_mmu", cycles=80, stim=200)
        sim.run(40)
        snap = pickle.loads(pickle.dumps(sim.snapshot()))
        resumed = _build("anvil_mmu", cycles=80, stim=200)
        resumed.restore(snap)
        resumed.run(40)
        reference = _build("anvil_mmu", cycles=80, stim=200)
        reference.run(80)
        assert _state(resumed) == _state(reference)

    def test_save_and_load_checkpoint_files(self, tmp_path):
        sim = _build("streams", cycles=50, stim=200)
        sim.run(25)
        path = tmp_path / "nested" / "streams.ckpt"
        save_checkpoint(path, sim.snapshot())
        loaded = load_checkpoint(path)
        assert loaded.cycle == 25
        resumed = _build("streams", cycles=50, stim=200)
        resumed.restore(loaded)
        resumed.run(25)
        sim.run(25)
        assert _state(resumed) == _state(sim)

    def test_load_checkpoint_rejects_foreign_pickles(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"not": "a snapshot"}))
        with pytest.raises(SimulationError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_process_pool_worker_resumes_a_shipped_snapshot(self):
        cfg = SimConfig(cycles=90, stim=200)
        prefix = get_registry().build("streams", cfg)
        prefix.run(30)
        spec = JobSpec(
            kind="run_scenario", name="resumed", scenario="streams",
            config=cfg, cycles=90,
            params=(("resume_from", capture(prefix, scenario="streams")),),
        )
        results = get_executor("process", 1).run([spec])
        run = results["resumed"]
        assert run.resumed_from == 30
        assert run.cycles == 90
        reference = get_registry().build("streams", cfg)
        reference.run(90)
        assert run.activity == reference.activity
        assert run.samples == reference.waveform.samples

    def test_advanced_batch_resumes_on_the_process_executor(self):
        cfg = SimConfig(cycles=200, stim=500)
        batch = BatchSimulator()
        for name in ("streams", "memory"):
            batch.add_scenario(name, cfg)
        batch.run(120)      # local, so the sims hold cycle-120 state
        # ships cycle-120 snapshots to the pool; workers rebuild,
        # restore, and simulate only the 80-cycle tail
        batch.run(80, executor="process", parallel=2)
        for name in ("streams", "memory"):
            reference = get_registry().build(name, cfg)
            reference.run(200)
            assert batch[name].cycle == 200
            assert batch[name].activity == reference.activity
            samples = batch[name].waveform.samples
            assert samples == reference.waveform.samples, name

    def test_batch_snapshot_restore_round_trip(self):
        cfg = SimConfig(cycles=100, stim=300)
        batch = BatchSimulator()
        batch.add_scenario("streams", cfg)
        batch.add_scenario("memory", cfg)
        batch.run(50)
        snaps = batch.snapshot()
        fresh = BatchSimulator()
        fresh.add_scenario("streams", cfg)
        fresh.add_scenario("memory", cfg)
        fresh.restore(snaps)
        fresh.run(50)
        batch.run(50)
        for name in ("streams", "memory"):
            assert _state(fresh[name]) == _state(batch[name])


# ---------------------------------------------------------------------------
# the prefix cache: hit/miss accounting, LRU, disk spill
# ---------------------------------------------------------------------------
class TestCheckpointStore:
    def _snap_at(self, cycle):
        sim = _build("streams", cycles=cycle or 1, stim=200)
        if cycle:
            sim.run(cycle)
        return capture(sim)

    def test_misses_equal_unique_prefixes(self):
        store = CheckpointStore()
        cfg = SimConfig(cycles=50, stim=200)
        keys = [prefix_key(name, cfg, get_registry().build(name, cfg))
                for name in ("streams", "memory", "aes")]
        for key in keys:
            assert store.best(key, 1000) is None       # one miss each
        snap = self._snap_at(20)
        for key in keys:
            store.put(key, 20, snap)
            assert store.best(key, 1000) is not None   # hits from now on
        stats = store.stats()
        assert stats["misses"] == len(set(keys)) == 3
        assert stats["hits"] == 3
        assert stats["stores"] == 3

    def test_best_returns_deepest_at_or_below_the_limit(self):
        store = CheckpointStore()
        for cycle in (20, 40, 60):
            store.put("k", cycle, self._snap_at(cycle))
        cycle, snap = store.best("k", 55)
        assert cycle == snap.cycle == 40
        cycle, _snap = store.best("k", 60)
        assert cycle == 60
        assert store.best("k", 19) is None
        assert store.cycles("k") == [20, 40, 60]

    def test_put_dedups_existing_slots(self):
        store = CheckpointStore()
        snap = self._snap_at(20)
        assert store.put("k", 20, snap) is True
        assert store.put("k", 20, snap) is False
        assert store.stats()["stores"] == 1

    def test_lru_eviction_spills_to_disk_and_reloads(self, tmp_path):
        store = CheckpointStore(capacity=2, disk_dir=str(tmp_path))
        snaps = {c: self._snap_at(c) for c in (10, 20, 30)}
        for cycle, snap in snaps.items():
            store.put(f"key-{cycle}", cycle, snap)
        stats = store.stats()
        assert stats["evictions"] == 1 and stats["spills"] == 1
        assert stats["entries"] == 2 and stats["disk_entries"] == 1
        # the evicted (oldest) entry comes back from its spill file
        reloaded = store.best("key-10", 100)
        assert reloaded is not None
        cycle, snap = reloaded
        assert cycle == snap.cycle == 10
        assert store.stats()["disk_hits"] == 1

    def test_lru_eviction_without_disk_drops_the_oldest(self):
        store = CheckpointStore(capacity=2)
        for cycle in (10, 20, 30):
            store.put(f"key-{cycle}", cycle, self._snap_at(cycle))
        assert store.best("key-10", 100) is None
        assert store.best("key-30", 100) is not None

    def test_prefix_keys_separate_seed_stim_and_scenario(self):
        def key(name, **kw):
            kw.setdefault("stim", 200)
            cfg = SimConfig(cycles=50, **kw)
            return prefix_key(name, cfg, get_registry().build(name, cfg))

        base = key("streams")
        assert key("streams") == base                  # deterministic
        assert key("streams", seed=1) != base
        assert key("streams", stim=400) != base
        assert key("memory") != base


# ---------------------------------------------------------------------------
# warm prefixes through the public surface
# ---------------------------------------------------------------------------
class TestWarmPrefix:
    def test_extended_rerun_simulates_only_the_tail(self):
        session = Session(SimConfig(stim=800, checkpoint_every=25))
        first = session.run("streams", cycles=100)
        assert first.diagnostics["simulated_cycles"] == 100
        assert first.diagnostics["checkpoints_stored"] == 4

        extended = session.run("streams", cycles=400)
        assert extended.diagnostics["resumed_from"] == 100
        assert extended.diagnostics["simulated_cycles"] == 300

        cold = Session(SimConfig(stim=800)).run("streams", cycles=400)
        assert extended.activity == cold.activity
        assert extended.waveform.samples == cold.waveform.samples
        assert extended.total_activity == cold.total_activity

    def test_run_with_checkpoints_stores_every_boundary(self):
        sim = _build("streams", cycles=100, stim=300)
        store = CheckpointStore()
        stored = run_with_checkpoints(sim, 100, 30, store=store, key="k")
        assert stored == 4                      # cycles 30, 60, 90, 100
        assert store.cycles("k") == [30, 60, 90, 100]
        assert sim.cycle == 100

    def test_checkpoint_callback_sees_every_boundary(self):
        sim = _build("streams", cycles=60, stim=200)
        seen = []
        run_with_checkpoints(sim, 60, 25,
                             on_checkpoint=lambda c, s: seen.append(c))
        assert seen == [25, 50, 60]


# ---------------------------------------------------------------------------
# the error surface
# ---------------------------------------------------------------------------
class TestSnapshotErrors:
    def test_restore_rejects_a_different_topology(self):
        donor = _build("streams", cycles=50, stim=200)
        donor.run(10)
        other = _build("memory", cycles=50, stim=200)
        with pytest.raises(SimulationError, match="structure"):
            other.restore(donor.snapshot())

    def test_capture_rejects_detached_simulators(self):
        sim = _build("streams", cycles=50, stim=200)
        sim.adopt_remote(50, {}, {})
        with pytest.raises(SimulationError, match="adopted a remote run"):
            capture(sim)

    def test_restore_rejects_unknown_versions(self):
        sim = _build("streams", cycles=50, stim=200)
        sim.run(10)
        snap = sim.snapshot()
        object.__setattr__(snap, "version", snap_mod.SNAPSHOT_VERSION + 1)
        fresh = _build("streams", cycles=50, stim=200)
        with pytest.raises(SimulationError, match="version"):
            fresh.restore(snap)

    def test_stale_adoption_still_raises_without_a_resume(self):
        sim = _build("streams", cycles=50, stim=200)
        sim.run(10)
        with pytest.raises(SimulationError, match="resumed from cycle 0"):
            sim.adopt_remote(50, {}, {}, resumed_from=0)
