"""AXI-Lite routers: routing correctness, fair arbitration, equivalence."""


from repro import Simulator, System, build_simulation, check_process
from repro.anvil_designs.axi import axi_demux, axi_mux
from repro.designs.axi import (
    ADDR_W,
    AxiLiteDemux,
    AxiMasterDriver,
    AxiPorts,
    RegFileSlave,
)


class PortsView:
    """Adapt an exposed channel's message-port dict to AxiPorts shape."""

    def __init__(self, ports):
        self.aw = ports["aw"]
        self.w = ports["w"]
        self.b = ports["b"]
        self.ar = ports["ar"]
        self.r = ports["r"]

    def all(self):
        return (self.aw, self.w, self.b, self.ar, self.r)

    def wires(self):
        for p in self.all():
            yield from p.wires()


def slave_region(i: int, n: int = 4) -> int:
    sel_bits = max((n - 1).bit_length(), 1)
    return i << (ADDR_W - sel_bits)


class TestAnvilDemux:
    def build(self, n=4):
        sys_ = System()
        inst = sys_.add(axi_demux(n))
        mch = sys_.expose(inst, "m")
        schs = [sys_.expose(inst, f"s{i}") for i in range(n)]
        ss = build_simulation(sys_)
        # replace generic externals with a real master driver and slaves
        master_ext = ss.externals[mch.cid]
        ss.sim.modules.remove(master_ext)
        master = AxiMasterDriver("master", PortsView(master_ext.ports))
        ss.sim.add(master)
        slaves = []
        for i, sch in enumerate(schs):
            ext = ss.externals[sch.cid]
            ss.sim.modules.remove(ext)
            slave = RegFileSlave(f"slave{i}", PortsView(ext.ports))
            ss.sim.add(slave)
            slaves.append(slave)
        return ss, master, slaves

    def test_typechecks(self):
        assert check_process(axi_demux()).ok

    def test_writes_route_by_address(self):
        ss, master, slaves = self.build()
        for i in range(4):
            master.write(slave_region(i) + i, 0x100 + i)
        ss.sim.run_until(lambda: master.done, 400)
        for i, s in enumerate(slaves):
            assert s.mem.get((slave_region(i) + i) % s.words) == 0x100 + i
            others = [v for k, v in s.mem.items() if v != 0x100 + i]
            assert not others  # nothing leaked to the wrong slave

    def test_read_after_write_roundtrip(self):
        ss, master, slaves = self.build()
        master.write(slave_region(2) + 5, 0xBEE)
        master.read(slave_region(2) + 5)
        master.read(slave_region(1) + 5)   # untouched slave reads 0
        ss.sim.run_until(lambda: master.done, 400)
        values = [v for _, kind, v in master.responses if kind == "r"]
        assert values == [0xBEE, 0]

    def test_matches_baseline_latency(self):
        """Same transaction sequence completes at the same cycles."""
        ss, master, _ = self.build()
        master.write(slave_region(0) + 1, 7)
        master.read(slave_region(0) + 1)
        ss.sim.run_until(lambda: master.done, 400)
        anvil_cycles = [c for c, _, _ in master.responses]

        sim = Simulator()
        mp = AxiPorts("m")
        sps = [AxiPorts(f"s{i}") for i in range(4)]
        demux = AxiLiteDemux("demux", mp, sps)
        drv = AxiMasterDriver("drv", mp)
        sim.add(drv)
        sim.add(demux)
        for i, sp in enumerate(sps):
            sim.add(RegFileSlave(f"sl{i}", sp))
        drv.write(slave_region(0) + 1, 7)
        drv.read(slave_region(0) + 1)
        sim.run_until(lambda: drv.done, 400)
        base_cycles = [c for c, _, _ in drv.responses]
        assert anvil_cycles == base_cycles  # zero latency overhead


class TestAnvilMux:
    def build(self, n=4):
        sys_ = System()
        inst = sys_.add(axi_mux(n))
        mchs = [sys_.expose(inst, f"m{i}") for i in range(n)]
        sch = sys_.expose(inst, "s")
        ss = build_simulation(sys_)
        masters = []
        for i, mch in enumerate(mchs):
            ext = ss.externals[mch.cid]
            ss.sim.modules.remove(ext)
            m = AxiMasterDriver(f"m{i}", PortsView(ext.ports))
            ss.sim.add(m)
            masters.append(m)
        ext = ss.externals[sch.cid]
        ss.sim.modules.remove(ext)
        slave = RegFileSlave("slave", PortsView(ext.ports))
        ss.sim.add(slave)
        return ss, masters, slave

    def test_typechecks(self):
        assert check_process(axi_mux()).ok

    def test_single_master_roundtrip(self):
        ss, masters, slave = self.build()
        masters[0].write(3, 0x77)
        masters[0].read(3)
        ss.sim.run_until(lambda: masters[0].done, 400)
        values = [v for _, kind, v in masters[0].responses if kind == "r"]
        assert values == [0x77]

    def test_all_masters_served(self):
        ss, masters, slave = self.build()
        for i, m in enumerate(masters):
            m.write(8 + i, 0x20 + i)
        ss.sim.run_until(lambda: all(m.done for m in masters), 800)
        for i in range(4):
            assert slave.mem.get(8 + i) == 0x20 + i

    def test_fair_round_robin_under_contention(self):
        """With every master continuously requesting, grants rotate."""
        ss, masters, slave = self.build()
        for i, m in enumerate(masters):
            for k in range(3):
                m.write(i * 16 + k, k)
        ss.sim.run_until(lambda: all(m.done for m in masters), 2000)
        # each master finished all 3 writes
        for m in masters:
            assert len(m.responses) == 3
        # no starvation: masters complete interleaved, not in blocks
        order = []
        events = []
        for i, m in enumerate(masters):
            for c, _, _ in m.responses:
                events.append((c, i))
        order = [i for _, i in sorted(events)]
        first_round = order[:4]
        assert sorted(first_round) == [0, 1, 2, 3]
