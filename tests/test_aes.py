"""AES cipher core: FIPS-197 vectors, roundtrips, dynamic latency."""

import random

import pytest

from repro import Simulator, System, build_simulation
from repro.anvil_designs.aes import aes_core
from repro.codegen.simfsm import MessagePort
from repro.designs.aes import (
    AesCore,
    OP_DECRYPT,
    OP_ENCRYPT,
    REQ_WIDTH,
    aes_decrypt,
    aes_encrypt,
    aes_pack,
    expand_key,
)
from repro.rtl.testing import PortSink, PortSource

K128 = 0x000102030405060708090A0B0C0D0E0F
K256 = 0x000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F
PT = 0x00112233445566778899AABBCCDDEEFF
CT128 = 0x69C4E0D86A7B0430D8CDB78070B4C55A
CT256 = 0x8EA2B7CA516745BFEAFC49904B496089


class TestReference:
    def test_fips_197_encrypt(self):
        assert aes_encrypt(PT, K128, 128) == CT128
        assert aes_encrypt(PT, K256, 256) == CT256

    def test_fips_197_decrypt(self):
        assert aes_decrypt(CT128, K128, 128) == PT
        assert aes_decrypt(CT256, K256, 256) == PT

    def test_random_roundtrips(self):
        rng = random.Random(11)
        for keylen in (128, 256):
            for _ in range(5):
                block = rng.getrandbits(128)
                key = rng.getrandbits(keylen)
                ct = aes_encrypt(block, key, keylen)
                assert aes_decrypt(ct, key, keylen) == block

    def test_expand_key_counts(self):
        assert len(expand_key(K128, 128)) == 11
        assert len(expand_key(K256, 256)) == 15


def run_baseline(requests, cycles=400):
    sim = Simulator()
    req = MessagePort("req", REQ_WIDTH)
    res = MessagePort("res", 128)
    core = AesCore("aes", req, res)
    src = PortSource("src", req)
    sink = PortSink("sink", res)
    src.push(*requests)
    for m in (src, core, sink):
        sim.add(m)
    sim.run(cycles)
    return [v for _, v in sink.received], core


_ANVIL_CACHE = {}


def run_anvil(requests, cycles=400):
    sys_ = System()
    inst = sys_.add(aes_core())
    ch = sys_.expose(inst, "host")
    ss = build_simulation(sys_)
    ip = ss.external(ch).ports["req"]
    op = ss.external(ch).ports["res"]
    ss.sim.modules = [m for m in ss.sim.modules
                      if m not in ss.externals.values()]
    src = PortSource("src", ip)
    sink = PortSink("sink", op)
    src.push(*requests)
    ss.sim.add(src)
    ss.sim.add(sink)
    ss.sim.run(cycles)
    return sink.received, src


class TestBaselineCore:
    def test_encrypt_both_key_sizes(self):
        got, _ = run_baseline([
            aes_pack(OP_ENCRYPT, PT, K128, 128),
            aes_pack(OP_ENCRYPT, PT, K256, 256),
        ])
        assert got == [CT128, CT256]

    def test_decrypt(self):
        got, _ = run_baseline([
            aes_pack(OP_DECRYPT, CT128, K128, 128),
            aes_pack(OP_DECRYPT, CT256, K256, 256),
        ])
        assert got == [PT, PT]

    def test_latency_proportional_to_rounds(self):
        _, core = run_baseline([
            aes_pack(OP_ENCRYPT, PT, K128, 128),
            aes_pack(OP_ENCRYPT, PT, K256, 256),
            aes_pack(OP_DECRYPT, CT128, K128, 128),
        ])
        kinds = dict((k, v) for k, v in core.latencies)
        assert kinds["enc256"] - kinds["enc128"] == 4   # 14 vs 10 rounds
        assert kinds["dec128"] > kinds["enc128"]        # key pass first


@pytest.mark.slow
class TestAnvilCore:
    def test_fips_vectors_and_roundtrip(self):
        got, _ = run_anvil([
            aes_pack(OP_ENCRYPT, PT, K128, 128),
            aes_pack(OP_ENCRYPT, PT, K256, 256),
            aes_pack(OP_DECRYPT, CT128, K128, 128),
            aes_pack(OP_DECRYPT, CT256, K256, 256),
        ], cycles=200)
        assert [v for _, v in got] == [CT128, CT256, PT, PT]

    def test_zero_latency_overhead_vs_baseline(self):
        reqs = [
            aes_pack(OP_ENCRYPT, PT, K128, 128),
            aes_pack(OP_DECRYPT, CT256, K256, 256),
        ]
        base_vals, core = run_baseline(reqs)
        anv, src = run_anvil(reqs, cycles=200)
        assert [v for _, v in anv] == base_vals
        # per-request completion cycles match exactly
        base_lat = [lat for _, lat in core.latencies]
        starts = [c for c, _ in src.sent]
        anv_lat = [r[0] - s + 1 for r, s in zip(anv, starts)]
        assert anv_lat == base_lat
