"""Tests for the event graph and the ``<=G`` timing oracle."""

import pytest

from repro.core.events import EventGraph, EventKind, SyncDir
from repro.core.oracle import TimingOracle
from repro.core.patterns import Duration, EndSet


def linear_graph():
    """root -> #2 -> sync -> #1"""
    g = EventGraph("linear")
    r = g.root()
    d2 = g.add(EventKind.DELAY, (r.eid,), delay=2)
    sync = g.add(EventKind.SYNC, (d2.eid,), endpoint="ep", message="m",
                 direction=SyncDir.RECV)
    d1 = g.add(EventKind.DELAY, (sync.eid,), delay=1)
    return g, r, d2, sync, d1


class TestEventGraph:
    def test_topological_construction_enforced(self):
        g = EventGraph()
        with pytest.raises(ValueError):
            g.add(EventKind.DELAY, (3,), delay=1)

    def test_ancestors(self):
        g, r, d2, sync, d1 = linear_graph()
        assert g.ancestors(d1.eid) == {r.eid, d2.eid, sync.eid}
        assert g.is_ancestor(r.eid, d1.eid)
        assert not g.is_ancestor(d1.eid, r.eid)

    def test_sync_events_index(self):
        g, r, d2, sync, d1 = linear_graph()
        assert g.sync_events("ep", "m") == [sync]
        assert g.sync_events("ep", "other") == []

    def test_conditions_of_includes_join_preds(self):
        g = EventGraph()
        r = g.root()
        bt = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=True)
        bf = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=False)
        j = g.add(EventKind.JOIN_ANY, (bt.eid, bf.eid))
        tail = g.add(EventKind.DELAY, (j.eid,), delay=1)
        assert g.conditions_of([tail.eid]) == [0]

    def test_dot_rendering(self):
        g, *_ = linear_graph()
        dot = g.to_dot()
        assert "digraph" in dot and "e0 -> e1" in dot

    def test_stats(self):
        g, *_ = linear_graph()
        s = g.stats()
        assert s["total"] == 4 and s["delay"] == 2 and s["sync"] == 1


class TestOracleStatic:
    def test_fixed_delays_ordered(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        assert o.event_le(r.eid, d2.eid)
        assert o.event_lt(r.eid, d2.eid)
        assert not o.event_le(d2.eid, r.eid)

    def test_sync_slack_is_unbounded(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        # the sync may take arbitrarily long: no bound above it
        assert o.event_le(d2.eid, sync.eid)
        assert not o.event_le(sync.eid, d2.eid)
        # ... and anything after it stays after
        assert o.event_lt(sync.eid, d1.eid)

    def test_parallel_paths_incomparable(self):
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.SYNC, (r.eid,), endpoint="x", message="a",
                  direction=SyncDir.RECV)
        b = g.add(EventKind.SYNC, (r.eid,), endpoint="x", message="b",
                  direction=SyncDir.RECV)
        o = TimingOracle(g)
        assert not o.event_le(a.eid, b.eid)
        assert not o.event_le(b.eid, a.eid)

    def test_join_all_is_upper_bound(self):
        g = EventGraph()
        r = g.root()
        a = g.add(EventKind.SYNC, (r.eid,), endpoint="x", message="a",
                  direction=SyncDir.RECV)
        b = g.add(EventKind.DELAY, (r.eid,), delay=3)
        j = g.add(EventKind.JOIN_ALL, (a.eid, b.eid))
        o = TimingOracle(g)
        assert o.event_le(a.eid, j.eid)
        assert o.event_le(b.eid, j.eid)

    def test_same_message_syncs_serialized(self):
        """A later sync of the same message never completes earlier."""
        g = EventGraph()
        r = g.root()
        s1 = g.add(EventKind.SYNC, (r.eid,), endpoint="x", message="m",
                   direction=SyncDir.RECV)
        d = g.add(EventKind.DELAY, (r.eid,), delay=1)
        s2 = g.add(EventKind.SYNC, (d.eid,), endpoint="x", message="m",
                   direction=SyncDir.RECV)
        o = TimingOracle(g)
        assert o.event_le(s1.eid, s2.eid)


class TestOracleBranches:
    def make_branchy(self):
        g = EventGraph()
        r = g.root()
        bt = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=True)
        bf = g.add(EventKind.BRANCH, (r.eid,), cond_id=0, polarity=False)
        dt = g.add(EventKind.DELAY, (bt.eid,), delay=1)
        df = g.add(EventKind.DELAY, (bf.eid,), delay=3)
        j = g.add(EventKind.JOIN_ANY, (dt.eid, df.eid))
        return g, r, dt, df, j

    def test_join_after_either_branch(self):
        g, r, dt, df, j = self.make_branchy()
        o = TimingOracle(g)
        assert o.event_le(r.eid, j.eid)
        assert o.event_lt(r.eid, j.eid)

    def test_branch_events_vacuously_ordered(self):
        g, r, dt, df, j = self.make_branchy()
        o = TimingOracle(g)
        # dt and df never co-occur: each comparison is vacuous in the case
        # where the left side is unreachable
        assert o.event_le(dt.eid, j.eid)
        assert o.event_le(df.eid, j.eid)

    def test_join_not_bounded_by_short_unconditional_delay(self):
        g, r, dt, df, j = self.make_branchy()
        d1 = g.add(EventKind.DELAY, (r.eid,), delay=1)
        o = TimingOracle(g)
        # the join can be 3 cycles after root (else-branch), so j <= root+1
        # fails, while root+1 <= j holds in both branch cases
        assert not o.event_le(j.eid, d1.eid)
        assert o.event_le(d1.eid, j.eid)

    def test_unreached_side_is_infinite(self):
        """Per Definition C.9 an unreached event has timestamp infinity, so
        any event compares <= to an event of the opposite branch."""
        g, r, dt, df, j = self.make_branchy()
        o = TimingOracle(g)
        assert o.event_le(j.eid, dt.eid)  # vacuous/infinite in else-case


class TestOraclePatterns:
    def test_static_pattern_end(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        end = EndSet.single(r.eid, Duration.static(2))
        # [r, r+2) ends exactly when d2 occurs
        assert o.end_le_event(end, d2.eid)
        assert o.event_le_end(r.eid, end, shift=2)

    def test_dynamic_pattern_resolves_to_next_sync(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        end = EndSet.single(r.eid, Duration.dynamic("ep", "m"))
        # the first ep.m after root is `sync`; d1 is one cycle later
        assert o.end_le_event(end, d1.eid)
        assert not o.end_le_event(end, r.eid)

    def test_dynamic_pattern_without_candidates_is_infinite(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        end = EndSet.single(d1.eid, Duration.dynamic("ep", "m"))
        # no ep.m occurs after d1: the lifetime never ends
        assert not o.end_le_event(end, d1.eid)
        assert o.event_le_end(d1.eid, end, shift=100)

    def test_eternal_endset(self):
        g, r, *_ = linear_graph()
        o = TimingOracle(g)
        assert o.event_le_end(r.eid, EndSet.eternal(), shift=10**6)
        assert not o.end_le_event(EndSet.eternal(), r.eid)

    def test_end_le_end_static(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        req = EndSet.single(r.eid, Duration.static(1))
        ava = EndSet.single(r.eid, Duration.static(2))
        assert o.end_le_end(req, ava)
        assert not o.end_le_end(ava, req)

    def test_lifetime_within(self):
        g, r, d2, sync, d1 = linear_graph()
        o = TimingOracle(g)
        inner = EndSet.single(d2.eid, Duration.static(1))
        outer = EndSet.single(d2.eid, Duration.static(4))
        assert o.lifetime_within(d2.eid, inner, r.eid, outer)
        assert not o.lifetime_within(r.eid, outer, d2.eid, inner)
