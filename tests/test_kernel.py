"""The compiled cycle-kernel engine (``engine="kernel"``): bit-identical
observables against the brute and levelized references across every
registry scenario, backend and executor; explicit coverage of the
bail-out paths (monitors, mid-run ``add``, ``run_until``, detached and
unhinted simulators); the compile cache; and this PR's satellite fixes
(waveform render/watch, order-sensitive topology fingerprint)."""

import pytest

from repro import (
    Module,
    Session,
    SimConfig,
    SimulationError,
    Simulator,
    get_registry,
)
from repro.rtl import kernel
from repro.rtl.simulator import ENGINES
from repro.rtl.testing import PortSink, PortSource, make_port
from repro.rtl.waveform import Waveform

ALL_SCENARIOS = get_registry().names()


def _build(name, **config):
    return get_registry().build(name, SimConfig(**config))


def _state(sim):
    return (sim.cycle, sim.waveform.samples, sim.activity,
            sim.total_activity())


def _run_state(name, cycles=80, **config):
    sim = _build(name, **config)
    sim.run(cycles)
    return _state(sim)


# ---------------------------------------------------------------------------
# equivalence: every scenario, every engine, both backends, all executors
# ---------------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_all_scenarios_pin_kernel_to_both_references(self, name):
        states = {
            engine: _run_state(name, seed=3, stim=160, engine=engine)
            for engine in ENGINES
        }
        assert states["kernel"] == states["levelized"] == states["brute"]

    @pytest.mark.parametrize("name", ["anvil_aes", "anvil_mmu",
                                      "anvil_streams", "anvil_sweep"])
    def test_pycompiled_backend_equivalent_under_kernel(self, name):
        ker = _run_state(name, seed=5, stim=200, engine="kernel",
                         backend="pycompiled")
        lev = _run_state(name, seed=5, stim=200, engine="levelized",
                         backend="pycompiled")
        interp = _run_state(name, seed=5, stim=200, engine="kernel",
                            backend="interp")
        assert ker == lev == interp

    def test_kernel_engages_on_the_bundled_scenarios(self):
        # the floor in tools/check_bench.py is only meaningful if the
        # fast path actually runs on these workloads
        sim = _build("sweep", seed=1, stim=120, engine="kernel")
        sim.run(30)
        assert sim._kernel is not None
        assert "_KERNEL" in sim._kernel.source

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_bit_identical_under_kernel(self, executor):
        names = ["streams", "anvil_mmu"]
        reference = Session(SimConfig(
            seed=2, stim=120, engine="levelized", executor="serial",
        )).sweep(names, cycles=50)
        swept = Session(SimConfig(
            seed=2, stim=120, engine="kernel", executor=executor, jobs=2,
        )).sweep(names, cycles=50)
        for name in names:
            assert swept[name].activity == reference[name].activity
            assert (swept[name].waveform.samples
                    == reference[name].waveform.samples)

    def test_interleaved_kernel_and_interpreted_cycles(self):
        # run() batches through the kernel, step() stays interpreted;
        # mixing them must land on the same observables as either alone
        mixed = _build("memory", seed=4, stim=160, engine="kernel")
        mixed.run(20)
        for _ in range(7):
            mixed.step()
        mixed.run(23)
        assert _state(mixed) == _run_state("memory", cycles=50, seed=4,
                                           stim=160, engine="levelized")


# ---------------------------------------------------------------------------
# bail-out paths
# ---------------------------------------------------------------------------
class _Hinted(Module):
    """out = src + 1 combinationally, with exact hints."""

    def __init__(self, name, src_wire, width=8):
        super().__init__(name)
        self.out = self.wire("out", width)
        self.src = self.adopt(src_wire)

    def comb_inputs(self):
        return (self.src,)

    def comb_outputs(self):
        return (self.out,)

    def eval_comb(self):
        self.out.set(self.src.value + 1)

    def tick(self):
        pass


class TestBailouts:
    def test_monitors_fall_back_to_interpreted_cycles(self):
        seen = []
        sim = _build("mmu", seed=1, stim=120, engine="kernel")
        sim.on_cycle(seen.append)
        sim.run(40)
        # the monitor observed every cycle, so the kernel never engaged
        assert seen == list(range(40))
        assert sim._kernel is None
        reference = _build("mmu", seed=1, stim=120, engine="levelized")
        reference.run(40)
        assert _state(sim) == _state(reference)

    def test_mid_run_add_rebuilds_and_reengages(self):
        sims = {}
        for engine in ("levelized", "kernel"):
            sim = Simulator(engine=engine)
            port = make_port("p", 8)
            src = PortSource("src", port)
            src.push(*range(60))
            sim.add(src)
            sim.run(5)                       # topology built without the sink
            sink = PortSink("sink", port)
            sim.add(sink)                    # invalidates mid-run
            sim.run(20)
            sims[engine] = (sim, sink)
        ker, ker_sink = sims["kernel"]
        lev, lev_sink = sims["levelized"]
        assert ker_sink.values() == lev_sink.values() == list(range(20))
        assert ker.activity == lev.activity
        # after the rebuild the kernel re-engaged on the new topology
        assert ker._kernel is not None

    def test_run_until_uses_the_interpreted_path(self):
        results = {}
        for engine in ("levelized", "kernel"):
            sim = _build("memory", seed=6, stim=120, engine=engine)
            elapsed = sim.run_until(lambda: sim.cycle >= 17, limit=100)
            results[engine] = (elapsed, _state(sim))
        assert results["kernel"] == results["levelized"]

    def test_detached_simulator_refuses_to_run(self):
        sim = Simulator("remote", engine="kernel")
        sim.adopt_remote(10, {("m", "w"): 3}, {"sig": [1] * 10})
        with pytest.raises(SimulationError, match="adopted a remote run"):
            sim.run(1)

    def test_unhinted_modules_fall_back_silently(self):
        from repro.designs.memory import RawMemory

        results = {}
        for engine in ("brute", "levelized", "kernel"):
            sim = Simulator(engine=engine)
            mem = sim.add(RawMemory("mem", latency=2))
            mem.inp.set(7)
            mem.req.set(1)
            sim.run(3)
            results[engine] = (mem.out.value, sim.activity)
        assert results["kernel"] == results["levelized"] \
            == results["brute"]

    def test_external_pokes_between_runs_absorbed(self):
        # test benches poke wires between run() calls; the kernel must
        # see them exactly as the interpreted engines do
        states = {}
        for engine in ("levelized", "kernel"):
            sim = Simulator(engine=engine)
            port = make_port("p", 8)
            sink = PortSink("sink", port)
            sim.add(sink)
            sim.run(4)
            port.data.set(0x5A)
            port.valid.set(1)
            sim.run(4)
            states[engine] = (_state(sim), sink.values())
        assert states["kernel"] == states["levelized"]

    def test_combinational_loop_diagnosed_inside_the_kernel(self):
        # two cross-coupled hinted inverters: a genuine SCC that
        # oscillates -- the compiled fixpoint loop must raise the same
        # diagnostic shape as the levelized engine
        class HintedInverter(Module):
            def __init__(self, name):
                super().__init__(name)
                self.out = self.wire("out", 1)
                self.src = None

            def connect(self, wire):
                self.src = self.adopt(wire)

            def comb_inputs(self):
                return (self.src,)

            def comb_outputs(self):
                return (self.out,)

            def eval_comb(self):
                self.out.set(~self.src.value)

            def tick(self):
                pass

        messages = {}
        for engine in ("levelized", "kernel"):
            sim = Simulator("ring", engine=engine)
            a, b, c = (HintedInverter(n) for n in "abc")
            a.connect(c.out)
            b.connect(a.out)
            c.connect(b.out)
            for m in (a, b, c):
                sim.add(m)
            with pytest.raises(SimulationError) as exc:
                sim.run(2)
            messages[engine] = str(exc.value)
        for msg in messages.values():
            assert "a.out" in msg and "b.out" in msg and "c.out" in msg
            assert "combinational loop" in msg

    def test_loop_error_mid_batch_names_the_failing_cycle(self):
        # a ring that only starts oscillating at cycle 5: the kernel's
        # diagnostic must name cycle 5 like the levelized engine, not
        # the cycle the batched run entered at
        class GatedInverter(Module):
            def __init__(self, name):
                super().__init__(name)
                self.out = self.wire("out", 1)
                self.src = None
                self.count = 0

            def connect(self, wire):
                self.src = self.adopt(wire)

            def comb_inputs(self):
                return (self.src,)

            def comb_outputs(self):
                return (self.out,)

            def eval_comb(self):
                if self.count >= 5:
                    self.out.set(~self.src.value)
                else:
                    self.out.set(0)

            def tick(self):
                self.count += 1

        messages = {}
        for engine in ("levelized", "kernel"):
            sim = Simulator("gated", engine=engine)
            a, b, c = (GatedInverter(n) for n in "abc")
            a.connect(c.out)
            b.connect(a.out)
            c.connect(b.out)
            for m in (a, b, c):
                sim.add(m)
            with pytest.raises(SimulationError) as exc:
                sim.run(20)
            messages[engine] = str(exc.value)
            assert sim.cycle == 5
        assert "at cycle 5" in messages["kernel"]
        assert "at cycle 5" in messages["levelized"]

    def test_kernel_reads_fresh_stimulus_after_interpreted_prefix(self):
        # first cycle is always interpreted (activity priming); make
        # sure the hand-off point is seamless for a hinted chain
        sims = {}
        for engine in ("levelized", "kernel"):
            sim = Simulator(engine=engine)
            port = make_port("q", 8)
            src = PortSource("src", port)
            src.push(*range(30))
            stage = _Hinted("inc", port.data)
            sink = PortSink("sink", port)
            sim.add(src)
            sim.add(stage)
            sim.add(sink)
            sim.watch(stage.out, "inc.out")
            sim.run(25)
            sims[engine] = sim
        assert _state(sims["kernel"]) == _state(sims["levelized"])


# ---------------------------------------------------------------------------
# the compile cache
# ---------------------------------------------------------------------------
class TestKernelCache:
    def test_same_topology_compiles_once(self):
        kernel.clear_cache()
        for _ in range(3):
            sim = _build("mmu", seed=1, stim=120, engine="kernel")
            sim.run(10)
        stats = kernel.cache_stats()
        assert (stats["hits"], stats["misses"], stats["entries"]) \
            == (2, 1, 1)
        # layout breakdown: all scalar, the batch side untouched
        assert stats["layouts"]["scalar"] == \
            {"hits": 2, "misses": 1, "entries": 1}
        assert stats["layouts"]["batch"] == \
            {"hits": 0, "misses": 0, "entries": 0}

    def test_distinct_topologies_get_distinct_kernels(self):
        kernel.clear_cache()
        a = _build("mmu", seed=1, stim=120, engine="kernel")
        b = _build("pipeline", seed=1, stim=120, engine="kernel")
        a.run(10)
        b.run(10)
        assert kernel.cache_stats()["entries"] == 2
        assert a._kernel.source != b._kernel.source

    def test_generated_source_is_deterministic(self):
        sims = [_build("streams", seed=s, stim=120, engine="kernel")
                for s in (0, 9)]
        for sim in sims:
            sim.run(10)
        # different stimulus, same topology shape: identical source
        assert sims[0]._kernel.source == sims[1]._kernel.source

    def test_watch_count_is_part_of_the_kernel_key(self):
        sim = _build("memory", seed=1, stim=160, engine="kernel")
        sim.run(10)
        first = sim._kernel
        extra = sim.modules[0]._wires[0]
        sim.watch(extra, "late.watch")
        sim.run(10)
        assert sim._kernel is not first
        # the late series was padded with zeros up to its watch point
        assert sim.waveform.series("late.watch")[:10] == [0] * 10
        assert len(sim.waveform.series("late.watch")) == 20


# ---------------------------------------------------------------------------
# satellite fixes riding along with this PR
# ---------------------------------------------------------------------------
class TestWaveformFixes:
    def test_render_before_any_sample_reports_no_samples(self):
        sim = Simulator()
        port = make_port("p", 4)
        sim.add(PortSink("sink", port))
        sim.watch(port.data, "data")
        assert sim.waveform.render() == "(no samples)"
        sim.run(2)
        assert "data" in sim.waveform.render()

    def test_render_without_watches_keeps_seed_message(self):
        assert Waveform().render() == "(no signals watched)"

    def test_duplicate_label_for_different_wires_raises(self):
        wf = Waveform()
        a, b = make_port("a", 4), make_port("b", 4)
        wf.watch(a.data, "sig")
        with pytest.raises(ValueError, match="already watching"):
            wf.watch(b.data, "sig")

    def test_same_wire_same_label_dedupes_to_one_series(self):
        sim = Simulator()
        port = make_port("p", 4)
        sim.add(PortSink("sink", port))
        sim.watch(port.data, "data")
        sim.watch(port.data, "data")      # idempotent, not double-sampled
        sim.run(5)
        assert len(sim.waveform.series("data")) == 5


class TestFingerprintOrder:
    def test_module_reorder_invalidates_the_topology(self):
        sim = Simulator()
        port = make_port("p", 8)
        sim.add(PortSource("src", port))
        sim.add(PortSink("sink", port))
        sim.settle()
        before = sim.scheduler._fingerprint()
        sim.modules.reverse()
        after = sim.scheduler._fingerprint()
        # the seed summed module ids, so any permutation collided
        assert before != after
        assert sim.scheduler._topo_key != after   # forces a rebuild
        sim.settle()
        assert sim.scheduler._topo_key == after


class TestConfigAndWarmup:
    def test_repro_engine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "kernel")
        assert SimConfig().engine == "kernel"
        # an explicit value beats the environment
        assert SimConfig(engine="brute").engine == "brute"
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            SimConfig()

    def test_warm_specs_select_kernel_engine_jobs(self):
        from repro.rtl.executors import JobSpec, _warm_specs

        spec = JobSpec(kind="run_scenario", name="mmu", scenario="mmu",
                       config=SimConfig(engine="kernel", stim=200))
        plain = JobSpec(kind="run_scenario", name="aes", scenario="aes",
                        config=SimConfig(engine="levelized", stim=200))
        warm = _warm_specs([spec, plain])
        assert [(s, c.engine) for s, c in warm] == [("mmu", "kernel")]
        assert warm[0][1].stim == 1
