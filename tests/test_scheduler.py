"""The levelized, dirty-set scheduler: loop diagnostics, equivalence
against the brute-force reference engine, incremental activity
accounting, cache invalidation, and the batch runner."""

import pytest

from repro import (
    BatchSimulator,
    Module,
    SimConfig,
    SimulationError,
    Simulator,
    get_registry,
    run_batch,
)
from repro.rtl.testing import PortSink, PortSource, make_port


def _build(name, **config):
    """Registry-backed scenario elaboration (the canonical code path)."""
    return get_registry().build(name, SimConfig(**config))


class Inverter(Module):
    """out = ~src combinationally; cross-couple two for a true loop."""

    def __init__(self, name, width=1):
        super().__init__(name)
        self.out = self.wire("out", width)
        self.src = None

    def connect(self, src_wire):
        self.src = src_wire
        self.adopt(src_wire)

    def eval_comb(self):
        if self.src is not None:
            self.out.set(~self.src.value)


class Follower(Module):
    """out = src combinationally (a stable feed-forward block)."""

    def __init__(self, name, src_wire, width=1):
        super().__init__(name)
        self.out = self.wire("out", width)
        self.src = self.adopt(src_wire)

    def eval_comb(self):
        self.out.set(self.src.value)


class TestCombinationalLoops:
    def test_inverter_ring_raises_with_wire_names(self):
        # an odd inverter ring is a true combinational loop: it
        # oscillates instead of settling
        sim = Simulator("looped")
        a, b, c = Inverter("a"), Inverter("b"), Inverter("c")
        a.connect(c.out)
        b.connect(a.out)
        c.connect(b.out)
        for m in (a, b, c):
            sim.add(m)
        with pytest.raises(SimulationError) as exc:
            sim.run(1)
        msg = str(exc.value)
        # the diagnostic names the unstable wires and the cycle's modules
        assert "a.out" in msg and "b.out" in msg and "c.out" in msg
        assert "combinational loop" in msg

    def test_brute_engine_also_rejects_the_loop(self):
        sim = Simulator("looped", engine="brute")
        a, b, c = Inverter("a"), Inverter("b"), Inverter("c")
        a.connect(c.out)
        b.connect(a.out)
        c.connect(b.out)
        for m in (a, b, c):
            sim.add(m)
        with pytest.raises(SimulationError):
            sim.run(1)

    def test_feed_forward_chain_settles_in_one_pass(self):
        sim = Simulator("chain")
        root = Inverter("root")       # free-running: out = ~out? no src
        stages = []
        prev = root.out
        sim.add(root)
        for i in range(5):
            f = Follower(f"f{i}", prev)
            sim.add(f)
            prev = f.out
        assert sim.settle() == 1
        assert prev.value == root.out.value


class TestEquivalenceWithBruteForce:
    """The levelized engine must be observationally identical to the
    seed's brute-force settle loop on the bundled designs."""

    @pytest.mark.parametrize("name", ["aes", "axi", "mmu"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_waveform_and_activity_equivalence(self, name,
                                                          seed):
        cycles = 400
        sims = {}
        for engine in ("brute", "levelized"):
            sim = _build(name, engine=engine, seed=seed, stim=500)
            sim.run(cycles)
            sims[engine] = sim
        brute, lev = sims["brute"], sims["levelized"]
        assert brute.waveform.samples == lev.waveform.samples
        assert brute.activity == lev.activity
        assert brute.total_activity() == lev.total_activity()

    @pytest.mark.parametrize("name", ["streams", "memory", "pipeline"])
    def test_remaining_families_equivalent(self, name):
        sims = {
            engine: _build(name, engine=engine, seed=2, stim=400)
            for engine in ("brute", "levelized")
        }
        for sim in sims.values():
            sim.run(300)
        assert (sims["brute"].waveform.samples
                == sims["levelized"].waveform.samples)
        assert sims["brute"].activity == sims["levelized"].activity

    def test_external_wire_pokes_seen_by_both_engines(self):
        """Test benches may write wires directly between steps; both
        engines must absorb and count those writes identically."""
        from repro.designs.memory import RawMemory

        results = {}
        for engine in ("brute", "levelized"):
            sim = Simulator(engine=engine)
            mem = sim.add(RawMemory("mem", latency=2))
            mem.inp.set(7)
            mem.req.set(1)
            sim.step()
            sim.step()
            mem.req.set(0)
            sim.settle()
            sim.step()
            results[engine] = (mem.out.value, sim.activity)
        assert results["brute"] == results["levelized"]
        assert results["levelized"][0] == 7


class TestActivityKeying:
    def test_same_named_wires_in_different_modules_stay_separate(self):
        """The seed keyed toggle counts by bare wire name, silently
        merging same-named wires across modules and skewing the
        dynamic-power estimate."""

        class Toggler(Module):
            def __init__(self, name, period):
                super().__init__(name)
                self.w = self.wire("w", 1)
                self.period = period
                self.n = 0

            def eval_comb(self):
                self.w.set(1 if (self.n // self.period) % 2 else 0)

            def tick(self):
                self.n += 1

        sim = Simulator()
        fast = sim.add(Toggler("fast", 1))
        slow = sim.add(Toggler("slow", 4))
        sim.run(32)
        act = sim.activity
        assert act[("fast", "fast.w")] > act[("slow", "slow.w")] > 0
        assert sim.total_activity() == sum(act.values())

    def test_port_wires_attributed_once(self):
        """A port wire adopted by two modules is owned by the first
        adder and counted exactly once."""
        sim = Simulator()
        port = make_port("p", 8)
        src = PortSource("src", port)
        sink = PortSink("sink", port)
        src.push(*range(16))
        sim.add(src)
        sim.add(sink)
        sim.run(20)
        data_keys = [k for k in sim.activity if k[1] == "p.data"]
        assert data_keys == [("src", "p.data")]


class TestCacheInvalidation:
    def test_module_added_mid_run_participates(self):
        sim = Simulator()
        port = make_port("p", 8)
        src = PortSource("src", port)
        src.push(*range(50))
        sim.add(src)
        sim.run(3)            # levelization built without the sink
        sink = PortSink("sink", port)
        sim.add(sink)         # invalidates the cached levelization
        sim.run(10)
        assert sink.values() == list(range(10))

    def test_levels_reflect_dataflow_order(self):
        sim = Simulator()
        port = make_port("p", 8)
        src = PortSource("src", port)
        sink = PortSink("sink", port)
        sim.add(sink)         # added in reverse order on purpose
        sim.add(src)
        sim.settle()
        levels = sim.scheduler.levels()
        flat = [m for group in levels for m in group]
        assert set(flat) == {"src", "sink"}
        # no dependency between them (sink reads no wires), any order is
        # valid -- but each must be its own singleton group
        assert all(len(g) == 1 for g in levels)

    def test_eval_counts_are_minimal_on_feed_forward_designs(self):
        sim = _build("mmu", engine="levelized", seed=0, stim=200)
        sim.run(100)
        sch = sim.scheduler
        # every module exactly once per cycle: the levelized floor
        assert sch.eval_count == len(sim.modules) * sch.settle_count


class TestBatchRunner:
    def test_run_batch_preserves_order_and_results(self):
        jobs = [(f"j{i}", (lambda i=i: i * i)) for i in range(8)]
        out = run_batch(jobs, parallel=4)
        assert list(out) == [f"j{i}" for i in range(8)]
        assert out["j5"] == 25

    def test_run_batch_serial_fallback(self):
        out = run_batch([("a", lambda: 1), ("b", lambda: 2)],
                        parallel=False)
        assert out == {"a": 1, "b": 2}

    def test_run_batch_propagates_errors(self):
        with pytest.raises(ValueError):
            run_batch([("ok", lambda: 1),
                       ("boom", lambda: (_ for _ in ()).throw(
                           ValueError("x")))], parallel=2)

    def test_batch_simulator_sweep(self):
        batch = BatchSimulator(parallel=2)
        for name in ("streams", "pipeline"):
            batch.add(_build(name, seed=1, stim=300))
        batch.run(150)
        assert batch.cycles() == {"streams": 150, "pipeline": 150}
        acts = batch.total_activity()
        assert all(v > 0 for v in acts.values())

    def test_batch_simulator_rejects_duplicate_names(self):
        batch = BatchSimulator()
        batch.add(Simulator("x"))
        with pytest.raises(ValueError):
            batch.add(Simulator("x"))


class TestHarnessParallelPaths:
    def test_generate_table2_parallel_matches_serial(self):
        from repro.harness import generate_table2

        serial = generate_table2(parallel=False)
        concurrent = generate_table2(parallel=True)
        assert serial == concurrent
        assert serial["opentitan"]["unsafe_rejected"]
