"""End-to-end simulation tests: compiled Anvil processes on the simulator."""

import pytest

from repro import (
    Logic,
    Process,
    SimulationError,
    System,
    build_simulation,
    check_process,
)
from repro.lang.terms import (
    cycle,
    if_,
    let,
    par,
    read,
    recurse,
    recv,
    send,
    set_reg,
    unit,
    var,
)

from helpers import cache_channel, stream_channel


def counter_process(width=8):
    p = Process("counter")
    p.endpoint("out", stream_channel("out"), Side.LEFT)
    p.register("cnt", Logic(width))
    p.loop(
        send("out", "data", read("cnt"))
        >> set_reg("cnt", read("cnt") + 1)
    )
    return p


from repro import Side  # noqa: E402  (used by helper above)


class TestSingleProcess:
    def test_counter_streams_values(self):
        sys_ = System()
        inst = sys_.add(counter_process())
        ch = sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ext.always_receive("data")
        ss.sim.run(10)
        values = [v for _, v in ext.received["data"]]
        assert values == list(range(10))

    def test_backpressure_stalls_counter(self):
        """The counter blocks on the unbuffered channel until the consumer
        is ready; no values are skipped."""
        sys_ = System()
        inst = sys_.add(counter_process())
        ch = sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ss.sim.run(5)           # consumer not ready: nothing transfers
        assert "data" not in ext.received
        ext.always_receive("data")
        ss.sim.run(5)
        values = [v for _, v in ext.received["data"]]
        assert values == list(range(5))  # starts from 0, nothing lost

    def test_branching_process(self):
        p = Process("filt")
        p.endpoint("inp", stream_channel("in"), Side.RIGHT)
        p.endpoint("out", stream_channel("out"), Side.LEFT)
        p.register("buf", Logic(8))
        p.loop(
            let("d", recv("inp", "data"),
                if_(var("d").eq(0),
                    set_reg("buf", 0xAA),
                    set_reg("buf", var("d") + 1))
                >> send("out", "data", read("buf")))
        )
        assert check_process(p).ok
        sys_ = System()
        inst = sys_.add(p)
        ci, co = sys_.expose(inst, "inp"), sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ein, eout = ss.external(ci), ss.external(co)
        eout.always_receive("data")
        for v in [0, 5, 0, 7]:
            ein.send("data", v)
        ss.sim.run(20)
        assert [v for _, v in eout.received["data"]] == [0xAA, 6, 0xAA, 8]

    def test_debug_print_logged(self):
        from repro.lang.terms import dprint
        p = Process("printer")
        p.register("c", Logic(4))
        p.loop(dprint("tick", read("c")) >> set_reg("c", read("c") + 1)
               >> cycle(1))
        sys_ = System()
        sys_.add(p)
        ss = build_simulation(sys_)
        ss.sim.run(6)
        mod = ss.module("printer")
        assert len(mod.debug_log) == 3
        assert [v for _, _, v in mod.debug_log] == [0, 1, 2]

    def test_zero_delay_loop_detected(self):
        p = Process("spin")
        p.loop(unit())
        sys_ = System()
        sys_.add(p)
        ss = build_simulation(sys_)
        with pytest.raises(SimulationError):
            ss.sim.run(1)


class TestTwoProcesses:
    def test_request_response_roundtrip(self):
        mem = Process("memory")
        mem.endpoint("host", cache_channel(), Side.RIGHT)
        mem.register("tmp", Logic(8))
        mem.loop(
            let("a", recv("host", "req"),
                var("a") >> set_reg("tmp", var("a") + 0x10)
                >> send("host", "res", read("tmp")))
        )
        top = Process("top")
        top.endpoint("mem", cache_channel(), Side.LEFT)
        top.endpoint("out", stream_channel("out"), Side.LEFT)
        top.register("addr", Logic(8))
        top.register("data", Logic(8))
        top.loop(
            send("mem", "req", read("addr"))
            >> let("d", recv("mem", "res"),
                   var("d")
                   >> par(set_reg("addr", read("addr") + 1),
                          set_reg("data", var("d")))
                   >> send("out", "data", read("data")))
        )
        assert check_process(mem).ok and check_process(top).ok
        sys_ = System()
        t, m = sys_.add(top), sys_.add(mem)
        sys_.connect(t, "mem", m, "host")
        co = sys_.expose(t, "out")
        ss = build_simulation(sys_)
        eout = ss.external(co)
        eout.always_receive("data")
        ss.sim.run(30)
        values = [v for _, v in eout.received["data"]]
        assert values[:5] == [0x10, 0x11, 0x12, 0x13, 0x14]


class TestRecursivePipeline:
    def test_ii1_static_pipeline(self):
        pipe = Process("spipe")
        pipe.endpoint("inp", stream_channel("in", static=True), Side.RIGHT)
        pipe.endpoint("out", stream_channel("out", static=True), Side.LEFT)
        pipe.register("s1", Logic(8))
        pipe.recursive(
            let("r", recv("inp", "data"),
                par(var("r") >> set_reg("s1", var("r") + 1)
                    >> send("out", "data", read("s1")),
                    cycle(1) >> recurse()))
        )
        assert check_process(pipe).ok
        sys_ = System()
        inst = sys_.add(pipe)
        ci, co = sys_.expose(inst, "inp"), sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ein, eout = ss.external(ci), ss.external(co)
        eout.always_receive("data")
        for v in range(1, 8):
            ein.send("data", v)
        ss.sim.run(14)
        out = eout.received["data"]
        assert [v for _, v in out] == [2, 3, 4, 5, 6, 7, 8]
        cycles = [c for c, _ in out]
        # one result per cycle after the 1-cycle latency: II = 1
        assert cycles == list(range(1, 8))


class TestWaveform:
    def test_waveform_capture_and_render(self):
        sys_ = System()
        inst = sys_.add(counter_process(width=4))
        ch = sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ext.always_receive("data")
        port = ext.ports["data"]
        ss.sim.watch(port.data, "data")
        ss.sim.watch(port.valid, "valid")
        ss.sim.run(6)
        wf = ss.sim.waveform
        assert wf.series("data") == [0, 1, 2, 3, 4, 5]
        text = wf.render()
        assert "data" in text and "valid" in text

    def test_activity_counted(self):
        sys_ = System()
        inst = sys_.add(counter_process())
        ch = sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ss.external(ch).always_receive("data")
        ss.sim.run(8)
        assert ss.sim.total_activity() > 0
