"""Shared fixtures: the paper's channels and processes used across tests."""

from repro import (
    ChannelDef,
    LifetimeSpec,
    Logic,
    MessageDef,
    Process,
    Side,
    StaticSync,
    let,
    par,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)


def memory_channel(static_cycles: int = 2) -> ChannelDef:
    """The paper's no-cache memory contract: address stable for a fixed
    number of cycles after ``req``; data stable one cycle after ``res``."""
    return ChannelDef("mem_ch", [
        MessageDef("req", Side.RIGHT, Logic(8),
                   LifetimeSpec.static(static_cycles)),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])


def cache_channel() -> ChannelDef:
    """The paper's dynamic cache contract: ``address: [req, req->res)``,
    ``data: [res, res->res+1)``."""
    return ChannelDef("cache_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])


def fifo_channel(width: int = 8) -> ChannelDef:
    """FIFO enqueue contract from Figure 2: data stable 1 cycle."""
    return ChannelDef("fifo_ch", [
        MessageDef("enq_req", Side.RIGHT, Logic(width),
                   LifetimeSpec.static(1)),
    ])


def stream_channel(name: str = "stream", width: int = 8,
                   static: bool = False) -> ChannelDef:
    """One-message data stream travelling right."""
    sync = StaticSync(1) if static else None
    return ChannelDef(name, [
        MessageDef("data", Side.RIGHT, Logic(width), LifetimeSpec.static(1),
                   sync, sync),
    ])


def top_unsafe() -> Process:
    """Figure 5 (left): mutates the address while the memory still needs
    it, and issues the next request before the previous one expires."""
    p = Process("top_unsafe")
    p.endpoint("mem", memory_channel(), Side.LEFT)
    p.register("address", Logic(8))
    p.loop(
        send("mem", "req", read("address"))
        >> set_reg("address", read("address") + 1)
        >> let("d", recv("mem", "res"), var("d") >> unit())
    )
    return p


def top_safe() -> Process:
    """Figure 5 (right): dynamic contract, mutation only after ``res``."""
    p = Process("top_safe")
    p.endpoint("cache", cache_channel(), Side.LEFT)
    p.register("address", Logic(8))
    p.register("enq_data", Logic(8))
    p.loop(
        send("cache", "req", read("address"))
        >> let("d", recv("cache", "res"),
               var("d")
               >> par(set_reg("address", read("address") + 1),
                      set_reg("enq_data", var("d"))))
    )
    return p
