"""SystemVerilog emission across every evaluation design: well-formedness
and interface completeness."""

import re

import pytest

from repro import to_systemverilog
from repro.anvil_designs.aes import aes_core
from repro.anvil_designs.axi import axi_demux, axi_mux
from repro.anvil_designs.memory import (
    cached_memory_process,
    memory_process,
)
from repro.anvil_designs.mmu import ptw_process, tlb_process
from repro.anvil_designs.pipeline import pipelined_alu, systolic_array
from repro.anvil_designs.streams import (
    fifo_buffer,
    passthrough_stream_fifo,
    spill_register,
)
from repro.anvil_designs.y86 import y86_core
from repro.codegen.sysverilog import structural_check

ALL_DESIGNS = {
    "fifo": fifo_buffer,
    "spill": spill_register,
    "stream_fifo": passthrough_stream_fifo,
    "memory": memory_process,
    "cached_memory": cached_memory_process,
    "tlb": tlb_process,
    "ptw": ptw_process,
    "aes": aes_core,
    "axi_demux": axi_demux,
    "axi_mux": axi_mux,
    "alu": pipelined_alu,
    "systolic": systolic_array,
    "y86": y86_core,
}


@pytest.fixture(scope="module")
def emitted():
    return {name: to_systemverilog(f()) for name, f in ALL_DESIGNS.items()}


@pytest.mark.parametrize("name", sorted(ALL_DESIGNS))
def test_module_well_formed(emitted, name):
    sv = emitted[name]
    c = structural_check(sv)
    assert c["modules"] == 1
    assert c["endmodules"] == 1
    assert c["always_ff"] >= 1
    assert sv.count("(") == sv.count(")")
    assert sv.count("[") == sv.count("]")


@pytest.mark.parametrize("name", sorted(ALL_DESIGNS))
def test_every_fire_wire_driven_once(emitted, name):
    sv = emitted[name]
    declared = re.findall(r"logic (t\d+_e\d+_fire);", sv)
    assigned = re.findall(r"assign (t\d+_e\d+_fire) =", sv)
    assert sorted(declared) == sorted(assigned)
    assert len(assigned) == len(set(assigned))  # single driver


@pytest.mark.parametrize("name", sorted(ALL_DESIGNS))
def test_reset_covers_every_state_flop(emitted, name):
    sv = emitted[name]
    fired = re.findall(r"logic (t\d+_e\d+_fired_q);", sv)
    # multi-thread processes have one reset block per thread
    reset_blocks = "".join(
        part.split("end else", 1)[0]
        for part in sv.split("if (!rst_ni) begin")[1:]
    )
    for f in fired:
        assert f in reset_blocks, f


def test_handshake_ports_follow_sync_modes(emitted):
    # dynamic channels keep valid/ack...
    assert "host_req_valid" in emitted["aes"]
    assert "host_req_ack" in emitted["aes"]
    # ...fully static channels omit them
    assert "inp_data_valid" not in emitted["alu"]
    assert "inp_data_ack" not in emitted["alu"]
    assert "inp_data_data" in emitted["alu"]


def test_aes_emits_sbox_rom(emitted):
    # the LUT-mapped S-box becomes a ternary ROM chain
    assert emitted["aes"].count("?") > 500


def test_axi_demux_has_all_slave_interfaces(emitted):
    sv = emitted["axi_demux"]
    for i in range(4):
        for msg in ("aw", "w", "b", "ar", "r"):
            assert f"s{i}_{msg}_data" in sv


def test_deterministic_emission():
    a = to_systemverilog(fifo_buffer())
    b = to_systemverilog(fifo_buffer())
    assert a == b
