"""The executor subsystem (`repro.rtl.executors` + `repro.rtl.batch`):
JobSpec declarativeness and picklability, serial/thread/process
equivalence pinned bit-identical across engines x backends, clean
failure propagation with worker tracebacks, deterministic
submission-order results, and the REPRO_PARALLEL parsing contract."""

import pickle

import pytest

from repro.api import Session, SimConfig, UnknownScenarioError
from repro.rtl.batch import BatchSimulator, _env_parallel, _pool_size, run_batch
from repro.rtl.executors import (
    EXECUTORS,
    ExecutorError,
    JobSpec,
    ProcessExecutor,
    ScenarioRun,
    _warm_specs,
    execute_job,
    get_executor,
)

#: small workloads throughout -- these tests pin behaviour, not perf
FAST = dict(stim=120, cycles=50)

#: a real pool even on single-core boxes (auto sizing would collapse
#: the process executor to one worker there)
POOL = dict(jobs=2)


def _spec(name, scenario=None, **cfg):
    return JobSpec(kind="run_scenario", name=name,
                   scenario=scenario or name, config=SimConfig(**FAST, **cfg))


# ---------------------------------------------------------------------------
# JobSpec
# ---------------------------------------------------------------------------
class TestJobSpec:
    def test_pickles_with_config(self):
        spec = _spec("memory", backend="pycompiled",
                     engine="brute")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.config.backend == "pycompiled"

    def test_param_lookup_and_defaults(self):
        spec = JobSpec(kind="bench_scenario", name="x", scenario="memory",
                       params=(("warmup", 5), ("repeats", 2)))
        assert spec.param("warmup") == 5
        assert spec.param("nonesuch", 42) == 42

    def test_run_cycles_prefers_explicit_override(self):
        assert _spec("memory").run_cycles == FAST["cycles"]
        spec = JobSpec(kind="run_scenario", name="m", scenario="memory",
                       config=SimConfig(**FAST), cycles=7)
        assert spec.run_cycles == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="", name="x")
        with pytest.raises(ValueError, match="name"):
            JobSpec(kind="run_scenario", name="")

    def test_unknown_kind_is_actionable(self):
        with pytest.raises(ValueError, match="run_scenario"):
            execute_job(JobSpec(kind="warp_drive", name="x"))

    def test_unknown_executor_is_actionable(self):
        with pytest.raises(ValueError, match="'process'"):
            get_executor("warp", 2)

    def test_scenario_run_drops_sim_at_the_pickle_boundary(self):
        run = execute_job(_spec("memory"))
        assert isinstance(run, ScenarioRun) and run.sim is not None
        clone = pickle.loads(pickle.dumps(run))
        assert clone.sim is None
        assert clone.activity == run.activity
        assert clone.samples == run.samples


# ---------------------------------------------------------------------------
# cross-executor equivalence: the central guarantee
# ---------------------------------------------------------------------------
class TestExecutorEquivalence:
    @pytest.mark.parametrize("engine,backend", [
        ("levelized", "interp"),
        ("levelized", "pycompiled"),
        ("brute", "interp"),
        ("brute", "pycompiled"),
    ])
    def test_sweep_bit_identical_across_executors(self, engine, backend):
        """serial, thread and process sweeps must agree on waveforms
        and per-wire activity for every engine x backend pair."""
        session = Session(SimConfig(**FAST, engine=engine,
                                    backend=backend))
        names = ["memory", "anvil_streams"]
        reference = session.sweep(names, executor="serial")
        for executor in ("thread", "process"):
            swept = session.sweep(names, executor=executor, **POOL)
            for name in names:
                assert swept[name].activity \
                    == reference[name].activity, (executor, name)
                assert swept[name].waveform.samples \
                    == reference[name].waveform.samples, (executor, name)

    def test_y86_cpu_sweep_survives_the_pickle_boundary(self):
        """the y86 scenarios rebuild a whole CPU-plus-memory system in
        the worker from the JobSpec alone; the observables must land
        byte-identical with the in-process build."""
        session = Session(SimConfig(**FAST, seed=3))
        names = ["y86_sum", "y86_memcpy"]
        reference = session.sweep(names, executor="serial")
        swept = session.sweep(names, executor="process", **POOL)
        for name in names:
            assert swept[name].activity == reference[name].activity
            assert swept[name].waveform.samples \
                == reference[name].waveform.samples
            assert swept[name].sim is None

    def test_process_sweep_matches_solo_run(self):
        session = Session(SimConfig(**FAST))
        solo = session.run("streams")
        swept = session.sweep(["streams"], executor="process", **POOL)
        assert swept["streams"].activity == solo.activity
        assert swept["streams"].waveform.samples \
            == solo.waveform.samples
        # remote runs carry data, not simulators
        assert swept["streams"].sim is None

    def test_batch_simulator_adopts_remote_runs(self):
        cfg = SimConfig(stim=100)
        reference = BatchSimulator(parallel=False)
        reference.add_scenario("memory", cfg)
        reference.add_scenario("streams", cfg)
        reference.run(40)

        batch = BatchSimulator()
        batch.add_scenario("memory", cfg)
        batch.add_scenario("streams", cfg)
        batch.run(40, executor="process", parallel=2)
        assert batch.total_activity() == reference.total_activity()
        assert batch.cycles() == {"memory": 40, "streams": 40}
        assert batch["memory"].waveform.samples \
            == reference["memory"].waveform.samples
        assert batch["memory"].detached

    def test_adopted_simulators_refuse_to_advance(self):
        batch = BatchSimulator()
        batch.add_scenario("memory", SimConfig(stim=60))
        batch.run(20, executor="process", parallel=2)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="remote"):
            batch["memory"].run(1)


# ---------------------------------------------------------------------------
# failure propagation
# ---------------------------------------------------------------------------
class TestFailurePropagation:
    def test_process_reraises_original_with_worker_traceback(self):
        session = Session(SimConfig(**FAST))
        with pytest.raises(UnknownScenarioError,
                           match="known scenarios") as exc:
            session.sweep(["streams", "nonesuch"], executor="process",
                          **POOL)
        cause = exc.value.__cause__
        assert isinstance(cause, ExecutorError)
        assert cause.job_name == "nonesuch"
        assert "worker traceback" in str(cause)
        assert "UnknownScenarioError" in cause.worker_traceback

    def test_first_failure_in_submission_order_wins(self):
        specs = [_spec("bad_a", scenario="nonesuch_a"),
                 _spec("memory"),
                 _spec("bad_b", scenario="nonesuch_b")]
        for executor in EXECUTORS:
            with pytest.raises(KeyError, match="nonesuch_a"):
                run_batch(specs, parallel=2, executor=executor)

    def test_thread_thunk_failures_still_propagate(self):
        def boom():
            raise ValueError("thunk exploded")
        with pytest.raises(ValueError, match="thunk exploded"):
            run_batch([("ok", lambda: 1), ("boom", boom)], parallel=2)

    def test_process_rejects_unpicklable_thunk_jobs(self):
        with pytest.raises(TypeError, match="JobSpec"):
            run_batch([("thunk", lambda: 1)], parallel=2,
                      executor="process")

    def test_batch_simulator_demands_provenance_for_process(self):
        from repro.api import get_registry
        batch = BatchSimulator()
        batch.add(get_registry().build("memory", SimConfig(stim=60)))
        with pytest.raises(ValueError, match="provenance"):
            batch.run(10, executor="process", parallel=2)

    def test_batch_simulator_process_resumes_advanced_sims(self):
        # the historical "one-shot only" restriction is gone: an
        # already-advanced sim ships a snapshot with its JobSpec and
        # the worker resumes it bit-identically...
        batch = BatchSimulator()
        batch.add_scenario("memory", SimConfig(stim=60))
        batch.run(10, parallel=False)          # advance locally first
        batch.run(10, executor="process", parallel=2)
        reference = BatchSimulator()
        reference.add_scenario("memory", SimConfig(stim=60))
        reference.run(20, parallel=False)
        assert batch["memory"].cycle == 20
        assert batch["memory"].activity == reference["memory"].activity

    def test_batch_simulator_detached_sims_stay_one_shot(self):
        # ...but a sim that already adopted a remote run holds no local
        # state to snapshot and still refuses
        batch = BatchSimulator()
        batch.add_scenario("memory", SimConfig(stim=60))
        batch.run(10, executor="process", parallel=2)
        with pytest.raises(ValueError, match="adopted a remote run"):
            batch.run(10, executor="process", parallel=2)


# ---------------------------------------------------------------------------
# determinism and sharding
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_results_keyed_in_submission_order(self):
        names = ["pipeline", "aes", "memory", "streams"]
        specs = [_spec(n) for n in names]
        for executor in EXECUTORS:
            results = run_batch(specs, parallel=2, executor=executor)
            assert list(results) == names, executor

    def test_chunked_sharding_covers_every_job(self):
        specs = [_spec(f"memory#{i}", scenario="memory", seed=i)
                 for i in range(5)]
        pool = ProcessExecutor(workers=2, chunk_size=2)
        results = pool.run(specs)
        assert list(results) == [s.name for s in specs]
        # distinct seeds really produced distinct stimulus
        activities = [r.total_activity for r in results.values()]
        assert len(set(activities)) > 1

    def test_repeated_process_runs_are_identical(self):
        session = Session(SimConfig(**FAST))
        a = session.sweep(["memory"], executor="process", **POOL)
        b = session.sweep(["memory"], executor="process", **POOL)
        assert a["memory"].activity == b["memory"].activity
        assert a["memory"].waveform.samples \
            == b["memory"].waveform.samples


# ---------------------------------------------------------------------------
# worker warm-up
# ---------------------------------------------------------------------------
class TestWarmup:
    def test_warm_specs_dedupe_and_select_compiled_paths_only(self):
        # only jobs with something to pre-compile are worth warming:
        # the pycompiled FSM backend and the kernel settle engine
        interp = _spec("memory", engine="levelized")
        compiled = _spec("anvil_memory", backend="pycompiled")
        twin = _spec("anvil_memory#2", scenario="anvil_memory",
                     backend="pycompiled")
        warm = _warm_specs([interp, compiled, twin, compiled])
        assert [(s, c.backend) for s, c in warm] \
            == [("anvil_memory", "pycompiled")]
        # warm builds are minimal-stimulus clones
        assert warm[0][1].stim == 1

    def test_warmup_disabled_still_correct(self):
        specs = [_spec("anvil_streams", backend="pycompiled")]
        cold = ProcessExecutor(workers=2, warmup=False).run(specs)
        warm = ProcessExecutor(workers=2, warmup=True).run(specs)
        assert cold["anvil_streams"].activity \
            == warm["anvil_streams"].activity


# ---------------------------------------------------------------------------
# the REPRO_PARALLEL contract
# ---------------------------------------------------------------------------
class TestPoolSizeEnv:
    @pytest.mark.parametrize("value", ["0", "false", "no", "off", " OFF "])
    def test_falsy_values_force_serial(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert _pool_size(None, 8) == 1

    def test_positive_integer_forces_worker_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        assert _pool_size(None, 8) == 3
        # the environment wins over the call-site knob
        assert _pool_size(False, 8) == 3

    @pytest.mark.parametrize("value", ["auto", "true", "yes", "on", ""])
    def test_auto_values_fall_through(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert _env_parallel() is None
        assert _pool_size(False, 8) == 1
        assert _pool_size(4, 8) == 4

    @pytest.mark.parametrize("value", ["junk", "-2", "1.5", "none"])
    def test_garbage_is_a_clear_error(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        with pytest.raises(ValueError, match="REPRO_PARALLEL"):
            _pool_size(None, 8)

    def test_unset_resolves_from_the_call_site(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert _pool_size(False, 8) == 1
        assert _pool_size(6, 8) == 6
        assert _pool_size(None, 8) >= 1

    def test_repro_parallel_zero_forces_serial_even_for_process(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        # degrades to in-process serial execution of the same JobSpecs
        results = run_batch([_spec("memory")], executor="process")
        assert results["memory"].sim is not None

    def test_repro_parallel_one_keeps_the_process_pool(self, monkeypatch):
        # a forced worker count of 1 is NOT the serial escape hatch: a
        # one-process pool still crosses the pickling boundary, which
        # is exactly what a debugging run wants to exercise
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        results = run_batch([_spec("memory")], executor="process")
        assert results["memory"].sim is None


# ---------------------------------------------------------------------------
# batch-level input validation
# ---------------------------------------------------------------------------
class TestRunBatchValidation:
    def test_duplicate_job_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate job name"):
            run_batch([_spec("memory"), _spec("memory")],
                      parallel=False)
        with pytest.raises(ValueError, match="duplicate job name"):
            run_batch([("x", lambda: 1), ("x", lambda: 2)],
                      parallel=False)

    def test_sweep_rejects_duplicate_scenarios(self):
        with pytest.raises(ValueError, match="duplicate job name"):
            Session(SimConfig(**FAST)).sweep(["streams", "streams"])
