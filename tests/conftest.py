"""Test configuration: make the tests/ directory importable (helpers.py)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
