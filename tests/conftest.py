"""Test configuration: make the tests/ directory importable (helpers.py)
and isolate process-wide state between tests."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


@pytest.fixture(autouse=True)
def _fresh_checkpoint_store():
    """The warm-prefix checkpoint store is a process-wide singleton;
    under ``REPRO_CHECKPOINT_EVERY`` every ``Session.run`` feeds it, and
    a prefix left by one test would let a later test resume instead of
    simulating (e.g. turning a deliberately-slow scenario instant and
    defeating an in-flight coalescing assertion).  Reset it around every
    test so reuse only ever happens within one test."""
    from repro.rtl.snapshot import reset_checkpoint_store

    reset_checkpoint_store()
    yield
    reset_checkpoint_store()
