"""Tests for the language front-end: types, channels, terms, processes."""

import pytest

from repro import (
    Bundle,
    ChannelDef,
    DependentSync,
    DynamicSync,
    ElaborationError,
    LifetimeSpec,
    Logic,
    MessageDef,
    Process,
    Side,
    StaticSync,
    System,
    simple_channel,
)
from repro.lang import terms as T
from repro.lang.terms import lit, par, read, send, seq, var


class TestTypes:
    def test_logic_width_and_mask(self):
        t = Logic(8)
        assert t.width == 8
        assert t.mask(0x1ff) == 0xff

    def test_logic_rejects_zero_width(self):
        with pytest.raises(ValueError):
            Logic(0)

    def test_bundle_pack_unpack_roundtrip(self):
        b = Bundle([("addr", Logic(12)), ("we", Logic(1)), ("data", Logic(8))])
        values = {"addr": 0xabc, "we": 1, "data": 0x5a}
        assert b.unpack(b.pack(values)) == values

    def test_bundle_width_is_sum(self):
        b = Bundle([("a", Logic(3)), ("b", Logic(5))])
        assert b.width == 8

    def test_bundle_field_range(self):
        b = Bundle([("a", Logic(3)), ("b", Logic(5))])
        assert b.field_range("a") == (0, 3)
        assert b.field_range("b") == (3, 5)
        with pytest.raises(KeyError):
            b.field_range("c")

    def test_bundle_duplicate_field_rejected(self):
        with pytest.raises(ValueError):
            Bundle([("a", Logic(1)), ("a", Logic(2))])


class TestChannels:
    def test_simple_channel_shape(self):
        ch = simple_channel("m", req_width=16, res_width=32)
        assert ch.message("req").dtype.width == 16
        assert ch.message("res").dtype.width == 32
        assert ch.message("req").direction is Side.RIGHT

    def test_sender_side_is_opposite_travel(self):
        ch = simple_channel("m")
        assert ch.message("req").sender_side() is Side.LEFT
        assert ch.message("res").sender_side() is Side.RIGHT

    def test_duplicate_message_rejected(self):
        with pytest.raises(ValueError):
            ChannelDef("c", [
                MessageDef("m", Side.LEFT, Logic(1), LifetimeSpec.static(1)),
                MessageDef("m", Side.RIGHT, Logic(1), LifetimeSpec.static(1)),
            ])

    def test_lifetime_spec_validation(self):
        with pytest.raises(ValueError):
            LifetimeSpec()
        with pytest.raises(ValueError):
            LifetimeSpec(cycles=1, message="x")

    def test_lifetime_as_duration(self):
        d = LifetimeSpec.until("res").as_duration("ep3")
        assert not d.is_static
        assert d.endpoint == "ep3" and d.message == "res"
        s = LifetimeSpec.static(4).as_duration("ep3")
        assert s.is_static and s.cycles == 4

    def test_sync_modes(self):
        assert DynamicSync().is_dynamic
        assert not StaticSync(2).is_dynamic
        assert not DependentSync("req", 1).is_dynamic
        with pytest.raises(ValueError):
            StaticSync(0)

    def test_fully_dynamic(self):
        m = MessageDef("m", Side.LEFT, Logic(1), LifetimeSpec.static(1))
        assert m.fully_dynamic
        m2 = MessageDef("m", Side.LEFT, Logic(1), LifetimeSpec.static(1),
                        StaticSync(1), DynamicSync())
        assert not m2.fully_dynamic


class TestTerms:
    def test_rshift_builds_wait(self):
        t = lit(1) >> lit(2)
        assert isinstance(t, T.Wait)

    def test_arithmetic_operators(self):
        t = (read("a") + 1) ^ read("b")
        assert isinstance(t, T.BinOp) and t.op == "xor"
        assert isinstance(t.a, T.BinOp) and t.a.op == "add"

    def test_comparison_methods(self):
        t = var("x").eq(3)
        assert isinstance(t, T.BinOp) and t.op == "eq"

    def test_int_coercion(self):
        t = send("ep", "m", 5)
        assert isinstance(t.payload, T.Literal)

    def test_seq_and_par_composition(self):
        s = seq(lit(1), lit(2), lit(3))
        assert isinstance(s, T.Wait)
        p = par(lit(1), lit(2), lit(3))
        assert isinstance(p, T.Par)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            T.BinOp("bogus", lit(1), lit(2))
        with pytest.raises(ValueError):
            T.UnOp("bogus", lit(1))

    def test_cycle_rejects_negative(self):
        with pytest.raises(ValueError):
            T.Cycle(-1)

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            T.Slice(lit(0, 8), 1, 3)

    def test_structural_eq_preserved(self):
        """`==` on terms stays Python identity so terms are hashable."""
        a, b = lit(1), lit(1)
        assert a != b and a == a
        assert len({a, b}) == 2


class TestProcess:
    def test_duplicate_register_rejected(self):
        p = Process("p")
        p.register("r", Logic(1))
        with pytest.raises(ElaborationError):
            p.register("r", Logic(2))

    def test_duplicate_endpoint_rejected(self):
        p = Process("p")
        ch = simple_channel("c")
        p.endpoint("e", ch, Side.LEFT)
        with pytest.raises(ElaborationError):
            p.endpoint("e", ch, Side.RIGHT)

    def test_unknown_lookup_raises(self):
        p = Process("p")
        with pytest.raises(ElaborationError):
            p.get_register("nope")
        with pytest.raises(ElaborationError):
            p.get_endpoint("nope")

    def test_endpoint_sends(self):
        p = Process("p")
        ch = simple_channel("c")
        ep = p.endpoint("e", ch, Side.LEFT)
        assert ep.sends("req") and not ep.sends("res")


class TestSystem:
    def make_pair(self):
        ch = simple_channel("c")
        a = Process("a")
        a.endpoint("out", ch, Side.LEFT)
        b = Process("b")
        b.endpoint("inp", ch, Side.RIGHT)
        return a, b

    def test_connect_opposite_sides(self):
        a, b = self.make_pair()
        s = System()
        ia, ib = s.add(a), s.add(b)
        chan = s.connect(ia, "out", ib, "inp")
        assert chan.ends[Side.LEFT] == ("a", "out")
        assert chan.ends[Side.RIGHT] == ("b", "inp")
        assert s.unbound_endpoints() == []

    def test_connect_same_side_rejected(self):
        ch = simple_channel("c")
        a = Process("a")
        a.endpoint("x", ch, Side.LEFT)
        b = Process("b")
        b.endpoint("y", ch, Side.LEFT)
        s = System()
        with pytest.raises(ElaborationError):
            s.connect(s.add(a), "x", s.add(b), "y")

    def test_channel_mismatch_rejected(self):
        a = Process("a")
        a.endpoint("x", simple_channel("c1"), Side.LEFT)
        b = Process("b")
        b.endpoint("y", simple_channel("c2"), Side.RIGHT)
        s = System()
        with pytest.raises(ElaborationError):
            s.connect(s.add(a), "x", s.add(b), "y")

    def test_expose_leaves_far_side_open(self):
        a, _ = self.make_pair()
        s = System()
        ia = s.add(a)
        chan = s.expose(ia, "out")
        assert Side.RIGHT not in chan.ends

    def test_duplicate_instance_name(self):
        a, _ = self.make_pair()
        s = System()
        s.add(a, "x")
        with pytest.raises(ElaborationError):
            s.add(a, "x")
