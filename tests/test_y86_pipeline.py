"""The Y86-64 RTL pipeline and Anvil core: hazard handling pinned via
the pipeline's own counters (load-use stalls, branch-misprediction
squashes, ret bubbles), the ``y86_*`` scenarios bit-identical across
every engine and both Anvil backends, the lifetime-typechecked core,
and the ``--tag cpu`` CLI view."""

import pytest

from repro.__main__ import main as cli_main
from repro.api import SimConfig, get_registry
from repro.core.typecheck import check_process
from repro.designs.y86 import Y86PipelineCpu, run_to_halt
from repro.isa.assembler import assemble
from repro.isa.encoding import SHLT, U64
from repro.isa.programs import CSAPP_QUADS, sum_program
from repro.isa.reference import ReferenceMachine
from repro.rtl.simulator import ENGINES, Simulator

Y86_SCENARIOS = ("y86_sum", "y86_sort", "y86_memcpy")

#: stack placement for the tiny hand-written hazard programs
_TAIL = "\n.pos 0xff8\nstack:\n"


def _run_rtl(source, engine="levelized", max_cycles=2_000):
    prog = assemble(source)
    sim = Simulator(f"y86_hazard_{engine}", engine=engine)
    cpu = sim.add(Y86PipelineCpu("cpu", prog.image))
    cycles = run_to_halt(sim, cpu, max_cycles=max_cycles)
    return cpu, cycles


def _counters(cpu):
    return (cpu.loaduse_stalls, cpu.mispredict_squashes,
            cpu.ret_bubbles)


# ---------------------------------------------------------------------------
# hazard handling, one counter at a time
# ---------------------------------------------------------------------------
class TestHazards:
    def test_load_use_stalls_exactly_once(self):
        cpu, _ = _run_rtl(
            "    irmovq $5, %rcx\n"
            "    rmmovq %rcx, 0x100\n"
            "    mrmovq 0x100, %rax\n"
            "    addq %rax, %rcx\n"      # uses %rax right after the load
            "    halt\n")
        assert _counters(cpu) == (1, 0, 0)
        assert cpu.arch_state().registers[1] == 10       # %rcx

    def test_alu_chains_forward_without_stalling(self):
        cpu, _ = _run_rtl(
            "    irmovq $1, %rax\n"
            "    irmovq $2, %rcx\n"
            "    addq %rax, %rcx\n"      # needs e_valE forwarding
            "    addq %rcx, %rax\n"      # and again, next cycle
            "    addq %rcx, %rax\n"
            "    halt\n")
        assert _counters(cpu) == (0, 0, 0)
        assert cpu.arch_state().registers[0] == 7        # %rax
        assert cpu.arch_state().registers[1] == 3        # %rcx

    def test_not_taken_branch_squashes_the_predicted_path(self):
        # the fetch stage predicts taken; ZF=1 makes jne fall through,
        # so the two wrongly fetched instructions must be squashed and
        # the fall-through path must still execute
        cpu, _ = _run_rtl(
            "    xorq %rax, %rax\n"
            "    jne skip\n"
            "    irmovq $1, %rcx\n"
            "skip:\n"
            "    halt\n")
        assert _counters(cpu) == (0, 1, 0)
        assert cpu.arch_state().registers[1] == 1        # %rcx

    def test_taken_branch_costs_nothing(self):
        cpu, _ = _run_rtl(
            "    xorq %rax, %rax\n"
            "    je skip\n"
            "    irmovq $1, %rcx\n"
            "skip:\n"
            "    halt\n")
        assert _counters(cpu) == (0, 0, 0)
        assert cpu.arch_state().registers[1] == 0

    def test_ret_bubbles_three_cycles(self):
        # the leaf sits *before* the call site: were it placed after
        # the halt, fetch would speculatively run into the ret again
        # while the halt drains, and the bubble count would include
        # those squashed speculative cycles too
        cpu, _ = _run_rtl(
            "    irmovq stack, %rsp\n"
            "    jmp start\n"
            "f:\n"
            "    ret\n"
            "start:\n"
            "    call f\n"
            "    halt\n" + _TAIL)
        assert _counters(cpu) == (0, 0, 3)
        assert cpu.arch_state().stat == SHLT

    def test_counters_reset_with_the_module(self):
        prog = assemble("    irmovq stack, %rsp\n    call f\n    halt\n"
                        "f:\n    ret\n" + _TAIL)
        sim = Simulator("y86_reset")
        cpu = sim.add(Y86PipelineCpu("cpu", prog.image))
        run_to_halt(sim, cpu)
        assert cpu.ret_bubbles > 0
        cpu.reset()
        assert _counters(cpu) == (0, 0, 0)
        assert not cpu.halted

    def test_hazard_counters_agree_across_engines(self):
        source = sum_program(CSAPP_QUADS)
        expected = None
        for engine in ENGINES:
            cpu, cycles = _run_rtl(source, engine=engine,
                                   max_cycles=4_000)
            state = (cycles, _counters(cpu), cpu.arch_state())
            expected = expected or state
            assert state == expected, engine

    def test_sum_pipeline_matches_reference_counts(self):
        prog = assemble(sum_program(CSAPP_QUADS))
        ref = ReferenceMachine(prog.image).run()
        cpu, _ = _run_rtl(sum_program(CSAPP_QUADS), max_cycles=4_000)
        assert cpu.arch_state() == ref
        assert ref.instret == 34
        assert ref.registers[0] == sum(CSAPP_QUADS) & U64
        assert _counters(cpu) == (4, 1, 6)


# ---------------------------------------------------------------------------
# scenario pins: every engine, both Anvil backends
# ---------------------------------------------------------------------------
def _run_state(name, cycles=80, **config):
    sim = get_registry().build(name, SimConfig(**config))
    sim.run(cycles)
    return (sim.cycle, sim.waveform.samples, sim.activity,
            sim.total_activity())


class TestScenarioPins:
    @pytest.mark.parametrize("backend", ["interp", "pycompiled"])
    @pytest.mark.parametrize("name", Y86_SCENARIOS)
    def test_bit_identical_across_engines_and_backends(self, name,
                                                       backend):
        states = {
            engine: _run_state(name, seed=3, stim=160, engine=engine,
                               backend=backend)
            for engine in ENGINES
        }
        assert states["kernel"] == states["levelized"] == states["brute"]

    def test_backends_agree_on_observables(self):
        interp = _run_state("y86_sum", seed=3, stim=160,
                            backend="interp")
        compiled = _run_state("y86_sum", seed=3, stim=160,
                              backend="pycompiled")
        assert interp == compiled

    def test_seed_changes_the_workload(self):
        a = _run_state("y86_sort", seed=3, stim=160)
        b = _run_state("y86_sort", seed=4, stim=160)
        assert a != b

    def test_scenarios_carry_the_cpu_tag(self):
        reg = get_registry()
        assert reg.names("cpu") == list(Y86_SCENARIOS)
        for name in Y86_SCENARIOS:
            assert reg.get(name).tags == frozenset({"cpu"})


# ---------------------------------------------------------------------------
# the Anvil core under the lifetime oracle
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_anvil_core_typechecks():
    from repro.anvil_designs.y86 import y86_core
    report = check_process(y86_core())
    assert report.ok, report


# ---------------------------------------------------------------------------
# CLI view
# ---------------------------------------------------------------------------
def test_cli_lists_the_cpu_tag(capsys):
    assert cli_main(["list-scenarios", "--tag", "cpu"]) == 0
    out = capsys.readouterr().out
    for name in Y86_SCENARIOS:
        assert name in out
    assert "[cpu]" in out
