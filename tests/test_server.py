"""The serving loop end to end: registry browsing, submit/poll/fetch
pinned bit-identical to direct ``Session.run``, the two-level result
cache (zero recompiles on repeats), 429 backpressure at queue capacity,
concurrent WebSocket trace streams, slow-consumer drop-and-flag, the
wire-schema round trips and the compile-cache hammer.

Server fixtures bind port 0 (the OS picks a free one) and run on a
daemon thread inside this process, so worker threads share this
process's warm compile caches -- which is exactly the property the
cache assertions pin.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import RunResult, Session, SimConfig, get_registry
from repro.codegen import pysim
from repro.rtl import kernel
from repro.rtl.module import Module
from repro.rtl.simulator import Simulator
from repro.rtl.snapshot import reset_checkpoint_store
from repro.server import (
    Backpressure,
    JobQueue,
    ReproServer,
    ServerBusy,
    ServerClient,
    ServerError,
    TraceHub,
)

# ---------------------------------------------------------------------------
# a deliberately slow scenario (for backpressure and streaming timing)
# ---------------------------------------------------------------------------
class _SlowCounter(Module):
    """A counter whose tick sleeps: cycles take real wall-clock, so a
    job over it reliably occupies a worker while tests probe the queue."""

    def __init__(self, name: str, delay: float):
        super().__init__(name)
        self.delay = delay
        self.count = 0
        self.out = self.wire("count", width=16)

    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        return (self.out,)

    def eval_comb(self):
        self.out.set(self.count & 0xFFFF)

    def tick(self):
        time.sleep(self.delay)
        self.count += 1


_REGISTRY = get_registry()


def _build_server_slow(engine="levelized", seed=0, stim=100,
                       sim=None, backend="interp"):
    """Wall-clock-bound counter (tests only: ~4ms per cycle)."""
    sim = sim or Simulator("server_slow", engine=engine)
    mod = _SlowCounter("slow", delay=0.004)
    sim.add(mod)
    sim.watch(mod.out, "slow.count")
    return sim


@pytest.fixture(scope="module", autouse=True)
def _server_slow_scenario():
    # registered per-module (not at import) so collection of this file
    # never leaks the test-only scenario/tag into the global registry
    # seen by the rest of the suite
    if "server_slow" not in _REGISTRY:
        _REGISTRY.add("server_slow", _build_server_slow,
                      tags=("server-test",))
    try:
        yield
    finally:
        _REGISTRY.remove("server_slow")


@pytest.fixture()
def server():
    srv = ReproServer(config=SimConfig(), port=0, queue_depth=8,
                      workers=2).start_in_thread()
    try:
        yield srv
    finally:
        srv.close()


@pytest.fixture()
def client(server):
    with ServerClient(port=server.port) as cl:
        yield cl


# ---------------------------------------------------------------------------
# registry browsing
# ---------------------------------------------------------------------------
def test_health_and_scenario_browsing(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["scenarios"] == len(get_registry())

    everything = {s["name"] for s in client.scenarios()}
    assert everything == set(get_registry().names())

    rtl_only = client.scenarios(tag="rtl")
    assert {s["name"] for s in rtl_only} == set(get_registry().names("rtl"))
    assert all("rtl" in s["tags"] for s in rtl_only)

    one = client.scenario("streams")
    assert one["name"] == "streams"
    assert "rtl" in one["tags"]
    assert one["description"]


def test_unknown_scenario_is_404_with_suggestions(client):
    with pytest.raises(ServerError) as exc_info:
        client.scenario("streems")
    assert exc_info.value.status == 404
    assert "streams" in str(exc_info.value)


# ---------------------------------------------------------------------------
# submit / poll / fetch -- pinned bit-identical to a direct Session.run
# ---------------------------------------------------------------------------
def test_run_job_matches_direct_session_run(client):
    config = SimConfig(cycles=300, seed=3)
    direct = Session(config).run("memory")

    record = client.submit("memory", cycles=300, config={"seed": 3})
    assert record["state"] in ("queued", "running", "done")
    final = client.wait(record["id"])
    assert final["state"] == "done"
    served = client.result(record["id"])

    assert isinstance(served, RunResult)
    assert served.scenario == direct.scenario
    assert served.cycles == direct.cycles
    assert served.total_activity == direct.total_activity
    assert served.activity == direct.activity
    assert served.waveform.samples == direct.waveform.samples
    assert served.config == direct.config


def test_resubmission_is_a_submit_level_cache_hit(client):
    first = client.submit("streams", cycles=150)
    client.wait(first["id"])

    pysim_before = pysim.cache_stats()["misses"]
    kernel_before = kernel.cache_stats()["misses"]
    again = client.submit("streams", cycles=150)
    # answered inline: already done, no queue slot, nothing recompiled
    assert again["state"] == "done"
    assert again["cached"] == "submit"
    assert pysim.cache_stats()["misses"] == pysim_before
    assert kernel.cache_stats()["misses"] == kernel_before

    a = client.result(first["id"])
    b = client.result(again["id"])
    assert a.activity == b.activity
    assert a.waveform.samples == b.waveform.samples
    assert b.diagnostics["result_cache"] == "submit"


def test_cross_engine_submission_hits_the_content_cache(client):
    base_engine = SimConfig().engine     # whatever the env resolves to
    other_engine = "kernel" if base_engine != "kernel" else "levelized"
    base = client.submit("streams", cycles=200)
    client.wait(base["id"])
    reference = client.result(base["id"])

    other = client.submit("streams", cycles=200,
                          config={"engine": other_engine})
    final = client.wait(other["id"])
    # same topology fingerprint + stimulus -> served from the content
    # cache without running (the repo pins engines bit-identical)
    assert final["cached"] == "content"
    served = client.result(other["id"])
    assert served.activity == reference.activity
    assert served.waveform.samples == reference.waveform.samples
    # the echoed config is the requester's; diagnostics say who computed
    assert served.config.engine == other_engine
    assert served.diagnostics["computed_by"]["engine"] == base_engine


def test_sweep_and_bench_job_kinds(client):
    record = client.submit(kind="sweep", scenarios=["streams", "memory"],
                           cycles=120)
    client.wait(record["id"], timeout=180)
    sweep = client.result(record["id"])
    assert set(sweep) == {"streams", "memory"}
    direct = Session(SimConfig(cycles=120)).run("streams")
    assert sweep["streams"]["total_activity"] == direct.total_activity

    record = client.submit(kind="bench", scenarios=["streams"],
                           cycles=120, warmup=2, repeats=1)
    client.wait(record["id"], timeout=180)
    rows = client.result(record["id"])
    assert rows[0]["scenario"] == "streams"
    assert rows[0]["equivalent"] is True


# ---------------------------------------------------------------------------
# backpressure and lifecycle
# ---------------------------------------------------------------------------
def test_backpressure_429_at_queue_capacity():
    srv = ReproServer(config=SimConfig(), port=0, queue_depth=1,
                      workers=1, retry_after=2.5).start_in_thread()
    try:
        with ServerClient(port=srv.port) as cl:
            running = cl.submit("server_slow", cycles=800)
            deadline = time.monotonic() + 30
            while cl.status(running["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            queued = cl.submit("server_slow", cycles=801)
            assert cl.status(queued["id"])["state"] == "queued"
            with pytest.raises(ServerBusy) as exc_info:
                cl.submit("server_slow", cycles=802)
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after == pytest.approx(2.5, abs=1)
            # a queued job can be cancelled, freeing its slot
            cancelled = cl.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            retry = cl.submit("server_slow", cycles=803)
            assert retry["state"] == "queued"
    finally:
        srv.close()


def test_identical_inflight_submissions_coalesce(client):
    a = client.submit("server_slow", cycles=400)
    b = client.submit("server_slow", cycles=400)
    assert a["id"] == b["id"]
    assert client.stats()["coalesced"] >= 1
    client.wait(a["id"], timeout=60)


def test_cancel_running_job_is_409(client):
    record = client.submit("server_slow", cycles=900)
    deadline = time.monotonic() + 30
    while client.status(record["id"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.005)
    with pytest.raises(ServerError) as exc_info:
        client.cancel(record["id"])
    assert exc_info.value.status == 409
    client.wait(record["id"], timeout=60)


def test_bad_submissions_are_400(client):
    for body in (
        {"kind": "explode", "scenario": "streams"},
        {"kind": "run"},                               # no scenario
        {"kind": "run", "scenario": "nope_not_real"},
        {"kind": "run", "scenario": "streams",
         "config": {"engine": "warp-drive"}},
        {"kind": "run", "scenario": "streams", "trace_buffer": 0},
        {"kind": "sweep", "stream": True},             # stream != sweep
    ):
        with pytest.raises(ServerError) as exc_info:
            client._request("POST", "/jobs", body)
        assert exc_info.value.status == 400, body

    assert client._request("GET", "/jobs") is not None
    with pytest.raises(ServerError) as exc_info:
        client.status("job-999999")
    assert exc_info.value.status == 404
    with pytest.raises(ServerError) as exc_info:
        client._request("GET", "/no/such/route")
    assert exc_info.value.status == 404


def test_result_before_done_is_409(client):
    record = client.submit("server_slow", cycles=500)
    with pytest.raises(ServerError) as exc_info:
        client.result(record["id"])
    assert exc_info.value.status == 409
    client.wait(record["id"], timeout=60)
    assert client.result(record["id"]).cycles == 500


# ---------------------------------------------------------------------------
# trace streaming over WebSocket
# ---------------------------------------------------------------------------
def test_stream_delivers_every_cycle_delta(client):
    record = client.submit("streams", cycles=64, stream=True)
    frames = list(client.stream(record["id"]))
    deltas = [f for f in frames if f["type"] == "delta"]
    end = frames[-1]
    assert end["type"] == "end"
    assert end["state"] == "done"
    assert end["dropped"] == 0
    assert len(deltas) == 64
    assert [d["cycle"] for d in deltas] == list(range(64))
    # activity is cumulative and the final delta matches the result
    assert deltas[-1]["activity"] == client.result(record["id"]).total_activity


def test_concurrent_websocket_clients_see_identical_streams(client):
    record = client.submit("server_slow", cycles=120, stream=True)
    streams: dict = {}
    errors: list = []

    def consume(i):
        try:
            with ServerClient(port=client.port) as own:
                streams[i] = list(own.stream(record["id"]))
        except Exception as exc:   # surfaced to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=consume, args=(i,))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert set(streams) == {0, 1, 2, 3}
    reference = streams[0]
    deltas = [f for f in reference if f["type"] == "delta"]
    assert len(deltas) == 120
    for i in (1, 2, 3):
        assert streams[i] == reference


def test_slow_consumer_drops_are_flagged_not_stalling(client):
    # ring depth 16 << 96 cycles: by the time this late subscriber
    # connects, most deltas are evicted -- the stream must still end
    # cleanly, flagging exactly how many it lost
    record = client.submit("streams", cycles=96, stream=True,
                           trace_buffer=16)
    client.wait(record["id"])
    frames = list(client.stream(record["id"]))
    deltas = [f for f in frames if f["type"] == "delta"]
    end = frames[-1]
    assert end["type"] == "end"
    assert 0 < len(deltas) <= 16
    assert end["dropped"] == 96 - len(deltas)
    assert deltas[-1]["cycle"] == 95     # the retained tail, in order


def test_trace_hub_drop_accounting_is_exact():
    hub = TraceHub(depth=4)

    async def exercise():
        sub = hub.subscribe(asyncio.get_running_loop())
        for i in range(10):
            hub.publish({"type": "delta", "cycle": i})
        hub.close(state="done")
        return [d async for d in sub.deltas()], sub.dropped

    got, dropped = asyncio.run(exercise())
    assert [d["cycle"] for d in got] == [6, 7, 8, 9]
    assert dropped == 6
    assert hub.stats()["retained"] == 4


def test_stream_request_on_plain_job_is_409(client):
    record = client.submit("streams", cycles=64)
    client.wait(record["id"])
    with pytest.raises(ServerError) as exc_info:
        list(client.stream(record["id"]))
    assert exc_info.value.status == 409


# ---------------------------------------------------------------------------
# the acceptance integration: 8 concurrent clients, one warm cache
# ---------------------------------------------------------------------------
def test_eight_concurrent_clients_one_simulation_zero_recompiles():
    config = SimConfig(cycles=250, engine="kernel", backend="pycompiled")
    direct = Session(config).run("anvil_streams")   # primes the caches
    overrides = {"engine": "kernel", "backend": "pycompiled"}

    srv = ReproServer(config=SimConfig(), port=0, queue_depth=4,
                      workers=2).start_in_thread()
    try:
        pysim_misses = pysim.cache_stats()["misses"]
        kernel_misses = kernel.cache_stats()["misses"]
        results: dict = {}
        errors: list = []

        def one_client(i):
            try:
                with ServerClient(port=srv.port) as cl:
                    results[i] = cl.run("anvil_streams", cycles=250,
                                        config=overrides)
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not errors
        assert set(results) == set(range(8))

        for res in results.values():
            assert res.cycles == direct.cycles
            assert res.total_activity == direct.total_activity
            assert res.activity == direct.activity
            assert res.waveform.samples == direct.waveform.samples

        # the warm caches served every worker: nothing recompiled
        assert pysim.cache_stats()["misses"] == pysim_misses
        assert kernel.cache_stats()["misses"] == kernel_misses
        # and at most one simulation actually ran: everyone else was
        # answered by coalescing or the result cache
        stats = srv.queue.stats()
        cache = stats["result_cache"]
        assert cache["hits"] + cache["content_hits"] + stats["coalesced"] \
            >= 7
        assert stats["states"]["failed"] == 0

        # a full queue answers 429, never accepts unbounded work
        with ServerClient(port=srv.port) as cl:
            with pytest.raises(ServerBusy):
                for i in range(1 + stats["depth"] + len(srv.queue._workers)):
                    cl.submit("server_slow", cycles=600 + i)
    finally:
        srv.close()


# ---------------------------------------------------------------------------
# queue unit behaviour (no sockets)
# ---------------------------------------------------------------------------
def test_job_queue_rejects_invalid_shapes_before_queueing():
    q = JobQueue(depth=2, workers=1)
    # never started: submissions still validate
    from repro.server.jobs import BadSubmission
    for payload in ("not a dict", {"kind": "run"},
                    {"kind": "run", "scenario": "streams",
                     "cycles": "many"}):
        with pytest.raises((BadSubmission, Backpressure)):
            q.submit(payload if isinstance(payload, dict) else payload)


def test_job_queue_backpressure_without_server():
    q = JobQueue(depth=1, workers=1).start()
    try:
        a = q.submit({"scenario": "server_slow", "cycles": 500})
        deadline = time.monotonic() + 30
        while a.state != "running":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        q.submit({"scenario": "server_slow", "cycles": 501})
        with pytest.raises(Backpressure):
            q.submit({"scenario": "server_slow", "cycles": 502})
    finally:
        summary = q.shutdown(drain=True)
    assert summary["cancelled"] == 1     # the queued job was cancelled
    assert a.state == "done"


# ---------------------------------------------------------------------------
# wire schema round trips (the satellite: one pinned JSON shape)
# ---------------------------------------------------------------------------
def test_simconfig_json_round_trip():
    cfg = SimConfig(engine="kernel", backend="pycompiled", cycles=123,
                    seed=7, stim=55, batch=4, trace=True)
    assert SimConfig.from_json(cfg.to_json()) == cfg
    # canonical: key order cannot wobble the text (cache key material)
    assert cfg.to_json() == SimConfig.from_json(cfg.to_json()).to_json()
    with pytest.raises(ValueError):
        SimConfig.from_json("[1, 2, 3]")


def test_runresult_json_round_trip_preserves_observables():
    result = Session(SimConfig(cycles=80, trace=True)).run("streams")
    back = RunResult.from_json(result.to_json())
    assert back.scenario == result.scenario
    assert back.cycles == result.cycles
    assert back.total_activity == result.total_activity
    assert back.activity == result.activity
    assert back.waveform.samples == result.waveform.samples
    assert back.trace == result.trace
    assert back.config == result.config
    assert back.sim is None
    assert back.cycles_per_second == pytest.approx(
        result.cycles_per_second)


def test_cli_json_output_parses_as_runresult():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "streams",
         "--cycles", "90", "--activity", "--json", "-"],
        capture_output=True, text=True, timeout=120,
        env={**os.environ, "PYTHONPATH": "src"}, cwd=ROOT)
    assert proc.returncode == 0, proc.stderr
    back = RunResult.from_dict(json.loads(proc.stdout))
    direct = Session(SimConfig(cycles=90)).run("streams")
    assert back.cycles == direct.cycles
    assert back.total_activity == direct.total_activity
    assert back.activity == direct.activity


# ---------------------------------------------------------------------------
# graceful shutdown (the satellite: no tracebacks on SIGINT/SIGTERM)
# ---------------------------------------------------------------------------
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn_repro(*argv):
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": "src"}, cwd=ROOT)


@pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
def test_interrupted_sweep_exits_cleanly(sig):
    # 16 seeds x every rtl scenario x 30k cycles: long enough that the
    # signal always lands mid-sweep, short enough that the running jobs
    # finish promptly once the queued remainder is cancelled
    proc = _spawn_repro("sweep", "--tag", "rtl", "--seeds", "16",
                        "--cycles", "30000")
    time.sleep(2.0)              # let it get into the run loop
    proc.send_signal(sig)
    stdout, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 130, (stdout, stderr)
    assert "interrupted" in stderr
    assert "Traceback" not in stderr


def test_serve_drains_and_reports_on_sigterm():
    proc = _spawn_repro("serve", "--port", "0", "--workers", "1")
    try:
        line = proc.stdout.readline()
        assert "repro.server listening on" in line
        port = int(line.split("http://")[1].split(":")[1].split()[0])
        with ServerClient(port=port) as cl:
            record = cl.submit("streams", cycles=60)
            cl.wait(record["id"])
        proc.send_signal(signal.SIGTERM)
        stdout, stderr = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (stdout, stderr)
    assert "shut down cleanly" in stderr
    assert "Traceback" not in stderr


# ---------------------------------------------------------------------------
# compile-cache hammer (the satellite: concurrent workers, one compile)
# ---------------------------------------------------------------------------
def _hammer(fn, n=8):
    barrier = threading.Barrier(n)
    errors: list = []

    def run():
        try:
            barrier.wait(timeout=30)
            fn()
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=run) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    assert not errors


def test_pysim_cache_survives_concurrent_compilation():
    pysim.clear_cache()
    Session(SimConfig(cycles=10, backend="pycompiled")).run("anvil_streams")
    expected = pysim.cache_stats()["misses"]     # distinct plans compiled
    assert pysim.cache_stats()["entries"] == expected

    pysim.clear_cache()
    _hammer(lambda: Session(
        SimConfig(cycles=10, backend="pycompiled")).run("anvil_streams"))
    stats = pysim.cache_stats()
    # the lock makes lookup-compile-insert atomic: racing workers never
    # duplicate an entry or double-count a miss
    assert stats["misses"] == expected
    assert stats["entries"] == expected


def test_kernel_cache_survives_concurrent_compilation():
    kernel.clear_cache()
    Session(SimConfig(cycles=10, engine="kernel")).run("streams")
    expected = kernel.cache_stats()["misses"]
    assert kernel.cache_stats()["entries"] == expected

    kernel.clear_cache()
    # under REPRO_CHECKPOINT_EVERY the seed run above left a full-run
    # checkpoint; drop it so the hammered re-runs actually simulate
    # (and compile) instead of restoring the warm prefix
    reset_checkpoint_store()
    _hammer(lambda: Session(
        SimConfig(cycles=10, engine="kernel")).run("streams"))
    stats = kernel.cache_stats()
    assert stats["misses"] == expected
    assert stats["entries"] == expected


def test_simulator_monitor_detach():
    sim = get_registry().build("streams", SimConfig(cycles=10))
    seen = []
    sim.on_cycle(seen.append)
    sim.run(5)
    assert seen == [0, 1, 2, 3, 4]
    assert sim.remove_monitor(seen.append) is True
    assert sim.remove_monitor(seen.append) is False
    sim.run(5)
    assert seen == [0, 1, 2, 3, 4]       # detached: no further calls
