"""Tests for term -> event graph construction and lifetime inference."""

import pytest

from repro import ElaborationError, Logic, Process, Side, Thread
from repro.core.events import EventKind, SyncDir
from repro.core.graph_builder import GraphBuilder
from repro.lang.terms import (
    cycle,
    if_,
    let,
    lit,
    par,
    read,
    recurse,
    recv,
    send,
    set_reg,
    unit,
    var,
)

from helpers import stream_channel


def build(body, kind=Thread.LOOP, iterations=1, setup=None):
    p = Process("t")
    p.endpoint("s", stream_channel(), Side.RIGHT)
    p.endpoint("o", stream_channel("out"), Side.LEFT)
    p.register("r", Logic(8))
    p.register("r2", Logic(8))
    if setup:
        setup(p)
    if kind == Thread.LOOP:
        th = p.loop(body)
    else:
        th = p.recursive(body)
    return GraphBuilder(p, th).build(iterations)


class TestStructure:
    def test_cycle_creates_delay_event(self):
        res = build(cycle(3))
        delays = [e for e in res.graph.events if e.kind is EventKind.DELAY]
        assert len(delays) == 1 and delays[0].delay == 3

    def test_cycle_zero_creates_no_event(self):
        res = build(cycle(0))
        assert len(res.graph) == 1  # just the root

    def test_recv_creates_sync_event(self):
        res = build(let("x", recv("s", "data"), unit()))
        syncs = res.graph.sync_events("s", "data")
        assert len(syncs) == 1
        assert syncs[0].direction is SyncDir.RECV

    def test_send_records_obligation(self):
        res = build(send("o", "data", 1))
        assert len(res.sends) == 1
        assert res.sends[0].message == "data"

    def test_wait_sequences_events(self):
        res = build(cycle(1) >> cycle(2))
        d1, d2 = [e for e in res.graph.events if e.kind is EventKind.DELAY]
        assert res.graph.is_ancestor(d1.eid, d2.eid)

    def test_par_creates_join(self):
        res = build(par(cycle(1), cycle(2)))
        joins = [e for e in res.graph.events if e.kind is EventKind.JOIN_ALL]
        assert len(joins) == 1

    def test_if_creates_branches_and_join(self):
        res = build(if_(read("r").eq(0), cycle(1), cycle(2)))
        kinds = [e.kind for e in res.graph.events]
        assert kinds.count(EventKind.BRANCH) == 2
        assert kinds.count(EventKind.JOIN_ANY) == 1

    def test_set_reg_mutation_recorded(self):
        res = build(set_reg("r", 5))
        assert len(res.mutations) == 1
        assert res.mutations[0].register == "r"

    def test_unrolled_iterations_share_graph(self):
        res1 = build(cycle(1), iterations=1)
        res2 = build(cycle(1), iterations=2)
        assert len(res2.graph) == 2 * len(res1.graph) - 1

    def test_loop_anchor_is_completion(self):
        res = build(cycle(1) >> cycle(1), iterations=1)
        assert res.anchor == len(res.graph) - 1

    def test_recursive_anchor_is_recurse_event(self):
        res = build(
            let("x", recv("s", "data"),
                par(var("x") >> set_reg("r", var("x")),
                    cycle(1) >> recurse())),
            kind=Thread.RECURSIVE,
        )
        anchor = res.graph[res.anchor]
        assert anchor.note == "recurse"

    def test_recurse_outside_recursive_rejected(self):
        with pytest.raises(ElaborationError):
            build(recurse())

    def test_double_recurse_rejected(self):
        with pytest.raises(ElaborationError):
            build(recurse() >> recurse(), kind=Thread.RECURSIVE)


class TestValues:
    def test_literal_is_eternal(self):
        res = build(send("o", "data", lit(7, 8)))
        use = res.uses[0]
        assert use.value.end.is_eternal

    def test_recv_value_has_contract_lifetime(self):
        res = build(
            let("x", recv("s", "data"),
                var("x") >> set_reg("r", var("x")))
        )
        use = [u for u in res.uses if u.context.endswith("set r")][0]
        assert not use.value.end.is_eternal
        pattern = use.value.end.patterns[0]
        assert pattern.duration.is_static and pattern.duration.cycles == 1

    def test_reg_read_tracks_dependency(self):
        res = build(send("o", "data", read("r") + read("r2")))
        use = res.uses[0]
        regs = {r for r, _ in use.value.reg_reads}
        assert regs == {"r", "r2"}

    def test_unbound_var_rejected(self):
        with pytest.raises(ElaborationError):
            build(var("nope") >> unit())

    def test_field_on_non_bundle_rejected(self):
        with pytest.raises(ElaborationError):
            build(send("o", "data", read("r").field("x")))

    def test_slice_out_of_range_rejected(self):
        with pytest.raises(ElaborationError):
            build(send("o", "data", read("r").bits(9, 0)))

    def test_if_value_merges_lifetimes(self):
        res = build(
            let("x", recv("s", "data"),
                set_reg("r", if_(var("x").eq(0), lit(1, 8), var("x"))))
        )
        use = [u for u in res.uses if u.context.endswith("set r")][0]
        # the mux result inherits the recv'd value's 1-cycle lifetime
        assert not use.value.end.is_eternal


class TestDirectionChecks:
    def test_send_on_receiving_endpoint_rejected(self):
        with pytest.raises(ElaborationError):
            build(send("s", "data", 1))

    def test_recv_on_sending_endpoint_rejected(self):
        with pytest.raises(ElaborationError):
            build(let("x", recv("o", "data"), unit()))
