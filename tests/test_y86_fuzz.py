"""The differential fuzzer (`repro.isa.fuzz`): an always-on smoke tier
(every CI run), a `slow`-marked batch of >=50 generated programs with a
fixed seed (scalable via REPRO_FUZZ_COUNT for the dedicated CI job),
determinism of the generator and of whole fuzz batches, generated-
program well-formedness, and the reproduction report a mismatch ships
with (seed + state diff + full assembly listing)."""

import os
import random

import pytest

from repro.isa.assembler import assemble
from repro.isa.encoding import SADR, SHLT, SINS
from repro.isa.fuzz import (
    DEFAULT_ENGINES,
    DifferentialMismatch,
    _mismatch,
    differential_check,
    generate_program,
    run_fuzz,
)
from repro.isa.programs import BUNDLED
from repro.isa.reference import ReferenceMachine

#: the fixed batch seed; CHANGING THIS INVALIDATES TRIAGE NOTES
BATCH_SEED = 20260808

#: the dedicated CI job scales the slow batch up through the
#: environment; 50 programs is the floor the issue pins
SLOW_COUNT = max(50, int(os.environ.get("REPRO_FUZZ_COUNT", "50")))


# ---------------------------------------------------------------------------
# smoke tier: runs in every test invocation, seconds not minutes
# ---------------------------------------------------------------------------
class TestSmoke:
    def test_five_programs_across_all_engines(self):
        results = run_fuzz(5, seed=BATCH_SEED, anvil_every=5)
        assert len(results) == 5
        for r in results:
            assert r.instret > 0
            assert set(r.cycles) >= {f"rtl/{e}" for e in DEFAULT_ENGINES}
        # program 0 also went through the Anvil core
        assert "anvil/interp" in results[0].cycles

    def test_bundled_programs_differentially(self):
        rng = random.Random(11)
        values = [rng.getrandbits(64) for _ in range(4)]
        for name, gen in BUNDLED.items():
            result = differential_check(gen(values),
                                        anvil_backends=("interp",))
            assert result.stat == SHLT, name


# ---------------------------------------------------------------------------
# generator properties (no simulators: cheap enough for wide coverage)
# ---------------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_program(self):
        assert generate_program(42) == generate_program(42)
        assert generate_program(42) != generate_program(43)

    def test_programs_assemble_and_terminate(self):
        """Termination is by construction; hold the generator to it on
        the reference interpreter over a wide seed range."""
        statuses = set()
        for seed in range(150):
            prog = assemble(generate_program(seed))
            state = ReferenceMachine(prog.image).run(max_steps=20_000)
            assert state.stat in (SHLT, SADR, SINS), seed
            statuses.add(state.stat)
        # the grammar exercises the clean-halt path AND the fault tails
        assert SHLT in statuses
        assert statuses & {SADR, SINS}

    def test_seed_names_itself_in_the_source(self):
        assert "# fuzz seed 1234" in generate_program(1234)


# ---------------------------------------------------------------------------
# the mismatch report: a failure must be reproducible from the output
# ---------------------------------------------------------------------------
class TestMismatchReport:
    def test_report_carries_seed_diff_and_listing(self):
        prog = assemble(generate_program(99))
        expected = ReferenceMachine(prog.image).run()
        corrupted = expected.__class__(
            registers=(0xBAD,) + expected.registers[1:],
            zf=expected.zf, sf=expected.sf, of=expected.of,
            pc=expected.pc, stat=expected.stat,
            instret=expected.instret + 1, memory=expected.memory)
        err = _mismatch("rtl/kernel", 99, prog, expected, corrupted)
        assert isinstance(err, DifferentialMismatch)
        msg = str(err)
        assert "fuzz seed 99" in msg and "rtl/kernel" in msg
        assert "%rax" in msg and "instret" in msg      # the state diff
        assert "| " in msg and "irmovq" in msg         # the listing

    def test_mismatch_is_an_assertion_error(self):
        # pytest renders it without wrapping, so the listing reaches
        # the terminal verbatim
        assert issubclass(DifferentialMismatch, AssertionError)


# ---------------------------------------------------------------------------
# the full batch, deterministically
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestFullBatch:
    def test_batch_of_at_least_fifty(self):
        results = run_fuzz(SLOW_COUNT, seed=BATCH_SEED, anvil_every=10)
        assert len(results) == SLOW_COUNT
        statuses = {r.stat for r in results}
        assert SHLT in statuses
        assert statuses & {SADR, SINS}
        # every case carries its standalone reproduction seed
        assert all(r.seed == BATCH_SEED * 1_000_003 + i
                   for i, r in enumerate(results))

    def test_fuzz_batches_are_deterministic(self):
        a = run_fuzz(8, seed=5, anvil_every=4)
        b = run_fuzz(8, seed=5, anvil_every=4)
        assert a == b
