"""Property-based stream equivalence: the Anvil FIFO and spill register
match their baselines for arbitrary stimulus and stall patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Simulator, System, build_simulation
from repro.anvil_designs.streams import fifo_buffer, spill_register
from repro.codegen.simfsm import MessagePort
from repro.designs.streams import FifoBuffer, SpillRegister
from repro.rtl.testing import PortSink, PortSource

_FIFO_ANVIL_CACHE = {}


def _baseline(module_cls, data, ready_mask, cycles, **kw):
    sim = Simulator()
    inp, out = MessagePort("i", 8), MessagePort("o", 8)
    dut = module_cls("dut", inp, out, **kw)
    src, sink = PortSource("s", inp), PortSink(
        "k", out, lambda c: bool(ready_mask >> (c % 32) & 1)
    )
    src.push(*data)
    for m in (src, dut, sink):
        sim.add(m)
    sim.run(cycles)
    return sink.received


def _anvil(factory, data, ready_mask, cycles, **kw):
    sys_ = System()
    inst = sys_.add(factory(**kw))
    ci, co = sys_.expose(inst, "inp"), sys_.expose(inst, "out")
    ss = build_simulation(sys_)
    ip = ss.external(ci).ports["data"]
    op = ss.external(co).ports["data"]
    ss.sim.modules = [m for m in ss.sim.modules
                      if m not in ss.externals.values()]
    src = PortSource("s", ip)
    sink = PortSink("k", op, lambda c: bool(ready_mask >> (c % 32) & 1))
    src.push(*data)
    ss.sim.add(src)
    ss.sim.add(sink)
    ss.sim.run(cycles)
    return sink.received


@settings(max_examples=8, deadline=None)
@given(
    data=st.lists(st.integers(0, 255), min_size=1, max_size=6),
    ready_mask=st.integers(1, 2**32 - 1),
)
def test_fifo_equivalent_under_arbitrary_stalls(data, ready_mask):
    cycles = min(32 * (len(data) + 2), 160)
    base = _baseline(FifoBuffer, data, ready_mask, cycles, depth=4)
    anv = _anvil(fifo_buffer, data, ready_mask, cycles, depth=4)
    assert base == anv


@settings(max_examples=8, deadline=None)
@given(
    data=st.lists(st.integers(0, 255), min_size=1, max_size=6),
    ready_mask=st.integers(1, 2**32 - 1),
)
def test_spill_register_equivalent_under_arbitrary_stalls(data, ready_mask):
    cycles = min(32 * (len(data) + 2), 160)
    base = _baseline(SpillRegister, data, ready_mask, cycles)
    anv = _anvil(spill_register, data, ready_mask, cycles)
    assert base == anv


@settings(max_examples=8, deadline=None)
@given(data=st.lists(st.integers(0, 255), min_size=1, max_size=8))
def test_fifo_never_reorders_or_drops(data):
    anv = _anvil(fifo_buffer, data, 2**32 - 1, 16 + 2 * len(data), depth=4)
    assert [v for _, v in anv] == data
