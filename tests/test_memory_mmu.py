"""Memory, cache and MMU designs: hazards, dynamic latency, equivalence."""

from repro import Simulator, System, build_simulation, check_process
from repro.anvil_designs.memory import (
    cached_memory_process,
    cached_memory_static_process,
    memory_process,
)
from repro.anvil_designs.mmu import ptw_process, tlb_process
from repro.codegen.simfsm import MessagePort
from repro.designs.memory import (
    CachedMemory,
    HandshakeMemory,
    NaiveTop,
    RawMemory,
)
from repro.designs.mmu import (
    FAULT,
    PageTableWalker,
    build_page_table,
)
from repro.rtl.testing import PortSink, PortSource


class TestFigure1Hazard:
    """The motivating example: Top misreads a 2-cycle memory."""

    def test_naive_top_reads_wrong_values(self):
        sim = Simulator()
        mem = RawMemory("mem", latency=2)
        top = NaiveTop("top", mem)
        sim.add(mem)
        sim.add(top)
        sim.run(20)
        observed = [v for _, v in top.reads]
        expected = list(range(len(observed)))  # Val 0, Val 1, Val 2, ...
        assert observed != expected  # the hazard: outputs are wrong
        # only every other address is actually dereferenced (Val 0, 2, 4..)
        distinct = []
        for v in observed[1:]:
            if not distinct or distinct[-1] != v:
                distinct.append(v)
        assert distinct[:3] == [0, 2, 4]

    def test_memory_itself_is_fine_when_contract_respected(self):
        """Holding req and the address steady for the full 2-cycle window
        (the implicit contract) yields the right answer."""
        sim = Simulator()
        mem = RawMemory("mem", latency=2)
        sim.add(mem)
        mem.inp.set(7)
        mem.req.set(1)
        sim.step()
        sim.step()          # req and inp stable for both processing cycles
        mem.req.set(0)
        sim.settle()
        assert mem.out.value == 7


class TestAnvilMemory:
    def test_typechecks(self):
        assert check_process(memory_process()).ok

    def test_two_cycle_response(self):
        sys_ = System()
        inst = sys_.add(memory_process(latency=2))
        ch = sys_.expose(inst, "host")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ext.always_receive("res")
        for addr in (3, 9, 200):
            ext.send("req", addr)
        ss.sim.run(20)
        values = [v for _, v in ext.received["res"]]
        assert values == [3, 9, 200]
        # first response exactly 2 cycles after the request synchronized
        req_c = ext.sent["req"][0][0]
        res_c = ext.received["res"][0][0]
        assert res_c - req_c == 2


class TestFigure4Cache:
    def drive(self, factory, addrs, cycles=200):
        sys_ = System()
        inst = sys_.add(factory())
        ch = sys_.expose(inst, "host")
        ss = build_simulation(sys_)
        ext = ss.external(ch)
        ext.always_receive("res")
        for a in addrs:
            ext.send("req", a)
        ss.sim.run(cycles)
        reqs = ext.sent.get("req", [])
        ress = ext.received.get("res", [])
        lat = [r[0] - q[0] for q, r in zip(reqs, ress)]
        return [v for _, v in ress], lat

    def test_typechecks(self):
        assert check_process(cached_memory_process()).ok
        assert check_process(cached_memory_static_process()).ok

    def test_dynamic_contract_hit_faster_than_miss(self):
        values, lat = self.drive(cached_memory_process, [5, 5, 5])
        assert values == [5, 5, 5]
        assert lat[0] == 3      # cold miss
        assert lat[1] == 1      # hit
        assert lat[2] == 1

    def test_static_contract_pays_worst_case_always(self):
        values, lat = self.drive(cached_memory_static_process, [5, 5, 5])
        assert values == [5, 5, 5]
        assert lat == [3, 3, 3]  # hits cost as much as misses

    def test_matches_baseline_cache_behaviour(self):
        addrs = [1, 2, 1, 2, 9, 1]
        values, lat = self.drive(cached_memory_process, addrs)
        # baseline
        sim = Simulator()
        req = MessagePort("req", 8)
        res = MessagePort("res", 8)
        cm = CachedMemory("cm", req, res)
        src = PortSource("s", req)
        sink = PortSink("k", res)
        src.push(*addrs)
        for m in (src, cm, sink):
            sim.add(m)
        sim.run(200)
        assert [v for _, v in sink.received] == values
        base_kinds = [k for _, k, _ in cm.latencies]
        anvil_kinds = ["hit" if lt == 1 else "miss" for lt in lat]
        assert base_kinds == anvil_kinds


def make_ptw_system(mapping, mem_latency=1):
    """Anvil PTW walking a baseline HandshakeMemory page table."""
    image = build_page_table(mapping)
    sys_ = System()
    inst = sys_.add(ptw_process())
    host = sys_.expose(inst, "host")
    memch = sys_.expose(inst, "mem")
    ss = build_simulation(sys_)
    mem_ext = ss.externals[memch.cid]
    # replace the generic external with a real memory on the same wires
    ss.sim.modules.remove(mem_ext)
    mem = HandshakeMemory(
        "ptmem", mem_ext.ports["req"], mem_ext.ports["res"],
        latency=mem_latency, contents=lambda a: image.get(a, 0),
    )
    ss.sim.add(mem)
    return ss, ss.external(host)


class TestPtw:
    MAPPING = {0x123: 0xABC, 0x124: 0xABD, 0x200: 0x555}

    def test_typechecks(self):
        assert check_process(ptw_process()).ok

    def test_translates_mapped_pages(self):
        ss, host = make_ptw_system(self.MAPPING)
        host.always_receive("res")
        for vpn in (0x123, 0x124, 0x200):
            host.send("req", vpn)
        ss.sim.run(120)
        got = [v for _, v in host.received["res"]]
        assert got == [0xABC, 0xABD, 0x555]

    def test_unmapped_page_faults(self):
        ss, host = make_ptw_system(self.MAPPING)
        host.always_receive("res")
        host.send("req", 0x999)
        ss.sim.run(60)
        assert host.received["res"][0][1] & FAULT

    def test_dynamic_latency_varies_with_memory(self):
        """The same walk takes longer when the memory is slower -- latency
        is a run-time property, not a contract constant."""
        lats = []
        for mem_latency in (1, 3):
            ss, host = make_ptw_system(self.MAPPING, mem_latency)
            host.always_receive("res")
            host.send("req", 0x123)
            ss.sim.run(120)
            req_c = host.sent["req"][0][0]
            res_c = host.received["res"][0][0]
            lats.append(res_c - req_c)
        assert lats[1] > lats[0]

    def test_matches_baseline_walker(self):
        image = build_page_table(self.MAPPING)
        sim = Simulator()
        hq, hs = MessagePort("hq", 12), MessagePort("hs", 16)
        mq, ms = MessagePort("mq", 16), MessagePort("ms", 16)
        ptw = PageTableWalker("ptw", hq, hs, mq, ms)
        mem = HandshakeMemory("mem", mq, ms, latency=1,
                              contents=lambda a: image.get(a, 0))
        src = PortSource("src", hq)
        sink = PortSink("sink", hs)
        src.push(0x123, 0x999, 0x200)
        for m in (src, ptw, mem, sink):
            sim.add(m)
        sim.run(150)
        base = [v for _, v in sink.received]

        ss, host = make_ptw_system(self.MAPPING)
        host.always_receive("res")
        for vpn in (0x123, 0x999, 0x200):
            host.send("req", vpn)
        ss.sim.run(150)
        anv = [v for _, v in host.received["res"]]
        assert base == anv


class TestTlb:
    MAPPING = {0x010: 0x0AA, 0x011: 0x0AB, 0x012: 0x0AC,
               0x013: 0x0AD, 0x014: 0x0AE}

    def make_system(self):
        """Anvil TLB fronting the Anvil PTW over a baseline memory."""
        image = build_page_table(self.MAPPING)
        sys_ = System()
        tlb = sys_.add(tlb_process())
        ptw = sys_.add(ptw_process())
        sys_.connect(tlb, "ptw", ptw, "host")
        host = sys_.expose(tlb, "host")
        memch = sys_.expose(ptw, "mem")
        ss = build_simulation(sys_)
        mem_ext = ss.externals[memch.cid]
        ss.sim.modules.remove(mem_ext)
        mem = HandshakeMemory(
            "ptmem", mem_ext.ports["req"], mem_ext.ports["res"],
            latency=1, contents=lambda a: image.get(a, 0),
        )
        ss.sim.add(mem)
        return ss, ss.external(host)

    def test_typechecks(self):
        assert check_process(tlb_process()).ok

    def test_hit_is_much_faster_than_miss(self):
        ss, host = self.make_system()
        host.always_receive("res")
        for vpn in (0x010, 0x010, 0x010):
            host.send("req", vpn)
        ss.sim.run(120)
        reqs, ress = host.sent["req"], host.received["res"]
        lats = [r[0] - q[0] for q, r in zip(reqs, ress)]
        assert lats[0] > lats[1]        # cold miss slower
        assert lats[1] == lats[2] == 1  # hits: one registered cycle
        values = [v for _, v in ress]
        assert values == [0x0AA] * 3

    def test_replacement_evicts_fifo(self):
        ss, host = self.make_system()
        host.always_receive("res")
        vpns = [0x010, 0x011, 0x012, 0x013, 0x014, 0x010]
        for vpn in vpns:
            host.send("req", vpn)
        ss.sim.run(400)
        values = [v for _, v in host.received["res"]]
        assert values == [0x0AA, 0x0AB, 0x0AC, 0x0AD, 0x0AE, 0x0AA]
        # 0x010 was evicted by 0x014 (4-entry TLB): the last is a miss again
        reqs, ress = host.sent["req"], host.received["res"]
        lats = [r[0] - q[0] for q, r in zip(reqs, ress)]
        assert lats[-1] > 1

    def test_fault_not_cached(self):
        ss, host = self.make_system()
        host.always_receive("res")
        host.send("req", 0x999)
        host.send("req", 0x999)
        ss.sim.run(200)
        reqs, ress = host.sent["req"], host.received["res"]
        assert all(v & FAULT for _, v in ress)
        lats = [r[0] - q[0] for q, r in zip(reqs, ress)]
        assert lats[1] > 1  # still a miss: faults are not installed
