"""Runtime-expression IR: evaluation semantics, widths, gate model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import rexpr as rx
from repro.lang.types import Bundle, Logic


def env(regs=None, slots=None):
    return rx.REnv(regs or {}, slots or {})


class TestEval:
    def test_literal_masked(self):
        assert rx.RLit(0x1FF, 8).eval(env()) == 0xFF

    def test_reg_read(self):
        assert rx.RReg("a", 8).eval(env({"a": 0x12})) == 0x12

    def test_slot_default_zero(self):
        assert rx.RSlot(3, 8).eval(env()) == 0

    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 200, 100, 44),          # 8-bit wrap
        ("sub", 5, 7, 254),
        ("mul", 20, 20, 400 & 0xFF),
        ("and", 0xF0, 0x3C, 0x30),
        ("or", 0xF0, 0x0C, 0xFC),
        ("xor", 0xFF, 0x0F, 0xF0),
        ("eq", 5, 5, 1),
        ("ne", 5, 5, 0),
        ("lt", 3, 5, 1),
        ("ge", 3, 5, 0),
        ("shl", 1, 3, 8),
        ("shr", 8, 3, 1),
    ])
    def test_binops(self, op, a, b, expected):
        e = rx.RBin(op, rx.RLit(a, 8), rx.RLit(b, 8), 8)
        assert e.eval(env()) == expected

    def test_concat_msb_first(self):
        e = rx.RBin("concat", rx.RLit(0xA, 4), rx.RLit(0x5, 4), 8)
        assert e.eval(env()) == 0xA5

    def test_unops(self):
        assert rx.RUn("not", rx.RLit(0x0F, 8), 8).eval(env()) == 0xF0
        assert rx.RUn("redor", rx.RLit(0, 8), 1).eval(env()) == 0
        assert rx.RUn("redor", rx.RLit(2, 8), 1).eval(env()) == 1
        assert rx.RUn("redand", rx.RLit(0xFF, 8), 1).eval(env()) == 1
        assert rx.RUn("redxor", rx.RLit(0b101, 8), 1).eval(env()) == 0

    def test_slice(self):
        e = rx.RSlice(rx.RLit(0xABCD, 16), 11, 4)
        assert e.eval(env()) == 0xBC

    def test_mux_lazy(self):
        e = rx.RMux(rx.RLit(1, 1), rx.RLit(7, 8), rx.RLit(9, 8), 8)
        assert e.eval(env()) == 7
        e = rx.RMux(rx.RLit(0, 1), rx.RLit(7, 8), rx.RLit(9, 8), 8)
        assert e.eval(env()) == 9

    def test_bundle_pack(self):
        b = Bundle([("lo", Logic(4)), ("hi", Logic(4))])
        e = rx.RBundle(b, {"lo": rx.RLit(0x5, 4), "hi": rx.RLit(0xA, 4)})
        assert e.eval(env()) == 0xA5

    def test_field_extract(self):
        b = Bundle([("lo", Logic(4)), ("hi", Logic(4))])
        e = rx.RField(rx.RLit(0xA5, 8), b, "hi")
        assert e.eval(env()) == 0xA

    def test_table(self):
        t = rx.RTable(rx.RLit(3, 8), [10, 20, 30, 40], 8)
        assert t.eval(env()) == 40

    def test_table_out_of_range_is_zero(self):
        t = rx.RTable(rx.RLit(7, 8), [10, 20, 30, 40], 8)
        # index truncated to table's index width (2 bits) -> entry 3
        assert t.eval(env()) == 40


class TestGateModel:
    def test_const_shift_free(self):
        e = rx.RBin("shl", rx.RReg("a", 16), rx.RLit(3, 4), 16)
        assert e.gate_count() == {}
        assert e.depth() == 0

    def test_dynamic_shift_costs(self):
        e = rx.RBin("shl", rx.RReg("a", 16), rx.RReg("s", 4), 16)
        assert e.gate_count().get("mux2", 0) > 0

    def test_const_mask_free(self):
        e = rx.RBin("and", rx.RReg("a", 16), rx.RLit(0xFF, 16), 16)
        assert e.gate_count() == {}

    def test_adder_scales_with_width(self):
        small = rx.RBin("add", rx.RReg("a", 4), rx.RReg("b", 4), 4)
        big = rx.RBin("add", rx.RReg("a", 32), rx.RReg("b", 32), 32)
        assert sum(big.gate_count().values()) > \
            4 * sum(small.gate_count().values())

    def test_total_gates_walk(self):
        e = rx.RBin("xor", rx.RReg("a", 8),
                    rx.RBin("xor", rx.RReg("b", 8), rx.RReg("c", 8), 8), 8)
        assert rx.total_gates(e)["xor"] == 16

    def test_depth_composes(self):
        inner = rx.RBin("add", rx.RReg("a", 8), rx.RReg("b", 8), 8)
        outer = rx.RBin("xor", inner, rx.RReg("c", 8), 8)
        assert rx.total_depth(outer) > rx.total_depth(inner)


# hypothesis: IR semantics match Python integer semantics
_ops = st.sampled_from(
    ["add", "sub", "mul", "and", "or", "xor", "eq", "ne", "lt", "le",
     "gt", "ge"]
)


@settings(max_examples=300, deadline=None)
@given(op=_ops, a=st.integers(0, 255), b=st.integers(0, 255))
def test_binop_matches_python_semantics(op, a, b):
    e = rx.RBin(op, rx.RLit(a, 8), rx.RLit(b, 8), 8)
    got = e.eval(env())
    py = {
        "add": (a + b) & 0xFF, "sub": (a - b) & 0xFF,
        "mul": (a * b) & 0xFF,
        "and": a & b, "or": a | b, "xor": a ^ b,
        "eq": int(a == b), "ne": int(a != b),
        "lt": int(a < b), "le": int(a <= b),
        "gt": int(a > b), "ge": int(a >= b),
    }[op]
    assert got == py


@settings(max_examples=100, deadline=None)
@given(value=st.integers(0, 2**16 - 1),
       hi=st.integers(0, 15), lo=st.integers(0, 15))
def test_slice_matches_bit_arithmetic(value, hi, lo):
    if hi < lo:
        hi, lo = lo, hi
    e = rx.RSlice(rx.RLit(value, 16), hi, lo)
    assert e.eval(env()) == (value >> lo) & ((1 << (hi - lo + 1)) - 1)


@settings(max_examples=100, deadline=None)
@given(fields=st.lists(
    st.tuples(st.integers(1, 12), st.integers(0, 2**12 - 1)),
    min_size=1, max_size=4,
))
def test_bundle_roundtrip(fields):
    dtype = Bundle([(f"f{i}", Logic(w)) for i, (w, _) in enumerate(fields)])
    packed = rx.RBundle(dtype, {
        f"f{i}": rx.RLit(v, w) for i, (w, v) in enumerate(fields)
    }).eval(env())
    unpacked = dtype.unpack(packed)
    for i, (w, v) in enumerate(fields):
        assert unpacked[f"f{i}"] == v & ((1 << w) - 1)
