"""Pipelined ALU and systolic array: II=1, latency 2, equivalence."""

import random


from repro import Simulator, System, build_simulation, check_process
from repro.anvil_designs.pipeline import pipelined_alu, systolic_array
from repro.codegen.simfsm import MessagePort
from repro.designs.pipeline import (
    PipelinedAlu,
    SystolicArray2x2,
    alu_pack,
    alu_reference,
    systolic_reference,
)
from repro.rtl.testing import PortSink, PortSource


def run_anvil(factory, words, cycles=60, in_w=35, out_w=16, **kw):
    sys_ = System()
    inst = sys_.add(factory(**kw))
    ci, co = sys_.expose(inst, "inp"), sys_.expose(inst, "out")
    ss = build_simulation(sys_)
    ip = ss.external(ci).ports["data"]
    op = ss.external(co).ports["data"]
    ss.sim.modules = [m for m in ss.sim.modules
                      if m not in ss.externals.values()]
    src = PortSource("src", ip)
    sink = PortSink("sink", op)
    src.push(*words)
    ss.sim.add(src)
    ss.sim.add(sink)
    ss.sim.run(cycles)
    return sink.received


class TestPipelinedAlu:
    CASES = [
        (0, 1000, 2345), (1, 5, 7), (2, 0xF0F0, 0x1234),
        (3, 0x00FF, 0xFF00), (4, 0xAAAA, 0x5555),
        (5, 3, 4), (6, 0x8000, 3), (7, 2, 9), (7, 9, 2),
    ]

    def test_typechecks(self):
        report = check_process(pipelined_alu())
        assert report.ok, [str(e) for e in report.errors]

    def test_results_match_reference(self):
        words = [alu_pack(*c) for c in self.CASES]
        got = [v for _, v in run_anvil(pipelined_alu, words)]
        assert got == [alu_reference(*c) for c in self.CASES]

    def test_ii_one_throughput(self):
        words = [alu_pack(0, i, i) for i in range(8)]
        out = run_anvil(pipelined_alu, words)
        cycles = [c for c, _ in out]
        assert cycles == list(range(cycles[0], cycles[0] + 8))

    def test_latency_two(self):
        out = run_anvil(pipelined_alu, [alu_pack(0, 1, 1)])
        assert out[0][0] == 2  # input at cycle 0, result at cycle 2

    def test_matches_baseline(self):
        words = [alu_pack(*c) for c in self.CASES]
        anv = run_anvil(pipelined_alu, words)
        sim = Simulator()
        ip, op = MessagePort("i", 35), MessagePort("o", 16)
        dut = PipelinedAlu("alu", ip, op)
        src, sink = PortSource("s", ip), PortSink("k", op)
        src.push(*words)
        for m in (src, dut, sink):
            sim.add(m)
        sim.run(60)
        assert sink.received == anv  # same values, same cycles


class TestSystolicArray:
    def test_typechecks(self):
        report = check_process(systolic_array())
        assert report.ok, [str(e) for e in report.errors]

    def test_matmul_results(self):
        rng = random.Random(5)
        vecs = [(rng.randrange(256), rng.randrange(256)) for _ in range(6)]
        words = [(x1 << 8) | x0 for x0, x1 in vecs]
        out = run_anvil(systolic_array, words, in_w=16, out_w=32)
        got = [( v & 0xFFFF, (v >> 16) & 0xFFFF) for _, v in out]
        expected = [systolic_reference(((1, 2), (3, 4)), x0, x1)
                    for x0, x1 in vecs]
        assert got == [tuple(e) for e in expected]

    def test_matches_baseline_cycles(self):
        vecs = [(i, 2 * i) for i in range(5)]
        words = [(x1 << 8) | x0 for x0, x1 in vecs]
        anv = run_anvil(systolic_array, words, in_w=16, out_w=32)
        sim = Simulator()
        ip, op = MessagePort("i", 16), MessagePort("o", 32)
        dut = SystolicArray2x2("sa", ip, op)
        src, sink = PortSource("s", ip), PortSink("k", op)
        src.push(*words)
        for m in (src, dut, sink):
            sim.add(m)
        sim.run(60)
        assert sink.received == anv

    def test_custom_weights(self):
        weights = ((2, 0), (0, 2))
        out = run_anvil(systolic_array, [(3 << 8) | 7], in_w=16, out_w=32,
                        weights=weights)
        v = out[0][1]
        assert (v & 0xFFFF, v >> 16) == (14, 6)
