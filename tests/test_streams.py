"""Common-cells designs: baseline RTL vs Anvil, functional equivalence.

Each design pair is driven with identical stimulus (including stall
patterns) and must produce identical output streams -- this is the
'identical functional behaviour, zero latency overhead' claim of Section
7.1 for the Common Cells benchmarks.
"""

import random

import pytest

from repro import Simulator, System, build_simulation, check_process
from repro.anvil_designs.streams import (
    fifo_buffer,
    passthrough_stream_fifo,
    spill_register,
)
from repro.codegen.simfsm import MessagePort
from repro.designs.streams import (
    FifoBuffer,
    PassthroughStreamFifo,
    SpillRegister,
)
from repro.rtl.testing import PortSink, PortSource


def run_baseline(module_cls, stimulus, sink_pattern, cycles=120, **kwargs):
    sim = Simulator()
    inp = MessagePort("in", 8)
    out = MessagePort("out", 8)
    dut = module_cls("dut", inp, out, **kwargs)
    src = PortSource("src", inp)
    sink = PortSink("sink", out, sink_pattern)
    src.push(*stimulus)
    sim.add(src)
    sim.add(dut)
    sim.add(sink)
    sim.run(cycles)
    return sink.received


def run_anvil(factory, stimulus, sink_pattern, cycles=120, **kwargs):
    proc = factory(**kwargs)
    sys_ = System()
    inst = sys_.add(proc)
    ci = sys_.expose(inst, "inp")
    co = sys_.expose(inst, "out")
    ss = build_simulation(sys_)
    # drive the raw channel wires with the same PortSource/PortSink drivers
    in_port = ss.external(ci).ports["data"]
    out_port = ss.external(co).ports["data"]
    ss.sim.modules = [m for m in ss.sim.modules
                      if m not in ss.externals.values()]
    src = PortSource("src", in_port)
    sink = PortSink("sink", out_port, sink_pattern)
    src.push(*stimulus)
    ss.sim.add(src)
    ss.sim.add(sink)
    ss.sim.run(cycles)
    return sink.received


PATTERNS = {
    "always": lambda c: True,
    "every3": lambda c: c % 3 == 0,
    "burst": lambda c: (c // 5) % 2 == 0,
}


class TestAnvilStreamTypecheck:
    @pytest.mark.parametrize("factory", [
        fifo_buffer, spill_register, passthrough_stream_fifo,
    ])
    def test_typechecks(self, factory):
        report = check_process(factory())
        assert report.ok, [str(e) for e in report.errors]


class TestFifoEquivalence:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_same_output_stream(self, pattern):
        data = [random.Random(7).randrange(256) for _ in range(20)]
        base = run_baseline(FifoBuffer, data, PATTERNS[pattern], depth=4)
        anv = run_anvil(fifo_buffer, data, PATTERNS[pattern], depth=4)
        assert base == anv  # same values at the same cycles

    def test_order_preserved_no_loss(self):
        data = list(range(1, 31))
        got = run_anvil(fifo_buffer, data, PATTERNS["every3"], cycles=200)
        assert [v for _, v in got] == data

    def test_zero_latency_overhead(self):
        """First word pops at the same cycle in both implementations."""
        base = run_baseline(FifoBuffer, [42], PATTERNS["always"], depth=4)
        anv = run_anvil(fifo_buffer, [42], PATTERNS["always"], depth=4)
        assert base[0][0] == anv[0][0]


class TestSpillRegisterEquivalence:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_same_output_stream(self, pattern):
        rng = random.Random(13)
        data = [rng.randrange(256) for _ in range(20)]
        base = run_baseline(SpillRegister, data, PATTERNS[pattern])
        anv = run_anvil(spill_register, data, PATTERNS[pattern])
        assert base == anv

    def test_full_throughput(self):
        """With an always-ready consumer, one word per cycle after the
        1-cycle register latency."""
        data = list(range(10))
        anv = run_anvil(spill_register, data, PATTERNS["always"])
        cycles = [c for c, _ in anv]
        assert cycles == list(range(cycles[0], cycles[0] + 10))


class TestPassthroughStreamFifo:
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_same_output_stream(self, pattern):
        rng = random.Random(99)
        data = [rng.randrange(256) for _ in range(24)]
        base = run_baseline(
            PassthroughStreamFifo, data, PATTERNS[pattern], depth=4
        )
        anv = run_anvil(
            passthrough_stream_fifo, data, PATTERNS[pattern], depth=4
        )
        assert base == anv

    def test_passthrough_same_cycle(self):
        """An empty FIFO forwards input to output with zero latency."""
        anv = run_anvil(passthrough_stream_fifo, [0x5A], PATTERNS["always"])
        base = run_baseline(
            PassthroughStreamFifo, [0x5A], PATTERNS["always"], depth=4
        )
        assert anv[0] == base[0]
        # one cycle earlier than the registered FIFO
        reg = run_baseline(FifoBuffer, [0x5A], PATTERNS["always"], depth=4)
        assert anv[0][0] < reg[0][0]

    def test_write_on_full_with_simultaneous_read(self):
        """Paper 7.2: a full FIFO must still accept a write when a read
        happens the same cycle."""
        data = list(range(1, 16))
        # consumer stalls long enough to fill the FIFO, then drains
        anv = run_anvil(
            passthrough_stream_fifo, data, lambda c: c > 8, depth=4,
            cycles=100,
        )
        assert [v for _, v in anv] == data

    def test_unguarded_baseline_loses_data(self):
        """The original IP only asserts on overflow; data is lost."""
        sim = Simulator()
        inp = MessagePort("in", 8)
        out = MessagePort("out", 8)
        dut = PassthroughStreamFifo("dut", inp, out, depth=2,
                                    guard_writes=False)
        src = PortSource("src", inp)
        sink = PortSink("sink", out, lambda c: c > 10)
        src.push(*range(1, 9))
        for m in (src, dut, sink):
            sim.add(m)
        sim.run(60)
        assert dut.overflows > 0
        assert dut.assertions  # SVA-style warnings fired
        assert [v for _, v in sink.received] != list(range(1, 9))
