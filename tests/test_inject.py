"""Fault injection: deterministic campaigns, hand-placed outcomes,
watchdogs, executor retry, server traceback/timeout plumbing."""

import json
import os
import signal
import socket

import pytest

from repro.api import Session, SimConfig, get_registry
from repro.designs.y86 import SAOK
from repro.errors import SimulationError, WatchdogTimeout
from repro.inject import Fault, FaultInjector, run_campaign
from repro.inject.campaign import (
    _arch_digest,
    _classify,
    _halt_module,
    _run_tail,
    default_budget,
)
from repro.inject.faults import enumerate_sites
from repro.isa.encoding import FN_ADD, FN_SUB, IOPQ
from repro.rtl.executors import (
    ExecutorError,
    JobSpec,
    ProcessExecutor,
    job_kind,
)
from repro.rtl.simulator import ENGINES, run_guarded
from repro.server.jobs import BadSubmission, JobQueue

BACKENDS = ("interp", "pycompiled")

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "inject_y86_sum_25.json")


def _normalized(result):
    """The deterministic portion of a campaign result (everything but
    wall-clock and the echoed config)."""
    result = dict(result)
    result.pop("elapsed")
    result.pop("config")
    return json.dumps(result, sort_keys=True)


def _probe_cycle(cfg, cond, limit=400):
    """The first cycle at which ``cond(cpu)`` holds on an uninjected
    y86_sum run -- i.e. the cycle whose tick will consume the latch
    contents the condition matched (the injection hook fires after
    settle, before tick)."""
    sim = get_registry().build("y86_sum", cfg)
    cpu = _halt_module(sim)
    while sim.cycle < limit:
        if cond(cpu):
            return sim.cycle
        sim.run(1)
    raise AssertionError("probe condition never held")


# ---------------------------------------------------------------------------
# campaign determinism and snapshot-fork fidelity
# ---------------------------------------------------------------------------
def test_campaign_byte_identical_across_engines_and_backends():
    reference = None
    for engine in ENGINES:
        for backend in BACKENDS:
            cfg = SimConfig(engine=engine, backend=backend)
            got = _normalized(run_campaign("y86_sum", cfg, n_faults=8))
            if reference is None:
                reference = got
            assert got == reference, (engine, backend)


def test_sharded_process_campaign_matches_serial():
    serial = _normalized(run_campaign(
        "y86_sum", SimConfig(executor="serial"), n_faults=10))
    sharded = Session(SimConfig(executor="process", jobs=2)) \
        .inject_campaign("y86_sum", faults=10)
    assert _normalized(sharded) == serial


def test_forked_injection_matches_cold_start():
    """A tail forked from a warm prefix snapshot must classify exactly
    as a cold run injecting the same fault at the same cycle."""
    for engine in ENGINES:
        for backend in BACKENDS:
            cfg = SimConfig(engine=engine, backend=backend)
            result = run_campaign("y86_sum", cfg, n_faults=6)
            budget = result["tail_budget"]
            for record in result["outcomes"]:
                fault = Fault.from_dict({
                    k: record[k] for k in ("kind", "module", "target",
                                           "cycle", "bit", "width",
                                           "duration")})
                sim = get_registry().build("y86_sum", cfg)
                cpu = _halt_module(sim)
                if fault.cycle > 0:
                    sim.run(fault.cycle)
                injector = FaultInjector(fault).arm(sim)
                error = None
                try:
                    _run_tail(sim, cpu, result["golden"], budget, None)
                except WatchdogTimeout as exc:
                    error = exc
                finally:
                    injector.disarm()
                outcome, digest = _classify(sim, cpu, result["golden"],
                                            error)
                assert outcome == record["outcome"], (engine, backend,
                                                      fault)
                assert digest == record["digest"], (engine, backend,
                                                    fault)
                assert sim.cycle == record["end_cycle"]
                assert injector.fired == record["fired"]


def test_pinned_golden_histogram():
    """The CI smoke campaign's classification histogram, pinned."""
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    result = run_campaign("y86_sum", SimConfig(), n_faults=25)
    assert result["histogram"] == golden["histogram"]
    assert result["golden"] == golden["golden"]
    assert result["tail_budget"] == golden["tail_budget"]


# ---------------------------------------------------------------------------
# hand-placed faults with known consequences
# ---------------------------------------------------------------------------
def _campaign_with(fault, cfg=None, tail_budget=None):
    result = run_campaign("y86_sum", cfg or SimConfig(),
                          faults=[fault], tail_budget=tail_budget)
    (record,) = result["outcomes"]
    return result, record


def test_bitflip_in_forwarding_operand_is_sdc():
    # corrupt valA of an addq whose destination is %rax while it sits
    # in the execute latch: the ALU adds a wrong operand, the sum in
    # rax is silently off, the machine still halts cleanly
    cfg = SimConfig()
    cycle = _probe_cycle(cfg, lambda cpu: (
        cpu.E["icode"] == IOPQ and cpu.E["ifun"] == FN_ADD
        and cpu.E["dste"] == 0 and cpu.E["stat"] == SAOK))
    result, record = _campaign_with(Fault(
        kind="transient_bitflip", module="y86_sum_cpu",
        target="E[vala]", cycle=cycle))
    assert record["outcome"] == "sdc"
    assert record["fired"] == 1
    assert record["digest"] != result["golden"]["digest"]


def test_bitflip_on_observability_wire_is_masked():
    # w_icode mirrors committed state for the waveform only; its driver
    # recomputes a clean value on the next settle, so a transient flip
    # never reaches architectural state
    _result, record = _campaign_with(Fault(
        kind="transient_bitflip", module="y86_sum_cpu",
        target="w_icode", cycle=40, bit=2))
    assert record["outcome"] == "masked"
    assert record["fired"] == 1


def test_bitflip_in_stat_logic_is_detected():
    # flip SAOK (1) to SADR (3) in the writeback latch: the exception
    # gate freezes the machine with a non-golden stat
    cfg = SimConfig()
    cycle = _probe_cycle(cfg, lambda cpu: cpu.W["stat"] == SAOK)
    result, record = _campaign_with(Fault(
        kind="transient_bitflip", module="y86_sum_cpu",
        target="W[stat]", cycle=cycle, bit=1))
    assert record["outcome"] == "detected"
    assert result["histogram"]["detected"] == 1


def test_injected_infinite_loop_is_hang():
    # blow up the subq's loop-counter operand (valB = %rsi) while it
    # sits in execute: the countdown restarts from ~2^40, the tail
    # exceeds its cycle budget, and the watchdog classifies a hang
    cfg = SimConfig()
    cycle = _probe_cycle(cfg, lambda cpu: (
        cpu.E["icode"] == IOPQ and cpu.E["ifun"] == FN_SUB
        and cpu.E["stat"] == SAOK))
    result, record = _campaign_with(Fault(
        kind="transient_bitflip", module="y86_sum_cpu",
        target="E[valb]", cycle=cycle, bit=40))
    assert record["outcome"] == "hang"
    assert record["end_cycle"] == result["tail_budget"]
    assert result["histogram"]["hang"] == 1


def test_stuck_at_refires_across_its_window():
    _result, record = _campaign_with(Fault(
        kind="stuck_at_1", module="y86_sum_cpu", target="w_icode",
        cycle=30, bit=0, duration=4))
    assert record["fired"] == 4
    assert record["outcome"] == "masked"


def test_enumerate_sites_is_deterministic():
    cfg = SimConfig()
    a = enumerate_sites(get_registry().build("y86_sum", cfg))
    b = enumerate_sites(get_registry().build("y86_sum", cfg))
    assert a == b
    assert any(s.family == "wire" for s in a)
    assert any(s.target == "registers[0]" for s in a)
    assert any(s.target == "E[vala]" for s in a)


# ---------------------------------------------------------------------------
# watchdogs
# ---------------------------------------------------------------------------
def test_wall_clock_watchdog_fires():
    sim = get_registry().build("streams", SimConfig())
    with pytest.raises(WatchdogTimeout):
        run_guarded(sim, 50_000_000, max_wall_time=0.05)
    assert 0 < sim.cycle < 50_000_000


def test_session_run_respects_max_wall_time():
    session = Session(SimConfig(max_wall_time=0.05, cycles=50_000_000))
    with pytest.raises(SimulationError):
        session.run("streams")


def test_max_wall_time_validation():
    with pytest.raises(ValueError):
        SimConfig(max_wall_time=-1.0)
    with pytest.raises(ValueError):
        SimConfig(max_wall_time=True)
    assert SimConfig(max_wall_time=2.5).max_wall_time == 2.5
    assert "max_wall_time" in SimConfig().to_dict()


def test_campaign_with_hang_faults_completes():
    """A whole campaign over hang-inducing faults terminates within its
    budget instead of spinning forever."""
    cfg = SimConfig()
    cycle = _probe_cycle(cfg, lambda cpu: (
        cpu.E["icode"] == IOPQ and cpu.E["ifun"] == FN_SUB
        and cpu.E["stat"] == SAOK))
    faults = [
        Fault(kind="transient_bitflip", module="y86_sum_cpu",
              target="E[valb]", cycle=cycle, bit=bit)
        for bit in (38, 40, 42)
    ]
    result = run_campaign("y86_sum", cfg, faults=faults)
    assert result["histogram"]["hang"] == 3
    assert all(r["end_cycle"] == result["tail_budget"]
               for r in result["outcomes"])
    assert result["tail_budget"] == max(
        default_budget(result["golden"]["cycles"]), cycle + 1)


# ---------------------------------------------------------------------------
# process-executor retry on killed workers
# ---------------------------------------------------------------------------
@job_kind("test_kamikaze")
def _kamikaze_job(spec):
    if spec.param("always_die"):
        os.kill(os.getpid(), signal.SIGKILL)
    sentinel = spec.param("sentinel")
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("died once\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def test_process_executor_retries_killed_worker(tmp_path):
    sentinel = str(tmp_path / "kamikaze.marker")
    executor = ProcessExecutor(workers=1, warmup=False,
                               retry_backoff=0.01)
    spec = JobSpec(kind="test_kamikaze", name="k1",
                   params=(("sentinel", sentinel),))
    results = executor.run([spec])
    assert results["k1"] == "survived"
    assert executor.retries == 1


def test_process_executor_raises_after_retry_exhausted():
    # the worker dies on every attempt: the one retry is spent and the
    # failure surfaces as an ExecutorError naming the job, instead of
    # an opaque BrokenProcessPool
    executor = ProcessExecutor(workers=1, warmup=False,
                               retry_backoff=0.01)
    spec = JobSpec(kind="test_kamikaze", name="k2",
                   params=(("always_die", True),))
    with pytest.raises(ExecutorError) as info:
        executor.run([spec])
    assert executor.retries == executor.max_retries == 1
    assert "k2" in str(info.value)


# ---------------------------------------------------------------------------
# server: job tracebacks, inject kind, client timeout
# ---------------------------------------------------------------------------
def _wait_state(job, states, timeout=30.0):
    import time
    deadline = time.monotonic() + timeout
    while job.state not in states:
        assert time.monotonic() < deadline, job.state
        time.sleep(0.01)


def test_job_queue_persists_worker_traceback(monkeypatch):
    q = JobQueue(workers=1).start()
    try:
        def boom(job):
            raise RuntimeError("boom")
        monkeypatch.setattr(q, "_execute", boom)
        job = q.submit({"kind": "run", "scenario": "streams",
                        "cycles": 10})
        _wait_state(job, ("failed",))
        assert "RuntimeError: boom" in job.error
        assert "Traceback (most recent call last)" in job.traceback
        assert "RuntimeError: boom" in job.traceback
        record = job.record()
        assert record["error"] == job.error
        assert record["traceback"] == job.traceback
    finally:
        q.shutdown()


def test_job_queue_runs_inject_kind():
    q = JobQueue(config=SimConfig(executor="serial"), workers=1).start()
    try:
        job = q.submit({"kind": "inject", "scenario": "y86_sum",
                        "faults": 3})
        _wait_state(job, ("done", "failed"))
        assert job.state == "done", (job.error, job.traceback)
        result = job.result_payload()
        assert sum(result["histogram"].values()) == 3
        assert result["faults"] == 3
        record = job.record()
        assert "traceback" not in record
    finally:
        q.shutdown()


def test_job_queue_validates_inject_submissions():
    q = JobQueue(workers=1)
    with pytest.raises(BadSubmission):
        q._job_from({"kind": "inject"})                 # no scenario
    with pytest.raises(BadSubmission):
        q._job_from({"kind": "inject", "scenario": "y86_sum",
                     "faults": 0})
    with pytest.raises(BadSubmission):
        q._job_from({"kind": "inject", "scenario": "y86_sum",
                     "stream": True})
    with pytest.raises(BadSubmission):
        q._job_from({"kind": "inject", "scenario": "y86_sum",
                     "tail_budget": -5})
    job = q._job_from({"kind": "inject", "scenario": "y86_sum",
                       "faults": 7, "inject_seed": 3, "tail_budget": 99})
    assert job.params == {"faults": 7, "inject_seed": 3,
                          "tail_budget": 99}


def test_client_timeout_is_clear_and_not_retried():
    from repro.server.client import ServerClient

    # a socket that completes TCP handshakes (listen backlog) but never
    # answers an HTTP request
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    _host, port = server.getsockname()
    try:
        client = ServerClient("127.0.0.1", port, timeout=0.2)
        with pytest.raises(TimeoutError) as info:
            client.health()
        message = str(info.value)
        assert f"127.0.0.1:{port}" in message
        assert "0.2" in message
        client.close()
    finally:
        server.close()


def test_client_timeout_is_configurable():
    from repro.server.client import ServerClient

    assert ServerClient().timeout == 60.0
    assert ServerClient(timeout=7.5).timeout == 7.5


def test_cli_inject_parses_timeout_and_campaign_flags():
    from repro.__main__ import build_parser

    args = build_parser().parse_args([
        "inject", "y86_sum", "--faults", "5", "--inject-seed", "9",
        "--tail-budget", "300", "--timeout", "12.5",
        "--max-wall-time", "4", "--executor", "serial"])
    assert args.faults == 5
    assert args.inject_seed == 9
    assert args.tail_budget == 300
    assert args.timeout == 12.5
    assert args.max_wall_time == 4.0
    assert args.fn.__name__ == "cmd_inject"


def test_arch_digest_is_engine_and_backend_independent():
    digests = set()
    for engine in ENGINES:
        for backend in BACKENDS:
            sim = get_registry().build(
                "y86_sum", SimConfig(engine=engine, backend=backend))
            cpu = _halt_module(sim)
            sim.run_until(lambda: cpu.halted, limit=1000)
            digests.add(_arch_digest(cpu.arch_state()))
    assert len(digests) == 1
