"""Structural tests for the SystemVerilog backend."""

import re

import pytest

from repro import (
    Logic,
    Process,
    Side,
    System,
    emit_system,
    to_systemverilog,
)
from repro.codegen.sysverilog import structural_check
from repro.lang.channels import LifetimeSpec, MessageDef, ChannelDef, StaticSync
from repro.lang.terms import (
    if_,
    let,
    read,
    recv,
    send,
    set_reg,
    var,
)

from helpers import cache_channel, stream_channel, top_safe


@pytest.fixture
def sv_top_safe():
    return to_systemverilog(top_safe())


class TestModuleShape:
    def test_module_wrapper(self, sv_top_safe):
        assert sv_top_safe.startswith("// Generated")
        assert "module top_safe (" in sv_top_safe
        assert sv_top_safe.rstrip().endswith("endmodule")

    def test_clock_and_reset_ports(self, sv_top_safe):
        assert "input  logic clk_i" in sv_top_safe
        assert "input  logic rst_ni" in sv_top_safe

    def test_message_ports_generated(self, sv_top_safe):
        for port in ["cache_req_data", "cache_req_valid", "cache_req_ack",
                     "cache_res_data", "cache_res_valid", "cache_res_ack"]:
            assert port in sv_top_safe, port

    def test_architectural_registers_declared(self, sv_top_safe):
        assert "logic [7:0] address_q;" in sv_top_safe
        assert "logic [7:0] enq_data_q;" in sv_top_safe

    def test_one_fire_wire_per_event(self, sv_top_safe):
        fires = set(re.findall(r"t0_e(\d+)_fire\b", sv_top_safe))
        assigns = set(
            re.findall(r"assign t0_e(\d+)_fire =", sv_top_safe)
        )
        assert fires == assigns  # every referenced fire wire is driven

    def test_balanced_module_count(self, sv_top_safe):
        c = structural_check(sv_top_safe)
        assert c["modules"] == c["endmodules"] == 1

    def test_register_writes_guarded_by_fire(self, sv_top_safe):
        # implicit clock gating: every architectural write is conditional
        for m in re.finditer(r"(\S+_q) <= ", sv_top_safe):
            line_start = sv_top_safe.rfind("\n", 0, m.start())
            line = sv_top_safe[line_start:m.end()]
            if "address_q" in line or "enq_data_q" in line:
                assert "if (" in line


class TestHandshakeOmission:
    def test_static_sync_omits_handshake_ports(self):
        """The paper: static/dependent sync modes omit valid (sender side)
        and ack (receiver side)."""
        ch = ChannelDef("st", [
            MessageDef("data", Side.RIGHT, Logic(8), LifetimeSpec.static(1),
                       StaticSync(1), StaticSync(1)),
        ])
        p = Process("static_sender")
        p.endpoint("o", ch, Side.LEFT)
        p.register("c", Logic(8))
        p.loop(send("o", "data", read("c"))
               >> set_reg("c", read("c") + 1))
        sv = to_systemverilog(p)
        assert "o_data_data" in sv
        assert "o_data_valid" not in sv
        assert "o_data_ack" not in sv

    def test_dynamic_sync_keeps_both(self):
        p = Process("dyn_sender")
        p.endpoint("o", stream_channel("s"), Side.LEFT)
        p.register("c", Logic(8))
        p.loop(send("o", "data", read("c"))
               >> set_reg("c", read("c") + 1))
        sv = to_systemverilog(p)
        assert "o_data_valid" in sv and "o_data_ack" in sv


class TestExpressions:
    def test_branch_condition_in_sv(self):
        p = Process("brancher")
        p.endpoint("inp", stream_channel("in"), Side.RIGHT)
        p.register("r", Logic(8))
        p.loop(
            let("d", recv("inp", "data"),
                if_(var("d").eq(0),
                    set_reg("r", 1),
                    set_reg("r", var("d"))))
        )
        sv = to_systemverilog(p)
        assert "== 8'd0" in sv

    def test_slot_bypass_for_recv_data(self):
        """Data received this cycle must be visible combinationally."""
        p = Process("bypass")
        p.endpoint("inp", stream_channel("in"), Side.RIGHT)
        p.register("r", Logic(8))
        p.loop(
            let("d", recv("inp", "data"),
                if_(var("d").eq(0), set_reg("r", 1), set_reg("r", 2)))
        )
        sv = to_systemverilog(p)
        assert "_w" in sv  # bypass wires present


class TestSystemEmission:
    def test_emit_system_contains_all_modules(self):
        from helpers import cache_channel
        mem = Process("memory")
        mem.endpoint("host", cache_channel(), Side.RIGHT)
        mem.register("t", Logic(8))
        mem.loop(
            let("a", recv("host", "req"),
                var("a") >> set_reg("t", var("a"))
                >> send("host", "res", read("t")))
        )
        top = top_safe()
        s = System("pair")
        ti, mi = s.add(top), s.add(mem)
        s.connect(ti, "cache", mi, "host")
        sv = emit_system(s)
        assert "module top_safe (" in sv
        assert "module memory (" in sv
        assert "module pair_top (" in sv
        assert "u_top_safe" in sv and "u_memory" in sv
