"""The Y86-64 ISA layer (`repro.isa`): the assembler pinned byte-exact
against the CSAPP worked sum listing, encode/decode as inverses over the
whole legal instruction space, golden reference-interpreter states for
every bundled program, and the assembler's source-level error report."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.encoding import (
    CC_SUFFIXES,
    ICALL,
    IJXX,
    IOPQ,
    IRRMOVQ,
    MAX_IFUN,
    OP_NAMES,
    RNONE,
    SADR,
    SHLT,
    SINS,
    U64,
    Instruction,
    decode,
    encode,
    format_instruction,
    insn_size,
    mnemonic,
    needs_regids,
    needs_valc,
    valid_instruction,
)
from repro.isa.programs import (
    BUNDLED,
    CSAPP_QUADS,
    bubble_sort_program,
    memcpy_program,
    sum_program,
)
from repro.isa.reference import MEM_SIZE, ReferenceMachine

# ---------------------------------------------------------------------------
# the CSAPP worked example, byte for byte
# ---------------------------------------------------------------------------
#: the book's asum.ys, verbatim modulo whitespace (SNIPPETS item 3)
CSAPP_SUM = """\
# Execution begins at address 0
    .pos 0
    irmovq stack, %rsp      # Set up stack pointer
    call main               # Execute main program
    halt                    # Terminate program

# Array of 4 elements
    .align 8
array:
    .quad 0x000d000d000d
    .quad 0x00c000c000c0
    .quad 0x0b000b000b00
    .quad 0xa000a000a000

main:
    irmovq array,%rdi
    irmovq $4,%rsi
    call sum                # sum(array, 4)
    ret

# long sum(long *start, long count)
sum:
    irmovq $8,%r8           # Constant 8
    irmovq $1,%r9           # Constant 1
    xorq %rax,%rax          # sum = 0
    andq %rsi,%rsi          # Set CC
    jmp test                # Goto test
loop:
    mrmovq (%rdi),%r10      # Get *start
    addq %r10,%rax          # Add to sum
    addq %r8,%rdi           # start++
    subq %r9,%rsi           # count--
test:
    jne loop                # Stop when 0
    ret                     # Return

# Stack starts here and grows to lower addresses
    .pos 0x200
stack:
"""

#: address -> object bytes from the book's yas listing
CSAPP_BYTES = {
    0x000: "30f40002000000000000",
    0x00A: "803800000000000000",
    0x013: "00",
    0x018: "0d000d000d000000",       # array
    0x038: "30f71800000000000000",   # main
    0x042: "30f60400000000000000",
    0x04C: "805600000000000000",
    0x055: "90",
    0x056: "30f80800000000000000",   # sum
    0x060: "30f90100000000000000",
    0x06A: "6300",
    0x06C: "6266",
    0x06E: "708700000000000000",
    0x077: "50a70000000000000000",   # loop
    0x081: "60a0",
    0x083: "6087",
    0x085: "6196",
    0x087: "747700000000000000",     # test
    0x090: "90",
}

CSAPP_SYMBOLS = {"array": 0x018, "main": 0x038, "sum": 0x056,
                 "loop": 0x077, "test": 0x087, "stack": 0x200}


class TestCsappListing:
    def test_byte_exact_against_the_book(self):
        prog = assemble(CSAPP_SUM)
        for addr, hexpart in CSAPP_BYTES.items():
            blob = bytes.fromhex(hexpart)
            assert prog.image[addr:addr + len(blob)] == blob, hex(addr)

    def test_symbol_table_matches_yas(self):
        prog = assemble(CSAPP_SUM)
        assert {s: prog.symbols[s] for s in CSAPP_SYMBOLS} \
            == CSAPP_SYMBOLS

    def test_listing_is_yas_style(self):
        listing = assemble(CSAPP_SUM).listing()
        assert "0x00a: 803800000000000000" in listing
        assert "call main" in listing

    def test_bundled_sum_text_section_matches_the_book(self):
        """sum_program(CSAPP_QUADS) is the book's program except for
        the stack position; every byte after the stack-pointer setup
        must agree with the yas listing."""
        bundled = assemble(sum_program(CSAPP_QUADS))
        book = assemble(CSAPP_SUM)
        assert bundled.image[0x00A:0x091] == book.image[0x00A:0x091]


# ---------------------------------------------------------------------------
# encode/decode are inverses over the legal instruction space
# ---------------------------------------------------------------------------
def _canonical_instructions():
    """Every legal (icode, ifun) with representative operand values,
    in canonical form (unused fields at their decode defaults)."""
    out = []
    for icode, max_ifun in sorted(MAX_IFUN.items()):
        for ifun in range(max_ifun + 1):
            ras = (0, 7, 14, RNONE) if needs_regids(icode) else (RNONE,)
            valcs = (0, 1, 0x123456789ABCDEF0, U64) \
                if needs_valc(icode) else (0,)
            for ra in ras:
                for rb in reversed(ras):
                    for valc in valcs:
                        out.append(Instruction(icode=icode, ifun=ifun,
                                               ra=ra, rb=rb, valc=valc))
    return out


class TestEncodeDecode:
    def test_decode_inverts_encode_everywhere(self):
        for ins in _canonical_instructions():
            blob = encode(ins)
            assert len(blob) == ins.size == insn_size(ins.icode)
            assert decode(blob) == ins, format_instruction(ins)

    def test_decode_honours_offset_and_padding(self):
        ins = Instruction(icode=IJXX, ifun=4, valc=0x77)
        blob = b"\x00" * 3 + encode(ins) + b"\xff" * 2
        assert decode(blob, offset=3) == ins

    def test_every_mnemonic_is_distinct(self):
        names = [mnemonic(icode, ifun)
                 for icode, mx in MAX_IFUN.items()
                 for ifun in range(mx + 1)]
        assert len(names) == len(set(names)) == 27
        assert set(OP_NAMES) <= set(names)
        assert {f"j{cc}" for cc in CC_SUFFIXES[1:]} <= set(names)

    def test_illegal_encodings_are_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            encode(Instruction(icode=0xC))          # no such icode
        with pytest.raises(ValueError, match="invalid"):
            encode(Instruction(icode=IOPQ, ifun=4))  # ifun out of range
        with pytest.raises(ValueError, match="illegal"):
            decode(b"\xc0")
        with pytest.raises(ValueError, match="truncated"):
            decode(encode(Instruction(icode=ICALL, valc=0x10))[:-1])
        with pytest.raises(ValueError, match="past end"):
            decode(b"", offset=0)

    def test_validity_predicate_matches_the_tables(self):
        assert valid_instruction(IRRMOVQ, 6)
        assert not valid_instruction(IRRMOVQ, 7)
        assert not valid_instruction(0xD, 0)


# ---------------------------------------------------------------------------
# golden reference states for the bundled programs
# ---------------------------------------------------------------------------
def _run(source):
    prog = assemble(source)
    return ReferenceMachine(prog.image).run(), prog


def _signed(v):
    return v - (1 << 64) if v >= (1 << 63) else v


class TestBundledGoldens:
    def test_sum_of_the_book_quads(self):
        state, _ = _run(sum_program(CSAPP_QUADS))
        assert state.stat == SHLT
        assert state.registers[0] == sum(CSAPP_QUADS) & U64  # %rax
        assert state.instret == 34
        assert state.pc == 0x13                              # the halt

    def test_sort_orders_memory_signed(self):
        import random
        rng = random.Random(7)
        values = [rng.getrandbits(64) for _ in range(6)]
        state, prog = _run(bubble_sort_program(values))
        base = prog.symbols["array"]
        sorted_quads = [
            int.from_bytes(state.memory[base + 8 * i:base + 8 * i + 8],
                           "little")
            for i in range(len(values))
        ]
        assert sorted_quads == sorted(values, key=_signed)
        assert state.stat == SHLT
        assert state.instret == 172

    def test_memcpy_copies_and_checksums(self):
        values = [(0x1111111111111111 * i) & U64 for i in range(1, 5)]
        state, prog = _run(memcpy_program(values))
        src, dst = prog.symbols["src"], prog.symbols["dst"]
        span = 8 * len(values)
        assert state.memory[dst:dst + span] == state.memory[src:src + span]
        checksum = 0
        for v in values:
            checksum = (checksum + v) & U64
        assert state.registers[0] == checksum
        assert state.stat == SHLT

    def test_bundled_registry_is_complete(self):
        assert set(BUNDLED) == {"sum", "sort", "memcpy"}
        for gen in BUNDLED.values():
            state, _ = _run(gen([1, 2, 3]))
            assert state.stat == SHLT

    def test_programs_parameterize_by_mem_size(self):
        state, prog = _run(sum_program([5, 6], mem_size=2048))
        assert prog.symbols["stack"] == 2048 - 8
        assert state.registers[0] == 11


# ---------------------------------------------------------------------------
# the reference machine's fault model
# ---------------------------------------------------------------------------
class TestFaults:
    def test_illegal_opcode_stops_with_ins(self):
        state = ReferenceMachine(b"\xc0").run()
        assert (state.stat, state.pc, state.instret) == (SINS, 0, 1)

    def test_out_of_bounds_load_stops_with_adr(self):
        prog = assemble(
            f"    irmovq ${MEM_SIZE:#x}, %rcx\n"
            "    mrmovq (%rcx), %rax\n")
        state = ReferenceMachine(prog.image).run()
        assert state.stat == SADR
        assert state.pc == 10            # the faulting mrmovq
        assert state.registers[0] == 0   # no architectural effect

    def test_fetch_past_end_stops_with_adr(self):
        prog = assemble(f"    jmp {MEM_SIZE:#x}\n")
        state = ReferenceMachine(prog.image).run()
        assert state.stat == SADR and state.pc == MEM_SIZE

    def test_running_off_the_code_ends_in_ins(self):
        # pc lands on zeroed memory: icode 0 ifun 0 is halt, so a bare
        # nop falls through into an implicit halt, not a fault
        state = ReferenceMachine(b"\x10").run()
        assert state.stat == SHLT and state.instret == 2


# ---------------------------------------------------------------------------
# assembler error reporting
# ---------------------------------------------------------------------------
class TestAssemblerErrors:
    @pytest.mark.parametrize("source,match", [
        ("    movq %rax, %rbx\n", "unknown mnemonic"),
        ("    irmovq $1, %xyz\n", "bad register"),
        ("    jmp nowhere\n", "undefined symbol"),
        ("    addq %rax\n", "takes 2"),
        ("x:\nx:\n", "duplicate label"),
        ("    .align 0\n", "bad .align"),
        ("    irmovq $zz, %rax\n", "undefined symbol"),
    ])
    def test_source_errors_name_the_line(self, source, match):
        with pytest.raises(AssemblyError, match=match) as exc:
            assemble(source)
        assert "line" in str(exc.value)
