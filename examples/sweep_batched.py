#!/usr/bin/env python3
"""Seed sweeps through the columnar lock-step kernels (``--batch``).

A parameter sweep runs the *same* design many times under different
seeds -- identical topology, divergent data.  The batched cycle kernel
exploits that: one compiled ``_BATCH_KERNEL`` pass advances M
same-shape instances lock-step per cycle, and a stop condition
(``run until this wire goes high``) compiles inline instead of
re-entering Python after every cycle.

This example runs every scenario family both ways -- M per-instance
scalar runs, then one lock-step pass -- verifies the observables are
bit-identical, and prints the throughput of each.

Run:  PYTHONPATH=src python examples/sweep_batched.py

The same machinery backs the public surface::

    repro sweep --seeds 8 --batch 8 --engine kernel
    REPRO_BATCH=8 python -m repro sweep ...
    Session(SimConfig(batch=8)).sweep(names, seeds=range(8))
"""

import time

from repro import Session, SimConfig, get_registry
from repro.rtl.batch import run_lockstep

M = 8
CYCLES = 300

session = Session(SimConfig(stim=2 * CYCLES, engine="kernel",
                            backend="pycompiled"))
registry = get_registry()
families = (registry.names("rtl", exclude="sweep")
            + registry.names("anvil", exclude="sweep"))

print(f"{M}-seed sweep per family, {CYCLES} cycles each "
      f"(engine=kernel, backend=pycompiled)\n")
print(f"{'family':16s} {'scalar c/s':>12} {'batched c/s':>12} "
      f"{'ratio':>6}  identical")

for family in families:
    scalar = [session.build(family, seed=s) for s in range(M)]
    t0 = time.perf_counter()
    for sim in scalar:
        sim.run(CYCLES)
    scalar_cps = M * CYCLES / (time.perf_counter() - t0)

    batched = [session.build(family, seed=s) for s in range(M)]
    t0 = time.perf_counter()
    result = run_lockstep(batched, CYCLES, width=M)
    batched_cps = M * CYCLES / (time.perf_counter() - t0)

    identical = all(
        b.activity == a.activity
        and b.waveform.samples == a.waveform.samples
        for a, b in zip(scalar, batched)
    )
    assert identical, f"{family}: lock-step diverged from scalar runs"
    assert all(result.batched), f"{family}: fell back to the scalar path"
    print(f"{family:16s} {scalar_cps:12.0f} {batched_cps:12.0f} "
          f"{batched_cps / scalar_cps:5.2f}x  yes")

print("\nevery family's lock-step pass is bit-identical to its "
      "per-seed scalar runs")
print("(the first batched pass pays the per-shape kernel compile; "
      "steady-state sweeps hit the cache)")
