#!/usr/bin/env python3
"""Dynamic timing contracts vs static worst-case contracts (Figure 4).

A memory with a small cache answers hits in 1 cycle and misses in 3.
Under a *dynamic* contract ("address stable until res") the client gets
hits fast; under a *static* contract the design must pessimize every
response to the worst case and caching buys nothing.

Run:  python examples/cache_dynamic_contract.py
"""

from repro import System, build_simulation, check_process
from repro.anvil_designs.memory import (
    cached_memory_process,
    cached_memory_static_process,
)

ADDRESSES = [5, 5, 9, 9, 5, 9, 7, 5]


def measure(factory, label):
    sys_ = System()
    inst = sys_.add(factory())
    ch = sys_.expose(inst, "host")
    ss = build_simulation(sys_)
    ext = ss.external(ch)
    ext.always_receive("res")
    for a in ADDRESSES:
        ext.send("req", a)
    ss.sim.run(200)
    reqs = ext.sent["req"]
    ress = ext.received["res"]
    lats = [r[0] - q[0] for q, r in zip(reqs, ress)]
    values = [v for _, v in ress]
    print(f"{label:28s} latencies={lats}  total={sum(lats)} cycles")
    assert values == [a & 0xFF for a in ADDRESSES]
    return sum(lats)


print("workload:", ADDRESSES, "(repeated addresses hit the cache)\n")

assert check_process(cached_memory_process()).ok
assert check_process(cached_memory_static_process()).ok

dyn = measure(cached_memory_process, "dynamic contract [req,res)")
static = measure(cached_memory_static_process, "static contract  [req,+3)")

print(f"\nthe dynamic contract is {static / dyn:.2f}x faster on this "
      "workload -- same cache, same safety guarantee")
