#!/usr/bin/env python3
"""Quickstart: your first timing-safe Anvil design.

Builds the paper's running example -- a client talking to a memory with a
dynamic timing contract -- then:

1. type checks it (timing safety is decided statically),
2. shows what the compiler rejects and why,
3. simulates the safe composition,
4. emits synthesizable SystemVerilog.

Run:  python examples/quickstart.py
"""

from repro import (
    ChannelDef,
    LifetimeSpec,
    Logic,
    MessageDef,
    Process,
    Side,
    System,
    build_simulation,
    check_process,
    let,
    par,
    read,
    recv,
    send,
    set_reg,
    to_systemverilog,
    unit,
    var,
)

# ---------------------------------------------------------------------------
# 1. A channel with a *dynamic timing contract* (Section 4.1 of the paper):
#    the request address must stay unchanged until the response arrives
#    ("[req, req->res)"), and the response data is stable for one cycle.
# ---------------------------------------------------------------------------
cache_ch = ChannelDef("cache_ch", [
    MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.until("res")),
    MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
])


# ---------------------------------------------------------------------------
# 2. An UNSAFE client: it mutates the address while the memory may still
#    be using it.  Anvil rejects this at compile time.
# ---------------------------------------------------------------------------
unsafe = Process("top_unsafe")
unsafe.endpoint("mem", cache_ch, Side.LEFT)
unsafe.register("address", Logic(8))
unsafe.loop(
    send("mem", "req", read("address"))
    >> set_reg("address", read("address") + 1)     # <-- too early!
    >> let("d", recv("mem", "res"), var("d") >> unit())
)

report = check_process(unsafe)
print("top_unsafe:", "SAFE" if report.ok else "UNSAFE")
for err in report.errors:
    print("   ", err)

# ---------------------------------------------------------------------------
# 3. The SAFE client: wait for the response, then update.
# ---------------------------------------------------------------------------
top = Process("top")
top.endpoint("mem", cache_ch, Side.LEFT)
top.register("address", Logic(8))
top.register("data", Logic(8))
top.loop(
    send("mem", "req", read("address"))
    >> let("d", recv("mem", "res"),
           var("d")
           >> par(set_reg("address", read("address") + 1),
                  set_reg("data", var("d"))))
)
assert check_process(top).ok
print("\ntop: SAFE")

# a memory process that honours the same contract
memory = Process("memory")
memory.endpoint("host", cache_ch, Side.RIGHT)
memory.register("value", Logic(8))
memory.loop(
    let("a", recv("host", "req"),
        var("a")
        >> set_reg("value", var("a") + 0x10)
        >> send("host", "res", read("value")))
)
assert check_process(memory).ok

# ---------------------------------------------------------------------------
# 4. Compose and simulate.
# ---------------------------------------------------------------------------
system = System("quickstart")
t = system.add(top)
m = system.add(memory)
system.connect(t, "mem", m, "host")
sim = build_simulation(system)
sim.sim.run(20)
print("\nafter 20 cycles:",
      f"address={sim.module('top').regs['address']}",
      f"last data={sim.module('top').regs['data']:#x}")

# ---------------------------------------------------------------------------
# 5. Emit SystemVerilog.
# ---------------------------------------------------------------------------
sv = to_systemverilog(top)
print("\n--- generated SystemVerilog (first 15 lines) ---")
print("\n".join(sv.splitlines()[:15]))
print(f"... ({len(sv.splitlines())} lines total)")
