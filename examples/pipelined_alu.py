#!/usr/bin/env python3
"""Static pipelines with `recursive` threads (the Filament comparison).

The two-stage ALU starts a new operation every cycle while the previous
one is still in flight.  The type checker proves the stage registers are
never clobbered while a downstream stage still needs them -- the same
II=1 hazard freedom Filament establishes with timeline types.

Run:  python examples/pipelined_alu.py
"""

from repro import System, build_simulation, check_process
from repro.anvil_designs.pipeline import pipelined_alu
from repro.codegen.simfsm import build_simulation
from repro.designs.pipeline import ALU_OPS, alu_pack, alu_reference
from repro.rtl.testing import PortSink, PortSource

proc = pipelined_alu()
assert check_process(proc).ok
print("pipelined ALU: statically timing-safe (II=1, latency 2)\n")

cases = [
    (0, 1000, 2345),    # add
    (1, 5, 7),          # sub
    (4, 0xAAAA, 0x5555),  # xor
    (7, 2, 9),          # lt
    (5, 3, 4),          # shl
]

system = System("alu")
inst = system.add(proc)
ci = system.expose(inst, "inp")
co = system.expose(inst, "out")
ss = build_simulation(system)
ip = ss.external(ci).ports["data"]
op = ss.external(co).ports["data"]
ss.sim.modules = [m for m in ss.sim.modules
                  if m not in ss.externals.values()]
src = PortSource("src", ip)
sink = PortSink("sink", op)
src.push(*[alu_pack(*c) for c in cases])
ss.sim.add(src)
ss.sim.add(sink)
ss.sim.run(20)

print(f"{'op':>5} {'a':>7} {'b':>7} {'result':>7} {'cycle':>6}")
for (opc, a, b), (cyc, val) in zip(cases, sink.received):
    assert val == alu_reference(opc, a, b)
    print(f"{ALU_OPS[opc]:>5} {a:>7} {b:>7} {val:>7} {cyc:>6}")

cycles = [c for c, _ in sink.received]
assert cycles == list(range(cycles[0], cycles[0] + len(cases)))
print("\none result per cycle after the 2-cycle fill: initiation "
      "interval = 1, with every stage hazard checked at compile time")
