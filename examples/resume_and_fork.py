#!/usr/bin/env python3
"""Checkpoint a run, then fork two divergent tails from the same cycle.

The snapshot layer (``repro.rtl.snapshot``) captures the complete
cycle-boundary state of a simulator -- wire values, pending latches,
toggle counters, module registers/queues, waveform series -- as a
picklable blob.  Restoring it into a *fresh deterministic rebuild* of
the same scenario resumes the run bit-identically: the restored tail
is indistinguishable from a run that never stopped.

That makes checkpoints forkable.  This example:

1. runs ``streams`` to cycle 300 straight through (the reference);
2. re-runs it to cycle 150 and takes a snapshot;
3. **fork A** -- restores the snapshot into a fresh build and runs the
   remaining 150 cycles untouched: every waveform sample matches the
   reference exactly;
4. **fork B** -- restores the same snapshot, then pokes the stimulus
   source's pending queue (bit-flips the unsent words) before running
   the tail: the waveforms stay identical up to the fork cycle and
   diverge only after it.

Run:  PYTHONPATH=src python examples/resume_and_fork.py

The same machinery backs the public surface::

    repro run streams --checkpoint-every 50 --checkpoint-dir ckpts
    repro run streams --resume-from ckpts/streams-c100-....ckpt
    POST /jobs {"scenario": ..., "from_cycle": 150}   # served fork
"""

from repro import SimConfig, get_registry

SCENARIO = "streams"
FORK_AT = 150
CYCLES = 300

config = SimConfig(cycles=CYCLES, stim=2 * CYCLES, seed=7)
registry = get_registry()


def first_divergence(a, b):
    """First cycle where any watched signal differs, or None."""
    cycles = min(min(map(len, a.values())), min(map(len, b.values())))
    for cycle in range(cycles):
        for label in a:
            if a[label][cycle] != b[label][cycle]:
                return cycle
    return None


# 1. the reference: one run straight through
reference = registry.build(SCENARIO, config)
reference.run(CYCLES)

# 2. run to the fork point and snapshot
base = registry.build(SCENARIO, config)
base.run(FORK_AT)
snap = base.snapshot()
print(f"snapshot at cycle {snap.cycle}: {snap.nbytes():,} bytes, "
      f"{len(snap.values)} wires, {len(snap.module_state)} modules")

# 3. fork A: restore untouched, run the tail
fork_a = registry.build(SCENARIO, config)
fork_a.restore(snap)
fork_a.run(CYCLES - fork_a.cycle)
assert fork_a.waveform.samples == reference.waveform.samples
assert fork_a.activity == reference.activity
print(f"fork A (untouched): bit-identical to the from-0 reference "
      f"({fork_a.total_activity()} toggles)")

# 4. fork B: restore, poke the pending stimulus, run the tail
fork_b = registry.build(SCENARIO, config)
fork_b.restore(snap)
source = next(m for m in fork_b.modules if m.name == "st_src")
source.queue = [word ^ 0xFF for word in source.queue]
fork_b.run(CYCLES - fork_b.cycle)

diverged = first_divergence(reference.waveform.samples,
                            fork_b.waveform.samples)
assert diverged is not None, "poked fork never diverged"
assert diverged >= FORK_AT, (
    f"fork B diverged at cycle {diverged}, before the fork point "
    f"{FORK_AT} -- the shared prefix must be identical"
)
print(f"fork B (stimulus bit-flipped at the fork): prefix identical "
      f"through cycle {FORK_AT - 1}, first divergence at cycle "
      f"{diverged}")
print("resume-and-fork OK")
