#!/usr/bin/env python3
"""The simulation service end to end: serve, submit, stream, cache-hit.

Starts a ``repro.server`` on a background thread (the same service
``python -m repro serve`` runs in the foreground), then walks the whole
serving loop with the blocking client:

1. browse the scenario registry over HTTP;
2. submit a run job and fetch its structured ``RunResult``;
3. resubmit the identical job -- answered instantly from the
   content-addressed result cache, nothing recompiled, nothing re-run;
4. submit a streaming job and watch per-cycle waveform/activity deltas
   arrive over the WebSocket trace.

Run:  python examples/serve_and_stream.py
"""

from repro.api import Session, SimConfig

# Session.serve(background=True) binds the server (port 0 = any free
# port) on a daemon thread and returns once it is accepting requests.
server = Session(SimConfig()).serve(port=0, queue_depth=8, workers=2,
                                    background=True)

from repro.server import ServerClient  # noqa: E402

with server, ServerClient(port=server.port) as client:
    names = [s["name"] for s in client.scenarios(tag="rtl")]
    print(f"server on port {server.port} offers {len(names)} rtl "
          f"scenarios: {', '.join(names[:4])}, ...")

    # -- submit / poll / fetch ----------------------------------------
    record = client.submit("streams", cycles=400)
    print(f"\nsubmitted {record['id']} ({record['state']})")
    client.wait(record["id"])
    result = client.result(record["id"])
    print(f"done: {result.cycles} cycles, "
          f"{result.total_activity} toggles across "
          f"{len(result.activity)} wires "
          f"(engine={result.config.engine})")

    # -- the content-addressed result cache ---------------------------
    again = client.submit("streams", cycles=400)
    assert again["state"] == "done" and again["cached"] == "submit"
    cached = client.result(again["id"])
    assert cached.activity == result.activity
    stats = client.stats()["result_cache"]
    print(f"resubmission answered from cache "
          f"(hits={stats['hits']}, entries={stats['entries']}) -- "
          f"no rebuild, no re-run")

    # -- live trace streaming over WebSocket --------------------------
    record = client.submit("memory", cycles=40, stream=True)
    print(f"\nstreaming {record['id']} (memory, 40 cycles):")
    deltas = 0
    for frame in client.stream(record["id"]):
        if frame["type"] == "delta":
            deltas += 1
            if frame["cycle"] < 3 or frame["cycle"] > 37:
                moved = ", ".join(sorted(frame["changes"])[:3]) or "-"
                print(f"  cycle {frame['cycle']:3d}: "
                      f"activity={frame['activity']:5d}  "
                      f"changed: {moved}")
        else:
            print(f"  end: state={frame['state']} "
                  f"dropped={frame['dropped']}")
    assert deltas == 40

print("\nserver shut down cleanly")
