#!/usr/bin/env python3
"""The CVA6-style MMU: a TLB backed by a three-level page table walker.

Demonstrates composition of Anvil processes with *run-time-varying*
latencies: a TLB hit answers in one cycle, a miss triggers a walk whose
length depends on the page-table layout and the memory's speed -- all
under one dynamic timing contract that the type checker verified once,
statically.

Run:  python examples/mmu_walkthrough.py
"""

from repro import System, build_simulation, check_process
from repro.anvil_designs.mmu import ptw_process, tlb_process
from repro.designs.mmu import FAULT, build_page_table
from repro.designs.memory import HandshakeMemory

MAPPING = {0x010: 0x0AA, 0x011: 0x0AB, 0x123: 0xABC}

print("page mapping:", {hex(k): hex(v) for k, v in MAPPING.items()})

# static safety of both processes
for factory in (tlb_process, ptw_process):
    report = check_process(factory())
    assert report.ok, report.errors
print("tlb + ptw: statically timing-safe\n")

# build:  test bench -> TLB -> PTW -> page-table memory
image = build_page_table(MAPPING)
system = System("mmu")
tlb = system.add(tlb_process())
ptw = system.add(ptw_process())
system.connect(tlb, "ptw", ptw, "host")
host_ch = system.expose(tlb, "host")
mem_ch = system.expose(ptw, "mem")

ss = build_simulation(system)
mem_ext = ss.externals[mem_ch.cid]
ss.sim.modules.remove(mem_ext)
memory = HandshakeMemory(
    "page_table", mem_ext.ports["req"], mem_ext.ports["res"],
    latency=1, contents=lambda a: image.get(a, 0),
)
ss.sim.add(memory)

host = ss.external(host_ch)
host.always_receive("res")

requests = [0x010, 0x010, 0x123, 0x010, 0x999]
for vpn in requests:
    host.send("req", vpn)
ss.sim.run(300)

print(f"{'vpn':>6} {'result':>8} {'latency':>8}")
for (c0, vpn), (c1, res) in zip(host.sent["req"], host.received["res"]):
    kind = "FAULT" if res & FAULT else hex(res)
    print(f"{hex(vpn):>6} {kind:>8} {c1 - c0:>7}c")

print("\nthe first access walks the table (slow); the repeat hits the TLB "
      "(1 cycle); the unmapped page faults -- one contract covers all.")
