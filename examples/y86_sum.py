#!/usr/bin/env python3
"""The Y86-64 CSAPP sum loop on all three execution models.

One program -- the book's sum-over-an-array worked example -- runs on
the sequential ISA reference interpreter, on the 5-stage pipelined RTL
CPU (with live hazard counters), and on the Anvil typed-channel core,
and all three must retire into the same architectural state.  This is
one case of what `repro.isa.fuzz` does to hundreds of random programs.

Run:  python examples/y86_sum.py
"""

from repro.designs.y86 import (
    Y86PipelineCpu,
    anvil_arch_state,
    attach_anvil_y86,
    run_to_halt,
)
from repro.isa.assembler import assemble
from repro.isa.programs import CSAPP_QUADS, sum_program
from repro.isa.reference import ReferenceMachine
from repro.rtl.simulator import Simulator

prog = assemble(sum_program(CSAPP_QUADS))
print("CSAPP sum loop, assembled:\n")
print("\n".join(prog.listing().splitlines()[:6]))
print("...\n")

# -- model 1: the sequential ISA reference ------------------------------
expected = ReferenceMachine(prog.image).run()
print(f"reference:     %rax = {expected.registers[0]:#x} "
      f"in {expected.instret} instructions")
assert expected.registers[0] == sum(CSAPP_QUADS)

# -- model 2: the pipelined RTL CPU -------------------------------------
sim = Simulator("y86_rtl", engine="kernel")
cpu = sim.add(Y86PipelineCpu("cpu", prog.image))
cycles = run_to_halt(sim, cpu, chunk=1)   # exact cycle count for CPI
assert cpu.arch_state() == expected
cpi = cycles / expected.instret
print(f"RTL pipeline:  same state in {cycles} cycles "
      f"(CPI {cpi:.2f}; {cpu.loaduse_stalls} load-use stalls, "
      f"{cpu.mispredict_squashes} squash, {cpu.ret_bubbles} ret bubbles)")

# -- model 3: the Anvil typed-channel core ------------------------------
asim = Simulator("y86_anvil")
core, server, host = attach_anvil_y86(asim, prog.image)
start = asim.cycle
while not core.regs["halted"]:
    asim.run(1)
assert anvil_arch_state(core, server) == expected
print(f"Anvil core:    same state in {asim.cycle - start} cycles "
      f"(timing-safe channels, lifetime-checked registers)")

print("\nthree models, one architectural contract -- the differential "
      "fuzzer holds them to it on random programs")
