"""Appendix A: language-based vs verification-based detection.

Run: pytest benchmarks/bench_appendix_a_bmc.py --benchmark-only -s
"""

import pytest

from repro.harness import appendix_a
from repro.harness.appendix_a import anvil_side, verification_side


@pytest.fixture(scope="module")
def result():
    return appendix_a()


def test_print(result):
    print("\nAPPENDIX A -- Anvil vs bounded model checking")
    a = result["anvil"]
    print(f"  Anvil type check:   {a['verdict']} in {a['seconds']*1000:.1f} ms"
          f" (modular: child only); error: {a['error'][:80]}...")
    b = result["bmc_full_width"]
    print(f"  BMC (32-bit cnt):   {b['verdict']} after depth "
          f"{b['depth_reached']}, {b['states_explored']} states, "
          f"{b['seconds']:.2f}s -- violation NOT found")
    c = result["bmc_reduced_width"]
    print(f"  BMC (8-bit cnt):    {c['verdict']} after "
          f"{c['states_explored']} states (manual abstraction needed)")


def test_anvil_detects_instantly(result):
    a = result["anvil"]
    assert a["verdict"] == "rejected"
    assert a["value_not_live"]
    assert a["seconds"] < 2.0


def test_bmc_misses_at_full_width(result):
    b = result["bmc_full_width"]
    assert not b["found_violation"]


def test_bmc_finds_after_manual_reduction(result):
    assert result["bmc_reduced_width"]["found_violation"]


@pytest.mark.benchmark(group="appendix_a")
def test_benchmark_anvil_check(benchmark):
    benchmark(anvil_side)


@pytest.mark.benchmark(group="appendix_a")
def test_benchmark_bmc(benchmark):
    benchmark(lambda: verification_side(max_depth=200, time_budget=1.0))
