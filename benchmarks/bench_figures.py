"""Figures 1, 2, 4, 5, 6, 8: regenerate each figure's data and check its
shape against the paper.

Run: pytest benchmarks/bench_figures.py --benchmark-only -s
"""

import pytest

from repro.harness import (
    figure1,
    figure2_anvil,
    figure2_bsv,
    figure4,
    figure5,
    figure6,
    figure8,
)


class TestFigure1:
    def test_print_and_shape(self):
        r = figure1()
        print("\nFIGURE 1 -- Top misreading the 2-cycle memory")
        print(r["waveform"])
        print("observed:", r["observed"], " expected:", r["expected"])
        assert r["hazard"]
        # only every other address is dereferenced
        distinct = []
        for v in r["observed"][1:]:
            if not distinct or distinct[-1] != v:
                distinct.append(v)
        assert distinct[:3] == [0, 2, 4]

    @pytest.mark.benchmark(group="fig1")
    def test_benchmark(self, benchmark):
        benchmark(figure1)


class TestFigure2:
    def test_bsv_schedules_unsafe(self):
        r = figure2_bsv()
        print("\nFIGURE 2 -- BSV schedules under the contract monitor")
        for name, res in r.items():
            state = "safe" if res["timing_safe"] else (
                f"TIMING-UNSAFE ({len(res['violations'])} violations)"
            )
            print(f"  {name}: {state}")
        # conflict-free schedules that are still timing-unsafe exist
        assert any(not res["timing_safe"] for res in r.values())

    def test_anvil_verdicts(self):
        r = figure2_anvil()
        print("\nFIGURE 2 -- the same designs in Anvil")
        for name, res in r.items():
            print(f"  {name}: {res['verdict']} {res['errors']}")
        assert r["forward_unregistered"]["verdict"] == "rejected"
        assert "Value not live long enough" in \
            r["forward_unregistered"]["errors"]
        assert r["early_address_mutation"]["verdict"] == "rejected"
        assert "Attempted assignment to a loaned register" in \
            r["early_address_mutation"]["errors"]
        assert r["registered_forward"]["verdict"] == "accepted"

    @pytest.mark.benchmark(group="fig2")
    def test_benchmark(self, benchmark):
        benchmark(figure2_anvil)


class TestFigure4:
    def test_print_and_shape(self):
        r = figure4()
        print("\nFIGURE 4 -- static vs dynamic cache contract")
        print("  addresses:        ", r["addresses"])
        print("  dynamic latencies:", r["dynamic_latencies"])
        print("  static latencies: ", r["static_latencies"])
        print(f"  speedup: {r['speedup']:.2f}x")
        # dynamic: hits at 1 cycle, misses at 3; static: all worst-case
        assert set(r["dynamic_latencies"]) == {1, 3}
        assert set(r["static_latencies"]) == {3}
        assert r["speedup"] > 1.0

    @pytest.mark.benchmark(group="fig4")
    def test_benchmark(self, benchmark):
        benchmark(figure4)


class TestFigure5:
    def test_print_and_shape(self):
        r = figure5()
        print("\nFIGURE 5 -- compile-time checks")
        for proc, res in r.items():
            print(f"  {proc}: {res['decision']}")
            for c in res["checks"]:
                print(f"    - {c}")
        assert r["Top_Unsafe"]["decision"] == "UNSAFE"
        assert r["Top_Safe"]["decision"] == "SAFE"

    @pytest.mark.benchmark(group="fig5")
    def test_benchmark(self, benchmark):
        benchmark(figure5)


class TestFigure6:
    def test_print_and_shape(self):
        r = figure6()
        print("\nFIGURE 6 -- Encrypt: inferred lifetimes")
        for line in r["lifetimes"][:8]:
            print("  ", line)
        print(f"  decision: {r['decision']} "
              f"({len(r['errors'])} errors, {r['event_count']} events)")
        # the paper's Encrypt contains both bugs
        assert r["decision"] == "UNSAFE"
        assert r["event_count"] >= 10
        assert "digraph" in r["event_graph_dot"]

    @pytest.mark.benchmark(group="fig6")
    def test_benchmark(self, benchmark):
        benchmark(figure6)


class TestFigure8:
    def test_print_and_shape(self):
        r = figure8()
        print("\nFIGURE 8 -- event graph optimization")
        total_before = total_after = 0
        for name, threads in r.items():
            for t in threads:
                total_before += t["before"]
                total_after += t["after"]
            t0 = threads[0]
            print(f"  {name:25s} {t0['before']:4d} -> {t0['after']:4d} "
                  f"events {t0['removed']}")
        print(f"  TOTAL: {total_before} -> {total_after} "
              f"({100 * (1 - total_after / total_before):.0f}% removed)")
        assert total_after < total_before

    def test_every_pass_fires_somewhere(self):
        r = figure8()
        fired = set()
        for threads in r.values():
            for t in threads:
                for name, n in t["removed"].items():
                    if n:
                        fired.add(name)
        assert "merge_labels" in fired or "unbalanced_joins" in fired

    @pytest.mark.benchmark(group="fig8")
    def test_benchmark(self, benchmark):
        benchmark(figure8)
