"""Table 1: area / power / fmax / latency for the ten evaluation designs.

Run: pytest benchmarks/bench_table1_synthesis.py --benchmark-only -s
"""

import pytest

from repro.harness.table1 import format_table1, generate_table1


@pytest.fixture(scope="module")
def rows():
    return generate_table1()


def test_print_table1(rows):
    print()
    print("=" * 100)
    print("TABLE 1 -- resource consumption, Anvil vs baselines")
    print("=" * 100)
    print(format_table1(rows))


def test_shape_latency_overhead_zero(rows):
    """The paper's headline: no design pays any cycle latency."""
    assert all(r.latency_overhead == 0 for r in rows)


def test_shape_fifo_near_parity(rows):
    fifo = rows[0]
    assert abs(fifo.area_overhead) < 10


def test_shape_aes_small_area_overhead(rows):
    aes = [r for r in rows if "AES" in r.design][0]
    assert aes.area_overhead < 20


def test_shape_overheads_bounded(rows):
    """Every overhead stays within the same order as the baseline."""
    assert all(r.area_overhead < 120 for r in rows)


def bench_generate(benchmark=None):
    pass


@pytest.mark.benchmark(group="table1")
def test_benchmark_cost_model(benchmark):
    """Throughput of the synthesis cost model itself."""
    from repro.anvil_designs.streams import fifo_buffer
    from repro.codegen.simfsm import compile_process
    from repro.synth import estimate_compiled

    compiled = compile_process(fifo_buffer(depth=4, width=32))
    benchmark(lambda: estimate_compiled(compiled))
