"""Table 2 + Section 7.2: real-world issue case studies.

Run: pytest benchmarks/bench_table2_cases.py --benchmark-only -s
"""

import pytest

from repro.harness import generate_table2, stream_fifo_safety


@pytest.fixture(scope="module")
def cases():
    return generate_table2()


def test_print_table2(cases):
    print("\nTABLE 2 -- open-source issue case studies")
    for key, case in cases.items():
        print(f"  {case['issue']}")
        for k, v in case.items():
            if k != "issue":
                print(f"      {k}: {v}")


def test_unsafe_formulations_rejected(cases):
    assert cases["opentitan"]["unsafe_rejected"]
    assert cases["coyote"]["unsafe_rejected"]


def test_safe_formulations_accepted(cases):
    for key in ("opentitan", "coyote", "ibex", "snax", "core2axi"):
        assert cases[key]["safe_accepted"], key


def test_handshakes_generated_implicitly(cases):
    assert cases["ibex"]["valid_generated"]
    assert cases["snax"]["both_operand_acks_generated"]
    assert cases["core2axi"]["w_valid_generated"]


def test_stream_fifo_gap(capsys=None):
    r = stream_fifo_safety()
    print("\nSECTION 7.2 -- stream FIFO safety gap")
    print(f"  baseline overflows: {r['baseline_overflows']}")
    for a in r["baseline_assertions"][:3]:
        print(f"    SVA: {a}")
    print(f"  data lost: {r['baseline_data_lost']}")
    print(f"  anvil guard enforced by construction: "
          f"{r['anvil_guard_enforced_by_construction']}")
    assert r["baseline_overflows"] > 0
    assert r["baseline_data_lost"]
    assert r["anvil_guard_enforced_by_construction"]


@pytest.mark.benchmark(group="table2")
def test_benchmark(benchmark):
    benchmark(generate_table2)
