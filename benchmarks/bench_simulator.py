"""Before/after benchmark of the RTL simulation engine.

Measures cycles/second of the levelized, dirty-set scheduler
(``engine="levelized"``) against the seed's brute-force settle loop
(``engine="brute"``, kept verbatim: full re-evaluation of every module
per iteration, dict snapshots of every wire, full-pass toggle
accounting) on the six bundled design families and on the combined
"sweep" (all six families in one simulator -- the shape the harness
tables run, and the regime the seed loop handles worst).

Every measurement also cross-checks equivalence: both engines must
produce identical waveforms and identical per-wire activity counts.

Run::

    PYTHONPATH=src python benchmarks/bench_simulator.py            # full
    PYTHONPATH=src python benchmarks/bench_simulator.py --quick    # CI
"""

import argparse
import statistics
import sys
import time

from repro.harness.scenarios import SCENARIOS, build_scenario, build_sweep

ENGINES = ("brute", "levelized")


def _measure(builder, cycles, warmup, repeats):
    """Best-of-N cycles/second for one builder, plus the finished sim."""
    best = 0.0
    sim = None
    for _ in range(repeats):
        sim = builder()
        sim.run(warmup)
        t0 = time.perf_counter()
        sim.run(cycles)
        elapsed = time.perf_counter() - t0
        best = max(best, cycles / elapsed)
    return best, sim


def bench_one(name, builders, cycles, warmup, repeats, check):
    cps = {}
    sims = {}
    for engine in ENGINES:
        cps[engine], sims[engine] = _measure(
            builders[engine], cycles, warmup, repeats
        )
    equivalent = True
    if check:
        equivalent = (
            sims["brute"].activity == sims["levelized"].activity
            and sims["brute"].waveform.samples
            == sims["levelized"].waveform.samples
        )
    return {
        "name": name,
        "brute": cps["brute"],
        "levelized": cps["levelized"],
        "speedup": cps["levelized"] / cps["brute"],
        "equivalent": equivalent,
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="short CI run (fewer cycles, one repeat)")
    ap.add_argument("--cycles", type=int, default=None,
                    help="measured cycles per scenario")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--no-check", action="store_true",
                    help="skip the waveform/activity equivalence check")
    args = ap.parse_args(argv)

    cycles = args.cycles or (200 if args.quick else 1500)
    sweep_cycles = max(cycles // 3, 100)
    warmup = 20 if args.quick else 50
    repeats = 1 if args.quick else 3
    check = not args.no_check
    stim = max(cycles * 2, 500)

    rows = []
    for name in SCENARIOS:
        builders = {
            engine: (lambda e=engine, n=name: build_scenario(
                n, engine=e, seed=args.seed, stim=stim))
            for engine in ENGINES
        }
        rows.append(bench_one(name, builders, cycles, warmup, repeats,
                              check))
    sweep_builders = {
        engine: (lambda e=engine: build_sweep(
            e, seed=args.seed, stim=stim))
        for engine in ENGINES
    }
    sweep = bench_one("sweep (all six)", sweep_builders, sweep_cycles,
                      warmup, repeats, check)
    rows.append(sweep)

    print(f"{'design':18s} {'seed c/s':>10} {'levelized c/s':>14} "
          f"{'speedup':>8}  equal")
    for r in rows:
        print(f"{r['name']:18s} {r['brute']:10.0f} "
              f"{r['levelized']:14.0f} {r['speedup']:7.2f}x  "
              f"{'yes' if r['equivalent'] else 'NO'}")
    geo = statistics.geometric_mean(r["speedup"] for r in rows[:-1])
    print(f"\nper-design geomean speedup: {geo:.2f}x")
    print(f"design-sweep speedup:       {sweep['speedup']:.2f}x")

    if not all(r["equivalent"] for r in rows):
        print("ERROR: engines disagree on waveforms or activity",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
