"""Before/after benchmark of the RTL simulation stack, on four axes.

**Engine axis** (``Simulator(engine=...)``): the seed's brute-force
settle loop (kept verbatim: full re-evaluation of every module per
iteration, dict snapshots of every wire, full-pass toggle accounting),
the levelized dirty-set scheduler, and the compiled per-topology cycle
kernel (``engine="kernel"``: exec-generated step loops, see
``repro.rtl.kernel``) on the six bundled design families and the
combined "sweep" (all six families in one simulator -- the shape the
harness tables run).  The axis runs on the ``pycompiled`` FSM backend:
the settle engines schedule *modules*, and on ``interp`` the plan
interpreter inside each compiled-process module dominates the cycle,
masking exactly the dispatch overhead this axis measures (the backend
axis below quantifies that interpreter cost separately).  Each row
reports ``speedup`` (levelized vs brute, the historical column) and
``kernel_speedup`` (kernel vs levelized -- the floor
``tools/check_bench.py`` gates on).

**Backend axis** (``build_simulation(backend=...)``): the generated-
Python FSM backend (``pycompiled``: plans compiled to specialized
Python by ``repro.codegen.pysim``) against the plan interpreter
(``interp``) on the six *Anvil-only* scenarios -- the workloads that are
almost entirely compiled-process execution -- plus their combined sweep,
and the full engine x backend matrix on that sweep.

**CPU axis** (recorded, not gated): the three ``y86_*`` pipelined-CPU
scenarios across the engines -- control-heavy, data-dependent work
whose speedups aren't comparable to the streaming designs the gated
engine axis floors were committed against.

**Batch axis** (``repro.rtl.batch.run_lockstep``): the columnar
multi-instance cycle kernels on the twelve scenario families, M
same-topology instances (16 full / 4 quick) advancing lock-step
through one compiled ``_BATCH_KERNEL`` pass.  Two comparisons per
family, both bit-checked against the scalar runs: ``parity`` --
batched throughput vs M sequential scalar-kernel runs (the batched
kernel must not tax plain sweeps; the slot-unrolled bodies make this
~1x by construction) -- and ``campaign_speedup`` -- a stop-condition
campaign (the fuzzer's shape: check a wire every cycle) run through
the compiled in-kernel stop vs today's interpreted per-cycle
stop-check loop.  The campaign column is where batching pays:
per-cycle kernel re-entry and Python-level stop checks collapse into
compiled code.  Gated by ``tools/check_bench.py``.

**Executor axis** (``Session.sweep(executor=...)``): the declarative
JobSpec sweep of all twelve scenario families (six mixed + six
Anvil-only) under the ``serial``, ``thread`` and ``process`` executors
of :mod:`repro.rtl.executors`.  Each job builds *and* runs its scenario
inside the executor -- the harness-sweep shape -- so the ``process``
row shows what real cores buy once jobs can cross the pickling
boundary (the thread row documents the GIL tax instead).  The blob
records ``cpu_count``: on a single-core box the process row can only
demonstrate correctness, not speedup, and ``tools/check_bench.py``
gates the multi-core floor conditionally on it.

Every measurement cross-checks equivalence on both axes: the two
variants must produce identical waveforms (the scenarios watch every
compiled process's received-message wires) and identical per-wire
activity counts.  The pysim compile-cache counters are reported at the
end (repeated rows must hit, not recompile).

Run::

    PYTHONPATH=src python benchmarks/bench_simulator.py            # full
    PYTHONPATH=src python benchmarks/bench_simulator.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_simulator.py --json out.json
"""

import argparse
import json
import os
import statistics
import sys
import time

from repro.api import Session, SimConfig, get_registry
from repro.codegen import pysim
from repro.codegen.simfsm import BACKENDS
from repro.rtl import kernel
from repro.rtl.executors import EXECUTORS
from repro.rtl.simulator import ENGINES


def _measure_once(builder, cycles, warmup):
    """One cycles/second measurement, plus the finished sim."""
    sim = builder()
    sim.run(warmup)
    t0 = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - t0
    return cycles / elapsed, sim


def _measure(builder, cycles, warmup, repeats):
    """Best-of-N cycles/second for one builder, plus the finished sim."""
    best = 0.0
    sim = None
    for _ in range(repeats):
        rate, sim = _measure_once(builder, cycles, warmup)
        best = max(best, rate)
    return best, sim


def bench_pair(name, builders, variants, cycles, warmup, repeats, check):
    """Measure the variants of one design and cross-check equivalence
    (identical per-wire activity counts and identical waveforms, every
    variant against the first).  ``speedup`` is second-vs-first (the
    historical levelized-vs-brute column); when a ``kernel`` variant is
    present, ``kernel_speedup`` is kernel-vs-levelized.

    Repeats interleave across the variants (A B C, A B C, ...) rather
    than running each variant's repeats back to back: shared/throttled
    runners drift over a measurement block, and consecutive repeats
    would systematically tax whichever variant runs last."""
    cps = {v: 0.0 for v in variants}
    sims = {}
    for _ in range(repeats):
        for variant in variants:
            rate, sims[variant] = _measure_once(
                builders[variant], cycles, warmup
            )
            cps[variant] = max(cps[variant], rate)
    a, b = variants[0], variants[1]
    equivalent = True
    if check:
        ref = sims[a]
        equivalent = all(
            sims[v].activity == ref.activity
            and sims[v].waveform.samples == ref.waveform.samples
            for v in variants[1:]
        )
    row = {
        "name": name,
        **{v: cps[v] for v in variants},
        "speedup": cps[b] / cps[a],
        "equivalent": equivalent,
    }
    if "kernel" in cps and "levelized" in cps:
        row["kernel_speedup"] = cps["kernel"] / cps["levelized"]
    return row


def _print_rows(rows, variants, label):
    header = f"{'design':18s}" + "".join(
        f" {v + ' c/s':>14}" for v in variants
    ) + f" {'speedup':>8}"
    has_kernel = "kernel_speedup" in rows[0]
    if has_kernel:
        header += f" {'k/lev':>7}"
    print(header + "  equal")
    for r in rows:
        line = f"{r['name']:18s}" + "".join(
            f" {r[v]:14.0f}" for v in variants
        ) + f" {r['speedup']:7.2f}x"
        if has_kernel:
            line += f" {r['kernel_speedup']:6.2f}x"
        print(line + f"  {'yes' if r['equivalent'] else 'NO'}")
    geo = statistics.geometric_mean(r["speedup"] for r in rows[:-1])
    print(f"\nper-design geomean {label} speedup: {geo:.2f}x")
    print(f"design-sweep {label} speedup:       {rows[-1]['speedup']:.2f}x")
    if has_kernel:
        kgeo = statistics.geometric_mean(
            r["kernel_speedup"] for r in rows[:-1])
        print(f"per-design geomean kernel-vs-levelized: {kgeo:.2f}x")
        print(f"design-sweep kernel-vs-levelized:       "
              f"{rows[-1]['kernel_speedup']:.2f}x")
    return geo


def _batch_fleet(session, name, m, warmup):
    """M same-topology instances of one scenario (seeds ``0..m-1``),
    warmed up and ready to measure."""
    sims = [session.build(name, engine="kernel", backend="pycompiled",
                          seed=s) for s in range(m)]
    for sim in sims:
        sim.run(warmup)
    return sims


def _precompile_batch(sims, m, stop=None):
    """Compile the batched kernel for this fleet's (topology, width,
    stop shape) before the timed region.  The scalar axes get the same
    treatment implicitly -- ``sim.run(warmup)`` compiles the scalar
    kernel before ``t0`` -- and the compile is a once-per-shape,
    process-wide cached cost a steady-state sweep never pays again."""
    from repro.rtl.batch import _stop_index
    from repro.rtl.kernel import batch_kernel_for, topology_shape

    _digest, plan = topology_shape(sims[0])
    shape = None
    if stop is not None:
        shape = (stop.op, _stop_index(sims[0], stop.wires[0]))
    batch_kernel_for(plan, m, shape)


def _never_stop(sims):
    """A stop condition that can never fire (wire values are
    non-negative, ``-1`` never matches) but is checked after every
    cycle -- the run-to-halt/fuzzer campaign shape at fixed work."""
    from repro.rtl.batch import StopCondition

    for sim in sims:
        sim.scheduler._ensure_built()
    return StopCondition("eq", [s.scheduler._wires[0] for s in sims],
                         [-1] * len(sims))


def bench_batch_axis(session, names, m, cycles, warmup, repeats, check):
    """Columnar lock-step kernels vs per-instance scalar runs.

    Two comparisons per family, M instances each (same topology,
    seeds ``0..M-1``), both on the kernel/pycompiled configuration:

    * ``parity``: plain fixed-cycle throughput, one ``run_lockstep``
      pass vs M sequential scalar-kernel runs.  The slot-unrolled
      batched body runs the same compiled statements in a different
      interleave, so this holds ~1x by construction -- the gate only
      guards against a regression tax on plain sweeps.
    * ``campaign_speedup``: a stop-condition campaign -- check one
      wire after every cycle, the run-to-halt shape -- through the
      compiled in-kernel stop vs the interpreted per-cycle
      ``run_stop_scalar`` loop.  The stop never fires, so both sides
      do identical simulation work and the column isolates the
      per-cycle kernel re-entry + Python stop-check overhead that
      batching compiles away.

    Both batched variants are bit-checked against the scalar sims
    (activity counts + waveforms), like every other axis.
    """
    from repro.rtl.batch import (StopCondition, run_lockstep,
                                 run_stop_scalar)

    rows = []
    for name in names:
        cps = {"scalar": 0.0, "batched": 0.0,
               "campaign_scalar": 0.0, "campaign_batched": 0.0}
        equivalent = True
        for _ in range(repeats):
            ref = _batch_fleet(session, name, m, warmup)
            t0 = time.perf_counter()
            for sim in ref:
                sim.run(cycles)
            cps["scalar"] = max(
                cps["scalar"], m * cycles / (time.perf_counter() - t0))

            sims = _batch_fleet(session, name, m, warmup)
            _precompile_batch(sims, m)
            t0 = time.perf_counter()
            run_lockstep(sims, cycles, width=m)
            cps["batched"] = max(
                cps["batched"], m * cycles / (time.perf_counter() - t0))
            if check:
                equivalent = equivalent and all(
                    s.activity == r.activity
                    and s.waveform.samples == r.waveform.samples
                    for s, r in zip(sims, ref))

            sims = _batch_fleet(session, name, m, warmup)
            stop = _never_stop(sims)
            t0 = time.perf_counter()
            for k, sim in enumerate(sims):
                run_stop_scalar(
                    sim, cycles,
                    StopCondition("eq", [stop.wires[k]], [-1]), 0)
            cps["campaign_scalar"] = max(
                cps["campaign_scalar"],
                m * cycles / (time.perf_counter() - t0))

            sims = _batch_fleet(session, name, m, warmup)
            stop = _never_stop(sims)
            _precompile_batch(sims, m, stop)
            t0 = time.perf_counter()
            res = run_lockstep(sims, cycles, stop=stop, width=m)
            cps["campaign_batched"] = max(
                cps["campaign_batched"],
                m * cycles / (time.perf_counter() - t0))
            if check:
                equivalent = (equivalent and all(res.batched)
                              and not any(res.stopped)
                              and all(s.activity == r.activity
                                      and (s.waveform.samples
                                           == r.waveform.samples)
                                      for s, r in zip(sims, ref)))

        rows.append({
            "name": name,
            **cps,
            "parity": cps["batched"] / cps["scalar"],
            "campaign_speedup":
                cps["campaign_batched"] / cps["campaign_scalar"],
            "equivalent": equivalent,
        })
    return rows


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="short CI run (fewer cycles, one repeat)")
    ap.add_argument("--cycles", type=int, default=None,
                    help="measured cycles per scenario")
    ap.add_argument("--seed", type=int, default=3)
    ap.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="forced worker count for the executor axis "
                    "(default: auto = min(jobs, cores))")
    ap.add_argument("--no-check", action="store_true",
                    help="skip the waveform/activity equivalence checks")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write the full result blob (per-design "
                    "cycles/sec for every engine x backend measured) "
                    "as JSON")
    args = ap.parse_args(argv)

    cycles = args.cycles or (200 if args.quick else 1500)
    sweep_cycles = max(cycles // 3, 100)
    warmup = 20 if args.quick else 50
    repeats = 1 if args.quick else 3
    check = not args.no_check
    stim = max(cycles * 2, 500)

    # one resolved config describes the whole run; per-variant builds
    # override only the axis under measurement
    base_cfg = SimConfig(seed=args.seed, stim=stim, cycles=cycles)
    session = Session(base_cfg)
    registry = get_registry()

    # -- engine axis: brute vs levelized vs compiled kernel --------------
    # measured on the pycompiled backend so compiled-FSM interpretation
    # does not mask the settle-engine dispatch this axis isolates
    engine_rows = []
    for name in registry.names("rtl", exclude="sweep"):
        builders = {
            engine: (lambda e=engine, n=name: session.build(
                n, engine=e, backend="pycompiled"))
            for engine in ENGINES
        }
        engine_rows.append(bench_pair(name, builders, ENGINES, cycles,
                                      warmup, repeats, check))
    sweep_builders = {
        engine: (lambda e=engine: session.build(
            "sweep", engine=e, backend="pycompiled"))
        for engine in ENGINES
    }
    engine_rows.append(bench_pair("sweep (all six)", sweep_builders,
                                  ENGINES, sweep_cycles, warmup, repeats,
                                  check))

    print("== engine axis: seed brute-force loop vs levelized "
          "scheduler vs compiled cycle kernel ==")
    _print_rows(engine_rows, ENGINES, "engine")

    # -- backend axis: plan interpreter vs generated Python --------------
    backend_rows = []
    for name in registry.names("anvil", exclude="sweep"):
        builders = {
            backend: (lambda b=backend, n=name: session.build(
                n, backend=b))
            for backend in BACKENDS
        }
        backend_rows.append(bench_pair(name, builders, BACKENDS,
                                       cycles, warmup, repeats, check))
    sweep_builders = {
        backend: (lambda b=backend: session.build("anvil_sweep",
                                                  backend=b))
        for backend in BACKENDS
    }
    backend_rows.append(bench_pair("sweep (all six)", sweep_builders,
                                   BACKENDS, sweep_cycles, warmup,
                                   repeats, check))

    print("\n== backend axis: plan interpreter vs generated Python "
          "(Anvil-only scenarios) ==")
    _print_rows(backend_rows, BACKENDS, "backend")

    # -- the full engine x backend matrix on the Anvil sweep -------------
    print("\n== engine x backend matrix (Anvil sweep, cycles/sec) ==")
    matrix = {}
    matrix_cycles = max(sweep_cycles // 2, 60)
    for engine in ENGINES:
        for backend in BACKENDS:
            cps, _sim = _measure(
                lambda e=engine, b=backend: session.build(
                    "anvil_sweep", engine=e, backend=b),
                matrix_cycles, warmup, 1,
            )
            matrix[f"{engine}/{backend}"] = cps
    print(f"{'':12s} " + " ".join(f"{b:>12}" for b in BACKENDS))
    for engine in ENGINES:
        print(f"{engine:12s} " + " ".join(
            f"{matrix[f'{engine}/{b}']:12.0f}" for b in BACKENDS))

    # -- cpu axis: the y86 pipelined-CPU family across the engines -------
    # control-heavy, data-dependent work (branches, hazards, memory
    # round trips) -- a different shape from the streaming designs the
    # gated engine axis measures.  Recorded in the blob but not gated:
    # the CPU runs a whole second system (the Anvil core plus its
    # memory server) next to the RTL pipeline, so its kernel speedups
    # are not comparable to the engine-axis floors.
    cpu_rows = []
    for name in registry.names("cpu"):
        builders = {
            engine: (lambda e=engine, n=name: session.build(
                n, engine=e, backend="pycompiled"))
            for engine in ENGINES
        }
        cpu_rows.append(bench_pair(name, builders, ENGINES,
                                   sweep_cycles, warmup, repeats, check))

    print("\n== cpu axis: y86 pipelined-CPU scenarios across the "
          "engines (not gated) ==")
    for r in cpu_rows:
        print(f"{r['name']:18s} " + " ".join(
            f"{r[e]:12.0f}" for e in ENGINES)
            + f"  k/lev {r['kernel_speedup']:5.2f}x"
            + f"  {'yes' if r['equivalent'] else 'NO'}")

    # -- batch axis: M-instance columnar lock-step kernels ---------------
    sweep_names = (registry.names("rtl", exclude="sweep")
                   + registry.names("anvil", exclude="sweep"))
    batch_m = 4 if args.quick else 16
    batch_cycles = sweep_cycles
    print(f"\n== batch axis: {batch_m}-instance lock-step kernels vs "
          f"scalar (kernel/pycompiled) ==")
    batch_rows = bench_batch_axis(session, sweep_names, batch_m,
                                  batch_cycles, warmup, repeats, check)
    print(f"{'design':18s} {'scalar c/s':>12} {'batched c/s':>12} "
          f"{'parity':>7} {'camp-scal':>10} {'camp-bat':>10} "
          f"{'campaign':>9}  equal")
    for r in batch_rows:
        print(f"{r['name']:18s} {r['scalar']:12.0f} {r['batched']:12.0f} "
              f"{r['parity']:6.2f}x {r['campaign_scalar']:10.0f} "
              f"{r['campaign_batched']:10.0f} "
              f"{r['campaign_speedup']:8.2f}x"
              f"  {'yes' if r['equivalent'] else 'NO'}")
    parity_geo = statistics.geometric_mean(
        r["parity"] for r in batch_rows)
    campaign_geo = statistics.geometric_mean(
        r["campaign_speedup"] for r in batch_rows)
    print(f"\ngeomean batched-vs-scalar parity:    {parity_geo:.2f}x")
    print(f"geomean stop-campaign speedup:       {campaign_geo:.2f}x")

    # -- executor axis: the 12-family sweep as declarative JobSpecs ------
    print("\n== executor axis: 12-family sweep, build+run per job "
          "(kernel/pycompiled) ==")
    # full per-family cycle counts: each job must carry enough work to
    # amortize pool spawn + result IPC, or the axis only measures
    # overhead (the recorded cpu_count tells small boxes apart).  The
    # sweep runs the fastest configuration -- the harness-sweep shape
    # going forward -- which also smokes the per-worker kernel-cache
    # warm-up end to end.
    exec_session = Session(base_cfg.replace(backend="pycompiled",
                                            engine="kernel"))
    executor_rows = {}
    reference_state = None
    for executor in EXECUTORS:
        t0 = time.perf_counter()
        results = exec_session.sweep(sweep_names, executor=executor,
                                     jobs=args.jobs)
        wall = time.perf_counter() - t0
        state = {n: (r.activity, r.waveform.samples)
                 for n, r in results.items()}
        if reference_state is None:
            reference_state = state
        executor_rows[executor] = {
            "seconds": wall,
            "equivalent": (state == reference_state) if check else None,
        }
    serial_wall = executor_rows["serial"]["seconds"]
    print(f"{'executor':10s} {'seconds':>9} {'vs serial':>10}  equal")
    for executor, row in executor_rows.items():
        row["speedup_vs_serial"] = (serial_wall / row["seconds"]
                                    if row["seconds"] else 0.0)
        eq = {True: "yes", False: "NO", None: "-"}[row["equivalent"]]
        print(f"{executor:10s} {row['seconds']:9.3f} "
              f"{row['speedup_vs_serial']:9.2f}x  {eq}")
    cpu_count = os.cpu_count() or 1
    print(f"(cpu_count={cpu_count}, jobs={args.jobs or 'auto'}; the "
          f"process row needs >1 core to beat serial)")

    stats = pysim.cache_stats()
    print(f"\npysim compile cache: {stats['hits']} hits, "
          f"{stats['misses']} misses, {stats['entries']} entries")
    kstats = kernel.cache_stats()
    print(f"cycle-kernel compile cache: {kstats['hits']} hits, "
          f"{kstats['misses']} misses, {kstats['entries']} entries "
          + " ".join(f"[{layout}: {c['hits']}h/{c['misses']}m/"
                     f"{c['entries']}e]"
                     for layout, c in kstats["layouts"].items()))

    ok = (all(r["equivalent"] for r in engine_rows)
          and all(r["equivalent"] for r in backend_rows)
          and all(r["equivalent"] for r in cpu_rows)
          and all(r["equivalent"] for r in batch_rows)
          and all(r["equivalent"] is not False
                  for r in executor_rows.values()))

    if args.json:
        blob = {
            "config": {
                "quick": args.quick,
                "cycles": cycles,
                "sweep_cycles": sweep_cycles,
                "seed": args.seed,
                "repeats": repeats,
                "checked": check,
            },
            # the resolved SimConfig every scenario was elaborated
            # under (per-variant rows override the measured axis; the
            # engine axis and executor sweep additionally pin
            # backend="pycompiled" -- see the module docstring), so the
            # record is self-describing
            "sim_config": base_cfg.to_dict(),
            "engine_axis": engine_rows,
            "backend_axis": backend_rows,
            # recorded for trajectory tracking, not gated (see above)
            "cpu_axis": cpu_rows,
            "batch_axis": {
                "m": batch_m,
                "cycles": batch_cycles,
                "backend": "pycompiled",
                "engine": "kernel",
                "scenarios": sweep_names,
                "rows": batch_rows,
            },
            "executor_axis": {
                "cpu_count": cpu_count,
                "jobs": args.jobs,
                "cycles": cycles,
                "backend": "pycompiled",
                "engine": "kernel",
                "scenarios": sweep_names,
                "executors": executor_rows,
            },
            "anvil_sweep_matrix": matrix,
            "pysim_cache": stats,
            "kernel_cache": kstats,
            # null (not true) when --no-check skipped the comparisons,
            # so an unverified blob can't masquerade as a verified one
            "equivalent": ok if check else None,
        }
        # the embedded config is the same pinned wire schema the server
        # and the CLI speak (SimConfig.to_json/from_json); a blob that
        # stopped round-tripping would silently orphan old records
        assert SimConfig.from_dict(blob["sim_config"]) == base_cfg
        with open(args.json, "w") as fh:
            json.dump(blob, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not ok:
        print("ERROR: variants disagree on waveforms or activity",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
