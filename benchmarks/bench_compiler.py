"""Compiler performance: type-check and compile times per design, plus
throughput of the compiled simulations (cycles/second).

Run: pytest benchmarks/bench_compiler.py --benchmark-only -s
"""

import pytest

from repro.anvil_designs.aes import aes_core
from repro.anvil_designs.axi import axi_demux, axi_mux
from repro.anvil_designs.mmu import ptw_process, tlb_process
from repro.anvil_designs.pipeline import pipelined_alu, systolic_array
from repro.anvil_designs.streams import (
    fifo_buffer,
    passthrough_stream_fifo,
    spill_register,
)
from repro.codegen.simfsm import compile_process
from repro.codegen.sysverilog import emit_process
from repro.core.typecheck import check_process

DESIGNS = {
    "fifo": fifo_buffer,
    "spill": spill_register,
    "stream_fifo": passthrough_stream_fifo,
    "tlb": tlb_process,
    "ptw": ptw_process,
    "aes": aes_core,
    "axi_demux": axi_demux,
    "axi_mux": axi_mux,
    "alu": pipelined_alu,
    "systolic": systolic_array,
}


@pytest.mark.parametrize("name", sorted(DESIGNS))
@pytest.mark.benchmark(group="typecheck")
def test_benchmark_typecheck(benchmark, name):
    proc = DESIGNS[name]()
    report = benchmark(lambda: check_process(proc))
    assert report.ok


@pytest.mark.parametrize("name", ["fifo", "tlb", "aes"])
@pytest.mark.benchmark(group="compile")
def test_benchmark_compile(benchmark, name):
    proc = DESIGNS[name]()
    benchmark(lambda: compile_process(proc))


@pytest.mark.parametrize("name", ["fifo", "ptw"])
@pytest.mark.benchmark(group="emit_sv")
def test_benchmark_emit_sv(benchmark, name):
    proc = DESIGNS[name]()
    sv = benchmark(lambda: emit_process(proc))
    assert "endmodule" in sv


@pytest.mark.benchmark(group="simulate")
def test_benchmark_simulation_throughput(benchmark):
    from repro.lang.process import System
    from repro.codegen.simfsm import build_simulation

    def run():
        sys_ = System()
        inst = sys_.add(fifo_buffer())
        ci, co = sys_.expose(inst, "inp"), sys_.expose(inst, "out")
        ss = build_simulation(sys_)
        ein, eout = ss.external(ci), ss.external(co)
        eout.always_receive("data")
        for v in range(30):
            ein.send("data", v)
        ss.sim.run(60)
        return len(eout.received.get("data", []))

    n = benchmark(run)
    assert n == 30
