"""Event graph: the intermediate representation of the Anvil compiler.

Events are abstract time points (Section 5.1/5.3 of the paper).  Nodes of the
graph are labelled with how their time relates to their predecessors':

========= ===========================================================
kind      time of the event
========= ===========================================================
ROOT      0 (start of a thread iteration)
DELAY     ``max(preds) + n``  (label ``#n``; the paper's blue edges)
SYNC      ``max(preds) + slack`` where slack is an arbitrary
          non-negative handshake delay (a fresh max-plus variable),
          or a fixed constant when the sync mode is static/dependent
BRANCH    same cycle as its predecessor, but only reached when its
          branch condition has the matching polarity (red edges)
JOIN_ANY  the earliest reached predecessor (orange edges, label ``⊕``)
JOIN_ALL  the latest predecessor (label ``#0``)
========= ===========================================================

Each event additionally carries *actions* (register mutations, message
sends/receives, debug prints) used by FSM lowering, so the graph is the
single IR shared by the type checker and the code generator, as in the
paper's compiler (Section 6).
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


class EventKind(enum.Enum):
    ROOT = "root"
    DELAY = "delay"
    SYNC = "sync"
    BRANCH = "branch"
    JOIN_ANY = "join_any"
    JOIN_ALL = "join_all"


class SyncDir(enum.Enum):
    SEND = "send"
    RECV = "recv"


class Action:
    """Side effect attached to an event, executed when the event fires."""

    __slots__ = ()


class RegWriteAction(Action):
    """Schedule ``reg <- value_of(source)`` at this event (visible next cycle)."""

    __slots__ = ("reg", "source")

    def __init__(self, reg: str, source):
        self.reg = reg
        self.source = source

    def __repr__(self):
        return f"RegWrite({self.reg})"


class SendDataAction(Action):
    """Drive the data (and valid) lines of ``endpoint.message`` from this event."""

    __slots__ = ("endpoint", "message", "source")

    def __init__(self, endpoint: str, message: str, source):
        self.endpoint = endpoint
        self.message = message
        self.source = source

    def __repr__(self):
        return f"SendData({self.endpoint}.{self.message})"


class RecvBindAction(Action):
    """Latch the received data of ``endpoint.message`` into a value slot."""

    __slots__ = ("endpoint", "message", "target")

    def __init__(self, endpoint: str, message: str, target):
        self.endpoint = endpoint
        self.message = message
        self.target = target

    def __repr__(self):
        return f"RecvBind({self.endpoint}.{self.message})"


class SyncFlagAction(Action):
    """Latch whether this event's handshake actually transferred (the
    success bit of a non-blocking try_send/try_recv)."""

    __slots__ = ("endpoint", "message", "target")

    def __init__(self, endpoint: str, message: str, target):
        self.endpoint = endpoint
        self.message = message
        self.target = target

    def __repr__(self):
        return f"SyncFlag({self.endpoint}.{self.message})"


class SyncGuardAction(Action):
    """Gate a conditional synchronization: valid/ack only asserted while
    the guard expression evaluates true."""

    __slots__ = ("source",)

    def __init__(self, source):
        self.source = source

    def __repr__(self):
        return "SyncGuard"


class DebugPrintAction(Action):
    __slots__ = ("fmt", "source")

    def __init__(self, fmt: str, source=None):
        self.fmt = fmt
        self.source = source

    def __repr__(self):
        return f"DebugPrint({self.fmt!r})"


class Event:
    """A node of the event graph."""

    __slots__ = (
        "eid",
        "kind",
        "preds",
        "delay",
        "endpoint",
        "message",
        "direction",
        "static_slack",
        "conditional",
        "cond_id",
        "polarity",
        "actions",
        "note",
    )

    def __init__(
        self,
        eid: int,
        kind: EventKind,
        preds: Sequence[int],
        delay: int = 0,
        endpoint: str = "",
        message: str = "",
        direction: Optional[SyncDir] = None,
        static_slack: Optional[int] = None,
        conditional: bool = False,
        cond_id: int = -1,
        polarity: bool = True,
        note: str = "",
    ):
        self.eid = eid
        self.kind = kind
        self.preds: Tuple[int, ...] = tuple(preds)
        self.delay = delay
        self.endpoint = endpoint
        self.message = message
        self.direction = direction
        self.static_slack = static_slack
        self.conditional = conditional
        self.cond_id = cond_id
        self.polarity = polarity
        self.actions: List[Action] = []
        self.note = note

    @property
    def sync_key(self) -> Tuple[str, str]:
        return (self.endpoint, self.message)

    def label(self) -> str:
        if self.kind is EventKind.ROOT:
            return "root"
        if self.kind is EventKind.DELAY:
            return f"#{self.delay}"
        if self.kind is EventKind.SYNC:
            return f"{self.endpoint}.{self.message}"
        if self.kind is EventKind.BRANCH:
            return f"&c{self.cond_id}" + ("" if self.polarity else "!")
        if self.kind is EventKind.JOIN_ANY:
            return "(+)"
        return "#0"

    def __repr__(self):
        return f"e{self.eid}[{self.label()}]"


class EventGraph:
    """A DAG of :class:`Event` nodes.

    Nodes must be added in topological order (every predecessor id already
    present), which the graph builder guarantees by construction.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.events: List[Event] = []
        self._ancestors_cache: Dict[int, FrozenSet[int]] = {}
        self._succs: Dict[int, List[int]] = {}
        self._sync_index: Dict[Tuple[str, str], List[Event]] = {}

    # -- construction ----------------------------------------------------
    def add(
        self,
        kind: EventKind,
        preds: Sequence[int] = (),
        **kwargs,
    ) -> Event:
        for p in preds:
            if p >= len(self.events) or p < 0:
                raise ValueError(f"predecessor e{p} not yet in graph")
        ev = Event(len(self.events), kind, preds, **kwargs)
        self.events.append(ev)
        for p in preds:
            self._succs.setdefault(p, []).append(ev.eid)
        if ev.kind is EventKind.SYNC:
            self._sync_index.setdefault(ev.sync_key, []).append(ev)
        self._ancestors_cache.clear()
        return ev

    def root(self) -> Event:
        return self.add(EventKind.ROOT)

    # -- queries ----------------------------------------------------------
    def __len__(self):
        return len(self.events)

    def __getitem__(self, eid: int) -> Event:
        return self.events[eid]

    def successors(self, eid: int) -> List[int]:
        return self._succs.get(eid, [])

    def ancestors(self, eid: int) -> FrozenSet[int]:
        """All strict ancestors of ``eid`` (transitive predecessors)."""
        cached = self._ancestors_cache.get(eid)
        if cached is not None:
            return cached
        acc: Set[int] = set()
        stack = list(self.events[eid].preds)
        while stack:
            p = stack.pop()
            if p in acc:
                continue
            acc.add(p)
            stack.extend(self.events[p].preds)
        result = frozenset(acc)
        self._ancestors_cache[eid] = result
        return result

    def is_ancestor(self, a: int, b: int) -> bool:
        """True iff there is a path from ``a`` to ``b`` (``a`` strictly
        precedes ``b`` structurally)."""
        return a in self.ancestors(b)

    def sync_events(self, endpoint: str, message: str) -> List[Event]:
        return self._sync_index.get((endpoint, message), [])

    def conditions(self) -> List[int]:
        """Ids of all branch conditions appearing in the graph."""
        seen = []
        for e in self.events:
            if e.kind is EventKind.BRANCH and e.cond_id not in seen:
                seen.append(e.cond_id)
        return seen

    def conditions_of(self, eids) -> List[int]:
        """Branch conditions occurring among the ancestors (and selves) of
        the given events -- the only conditions relevant to comparing them."""
        relevant: Set[int] = set()
        for eid in eids:
            for a in self.ancestors(eid) | {eid}:
                ev = self.events[a]
                if ev.kind is EventKind.BRANCH:
                    relevant.add(ev.cond_id)
                elif ev.kind is EventKind.JOIN_ANY:
                    for p in ev.preds:
                        pe = self.events[p]
                        if pe.kind is EventKind.BRANCH:
                            relevant.add(pe.cond_id)
        return sorted(relevant)

    def stats(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for e in self.events:
            by_kind[e.kind.value] = by_kind.get(e.kind.value, 0) + 1
        by_kind["total"] = len(self.events)
        return by_kind

    def to_dot(self) -> str:
        """Render the event graph in Graphviz dot format (for figures)."""
        lines = [f'digraph "{self.name or "event_graph"}" {{']
        for e in self.events:
            lines.append(f'  e{e.eid} [label="e{e.eid}\\n{e.label()}"];')
            for p in e.preds:
                style = {
                    EventKind.DELAY: "color=blue",
                    EventKind.SYNC: "color=black",
                    EventKind.BRANCH: "color=red",
                    EventKind.JOIN_ANY: "color=orange",
                    EventKind.JOIN_ALL: "color=gray",
                }.get(e.kind, "")
                lines.append(f"  e{p} -> e{e.eid} [{style}];")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return f"EventGraph({self.name!r}, {len(self.events)} events)"
