"""Backend-neutral FSM execution plans (the middle of the Anvil backend).

The event graph (:mod:`repro.core.events`) is the compiler's IR; executing
it needs one more lowering step.  A :class:`ProcessPlan` is that step's
output: a frozen, backend-neutral description of how a compiled process
runs cycle by cycle --

* per-thread event firing order (graphs are built in topological order,
  so plan order *is* evaluation order), with every event's predecessor
  list, delay, branch condition and handshake role pre-resolved;
* per-event **latch specs** (the combinational overlay writes: received
  data, sync success flags, latched expressions) and **commit specs**
  (the clock-edge effects: register writes, slot commits, debug prints),
  extracted once from the action lists so no backend ever runs
  ``isinstance`` over :class:`~repro.core.events.Action` objects in its
  inner loop;
* the **port table**: every ``(endpoint, message)`` pair the process
  actually synchronizes on or queries readiness of, with its
  sender/receiver role -- the exact combinational sensitivity of the
  generated FSM.  Handshake wires of messages a process is bound to but
  never uses appear nowhere in the plan, so simulation backends derive
  *precise* ``comb_inputs``/``comb_outputs`` sets instead of the
  conservative "every bound wire" hint.

Two backends consume plans today: the reference interpreter in
:mod:`repro.codegen.simfsm` and the generated-Python backend in
:mod:`repro.codegen.pysim`.  Both must remain observationally identical;
the plan is the single source of truth they share.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from ..codegen import rexpr as rx
from .events import (
    DebugPrintAction,
    EventGraph,
    EventKind,
    RecvBindAction,
    RegWriteAction,
    SendDataAction,
    SyncDir,
    SyncFlagAction,
    SyncGuardAction,
)
from .graph_builder import GraphBuilder, LatchAction
from .optimize import optimize


# ---------------------------------------------------------------------------
# latch specs: combinational overlay writes executed when an event fires
# ---------------------------------------------------------------------------
class LatchRecv(NamedTuple):
    """overlay[target] = port.data (the bypass path of a receive)."""
    port: int
    target: int


class LatchFlag(NamedTuple):
    """overlay[target] = 1 iff the handshake transferred this cycle."""
    port: int
    target: int


class LatchExpr(NamedTuple):
    """overlay[slot] = eval(source) (let bindings, branch conditions)."""
    slot: int
    source: rx.RExpr


# ---------------------------------------------------------------------------
# commit specs: clock-edge effects of a fired event
# ---------------------------------------------------------------------------
class CommitReg(NamedTuple):
    reg: str
    source: rx.RExpr


class CommitRecv(NamedTuple):
    port: int
    target: int


class CommitFlag(NamedTuple):
    port: int
    target: int


class CommitExpr(NamedTuple):
    slot: int
    source: rx.RExpr


class CommitPrint(NamedTuple):
    fmt: str
    source: Optional[rx.RExpr]


class PortPlan:
    """One synchronized (or readiness-queried) message of the process."""

    __slots__ = ("index", "endpoint", "message", "is_sender", "width",
                 "drives")

    def __init__(self, index: int, endpoint: str, message: str,
                 is_sender: bool, width: int):
        self.index = index
        self.endpoint = endpoint
        self.message = message
        self.is_sender = is_sender
        self.width = width
        #: True once a SYNC event uses the key: the process then *drives*
        #: its handshake side (valid/data as sender, ack as receiver).
        #: Readiness-only ports observe the counterpart but drive nothing.
        self.drives = False

    @property
    def key(self) -> Tuple[str, str]:
        return (self.endpoint, self.message)

    def __repr__(self):
        role = "send" if self.is_sender else "recv"
        return f"PortPlan(#{self.index} {self.endpoint}.{self.message} {role})"


class EventPlan:
    """One event, fully resolved for execution."""

    __slots__ = ("eid", "kind", "preds", "delay", "conditional", "cond_id",
                 "polarity", "direction", "port", "sync_key", "guard",
                 "payload", "latches", "commits", "cond_expr")

    def __init__(self, eid: int, kind: EventKind, preds: Tuple[int, ...],
                 delay: int = 0, conditional: bool = False,
                 cond_id: int = -1, polarity: bool = True,
                 direction: Optional[SyncDir] = None, port: int = -1,
                 sync_key: Optional[Tuple[str, str]] = None):
        self.eid = eid
        self.kind = kind
        self.preds = preds
        self.delay = delay
        self.conditional = conditional
        self.cond_id = cond_id
        self.polarity = polarity
        self.direction = direction
        self.port = port
        self.sync_key = sync_key
        self.guard: Optional[rx.RExpr] = None      # SYNC only; last wins
        self.payload: Optional[rx.RExpr] = None    # SYNC SEND only
        self.latches: Tuple = ()
        self.commits: Tuple = ()
        self.cond_expr: Optional[rx.RExpr] = None  # BRANCH only

    def __repr__(self):
        return f"EventPlan(e{self.eid} {self.kind.value})"


class ThreadPlan:
    """One thread's executable plan."""

    __slots__ = ("index", "kind", "anchor", "events", "n_events",
                 "cond_exprs", "graph", "delays")

    def __init__(self, index: int, kind: str, anchor: int,
                 events: Tuple[EventPlan, ...],
                 cond_exprs: Dict[int, rx.RExpr], graph: EventGraph):
        self.index = index
        self.kind = kind
        self.anchor = anchor
        self.events = events
        self.n_events = len(events)
        self.cond_exprs = cond_exprs
        self.graph = graph   # kept for the SystemVerilog backend and docs
        #: DELAY events with their predecessors -- what the activation
        #: dedup in tick() needs to compute outstanding due-times
        self.delays: Tuple[Tuple[int, Tuple[int, ...], int], ...] = tuple(
            (e.eid, e.preds, e.delay)
            for e in events if e.kind is EventKind.DELAY
        )

    def __repr__(self):
        return f"ThreadPlan(t{self.index} {self.kind}, {self.n_events} events)"


class ProcessPlan:
    """Everything an execution backend needs, and nothing it must re-derive."""

    __slots__ = ("process", "name", "optimized", "threads", "ports",
                 "port_index", "optimize_stats", "_scanned_exprs",
                 "_backend")

    def __init__(self, process, optimized: bool):
        self.process = process
        self.name = process.name
        self.optimized = optimized
        self.threads: List[ThreadPlan] = []
        self.ports: List[PortPlan] = []
        self.port_index: Dict[Tuple[str, str], int] = {}
        self.optimize_stats: List = []
        # expression nodes already scanned for readiness reads -- shared
        # subexpression DAGs (e.g. AES xtime chains) must be walked as
        # DAGs, not trees, or extraction goes exponential
        self._scanned_exprs: set = set()
        # per-plan memo of the generated-Python backend (set by
        # repro.codegen.pysim.backend_for), so repeat instantiation of
        # one compiled process skips even the source regeneration
        self._backend = None

    # -- port registry ----------------------------------------------------
    def _port(self, endpoint: str, message: str) -> PortPlan:
        key = (endpoint, message)
        idx = self.port_index.get(key)
        if idx is not None:
            return self.ports[idx]
        ep = self.process.get_endpoint(endpoint)
        msg = ep.message(message)
        pp = PortPlan(len(self.ports), endpoint, message,
                      ep.sends(message), msg.dtype.width)
        self.port_index[key] = pp.index
        self.ports.append(pp)
        return pp

    def __repr__(self):
        return (f"ProcessPlan({self.name!r}, {len(self.threads)} threads, "
                f"{len(self.ports)} ports)")


def _collect_cond_exprs(graph: EventGraph) -> Dict[int, rx.RExpr]:
    """Map each branch condition id to the slot its latch writes (the
    slot overlay makes the latched value combinationally visible in the
    latching cycle, surviving optimizer merges)."""
    out: Dict[int, rx.RExpr] = {}
    for ev in graph.events:
        for act in ev.actions:
            if isinstance(act, LatchAction) and act.cond_id >= 0:
                out[act.cond_id] = rx.RSlot(act.slot, 1, f"c{act.cond_id}")
    return out


def _register_ready_reads(plan: ProcessPlan, expr: Optional[rx.RExpr]):
    """Readiness queries are combinational reads of the counterpart's
    handshake wire; they belong in the port table even without a sync."""
    if expr is None:
        return
    seen = plan._scanned_exprs
    stack = [expr]
    while stack:
        node = stack.pop()
        nid = id(node)
        if nid in seen:
            continue
        seen.add(nid)
        if isinstance(node, rx.RReady):
            plan._port(node.endpoint, node.message)
        stack.extend(node.children())


def _extract_event(plan: ProcessPlan, ev) -> EventPlan:
    ep = EventPlan(
        ev.eid, ev.kind, ev.preds, delay=ev.delay,
        conditional=ev.conditional, cond_id=ev.cond_id,
        polarity=ev.polarity, direction=ev.direction,
    )
    if ev.kind is EventKind.SYNC:
        pp = plan._port(ev.endpoint, ev.message)
        pp.drives = True
        ep.port = pp.index
        ep.sync_key = pp.key
    latches: List = []
    commits: List = []
    for act in ev.actions:
        if isinstance(act, RecvBindAction):
            pp = plan._port(act.endpoint, act.message)
            latches.append(LatchRecv(pp.index, act.target))
            commits.append(CommitRecv(pp.index, act.target))
        elif isinstance(act, SyncFlagAction):
            pp = plan._port(act.endpoint, act.message)
            latches.append(LatchFlag(pp.index, act.target))
            commits.append(CommitFlag(pp.index, act.target))
        elif isinstance(act, LatchAction):
            latches.append(LatchExpr(act.slot, act.source))
            commits.append(CommitExpr(act.slot, act.source))
            _register_ready_reads(plan, act.source)
        elif isinstance(act, RegWriteAction):
            commits.append(CommitReg(act.reg, act.source))
            _register_ready_reads(plan, act.source)
        elif isinstance(act, SendDataAction):
            ep.payload = act.source          # driven combinationally
            _register_ready_reads(plan, act.source)
        elif isinstance(act, SyncGuardAction):
            ep.guard = act.source
            _register_ready_reads(plan, act.source)
        elif isinstance(act, DebugPrintAction):
            commits.append(CommitPrint(act.fmt, act.source))
            _register_ready_reads(plan, act.source)
    ep.latches = tuple(latches)
    ep.commits = tuple(commits)
    return ep


def build_thread_plan(plan: ProcessPlan, thread, index: int,
                      do_optimize: bool) -> ThreadPlan:
    result = GraphBuilder(plan.process, thread).build(iterations=1)
    graph, anchor = result.graph, result.anchor
    if do_optimize:
        graph, mapping, stats = optimize(graph)
        anchor = mapping.get(anchor, anchor)
        plan.optimize_stats.append(stats)
    cond_exprs = _collect_cond_exprs(graph)
    events = []
    for ev in graph.events:
        epl = _extract_event(plan, ev)
        if ev.kind is EventKind.BRANCH:
            epl.cond_expr = cond_exprs.get(ev.cond_id)
            _register_ready_reads(plan, epl.cond_expr)
        events.append(epl)
    return ThreadPlan(index, thread.kind, anchor, tuple(events),
                      cond_exprs, graph)


def build_process_plan(process, do_optimize: bool = True) -> ProcessPlan:
    """Lower every thread of ``process`` to an executable plan.

    This is the single entry point both simulation backends compile
    through; :func:`repro.codegen.simfsm.compile_process` wraps it."""
    plan = ProcessPlan(process, do_optimize)
    for i, thread in enumerate(process.threads):
        plan.threads.append(build_thread_plan(plan, thread, i, do_optimize))
    return plan


# ---------------------------------------------------------------------------
# sensitivity: which wires of a port a backend reads/writes
# ---------------------------------------------------------------------------
def port_reads(pp: PortPlan) -> Tuple[str, ...]:
    """Wire roles ``eval_comb`` is sensitive to for this port."""
    if pp.is_sender:
        return ("ack",)
    if pp.drives:
        return ("valid", "data")
    return ("valid",)        # readiness query only


def port_writes(pp: PortPlan) -> Tuple[str, ...]:
    """Wire roles ``eval_comb`` may drive for this port."""
    if not pp.drives:
        return ()
    if pp.is_sender:
        return ("valid", "data")
    return ("ack",)
