"""Event graph optimization passes (Section 6.1, Figure 8).

Each pass shrinks the event graph while preserving its timing semantics;
two events may be merged whenever they always occur at the same time.  The
four passes of the paper:

(a) **Merge identical outbound edge labels** -- two successors of the same
    event that wait for the same fixed delay (or the same branch condition
    polarity) always fire together and are merged.
(b) **Remove unbalanced joins** -- a join of ``ea`` and ``eb`` where
    ``ea <=G eb`` always fires exactly when ``eb`` does.
(c) **Shift branch joins** -- when both sides of a branch end in an
    action-free ``#N`` delay, join first and delay once after.
(d) **Remove branch joins** -- a join of two empty branches collapses into
    the branching event itself.

The optimizer runs passes to a fixpoint and reports how many events each
pass removed (regenerated for the Figure 8 experiment).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .events import Event, EventGraph, EventKind
from .oracle import OracleLimitError, TimingOracle


class OptimizeStats:
    def __init__(self):
        self.removed: Dict[str, int] = {
            "merge_labels": 0,
            "unbalanced_joins": 0,
            "shift_branch_joins": 0,
            "remove_branch_joins": 0,
        }
        self.passes_run = 0

    @property
    def total_removed(self) -> int:
        return sum(self.removed.values())

    def __repr__(self):
        return f"OptimizeStats({self.removed}, passes={self.passes_run})"


def _rebuild(graph: EventGraph, redirect: Dict[int, int],
             drop: set) -> Tuple[EventGraph, Dict[int, int]]:
    """Rebuild the graph applying a redirect map and dropping events.

    ``redirect[x] = y`` means every reference to ``x`` becomes ``y`` (after
    chasing chains); dropped events' actions are moved to their redirect
    target.
    """

    def resolve(eid: int) -> int:
        seen = set()
        while eid in redirect:
            if eid in seen:  # pragma: no cover - defensive
                raise AssertionError("redirect cycle")
            seen.add(eid)
            eid = redirect[eid]
        return eid

    new = EventGraph(graph.name)
    mapping: Dict[int, int] = {}
    for ev in graph.events:
        if ev.eid in drop or ev.eid in redirect:
            continue
        preds = []
        for p in ev.preds:
            np = mapping.get(resolve(p))
            if np is not None and np not in preds:
                preds.append(np)
        copy = new.add(
            ev.kind,
            preds,
            delay=ev.delay,
            endpoint=ev.endpoint,
            message=ev.message,
            direction=ev.direction,
            static_slack=ev.static_slack,
            conditional=ev.conditional,
            cond_id=ev.cond_id,
            polarity=ev.polarity,
            note=ev.note,
        )
        copy.actions.extend(ev.actions)
        mapping[ev.eid] = copy.eid
    # migrate actions of merged events
    for eid, target in redirect.items():
        tgt = mapping.get(resolve(eid))
        if tgt is not None:
            new[tgt].actions.extend(graph[eid].actions)
        mapping[eid] = tgt if tgt is not None else 0
    for eid in drop:
        if eid not in mapping:
            mapping[eid] = 0
    return new, mapping


def _compose(outer: Dict[int, int], inner: Dict[int, int]) -> Dict[int, int]:
    return {k: inner.get(v, v) for k, v in outer.items()}


# ----------------------------------------------------------------------
# individual passes: each returns (new_graph, mapping, n_removed)
# ----------------------------------------------------------------------
def pass_merge_labels(graph: EventGraph):
    """(a) merge successors of one event that share an identical label."""
    redirect: Dict[int, int] = {}
    for ev in graph.events:
        succs = [graph[s] for s in graph.successors(ev.eid)]
        groups: Dict[tuple, List[Event]] = {}
        for s in succs:
            if s.eid in redirect or len(s.preds) != 1:
                continue
            if s.kind is EventKind.DELAY:
                key = ("delay", s.delay)
            elif s.kind is EventKind.BRANCH:
                key = ("branch", s.cond_id, s.polarity)
            elif s.kind is EventKind.SYNC:
                continue  # sync events have handshake state; never merged
            else:
                continue
            groups.setdefault(key, []).append(s)
        for key, members in groups.items():
            if len(members) > 1:
                keep = members[0]
                for other in members[1:]:
                    redirect[other.eid] = keep.eid
    if not redirect:
        return graph, None, 0
    new, mapping = _rebuild(graph, redirect, set())
    return new, mapping, len(redirect)


def pass_unbalanced_joins(graph: EventGraph, max_cases: int = 512):
    """(b) a join of predecessors where one dominates is redundant."""
    oracle = TimingOracle(graph, max_cases=max_cases)
    redirect: Dict[int, int] = {}
    for ev in graph.events:
        if ev.eid in redirect:
            continue
        # joins left with a single predecessor (after earlier merges) are
        # trivially redundant
        if ev.kind in (EventKind.JOIN_ALL, EventKind.JOIN_ANY) and \
                len(ev.preds) == 1 and ev.preds[0] not in redirect:
            redirect[ev.eid] = ev.preds[0]
            continue
        if ev.kind is not EventKind.JOIN_ALL or len(ev.preds) < 2:
            continue
        dominant: Optional[int] = None
        try:
            for cand in ev.preds:
                others = [p for p in ev.preds if p != cand]
                # structural ancestry guarantees the FSM fires `cand` after
                # every other predecessor at run time; the timing check
                # guarantees it statically.  Both are required: merging on
                # timing-equality alone would detach data dependencies
                # (e.g. a zero-slack message sync) from the join.
                if all(
                    graph.is_ancestor(p, cand) and oracle.event_le(p, cand)
                    for p in others
                ):
                    dominant = cand
                    break
        except OracleLimitError:
            continue
        if dominant is not None and dominant not in redirect:
            redirect[ev.eid] = dominant
    if not redirect:
        return graph, None, 0
    new, mapping = _rebuild(graph, redirect, set())
    return new, mapping, len(redirect)


def pass_shift_branch_joins(graph: EventGraph):
    """(c) join-then-delay instead of delay-then-join when both branch arms
    end in an identical, action-free ``#N`` delay."""
    for ev in graph.events:
        if ev.kind is not EventKind.JOIN_ANY or len(ev.preds) != 2:
            continue
        a, b = graph[ev.preds[0]], graph[ev.preds[1]]
        if a.kind is not EventKind.DELAY or b.kind is not EventKind.DELAY:
            continue
        if a.delay != b.delay or a.delay == 0:
            continue
        if a.actions or b.actions:
            continue
        if len(graph.successors(a.eid)) != 1 or len(graph.successors(b.eid)) != 1:
            continue
        if len(a.preds) != 1 or len(b.preds) != 1:
            continue
        # rebuild: new join of the delay parents, then one delay
        redirect: Dict[int, int] = {}
        new = EventGraph(graph.name)
        mapping: Dict[int, int] = {}
        for old in graph.events:
            if old.eid in (a.eid, b.eid, ev.eid):
                continue
            preds = [mapping[p] for p in old.preds if p in mapping]
            copy = new.add(
                old.kind, preds, delay=old.delay, endpoint=old.endpoint,
                message=old.message, direction=old.direction,
                static_slack=old.static_slack, conditional=old.conditional,
                cond_id=old.cond_id, polarity=old.polarity, note=old.note,
            )
            copy.actions.extend(old.actions)
            mapping[old.eid] = copy.eid
            if old.eid == ev.preds[0]:
                pass
            # insert the shifted join right after both parents are present
            if (
                a.preds[0] in mapping
                and b.preds[0] in mapping
                and ev.eid not in mapping
            ):
                join = new.add(
                    EventKind.JOIN_ANY,
                    (mapping[a.preds[0]], mapping[b.preds[0]]),
                    cond_id=ev.cond_id,
                    note="shifted join",
                )
                delay = new.add(EventKind.DELAY, (join.eid,), delay=a.delay)
                delay.actions.extend(ev.actions)
                mapping[ev.eid] = delay.eid
                mapping[a.eid] = join.eid
                mapping[b.eid] = join.eid
        if ev.eid in mapping:
            return new, mapping, 1
    return graph, None, 0


def pass_remove_branch_joins(graph: EventGraph):
    """(d) a join of two *empty* branches folds into the branching event."""
    redirect: Dict[int, int] = {}
    drop = set()
    for ev in graph.events:
        if ev.kind is not EventKind.JOIN_ANY or len(ev.preds) != 2:
            continue
        a, b = graph[ev.preds[0]], graph[ev.preds[1]]
        if a.kind is not EventKind.BRANCH or b.kind is not EventKind.BRANCH:
            continue
        if a.actions or b.actions:
            continue
        if a.preds != b.preds or len(a.preds) != 1:
            continue
        # the branches must be empty: the join is their only successor
        if graph.successors(a.eid) != [ev.eid] or \
                graph.successors(b.eid) != [ev.eid]:
            continue
        if a.eid in redirect or b.eid in redirect or ev.eid in redirect:
            continue
        parent = a.preds[0]
        redirect[ev.eid] = parent
        drop.add(a.eid)
        drop.add(b.eid)
    if not redirect:
        return graph, None, 0
    new, mapping = _rebuild(graph, redirect, drop)
    return new, mapping, len(redirect) + len(drop)


# ----------------------------------------------------------------------
def optimize(graph: EventGraph, anchors: Optional[List[int]] = None,
             max_rounds: int = 8):
    """Run all passes to a fixpoint.

    Returns ``(graph, mapping, stats)`` where ``mapping`` maps original
    event ids to ids in the optimized graph (identity when nothing fired).
    """
    stats = OptimizeStats()
    total_map = {e.eid: e.eid for e in graph.events}
    passes = [
        ("merge_labels", pass_merge_labels),
        ("unbalanced_joins", pass_unbalanced_joins),
        ("shift_branch_joins", pass_shift_branch_joins),
        ("remove_branch_joins", pass_remove_branch_joins),
    ]
    for _ in range(max_rounds):
        changed = False
        for name, fn in passes:
            new_graph, mapping, removed = fn(graph)
            stats.passes_run += 1
            if removed:
                stats.removed[name] += removed
                graph = new_graph
                total_map = _compose(total_map, mapping)
                changed = True
        if not changed:
            break
    return graph, total_map, stats
