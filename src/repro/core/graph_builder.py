"""Term -> event graph construction (the front half of the Anvil compiler).

Walking a thread body produces, in one pass:

* the **event graph** (nodes for cycle delays, message synchronizations,
  branches and joins, exactly as in Section 5.3);
* a **value** for every sub-term -- its start event, intrinsic lifetime end,
  the registers it (transitively) reads and a runtime expression for the
  back-end;
* the **check obligations** the type checker later discharges: value uses,
  register mutations and message sends.

Loops and recursives are *unrolled* for type checking (Lemma C.19: two
iterations suffice; we default to two and allow more).  For a ``loop`` the
next iteration is anchored at the completion of the previous one; for a
``recursive`` it is anchored at the ``recurse`` event, which is precisely
what lets iterations overlap in a pipelined fashion.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..codegen import rexpr as rx
from ..errors import ElaborationError
from ..lang import terms as T
from ..lang.process import Process, Thread
from ..lang.types import Bundle, DataType, Logic
from .events import (
    Action,
    DebugPrintAction,
    EventGraph,
    EventKind,
    RecvBindAction,
    RegWriteAction,
    SendDataAction,
    SyncDir,
    SyncFlagAction,
    SyncGuardAction,
)
from .patterns import Duration, EndSet


def _static_slack(msg) -> Optional[int]:
    """Zero handshake slack for messages whose sync modes are static on
    *both* sides: the synchronization happens the cycle both parties reach
    it, with no run-time handshake (the compiler omits the wires)."""
    if msg.left_sync.is_dynamic or msg.right_sync.is_dynamic:
        return None
    return 0


class LatchAction(Action):
    """Latch a combinational value into a per-activation slot when the
    event fires (used for branch conditions; ``cond_id`` identifies which
    branch condition the slot decides, -1 for plain latches)."""

    __slots__ = ("slot", "source", "cond_id")

    def __init__(self, slot: int, source: rx.RExpr, cond_id: int = -1):
        self.slot = slot
        self.source = source
        self.cond_id = cond_id

    def __repr__(self):
        return f"Latch(slot{self.slot})"


class Value:
    """A typed value: lifetime + register dependencies + runtime expr."""

    __slots__ = ("start", "end", "reg_reads", "rexpr", "dtype")

    def __init__(
        self,
        start: int,
        end: EndSet,
        reg_reads: FrozenSet[Tuple[str, int]],
        rexpr: rx.RExpr,
        dtype: Optional[DataType],
    ):
        self.start = start
        self.end = end
        self.reg_reads = reg_reads
        self.rexpr = rexpr
        self.dtype = dtype

    @property
    def width(self) -> int:
        return self.dtype.width if self.dtype else self.rexpr.width

    def __repr__(self):
        return f"Value(e{self.start}, end={self.end}, regs={set(self.reg_reads)})"


class UseCheck:
    """Obligation: ``value`` is used throughout ``[window_start, window_end)``."""

    __slots__ = ("value", "window_start", "window_end", "context")

    def __init__(self, value: Value, window_start: int, window_end: EndSet,
                 context: str):
        self.value = value
        self.window_start = window_start
        self.window_end = window_end
        self.context = context

    def __repr__(self):
        return f"Use({self.context} @ [e{self.window_start}, {self.window_end}))"


class MutationRecord:
    __slots__ = ("register", "at", "context")

    def __init__(self, register: str, at: int, context: str):
        self.register = register
        self.at = at
        self.context = context

    def __repr__(self):
        return f"Mut({self.register} @ e{self.at})"


class SendRecord:
    """One ``send`` operation: data must be live on ``[start, required_end)``
    where the end comes from the message contract."""

    __slots__ = ("endpoint", "message", "start", "sync", "required_end",
                 "context")

    def __init__(self, endpoint: str, message: str, start: int, sync: int,
                 required_end: EndSet, context: str):
        self.endpoint = endpoint
        self.message = message
        self.start = start
        self.sync = sync
        self.required_end = required_end
        self.context = context

    def __repr__(self):
        return f"Send({self.endpoint}.{self.message} @ e{self.sync})"


class BuildResult:
    """Everything the type checker and the code generator need."""

    def __init__(self, graph: EventGraph, root: int, anchor: int,
                 thread: Thread):
        self.graph = graph
        self.root = root
        self.anchor = anchor  # loop-back point (completion or recurse event)
        self.thread = thread
        self.uses: List[UseCheck] = []
        self.mutations: List[MutationRecord] = []
        self.sends: List[SendRecord] = []
        self.slot_count = 0
        self.cond_count = 0


class GraphBuilder:
    """Builds the event graph for one thread of a process."""

    def __init__(self, process: Process, thread: Thread,
                 graph_name: str = ""):
        self.process = process
        self.thread = thread
        self.graph = EventGraph(graph_name or f"{process.name}.{thread.name}")
        self.result: Optional[BuildResult] = None
        self._slot = 0
        self._cond = 0
        self._recurse_anchor: Optional[int] = None
        self._iter_tag = ""
        self._pure_cache: Dict[int, bool] = {}
        self._visit_memo: Dict[Tuple[int, int], Tuple[int, Value]] = {}

    def _is_pure(self, term: T.Term) -> bool:
        """Purely combinational terms (no events, no environment lookups)
        may be memoized per evaluation point -- this keeps shared
        subexpression DAGs (e.g. xtime chains in AES) linear to build."""
        key = id(term)
        cached = self._pure_cache.get(key)
        if cached is not None:
            return cached
        pure_types = (T.Literal, T.ReadReg, T.BinOp, T.UnOp, T.Field,
                      T.Slice, T.BundleLit, T.Table, T.Unit, T.Mux)
        out = isinstance(term, pure_types) and all(
            self._is_pure(c) for c in term.children()
        )
        self._pure_cache[key] = out
        return out

    # ------------------------------------------------------------------
    def build(self, iterations: int = 1) -> BuildResult:
        """Build ``iterations`` unrolled copies of the thread body."""
        root = self.graph.root()
        result = BuildResult(self.graph, root.eid, root.eid, self.thread)
        self.result = result
        current = root.eid
        for i in range(iterations):
            self._iter_tag = f"iter{i}:" if iterations > 1 else ""
            self._recurse_anchor = None
            completion, _ = self._visit(self.thread.body, current, {})
            if i == 0:
                # the loop-back anchor of the *first* copy drives codegen
                if self.thread.kind == Thread.RECURSIVE and \
                        self._recurse_anchor is not None:
                    result.anchor = self._recurse_anchor
                else:
                    result.anchor = completion
            if self.thread.kind == Thread.RECURSIVE and \
                    self._recurse_anchor is not None:
                current = self._recurse_anchor
            else:
                current = completion
        result.slot_count = self._slot
        result.cond_count = self._cond
        return result

    # ------------------------------------------------------------------
    def _new_slot(self) -> int:
        s = self._slot
        self._slot += 1
        return s

    def _new_cond(self) -> int:
        c = self._cond
        self._cond += 1
        return c

    def _unit(self, at: int) -> Value:
        return Value(at, EndSet.eternal(), frozenset(), rx.RUnit(), None)

    def _use(self, value: Value, start: int, end: EndSet, context: str):
        self.result.uses.append(
            UseCheck(value, start, end, self._iter_tag + context)
        )

    def _contract_duration(self, endpoint: str, message: str) -> Duration:
        ep = self.process.get_endpoint(endpoint)
        return ep.message(message).lifetime.as_duration(endpoint)

    # ------------------------------------------------------------------
    def _visit(self, term: T.Term, at: int, env: Dict[str, Tuple[int, Value]]
               ) -> Tuple[int, Value]:
        """Returns (completion event id, value)."""
        memo_key = None
        if self._is_pure(term):
            memo_key = (id(term), at)
            cached = self._visit_memo.get(memo_key)
            if cached is not None:
                return cached
        method = getattr(self, "_visit_" + type(term).__name__, None)
        if method is None:
            raise ElaborationError(f"cannot elaborate term {term!r}")
        out = method(term, at, env)
        if memo_key is not None:
            self._visit_memo[memo_key] = out
        return out

    # -- leaves -----------------------------------------------------------
    def _visit_Literal(self, term: T.Literal, at, env):
        width = term.dtype.width if term.dtype else 32
        val = Value(at, EndSet.eternal(), frozenset(),
                    rx.RLit(term.value, width), term.dtype or Logic(width))
        return at, val

    def _visit_Unit(self, term, at, env):
        return at, self._unit(at)

    def _visit_ReadReg(self, term: T.ReadReg, at, env):
        reg = self.process.get_register(term.reg)
        val = Value(
            at,
            EndSet.eternal(),
            frozenset([(term.reg, at)]),
            rx.RReg(term.reg, reg.dtype.width),
            reg.dtype,
        )
        return at, val

    def _visit_Var(self, term: T.Var, at, env):
        if term.name not in env:
            raise ElaborationError(f"unbound variable {term.name!r}")
        bind_completion, bval = env[term.name]
        if bind_completion == at or self.graph.is_ancestor(bind_completion, at):
            start = at
        else:
            start = self.graph.add(
                EventKind.JOIN_ALL, (at, bind_completion),
                note=f"await {term.name}",
            ).eid
        val = Value(start, bval.end, bval.reg_reads, bval.rexpr, bval.dtype)
        return start, val

    def _visit_Ready(self, term: T.Ready, at, env):
        self.process.get_endpoint(term.endpoint).message(term.message)
        val = Value(
            at,
            EndSet.single(at, Duration.static(1)),
            frozenset(),
            rx.RReady(term.endpoint, term.message),
            Logic(1),
        )
        return at, val

    def _visit_Cycle(self, term: T.Cycle, at, env):
        if term.n == 0:
            return at, self._unit(at)
        ev = self.graph.add(EventKind.DELAY, (at,), delay=term.n)
        return ev.eid, self._unit(ev.eid)

    # -- combinational composition ----------------------------------------
    def _completion_of(self, at: int, parts: List[int]) -> int:
        distinct = [p for p in parts if p != at]
        uniq = []
        for p in distinct:
            if p not in uniq:
                uniq.append(p)
        if not uniq:
            return at
        if len(uniq) == 1:
            return uniq[0]
        return self.graph.add(EventKind.JOIN_ALL, tuple(uniq)).eid

    def _visit_BinOp(self, term: T.BinOp, at, env):
        ca, va = self._visit(term.a, at, env)
        cb, vb = self._visit(term.b, at, env)
        completion = self._completion_of(at, [ca, cb])
        ra, rb = va.rexpr, vb.rexpr
        # literal width adoption
        if isinstance(term.a, T.Literal) and term.a.dtype is None and vb.dtype:
            ra = rx.RLit(term.a.value, vb.width)
        if isinstance(term.b, T.Literal) and term.b.dtype is None and va.dtype:
            rb = rx.RLit(term.b.value, va.width)
        if term.op in ("eq", "ne", "lt", "le", "gt", "ge"):
            dtype: DataType = Logic(1)
        elif term.op == "concat":
            dtype = Logic(ra.width + rb.width)
        elif term.op == "mul":
            # full product, as synthesis sizes a multiplier
            dtype = Logic(ra.width + rb.width)
        else:
            dtype = Logic(max(ra.width, rb.width))
        val = Value(
            completion,
            va.end.union(vb.end),
            va.reg_reads | vb.reg_reads,
            rx.RBin(term.op, ra, rb, dtype.width),
            dtype,
        )
        return completion, val

    def _visit_UnOp(self, term: T.UnOp, at, env):
        ca, va = self._visit(term.a, at, env)
        width = 1 if term.op.startswith("red") else va.width
        val = Value(ca, va.end, va.reg_reads,
                    rx.RUn(term.op, va.rexpr, width), Logic(width))
        return ca, val

    def _visit_Field(self, term: T.Field, at, env):
        ca, va = self._visit(term.a, at, env)
        if not isinstance(va.dtype, Bundle):
            raise ElaborationError(
                f"field access {term.name!r} on non-bundle value"
            )
        val = Value(ca, va.end, va.reg_reads,
                    rx.RField(va.rexpr, va.dtype, term.name),
                    va.dtype.field_type(term.name))
        return ca, val

    def _visit_Slice(self, term: T.Slice, at, env):
        ca, va = self._visit(term.a, at, env)
        if term.hi >= va.width:
            raise ElaborationError(
                f"slice [{term.hi}:{term.lo}] exceeds width {va.width}"
            )
        val = Value(ca, va.end, va.reg_reads,
                    rx.RSlice(va.rexpr, term.hi, term.lo),
                    Logic(term.hi - term.lo + 1))
        return ca, val

    def _visit_Mux(self, term: T.Mux, at, env):
        cc, cval = self._visit(term.cond, at, env)
        ca, va = self._visit(term.a, at, env)
        cb, vb = self._visit(term.b, at, env)
        completion = self._completion_of(at, [cc, ca, cb])
        ra, rb = va.rexpr, vb.rexpr
        if isinstance(term.a, T.Literal) and term.a.dtype is None and vb.dtype:
            ra = rx.RLit(term.a.value, vb.width)
        if isinstance(term.b, T.Literal) and term.b.dtype is None and va.dtype:
            rb = rx.RLit(term.b.value, va.width)
        width = max(ra.width, rb.width, 1)
        dtype = va.dtype if va.dtype is not None else vb.dtype
        if dtype is None or dtype.width != width:
            dtype = Logic(width)
        val = Value(
            completion,
            cval.end.union(va.end).union(vb.end),
            cval.reg_reads | va.reg_reads | vb.reg_reads,
            rx.RMux(cval.rexpr, ra, rb, width),
            dtype,
        )
        return completion, val

    def _visit_BundleLit(self, term: T.BundleLit, at, env):
        parts = {}
        completions = []
        ends = EndSet.eternal()
        regs: FrozenSet[Tuple[str, int]] = frozenset()
        for name, sub in term.fields.items():
            c, v = self._visit(sub, at, env)
            completions.append(c)
            fw = term.dtype.field_type(name).width
            r = v.rexpr
            if isinstance(sub, T.Literal) and sub.dtype is None:
                r = rx.RLit(sub.value, fw)
            parts[name] = r
            ends = ends.union(v.end)
            regs = regs | v.reg_reads
        completion = self._completion_of(at, completions)
        val = Value(completion, ends, regs,
                    rx.RBundle(term.dtype, parts), term.dtype)
        return completion, val

    # -- communication ------------------------------------------------------
    def _visit_Recv(self, term: T.Recv, at, env):
        ep = self.process.get_endpoint(term.endpoint)
        msg = ep.message(term.message)
        if ep.sends(term.message):
            raise ElaborationError(
                f"endpoint {term.endpoint!r} is the sender of "
                f"{term.message!r}; cannot recv"
            )
        sync = self.graph.add(
            EventKind.SYNC, (at,),
            endpoint=term.endpoint, message=term.message,
            direction=SyncDir.RECV,
            static_slack=_static_slack(msg),
        )
        slot = self._new_slot()
        sync.actions.append(RecvBindAction(term.endpoint, term.message, slot))
        dur = self._contract_duration(term.endpoint, term.message)
        val = Value(
            sync.eid,
            EndSet.single(sync.eid, dur),
            frozenset(),
            rx.RSlot(slot, msg.dtype.width, f"{term.endpoint}.{term.message}"),
            msg.dtype,
        )
        return sync.eid, val

    def _visit_Send(self, term: T.Send, at, env):
        ep = self.process.get_endpoint(term.endpoint)
        msg = ep.message(term.message)
        if not ep.sends(term.message):
            raise ElaborationError(
                f"endpoint {term.endpoint!r} is the receiver of "
                f"{term.message!r}; cannot send"
            )
        pc, pval = self._visit(term.payload, at, env)
        prexpr = pval.rexpr
        if isinstance(term.payload, T.Literal) and term.payload.dtype is None:
            prexpr = rx.RLit(term.payload.value, msg.dtype.width)
        sync = self.graph.add(
            EventKind.SYNC, (pc,),
            endpoint=term.endpoint, message=term.message,
            direction=SyncDir.SEND,
            static_slack=_static_slack(msg),
        )
        sync.actions.append(
            SendDataAction(term.endpoint, term.message, prexpr)
        )
        dur = self._contract_duration(term.endpoint, term.message)
        required = EndSet.single(sync.eid, dur)
        ctx = f"send {term.endpoint}.{term.message}"
        self.result.sends.append(
            SendRecord(term.endpoint, term.message, pc, sync.eid, required,
                       self._iter_tag + ctx)
        )
        self._use(
            Value(pval.start, pval.end, pval.reg_reads, prexpr, pval.dtype),
            pc, required, ctx,
        )
        return sync.eid, self._unit(sync.eid)

    def _visit_TrySend(self, term: T.TrySend, at, env):
        ep = self.process.get_endpoint(term.endpoint)
        msg = ep.message(term.message)
        if not ep.sends(term.message):
            raise ElaborationError(
                f"endpoint {term.endpoint!r} is the receiver of "
                f"{term.message!r}; cannot try_send"
            )
        pc, pval = self._visit(term.payload, at, env)
        prexpr = pval.rexpr
        if isinstance(term.payload, T.Literal) and term.payload.dtype is None:
            prexpr = rx.RLit(term.payload.value, msg.dtype.width)
        guard_val = None
        if term.guard is not None:
            gc, guard_val = self._visit(term.guard, at, env)
            pc = self._completion_of(at, [pc, gc])
        sync = self.graph.add(
            EventKind.SYNC, (pc,),
            endpoint=term.endpoint, message=term.message,
            direction=SyncDir.SEND,
            static_slack=0, conditional=True,
        )
        sync.actions.append(
            SendDataAction(term.endpoint, term.message, prexpr)
        )
        if guard_val is not None:
            sync.actions.append(SyncGuardAction(guard_val.rexpr))
            self._use(guard_val, pc,
                      EndSet.single(sync.eid, Duration.static(1)),
                      f"try_send guard {term.endpoint}.{term.message}")
        flag_slot = self._new_slot()
        sync.actions.append(
            SyncFlagAction(term.endpoint, term.message, flag_slot)
        )
        dur = self._contract_duration(term.endpoint, term.message)
        required = EndSet.single(sync.eid, dur)
        ctx = f"try_send {term.endpoint}.{term.message}"
        self.result.sends.append(
            SendRecord(term.endpoint, term.message, pc, sync.eid, required,
                       self._iter_tag + ctx)
        )
        self._use(
            Value(pval.start, pval.end, pval.reg_reads, prexpr, pval.dtype),
            pc, required, ctx,
        )
        val = Value(
            sync.eid,
            EndSet.single(sync.eid, Duration.static(1)),
            frozenset(),
            rx.RSlot(flag_slot, 1, f"sent({term.endpoint}.{term.message})"),
            Logic(1),
        )
        return sync.eid, val

    def _visit_TryRecv(self, term: T.TryRecv, at, env):
        ep = self.process.get_endpoint(term.endpoint)
        msg = ep.message(term.message)
        if ep.sends(term.message):
            raise ElaborationError(
                f"endpoint {term.endpoint!r} is the sender of "
                f"{term.message!r}; cannot try_recv"
            )
        start = at
        guard_val = None
        if term.guard is not None:
            gc, guard_val = self._visit(term.guard, at, env)
            start = gc
        sync = self.graph.add(
            EventKind.SYNC, (start,),
            endpoint=term.endpoint, message=term.message,
            direction=SyncDir.RECV,
            static_slack=0, conditional=True,
        )
        if guard_val is not None:
            sync.actions.append(SyncGuardAction(guard_val.rexpr))
            self._use(guard_val, start,
                      EndSet.single(sync.eid, Duration.static(1)),
                      f"try_recv guard {term.endpoint}.{term.message}")
        data_slot = self._new_slot()
        flag_slot = self._new_slot()
        sync.actions.append(
            RecvBindAction(term.endpoint, term.message, data_slot)
        )
        sync.actions.append(
            SyncFlagAction(term.endpoint, term.message, flag_slot)
        )
        dtype = Bundle([("data", msg.dtype), ("valid", Logic(1))])
        rexpr = rx.RBundle(dtype, {
            "data": rx.RSlot(data_slot, msg.dtype.width,
                             f"{term.endpoint}.{term.message}"),
            "valid": rx.RSlot(flag_slot, 1,
                              f"got({term.endpoint}.{term.message})"),
        })
        val = Value(
            sync.eid,
            EndSet.single(sync.eid, Duration.static(1)),
            frozenset(),
            rexpr,
            dtype,
        )
        return sync.eid, val

    def _visit_Table(self, term: T.Table, at, env):
        ic, ival = self._visit(term.index, at, env)
        val = Value(ic, ival.end, ival.reg_reads,
                    rx.RTable(ival.rexpr, term.entries, term.width),
                    Logic(term.width))
        return ic, val

    # -- state ---------------------------------------------------------------
    def _visit_SetReg(self, term: T.SetReg, at, env):
        reg = self.process.get_register(term.reg)
        vc, vval = self._visit(term.value, at, env)
        rexpr = vval.rexpr
        if isinstance(term.value, T.Literal) and term.value.dtype is None:
            rexpr = rx.RLit(term.value.value, reg.dtype.width)
        ctx = f"set {term.reg}"
        self._use(vval, vc, EndSet.single(vc, Duration.static(1)), ctx)
        self.result.mutations.append(
            MutationRecord(term.reg, vc, self._iter_tag + ctx)
        )
        self.graph[vc].actions.append(RegWriteAction(term.reg, rexpr))
        done = self.graph.add(EventKind.DELAY, (vc,), delay=1,
                              note=f"set {term.reg} done")
        return done.eid, self._unit(done.eid)

    # -- control -------------------------------------------------------------
    def _visit_Wait(self, term: T.Wait, at, env):
        c1, _ = self._visit(term.first, at, env)
        c2, v2 = self._visit(term.second, c1, env)
        return c2, v2

    def _visit_Par(self, term: T.Par, at, env):
        c1, _ = self._visit(term.first, at, env)
        c2, v2 = self._visit(term.second, at, env)
        completion = self._completion_of(at, [c1, c2])
        val = Value(completion, v2.end, v2.reg_reads, v2.rexpr, v2.dtype)
        return completion, val

    def _visit_Let(self, term: T.Let, at, env):
        bc, bval = self._visit(term.bound, at, env)
        inner = dict(env)
        inner[term.name] = (bc, bval)
        yc, yval = self._visit(term.body, at, inner)
        return yc, yval

    def _visit_If(self, term: T.If, at, env):
        cc, cval = self._visit(term.cond, at, env)
        self._use(cval, cc, EndSet.single(cc, Duration.static(1)), "if cond")
        cond_id = self._new_cond()
        cond_slot = self._new_slot()
        self.graph[cc].actions.append(
            LatchAction(cond_slot, cval.rexpr, cond_id)
        )
        bt = self.graph.add(EventKind.BRANCH, (cc,), cond_id=cond_id,
                            polarity=True)
        bf = self.graph.add(EventKind.BRANCH, (cc,), cond_id=cond_id,
                            polarity=False)
        tc, tval = self._visit(term.then, bt.eid, env)
        if term.els is not None:
            ec, eval2 = self._visit(term.els, bf.eid, env)
        else:
            ec, eval2 = bf.eid, self._unit(bf.eid)
        join = self.graph.add(EventKind.JOIN_ANY, (tc, ec), cond_id=cond_id)
        width = max(tval.rexpr.width, eval2.rexpr.width, 1)
        rexpr = rx.RMux(rx.RSlot(cond_slot, 1, "cond"),
                        tval.rexpr, eval2.rexpr, width)
        end = tval.end.union(eval2.end).union(cval.end)
        dtype = tval.dtype if tval.dtype is not None else eval2.dtype
        val = Value(join.eid, end,
                    tval.reg_reads | eval2.reg_reads | cval.reg_reads,
                    rexpr, dtype)
        return join.eid, val

    # -- misc ---------------------------------------------------------------
    def _visit_DPrint(self, term: T.DPrint, at, env):
        arg_expr = None
        if term.arg is not None:
            _, aval = self._visit(term.arg, at, env)
            arg_expr = aval.rexpr
            self._use(aval, at, EndSet.single(at, Duration.static(1)),
                      "dprint")
        self.graph[at].actions.append(DebugPrintAction(term.fmt, arg_expr))
        return at, self._unit(at)

    def _visit_Recurse(self, term: T.Recurse, at, env):
        if self.thread.kind != Thread.RECURSIVE:
            raise ElaborationError("recurse used outside a recursive thread")
        ev = self.graph.add(EventKind.DELAY, (at,), delay=0, note="recurse")
        if self._recurse_anchor is None:
            self._recurse_anchor = ev.eid
        else:
            raise ElaborationError("multiple recurse points in one thread")
        return ev.eid, self._unit(ev.eid)


def build_thread(process: Process, thread: Thread,
                 iterations: int = 1) -> BuildResult:
    """Convenience wrapper: build one thread's event graph."""
    return GraphBuilder(process, thread).build(iterations)
