"""Symbolic max-plus timestamp algebra.

The Anvil type system (Appendix C of the paper) quantifies over *all*
timestamp functions of an event graph: ``e1 <=G e2`` holds iff for every
timestamp function ``tau``, ``tau(e1) <= tau(e2)``.  A timestamp function
assigns each dynamic synchronization event an arbitrary non-negative slack
(how long the message handshake took), so the time of an event is a
*max-plus* expression over slack variables:

    tau(e) = max_i (c_i + sum of slack variables in path i)

We represent such expressions exactly:

* :class:`MpTerm` -- one path contribution ``c + sum(vars)`` where ``vars``
  is a multiset of slack-variable identifiers.
* :class:`MaxExpr` -- the maximum of a set of terms (or ``+infinity`` for
  events that are unreachable in the branch case under consideration).
* :class:`MinExpr` -- the minimum of a set of :class:`MaxExpr` (used for
  event *patterns*, whose time is the earliest of several candidates).

Soundness of the comparisons below: with slack variables ranging over
``[0, +inf)``,

* ``t1`` is dominated by ``t2`` (``t1.const <= t2.const`` and
  ``t1.vars`` a sub-multiset of ``t2.vars``) implies ``value(t1) <=
  value(t2)`` under every assignment;
* hence ``MaxExpr`` ``A <= B`` whenever every term of ``A`` is dominated by
  some term of ``B``; and
* ``min(A_set) <= min(B_set)`` whenever every element of ``B_set`` has some
  element of ``A_set`` below it.

These are exactly the "sound approximations of <=G and <G" the paper's
implementation relies on (Section C.3).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple


def _merge_vars(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Merge two sorted multisets of variable ids."""
    return tuple(sorted(a + b))


def _vars_subset(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Return True iff multiset ``a`` is contained in multiset ``b``."""
    if len(a) > len(b):
        return False
    ia, ib = 0, 0
    while ia < len(a) and ib < len(b):
        if a[ia] == b[ib]:
            ia += 1
            ib += 1
        elif a[ia] > b[ib]:
            ib += 1
        else:
            return False
    return ia == len(a)


class MpTerm:
    """A single max-plus path contribution: ``const + sum(vars)``.

    ``vars`` is a sorted tuple of integer slack-variable identifiers (a
    multiset: the same variable may appear more than once, although in
    acyclic event graphs this does not arise in practice).
    """

    __slots__ = ("const", "vars")

    def __init__(self, const: int = 0, vars: Tuple[int, ...] = ()):
        self.const = const
        self.vars = vars

    def shifted(self, k: int) -> "MpTerm":
        return MpTerm(self.const + k, self.vars)

    def with_var(self, var: int) -> "MpTerm":
        return MpTerm(self.const, _merge_vars(self.vars, (var,)))

    def dominated_by(self, other: "MpTerm") -> bool:
        """True iff ``self <= other`` under every variable assignment."""
        return self.const <= other.const and _vars_subset(self.vars, other.vars)

    def strictly_dominated_by(self, other: "MpTerm") -> bool:
        """True iff ``self < other`` under every variable assignment.

        Because slack variables may be zero, extra variables on ``other``
        do not help; the constant must be strictly smaller.
        """
        return self.const < other.const and _vars_subset(self.vars, other.vars)

    def evaluate(self, assignment) -> int:
        """Concrete value under ``assignment`` (mapping var id -> int)."""
        return self.const + sum(assignment.get(v, 0) for v in self.vars)

    def __eq__(self, other):
        return (
            isinstance(other, MpTerm)
            and self.const == other.const
            and self.vars == other.vars
        )

    def __hash__(self):
        return hash((self.const, self.vars))

    def __repr__(self):
        if not self.vars:
            return f"{self.const}"
        vs = "+".join(f"d{v}" for v in self.vars)
        return f"{self.const}+{vs}"


class MaxExpr:
    """Maximum over a set of :class:`MpTerm`, or ``+infinity``.

    ``MaxExpr.INF`` models the timestamp of an event that is never reached
    in the branch case under consideration (Definition C.9 assigns such
    events timestamp infinity).
    """

    __slots__ = ("terms", "infinite")

    def __init__(self, terms: Iterable[MpTerm] = (), infinite: bool = False):
        self.infinite = infinite
        self.terms: FrozenSet[MpTerm] = (
            frozenset() if infinite else _prune(frozenset(terms))
        )

    # -- constructors ---------------------------------------------------
    @staticmethod
    def zero() -> "MaxExpr":
        return MaxExpr([MpTerm(0, ())])

    @staticmethod
    def inf() -> "MaxExpr":
        return MaxExpr(infinite=True)

    # -- algebra --------------------------------------------------------
    def shifted(self, k: int) -> "MaxExpr":
        if self.infinite:
            return self
        return MaxExpr(t.shifted(k) for t in self.terms)

    def with_var(self, var: int) -> "MaxExpr":
        if self.infinite:
            return self
        return MaxExpr(t.with_var(var) for t in self.terms)

    @staticmethod
    def maximum(exprs: Iterable["MaxExpr"]) -> "MaxExpr":
        """max over several expressions; infinity absorbs."""
        exprs = [e for e in exprs]
        if not exprs:
            return MaxExpr.zero()
        if any(e.infinite for e in exprs):
            return MaxExpr.inf()
        terms = []
        for e in exprs:
            terms.extend(e.terms)
        return MaxExpr(terms)

    # -- comparison (sound under all assignments) -----------------------
    def le(self, other: "MaxExpr") -> bool:
        """Sound check that ``self <= other`` for every assignment."""
        if other.infinite:
            return True
        if self.infinite:
            return False
        return all(
            any(t.dominated_by(u) for u in other.terms) for t in self.terms
        )

    def lt(self, other: "MaxExpr") -> bool:
        """Sound check that ``self < other`` for every assignment."""
        if other.infinite:
            return not self.infinite
        if self.infinite:
            return False
        return all(
            any(t.strictly_dominated_by(u) for u in other.terms)
            for t in self.terms
        )

    def evaluate(self, assignment) -> Optional[int]:
        """Concrete value; ``None`` encodes infinity."""
        if self.infinite:
            return None
        return max(t.evaluate(assignment) for t in self.terms)

    def __eq__(self, other):
        return (
            isinstance(other, MaxExpr)
            and self.infinite == other.infinite
            and self.terms == other.terms
        )

    def __hash__(self):
        return hash((self.infinite, self.terms))

    def __repr__(self):
        if self.infinite:
            return "inf"
        if not self.terms:
            return "max()"
        return "max(" + ", ".join(map(repr, sorted(self.terms, key=repr))) + ")"


def _prune(terms: FrozenSet[MpTerm]) -> FrozenSet[MpTerm]:
    """Drop terms dominated by another term (they never realize the max)."""
    kept = []
    lst = list(terms)
    for i, t in enumerate(lst):
        dominated = False
        for j, u in enumerate(lst):
            if i == j:
                continue
            if t.dominated_by(u) and not (u.dominated_by(t) and j > i):
                dominated = True
                break
        if not dominated:
            kept.append(t)
    return frozenset(kept) if kept else terms


class MinExpr:
    """Minimum over a set of :class:`MaxExpr`; empty set means infinity.

    Event patterns (``e |> pi.m``) resolve to the earliest of several
    candidate synchronization events, hence a minimum.
    """

    __slots__ = ("alts",)

    def __init__(self, alts: Iterable[MaxExpr] = ()):
        # An infinite alternative never realizes the min unless it is alone.
        alts = list(alts)
        finite = [a for a in alts if not a.infinite]
        self.alts: Tuple[MaxExpr, ...] = tuple(finite) if finite else ()

    @property
    def infinite(self) -> bool:
        return not self.alts

    @staticmethod
    def inf() -> "MinExpr":
        return MinExpr(())

    @staticmethod
    def of(expr: MaxExpr) -> "MinExpr":
        return MinExpr([expr])

    def le(self, other: "MinExpr") -> bool:
        """Sound check ``min(self) <= min(other)`` for every assignment:
        every alternative of ``other`` must have an alternative of ``self``
        at or below it."""
        if self.infinite:
            return other.infinite
        if other.infinite:
            return True
        return all(any(a.le(b) for a in self.alts) for b in other.alts)

    def lt(self, other: "MinExpr") -> bool:
        if self.infinite:
            return False
        if other.infinite:
            return True
        return all(any(a.lt(b) for a in self.alts) for b in other.alts)

    def le_expr(self, other: MaxExpr) -> bool:
        """Sound check ``min(self) <= other``."""
        if self.infinite:
            return other.infinite
        return any(a.le(other) for a in self.alts)

    def ge_expr(self, other: MaxExpr) -> bool:
        """Sound check ``other <= min(self)`` (every alternative above)."""
        if self.infinite:
            return True
        return all(other.le(a) for a in self.alts)

    def gt_expr(self, other: MaxExpr) -> bool:
        """Sound check ``other < min(self)``."""
        if self.infinite:
            return not other.infinite
        return all(other.lt(a) for a in self.alts)

    def lt_expr(self, other: MaxExpr) -> bool:
        """Sound check ``min(self) < other``."""
        if other.infinite:
            return not self.infinite
        if self.infinite:
            return False
        return any(a.lt(other) for a in self.alts)

    def evaluate(self, assignment) -> Optional[int]:
        if self.infinite:
            return None
        vals = [a.evaluate(assignment) for a in self.alts]
        vals = [v for v in vals if v is not None]
        return min(vals) if vals else None

    def __repr__(self):
        if self.infinite:
            return "inf"
        return "min(" + ", ".join(map(repr, self.alts)) + ")"
