"""The timing oracle: sound decision procedures for ``<=G`` and ``<G``.

Definition C.11 of the paper quantifies over every *timestamp function* of
the event graph.  The oracle realizes that quantification:

* handshake slack of each dynamic synchronization event becomes a fresh
  max-plus variable (see :mod:`repro.core.maxplus`);
* branch conditions are enumerated case by case -- but only the conditions
  *relevant* to the events being compared (those labelling their ancestors),
  which keeps the enumeration small;
* within one case, each event's time is an exact max-plus expression, and
  comparisons hold only if they hold in every case.

Dynamic event patterns ``e |> pi.m`` ("first occurrence of pi.m after e")
are resolved against the graph structurally.  We compute two bounds:

* a *lower* bound -- minimum over every occurrence of ``pi.m`` that might
  happen after ``e`` (descendants and order-incomparable events); used when
  an earlier end is the conservative direction (e.g. the expiry of a
  received value);
* an *upper* bound -- minimum over occurrences *guaranteed* to happen after
  ``e`` (structural descendants); used when a later end is the conservative
  direction (e.g. deciding that a loan has expired before a mutation).

Both directions are sound; which one a check needs is chosen by the type
checker.  This mirrors the paper's statement that the implementation uses
sound approximations of ``<=G`` and ``<G``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .events import EventGraph, EventKind
from .maxplus import MaxExpr, MinExpr
from .patterns import EndSet, EventPattern

Case = Tuple[Tuple[int, bool], ...]


class OracleLimitError(Exception):
    """Raised when branch-case enumeration exceeds the configured limit."""


class TimingOracle:
    """Decides timing relations over one event graph."""

    def __init__(self, graph: EventGraph, max_cases: int = 4096):
        self.graph = graph
        self.max_cases = max_cases
        self._ts_cache: Dict[Tuple[Case, int], MaxExpr] = {}
        self._candidates_cache: Dict[Tuple[int, str, str, bool], Tuple[int, ...]] = {}
        self._relevant_conds: Optional[frozenset] = None
        self._cond_cones_cache = None
        self._verdict_cache: Dict[tuple, bool] = {}

    # ------------------------------------------------------------------
    # branch-condition relevance
    # ------------------------------------------------------------------
    def _timing_relevant_conditions(self) -> frozenset:
        """Conditions that can influence *when* some event occurs.

        A condition whose two arms contain only zero-time events (``#0``
        delays, joins, zero-slack syncs) never shifts any timestamp, so it
        need not be enumerated.  ``gated(e)`` is the set of conditions that
        gate reachability of ``e``: branch arms add their condition, an
        any-join intersects (either arm reaches it), everything else
        unions over its predecessors."""
        if self._relevant_conds is not None:
            return self._relevant_conds
        g = self.graph
        # gated sets hold (cond_id, polarity) pairs: the join of the two
        # arms of one condition intersects to nothing, i.e. becomes
        # unconditional again
        gated: Dict[int, frozenset] = {}
        for ev in g.events:
            if not ev.preds:
                gated[ev.eid] = frozenset()
                continue
            sets = [gated[p] for p in ev.preds]
            if ev.kind is EventKind.JOIN_ANY:
                acc = sets[0]
                for s in sets[1:]:
                    acc = acc & s
            else:
                acc = frozenset().union(*sets)
            if ev.kind is EventKind.BRANCH:
                acc = acc | {(ev.cond_id, ev.polarity)}
            gated[ev.eid] = acc
        candidates = set()
        for ev in g.events:
            takes_time = (
                (ev.kind is EventKind.DELAY and ev.delay > 0)
                or (ev.kind is EventKind.SYNC and ev.static_slack != 0)
            )
            if takes_time:
                candidates.update(c for c, _pol in gated[ev.eid])
        # a candidate is only truly relevant if flipping it shifts the
        # timestamp of some event *outside* its arms (balanced branches,
        # e.g. a one-cycle register write on both sides, do not)
        relevant = set()
        for cond in candidates:
            memo_t: Dict[int, MaxExpr] = {}
            memo_f: Dict[int, MaxExpr] = {}
            for ev in g.events:
                if any(c == cond for c, _pol in gated[ev.eid]):
                    continue
                t_true = self._ts_approx(ev.eid, cond, True, memo_t)
                t_false = self._ts_approx(ev.eid, cond, False, memo_f)
                if t_true != t_false:
                    relevant.add(cond)
                    break
        self._relevant_conds = frozenset(relevant)
        return self._relevant_conds

    def _ts_approx(self, eid: int, cond: int, value: bool,
                   memo: Dict[int, MaxExpr]) -> MaxExpr:
        """Approximate timestamps for the relevance analysis: the single
        condition ``cond`` is fixed, every other condition is transparent
        and any-joins take the max over reachable sides (a sound common
        upper shape -- only *equality across the two cases* is used)."""
        cached = memo.get(eid)
        if cached is not None:
            return cached
        ev = self.graph[eid]
        if ev.kind is EventKind.ROOT:
            out = MaxExpr.zero()
        elif ev.kind is EventKind.BRANCH:
            if ev.cond_id == cond and ev.polarity != value:
                out = MaxExpr.inf()
            else:
                out = MaxExpr.maximum(
                    self._ts_approx(p, cond, value, memo) for p in ev.preds
                )
        elif ev.kind is EventKind.JOIN_ANY:
            alts = [
                self._ts_approx(p, cond, value, memo) for p in ev.preds
            ]
            reachable = [a for a in alts if not a.infinite]
            out = (
                MaxExpr.maximum(reachable) if reachable else MaxExpr.inf()
            )
        else:
            base = MaxExpr.maximum(
                self._ts_approx(p, cond, value, memo) for p in ev.preds
            )
            if ev.kind is EventKind.DELAY:
                out = base.shifted(ev.delay)
            elif ev.kind is EventKind.SYNC:
                if ev.static_slack is not None:
                    out = base.shifted(ev.static_slack)
                else:
                    out = base.with_var(ev.eid)
            else:
                out = base
        memo[eid] = out
        return out

    # ------------------------------------------------------------------
    # timestamps
    # ------------------------------------------------------------------
    def ts(self, eid: int, case: Case) -> MaxExpr:
        """Max-plus timestamp of event ``eid`` under branch case ``case``.

        ``case`` must assign every branch condition occurring among the
        ancestors of ``eid`` (guaranteed when callers build cases with
        :meth:`_relevant_conditions`).
        """
        key = (case, eid)
        cached = self._ts_cache.get(key)
        if cached is not None:
            return cached
        ev = self.graph[eid]
        assignment = dict(case)
        if ev.kind is EventKind.ROOT:
            out = MaxExpr.zero()
        elif ev.kind is EventKind.DELAY:
            out = MaxExpr.maximum(
                self.ts(p, case) for p in ev.preds
            ).shifted(ev.delay)
        elif ev.kind is EventKind.SYNC:
            parts = [self.ts(p, case) for p in ev.preds]
            # Successive synchronizations of one message share a single
            # handshake resource and are serialized in program order; a
            # later sync can therefore never complete before an earlier
            # one.  (This matters for overlapped `recursive` iterations.)
            if not any(p.infinite for p in parts):
                for other in self.graph.sync_events(ev.endpoint, ev.message):
                    if other.eid < ev.eid:
                        t = self.ts(other.eid, case)
                        if not t.infinite:
                            parts.append(t)
            base = MaxExpr.maximum(parts)
            if ev.static_slack is not None:
                out = base.shifted(ev.static_slack)
            else:
                out = base.with_var(ev.eid)
        elif ev.kind is EventKind.BRANCH:
            taken = assignment.get(ev.cond_id, ev.polarity) == ev.polarity
            if not taken:
                out = MaxExpr.inf()
            else:
                out = MaxExpr.maximum(self.ts(p, case) for p in ev.preds)
        elif ev.kind is EventKind.JOIN_ANY:
            alts = [self.ts(p, case) for p in ev.preds]
            reachable = [a for a in alts if not a.infinite]
            if not reachable:
                out = MaxExpr.inf()
            elif len(reachable) == 1:
                out = reachable[0]
            else:
                # A join of branches where more than one side is reachable
                # can only happen when the branch condition was deemed
                # irrelevant; both sides then carry identical timestamps by
                # construction (optimization passes preserve this), so take
                # the max as a safe representative only when they agree.
                first = reachable[0]
                if all(r == first for r in reachable[1:]):
                    out = first
                else:
                    raise OracleLimitError(
                        f"join e{eid} has multiple reachable branches under "
                        f"case {case}; condition set was incomplete"
                    )
        elif ev.kind is EventKind.JOIN_ALL:
            out = MaxExpr.maximum(self.ts(p, case) for p in ev.preds)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(ev.kind)
        self._ts_cache[key] = out
        return out

    # ------------------------------------------------------------------
    # dynamic pattern candidates
    # ------------------------------------------------------------------
    def _candidates(
        self, base: int, endpoint: str, message: str, guaranteed: bool
    ) -> Tuple[int, ...]:
        key = (base, endpoint, message, guaranteed)
        cached = self._candidates_cache.get(key)
        if cached is not None:
            return cached
        out: List[int] = []
        for ev in self.graph.sync_events(endpoint, message):
            if ev.eid == base:
                continue
            if self.graph.is_ancestor(ev.eid, base):
                continue  # occurs before the base event
            if guaranteed and not self.graph.is_ancestor(base, ev.eid):
                continue  # not provably after the base event
            out.append(ev.eid)
        result = tuple(out)
        self._candidates_cache[key] = result
        return result

    def _pattern_alts(
        self, pattern: EventPattern, case: Case, upper: bool
    ) -> List[MaxExpr]:
        """Alternatives (min-candidates) for an event pattern under a case."""
        base_ts = self.ts(pattern.base, case)
        if base_ts.infinite:
            return []  # pattern base never reached: treated as vacuous
        dur = pattern.duration
        if dur.is_static:
            return [base_ts.shifted(dur.cycles)]
        cands = self._candidates(pattern.base, dur.endpoint, dur.message, upper)
        alts = []
        for c in cands:
            t = self.ts(c, case)
            if not t.infinite:
                alts.append(t)
        return alts

    def _endset_expr(self, end: EndSet, case: Case, upper: bool) -> MinExpr:
        """MinExpr bound for an :class:`EndSet` (infinite when eternal)."""
        return self._endset_state(end, case, upper)[0]

    def _endset_state(self, end: EndSet, case: Case, upper: bool
                      ) -> Tuple[MinExpr, bool]:
        """Bound plus reachability: the second component is False when every
        pattern base is unreachable in this case (the interval -- and hence
        any obligation built on it -- is vacuous there)."""
        if end.is_eternal:
            return MinExpr.inf(), True
        alts: List[MaxExpr] = []
        reachable = False
        for p in end.patterns:
            if not self.ts(p.base, case).infinite:
                reachable = True
            alts.extend(self._pattern_alts(p, case, upper))
        if not alts:
            return MinExpr.inf(), reachable
        return MinExpr(alts), reachable

    # ------------------------------------------------------------------
    # branch-case enumeration
    # ------------------------------------------------------------------
    def _involved_events(self, eids: Iterable[int], ends: Iterable[EndSet]):
        involved = set(eids)
        for end in ends:
            for p in end.patterns:
                involved.add(p.base)
                if not p.duration.is_static:
                    involved.update(
                        self._candidates(
                            p.base, p.duration.endpoint, p.duration.message, False
                        )
                    )
        return involved

    def _cond_cones(self):
        """Per-event set of branch conditions that can influence its
        timestamp: conditions of its ancestor cone, closed over the
        serialized earlier same-message syncs (they feed the sync's
        timestamp).  Computed once, in topological order."""
        if self._cond_cones_cache is not None:
            return self._cond_cones_cache
        g = self.graph
        cones = []
        for ev in g.events:
            acc = set()
            for p in ev.preds:
                acc |= cones[p]
            if ev.kind is EventKind.BRANCH:
                acc.add(ev.cond_id)
            elif ev.kind is EventKind.SYNC:
                for other in g.sync_events(ev.endpoint, ev.message):
                    if other.eid < ev.eid:
                        acc |= cones[other.eid]
            cones.append(frozenset(acc))
        self._cond_cones_cache = cones
        return cones

    def _cases(self, eids: Iterable[int], ends: Iterable[EndSet] = (),
               all_conds: bool = False):
        """Enumerate branch cases.  By default only *timing-relevant*
        conditions are expanded (others cannot shift any timestamp);
        ``all_conds`` forces full expansion over the events' own gating
        conditions, which reachability questions (mutual exclusion) need."""
        involved = self._involved_events(eids, ends)
        cones = self._cond_cones()
        conds_set = set()
        for eid in involved:
            conds_set |= cones[eid]
        if not all_conds:
            relevant = self._timing_relevant_conditions()
            conds_set &= relevant
        conds = sorted(conds_set)
        n = len(conds)
        if 2**n > self.max_cases:
            raise OracleLimitError(
                f"{n} relevant branch conditions exceed the case limit"
            )
        for mask in range(2**n):
            yield tuple(
                (cond, bool(mask >> i & 1)) for i, cond in enumerate(conds)
            )

    # ------------------------------------------------------------------
    # public comparisons
    # ------------------------------------------------------------------
    def event_le(self, a: int, b: int) -> bool:
        """``a <=G b``: in every case where ``a`` happens, ``b`` happens no
        earlier."""
        key = ("le", a, b)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        out = self._event_le(a, b)
        self._verdict_cache[key] = out
        return out

    def _event_le(self, a: int, b: int) -> bool:
        for case in self._cases((a, b)):
            ta = self.ts(a, case)
            if ta.infinite:
                continue  # vacuous in this case
            if not ta.le(self.ts(b, case)):
                return False
        return True

    def event_lt(self, a: int, b: int) -> bool:
        key = ("lt", a, b)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        out = self._event_lt(a, b)
        self._verdict_cache[key] = out
        return out

    def _event_lt(self, a: int, b: int) -> bool:
        for case in self._cases((a, b)):
            ta = self.ts(a, case)
            if ta.infinite:
                continue
            if not ta.lt(self.ts(b, case)):
                return False
        return True

    def event_le_end(self, a: int, end: EndSet, shift: int = 0) -> bool:
        """``a + shift <= earliest(end)`` in every case (value live until at
        least ``a + shift``); uses the *lower* bound of ``end``."""
        if end.is_eternal:
            return True
        key = ("lee", a, end, shift)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        out = self._event_le_end(a, end, shift)
        self._verdict_cache[key] = out
        return out

    def _event_le_end(self, a: int, end: EndSet, shift: int = 0) -> bool:
        for case in self._cases((a,), (end,)):
            ta = self.ts(a, case)
            if ta.infinite:
                continue
            bound = self._endset_expr(end, case, upper=False)
            if not bound.ge_expr(ta.shifted(shift)):
                return False
        return True

    def end_le_event(self, end: EndSet, a: int, shift: int = 0) -> bool:
        """``earliest(end) <= a + shift`` in every case; uses the *upper*
        bound of ``end`` (sound for 'the loan expired before the mutation
        takes effect')."""
        if end.is_eternal:
            return False
        key = ("ele", end, a, shift)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        out = self._end_le_event(end, a, shift)
        self._verdict_cache[key] = out
        return out

    def _end_le_event(self, end: EndSet, a: int, shift: int = 0) -> bool:
        for case in self._cases((a,), (end,)):
            ta = self.ts(a, case)
            if ta.infinite:
                continue
            bound, reachable = self._endset_state(end, case, upper=True)
            if not reachable:
                continue  # the interval never materializes in this case
            if not bound.le_expr(ta.shifted(shift)):
                return False
        return True

    def end_le_end(self, required: EndSet, available: EndSet) -> bool:
        """``earliest(required) <= earliest(available)``: the available
        lifetime lasts at least as long as required.  Upper bound on the
        requirement, lower bound on the availability."""
        if available.is_eternal:
            return True
        if required.is_eternal:
            return False
        key = ("e2e", required, available)
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        out = self._end_le_end(required, available)
        self._verdict_cache[key] = out
        return out

    def _end_le_end(self, required: EndSet, available: EndSet) -> bool:
        for case in self._cases((), (required, available)):
            req, req_reachable = self._endset_state(required, case, upper=True)
            if not req_reachable:
                continue  # the requirement is vacuous in this case
            ava = self._endset_expr(available, case, upper=False)
            if not req.le(ava):
                return False
        return True

    def pattern_end_le_event_start(
        self, end: EndSet, start: int
    ) -> bool:
        """Disjointness helper for the Valid Message Send overlap check:
        the first window must end no later than the second begins."""
        return self.end_le_event(end, start)

    def lifetime_within(
        self,
        inner_start: int,
        inner_end: EndSet,
        outer_start: int,
        outer_end: EndSet,
    ) -> bool:
        """``[inner_start, inner_end) (subset of) [outer_start, outer_end)``
        (the paper's interval containment built from ``<=G``)."""
        if not self.event_le(outer_start, inner_start):
            return False
        return self.end_le_end(inner_end, outer_end)
