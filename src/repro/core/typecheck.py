"""The Anvil type checker: the three timing-safety checks of Section 5.4.

Given a process, each thread body is unrolled (two iterations by default --
Lemma C.19 shows that suffices for loops) and elaborated into an event graph
with check obligations.  The checker then discharges:

1. **Valid Value Use** -- every use window of a value lies within the
   value's lifetime: it starts no earlier than the value is available and
   ends no later than the value's intrinsic expiry (e.g. the contract expiry
   of a received message).

2. **Valid Register Mutation** -- a mutation at event ``m`` (new value
   visible at ``m+1``) conflicts with a loan ``[a, b)`` on the same register
   iff the loaned value is still used strictly after the mutation takes
   effect; safety requires ``m <G a`` or ``b <=G m + 1`` in every branch
   case.  Loans are inferred from uses: a use of a register-sourced value
   loans the register from the cycle the register was *read* through the
   end of the use window (Definition C.15 spans a value's creation through
   its last use).

3. **Valid Message Send** -- the payload is live throughout the window the
   contract requires (subsumed by check 1 on a synthetic use), and required
   windows of two sends of the same message never overlap.

All decisions are made by the :class:`~repro.core.oracle.TimingOracle`,
which quantifies over timestamp functions soundly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import (
    LoanedRegisterMutationError,
    MessageSendError,
    TypeCheckError,
    ValueNotLiveError,
)
from ..lang.process import Process
from .graph_builder import BuildResult, GraphBuilder, UseCheck
from .oracle import OracleLimitError, TimingOracle
from .patterns import EndSet


class Loan:
    __slots__ = ("register", "start", "end", "context")

    def __init__(self, register: str, start: int, end: EndSet, context: str):
        self.register = register
        self.start = start
        self.end = end
        self.context = context


class CheckReport:
    """Outcome of type checking one process: errors plus per-thread detail
    useful for the figures (derived action sequences, contract checks)."""

    def __init__(self, process: Process):
        self.process = process
        self.errors: List[TypeCheckError] = []
        self.threads: List[BuildResult] = []
        self.notes: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self):
        if self.errors:
            raise self.errors[0]

    def __repr__(self):
        state = "SAFE" if self.ok else f"UNSAFE ({len(self.errors)} errors)"
        return f"CheckReport({self.process.name}: {state})"


def check_process(
    process: Process,
    iterations: int = 2,
    max_cases: int = 4096,
    collect_all: bool = True,
) -> CheckReport:
    """Type check every thread of ``process``.

    Returns a :class:`CheckReport`; raise behaviour is left to the caller
    (use :meth:`CheckReport.raise_first` or :func:`assert_safe`).
    """
    report = CheckReport(process)
    for thread in process.threads:
        result = GraphBuilder(process, thread).build(iterations)
        report.threads.append(result)
        oracle = TimingOracle(result.graph, max_cases=max_cases)
        _check_thread(process, thread, result, oracle, report, collect_all)
    _check_cross_thread(process, report)
    return report


def assert_safe(process: Process, iterations: int = 2,
                max_cases: int = 4096) -> CheckReport:
    """Type check and raise the first error, if any."""
    report = check_process(process, iterations, max_cases)
    report.raise_first()
    return report


# ----------------------------------------------------------------------
def _check_thread(process, thread, result: BuildResult, oracle: TimingOracle,
                  report: CheckReport, collect_all: bool):
    loans = _collect_loans(result)

    # 1. Valid Value Use --------------------------------------------------
    for use in result.uses:
        err = _check_use(oracle, use)
        if err:
            report.errors.append(
                ValueNotLiveError(err, process=process.name)
            )
            if not collect_all:
                return

    # 2. Valid Register Mutation ------------------------------------------
    for mut in result.mutations:
        for loan in loans.get(mut.register, []):
            if oracle.event_lt(mut.at, loan.start):
                continue  # mutation completes before the loan begins
            if oracle.end_le_event(loan.end, mut.at, shift=1):
                continue  # the loan is over by the time the new value lands
            report.errors.append(
                LoanedRegisterMutationError(
                    f"register {mut.register!r} mutated at e{mut.at} "
                    f"({mut.context}) during loan [e{loan.start}, {loan.end}) "
                    f"({loan.context})",
                    process=process.name,
                )
            )
            if not collect_all:
                return

    # 3. Valid Message Send (overlap) --------------------------------------
    by_message: Dict[Tuple[str, str], list] = {}
    for send in result.sends:
        by_message.setdefault((send.endpoint, send.message), []).append(send)
    for key, sends in by_message.items():
        for i in range(len(sends)):
            for j in range(len(sends)):
                if i == j:
                    continue
                s1, s2 = sends[i], sends[j]
                if not result.graph.is_ancestor(s1.sync, s2.sync):
                    continue  # only check ordered pairs once (s1 before s2)
                if oracle.end_le_event(s1.required_end, s2.start):
                    continue
                if _mutually_exclusive(oracle, s1.sync, s2.sync):
                    continue
                report.errors.append(
                    MessageSendError(
                        f"two sends of {key[0]}.{key[1]} have overlapping "
                        f"required lifetimes: [e{s1.sync}, {s1.required_end}) "
                        f"({s1.context}) vs [e{s2.start}, ...) ({s2.context})",
                        process=process.name,
                    )
                )
                if not collect_all:
                    return
        # unordered (parallel) sends of the same message
        for i in range(len(sends)):
            for j in range(i + 1, len(sends)):
                s1, s2 = sends[i], sends[j]
                g = result.graph
                if g.is_ancestor(s1.sync, s2.sync) or \
                        g.is_ancestor(s2.sync, s1.sync):
                    continue
                if _mutually_exclusive(oracle, s1.sync, s2.sync):
                    continue
                # structurally unordered but possibly temporally disjoint
                # (e.g. statically timed pipeline stages)
                if oracle.end_le_event(s1.required_end, s2.start) or \
                        oracle.end_le_event(s2.required_end, s1.start):
                    continue
                report.errors.append(
                    MessageSendError(
                        f"two unordered sends of {key[0]}.{key[1]} "
                        f"({s1.context} / {s2.context}) may overlap",
                        process=process.name,
                    )
                )
                if not collect_all:
                    return


def _check_use(oracle: TimingOracle, use: UseCheck) -> Optional[str]:
    v = use.value
    try:
        if not oracle.event_le(v.start, use.window_start):
            return (
                f"{use.context}: value only available from e{v.start}, "
                f"used from e{use.window_start}"
            )
        if not oracle.end_le_end(use.window_end, v.end):
            return (
                f"{use.context}: value lifetime ends at {v.end} but is "
                f"needed until {use.window_end}"
            )
    except OracleLimitError as exc:
        return f"{use.context}: {exc}"
    return None


def _collect_loans(result: BuildResult) -> Dict[str, List[Loan]]:
    loans: Dict[str, List[Loan]] = {}
    for use in result.uses:
        for reg, read_at in use.value.reg_reads:
            loans.setdefault(reg, []).append(
                Loan(reg, read_at, use.window_end, use.context)
            )
    return loans


def _required_polarities(graph, eid: int):
    """For each branch condition, the polarity ``eid`` requires to be
    reachable (conditions whose both arms are ancestors -- i.e. past the
    join -- impose no requirement)."""
    scope = set(graph.ancestors(eid)) | {eid}
    by_cond = {}
    for a in scope:
        ev = graph[a]
        if ev.kind.value == "branch":
            by_cond.setdefault(ev.cond_id, set()).add(ev.polarity)
    return {
        cond: next(iter(pols))
        for cond, pols in by_cond.items()
        if len(pols) == 1
    }


def _mutually_exclusive(oracle: TimingOracle, a: int, b: int) -> bool:
    """True iff events a and b never co-occur: they require opposite
    polarities of some branch condition."""
    g = oracle.graph
    ra = _required_polarities(g, a)
    rb = _required_polarities(g, b)
    return any(
        cond in rb and rb[cond] != pol for cond, pol in ra.items()
    )


def _check_cross_thread(process: Process, report: CheckReport):
    """Conservative cross-thread checks: threads' event graphs cannot be
    compared, so shared mutable state across threads is rejected when it
    could race."""
    if len(report.threads) < 2:
        return
    mutated_by: Dict[str, set] = {}
    loaned_by: Dict[str, set] = {}
    sent_by: Dict[Tuple[str, str], set] = {}
    for idx, result in enumerate(report.threads):
        for mut in result.mutations:
            mutated_by.setdefault(mut.register, set()).add(idx)
        for use in result.uses:
            for reg, _ in use.value.reg_reads:
                loaned_by.setdefault(reg, set()).add(idx)
        for send in result.sends:
            sent_by.setdefault((send.endpoint, send.message), set()).add(idx)
    for reg, writers in mutated_by.items():
        if len(writers) > 1:
            report.errors.append(
                LoanedRegisterMutationError(
                    f"register {reg!r} mutated by multiple threads",
                    process=process.name,
                )
            )
        readers = loaned_by.get(reg, set()) - writers
        if readers and writers:
            report.notes.append(
                f"register {reg!r} written by thread(s) {sorted(writers)} and "
                f"read by thread(s) {sorted(readers)}: cross-thread reads see "
                f"a one-cycle-stable value only"
            )
    for key, senders in sent_by.items():
        if len(senders) > 1:
            report.errors.append(
                MessageSendError(
                    f"message {key[0]}.{key[1]} sent from multiple threads",
                    process=process.name,
                )
            )
