"""Durations, event patterns, lifetimes and loan times (Section 5.1/5.2).

A *duration* ``p`` is either a fixed number of cycles ``#k`` or a dynamic
operation ``pi.m`` (the sending/receiving of a message).  An *event pattern*
``e |> p`` denotes the first time ``p`` is satisfied after event ``e``.  A
*lifetime* is an interval ``[e_start, S_end)`` whose end is the earliest
match of a set of patterns; the empty set denotes an eternal lifetime
(the paper writes it with infinity).

A *loan time* of a register is a collection of intervals during which the
register must not be mutated because a signal or an in-flight message sources
its value from it.
"""

from __future__ import annotations

from typing import Optional, Tuple


class Duration:
    """Either ``#k`` (static) or ``endpoint.message`` (dynamic)."""

    __slots__ = ("cycles", "endpoint", "message")

    def __init__(
        self,
        cycles: Optional[int] = None,
        endpoint: str = "",
        message: str = "",
    ):
        if cycles is None and not message:
            raise ValueError("duration must be static (#k) or dynamic (pi.m)")
        self.cycles = cycles
        self.endpoint = endpoint
        self.message = message

    @staticmethod
    def static(k: int) -> "Duration":
        return Duration(cycles=k)

    @staticmethod
    def dynamic(endpoint: str, message: str) -> "Duration":
        return Duration(endpoint=endpoint, message=message)

    @property
    def is_static(self) -> bool:
        return self.cycles is not None

    def rebased(self, endpoint: str) -> "Duration":
        """Return this duration with its endpoint name replaced (used when a
        channel-level contract is instantiated at a concrete endpoint)."""
        if self.is_static:
            return self
        return Duration.dynamic(endpoint, self.message)

    def __eq__(self, other):
        return (
            isinstance(other, Duration)
            and self.cycles == other.cycles
            and self.endpoint == other.endpoint
            and self.message == other.message
        )

    def __hash__(self):
        return hash((self.cycles, self.endpoint, self.message))

    def __repr__(self):
        if self.is_static:
            return f"#{self.cycles}"
        return f"{self.endpoint}.{self.message}"


class EventPattern:
    """``base |> duration`` -- first satisfaction of ``duration`` after the
    event with id ``base``."""

    __slots__ = ("base", "duration")

    def __init__(self, base: int, duration: Duration):
        self.base = base
        self.duration = duration

    def __eq__(self, other):
        return (
            isinstance(other, EventPattern)
            and self.base == other.base
            and self.duration == other.duration
        )

    def __hash__(self):
        return hash((self.base, self.duration))

    def __repr__(self):
        return f"e{self.base}|>{self.duration}"


class EndSet:
    """A set of event patterns whose earliest match ends a lifetime.

    ``EndSet.eternal()`` (no patterns) means the value never expires.
    """

    __slots__ = ("patterns",)

    def __init__(self, patterns: Tuple[EventPattern, ...] = ()):
        self.patterns = tuple(patterns)

    @staticmethod
    def eternal() -> "EndSet":
        return EndSet(())

    @staticmethod
    def single(base: int, duration: Duration) -> "EndSet":
        return EndSet((EventPattern(base, duration),))

    @property
    def is_eternal(self) -> bool:
        return not self.patterns

    def union(self, other: "EndSet") -> "EndSet":
        """Intersection of lifetimes = earliest of either end (the paper's
        ``S1 (union) S2`` in T-BinOp: more patterns end sooner)."""
        if self.is_eternal:
            return other
        if other.is_eternal:
            return self
        merged = list(self.patterns)
        for p in other.patterns:
            if p not in merged:
                merged.append(p)
        return EndSet(tuple(merged))

    def __eq__(self, other):
        return isinstance(other, EndSet) and set(self.patterns) == set(
            other.patterns
        )

    def __hash__(self):
        return hash(frozenset(self.patterns))

    def __repr__(self):
        if self.is_eternal:
            return "inf"
        return "{" + ", ".join(map(repr, self.patterns)) + "}"


class Lifetime:
    """``[start, end)`` with ``start`` an event id and ``end`` an
    :class:`EndSet`."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: EndSet):
        self.start = start
        self.end = end

    @staticmethod
    def eternal(start: int) -> "Lifetime":
        return Lifetime(start, EndSet.eternal())

    def __repr__(self):
        return f"[e{self.start}, {self.end})"


class Loan:
    """A loan interval on a register: the register must stay unchanged in
    ``[start, end)``.  ``reason`` documents which use created the loan (for
    error messages)."""

    __slots__ = ("register", "start", "end", "reason")

    def __init__(self, register: str, start: int, end: EndSet, reason: str):
        self.register = register
        self.start = start
        self.end = end
        self.reason = reason

    def __repr__(self):
        return f"Loan({self.register}, [e{self.start}, {self.end}), {self.reason!r})"


class Mutation:
    """A register mutation starting at event ``at`` (completing one cycle
    later)."""

    __slots__ = ("register", "at", "reason")

    def __init__(self, register: str, at: int, reason: str = ""):
        self.register = register
        self.at = at
        self.reason = reason

    def __repr__(self):
        return f"Mutation({self.register} @ e{self.at})"
