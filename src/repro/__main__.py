"""``python -m repro`` -- the command-line front end over :mod:`repro.api`.

One option layer (``--engine/--backend/--parallel/--seed/--cycles/
--stim/--batch/--trace/--json``) shared by every subcommand, resolved
into a single :class:`~repro.api.SimConfig` and handed to a
:class:`~repro.api.Session`:

================  ===========================================================
``list-scenarios``  enumerate the scenario registry (names, tags)
``run``             build + run one registered scenario
``sweep``           run many scenarios as one batch sweep
``bench``           cycles/second of the configured engine x backend vs the
                    reference pair, with equivalence checks
``inject``          seeded fault-injection campaign with AVF-style readout
``table1``          Table 1 (area/power/fmax/latency)
``table2``          Table 2 (real-world hazard case studies)
``figures``         Figures 1, 2, 4, 5, 6, 8
``appendix-a``      Appendix A (typecheck vs bounded model checking)
``serve``           long-lived simulation service (:mod:`repro.server`)
================  ===========================================================

``--json`` (optionally ``--json PATH``) emits the machine-readable form
of any subcommand's result; every blob embeds the resolved config so
records are self-describing.  A subcommand exposes (and echoes) only
the config fields its run actually consumes -- the harness drivers take
``--engine``/``--backend``/``--parallel``, ``appendix-a`` just
``--engine``/``--backend`` (its BMC sides are serial by design).
"""

from __future__ import annotations

import argparse
import json
import signal
import statistics
import sys
from typing import Dict, List, Optional

from .api import Session, SimConfig, UnknownScenarioError, get_registry
from .codegen.simfsm import BACKENDS
from .rtl.executors import EXECUTORS
from .rtl.simulator import ENGINES

#: every field of the shared option layer; subcommands that consume
#: only part of the config expose only that part, so the echoed
#: ``--json`` config never claims knobs the run ignored
ALL_FIELDS = ("engine", "backend", "parallel", "executor", "jobs", "seed",
              "cycles", "stim", "batch", "trace", "checkpoint_every",
              "max_wall_time")
#: a single scenario run has no sweep to execute, so it neither takes
#: nor echoes the executor knobs (nor the lock-step batch width)
RUN_FIELDS = tuple(f for f in ALL_FIELDS
                   if f not in ("executor", "jobs", "parallel", "batch"))
#: bench measures each (scenario, config) serially, never batches,
#: never checkpoints and runs no watchdog -- lock-step timing would
#: blend the instances it is trying to compare, a restored prefix (or a
#: cancelled repeat) would corrupt the cycles/second it is trying to
#: measure
BENCH_FIELDS = tuple(f for f in ALL_FIELDS
                     if f not in ("batch", "checkpoint_every",
                                  "max_wall_time"))
#: a fault campaign forks tails on the configured executor but never
#: renders waveforms, batches or feeds the checkpoint store (it keeps a
#: campaign-local one)
INJECT_FIELDS = tuple(f for f in ALL_FIELDS
                      if f not in ("batch", "trace", "checkpoint_every"))
#: what the harness drivers actually thread through (appendix-a keeps
#: its own serial-by-design parallel knob, so it exposes only the
#: engine/backend pair its simulated side consumes)
HARNESS_FIELDS = ("engine", "backend", "parallel", "executor", "jobs")


# ---------------------------------------------------------------------------
# the shared option layer
# ---------------------------------------------------------------------------
def _add_config_options(parser: argparse.ArgumentParser,
                        fields=ALL_FIELDS):
    g = parser.add_argument_group("simulation config")
    if "engine" in fields:
        g.add_argument("--engine", choices=ENGINES, default=None,
                       help="settle engine: levelized (default), kernel "
                            "(compiled per-topology cycle loops) or "
                            "brute (the seed reference); $REPRO_ENGINE "
                            "overrides the default")
    if "backend" in fields:
        g.add_argument("--backend", choices=BACKENDS, default=None,
                       help="compiled-FSM execution backend "
                            "(default: interp)")
    if "parallel" in fields:
        g.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="batch pool size; 0 forces serial "
                            "(default: auto)")
    if "executor" in fields:
        g.add_argument("--executor", choices=EXECUTORS, default=None,
                       help="sweep execution strategy: serial, thread "
                            "(default) or process (multi-core pool of "
                            "picklable JobSpecs)")
    if "jobs" in fields:
        g.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="forced executor worker count "
                            "(default: auto)")
    if "seed" in fields:
        g.add_argument("--seed", type=int, default=None,
                       help="stimulus RNG seed (default: 0)")
    if "cycles" in fields:
        g.add_argument("--cycles", type=int, default=None,
                       help="cycles to simulate (default: 1000)")
    if "stim" in fields:
        g.add_argument("--stim", type=int, default=None,
                       help="stimulus depth override")
    if "batch" in fields:
        g.add_argument("--batch", type=int, default=None, metavar="M",
                       help="lock-step batch width for seed campaigns "
                            "(sweep --seeds): up to M same-topology "
                            "instances advance through one compiled "
                            "kernel pass; $REPRO_BATCH overrides the "
                            "default of 1")
    if "trace" in fields:
        g.add_argument("--trace", action="store_true", default=False,
                       help="render the ASCII waveform of each run")
    if "checkpoint_every" in fields:
        g.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N", dest="checkpoint_every",
                       help="snapshot the run every N cycles into the "
                            "process-wide checkpoint store and resume "
                            "from the longest matching prefix; "
                            "$REPRO_CHECKPOINT_EVERY overrides the "
                            "default of off")
    if "max_wall_time" in fields:
        g.add_argument("--max-wall-time", type=float, default=None,
                       metavar="SECONDS", dest="max_wall_time",
                       help="wall-clock watchdog: cancel the run with "
                            "an error once it has simulated past this "
                            "budget; $REPRO_MAX_WALL_TIME overrides "
                            "the default of off")
    g.add_argument("--json", nargs="?", const="-", default=None,
                   metavar="PATH",
                   help="emit machine-readable results (to PATH, or "
                        "stdout when no PATH given)")
    parser.set_defaults(config_fields=fields)


def _config_from(args: argparse.Namespace) -> SimConfig:
    overrides: Dict[str, object] = {}
    for field in ("engine", "backend", "executor", "jobs", "seed",
                  "cycles", "stim", "batch", "checkpoint_every",
                  "max_wall_time"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "trace", False):
        overrides["trace"] = True
    parallel = getattr(args, "parallel", None)
    if parallel is not None:
        overrides["parallel"] = False if parallel == 0 else parallel
    return SimConfig(**overrides)


def _emit_json(args: argparse.Namespace, payload: object) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if args.json == "-":
        print(text)
    else:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.json}")


def _wrap(args: argparse.Namespace, result: object) -> Dict[str, object]:
    """The self-describing envelope every --json blob shares.  Only the
    config fields this subcommand exposes (and therefore threads into
    the run) are echoed -- the blob never claims a knob the run
    ignored."""
    full = args.sim_config.to_dict()
    return {"config": {k: full[k] for k in args.config_fields},
            "result": result}


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------
def cmd_list_scenarios(args) -> int:
    registry = get_registry()
    names = registry.names(args.tag)
    if not names:
        print(f"no scenarios tagged {args.tag!r} "
              f"(known tags: {', '.join(registry.tags())})",
              file=sys.stderr)
        return 1
    if args.json:
        payload = [
            {"name": s.name, "tags": sorted(s.tags),
             "description": s.description}
            for s in registry if s.name in set(names)
        ]
        _emit_json(args, payload)
        return 0
    width = max(len(n) for n in names) + 2
    for name in names:
        sc = registry.get(name)
        tags = ",".join(sorted(sc.tags))
        print(f"{name:{width}s} [{tags}]  {sc.description}")
    return 0


def cmd_run(args) -> int:
    import os
    import time

    from .api import _result_of
    from .errors import SimulationError

    config = args.sim_config
    if args.checkpoint_dir and not (config.checkpoint_every
                                    or args.resume_from):
        print("error: --checkpoint-dir needs --checkpoint-every (or "
              "$REPRO_CHECKPOINT_EVERY) to produce checkpoints",
              file=sys.stderr)
        return 2
    try:
        if args.resume_from:
            # resume a run from an on-disk checkpoint file: rebuild the
            # scenario deterministically, restore, simulate the tail
            from .rtl.snapshot import load_checkpoint

            snap = load_checkpoint(args.resume_from)
            if snap.scenario and snap.scenario != args.scenario:
                print(f"error: {args.resume_from} was checkpointed from "
                      f"scenario {snap.scenario!r}, not "
                      f"{args.scenario!r}", file=sys.stderr)
                return 2
            sim = get_registry().build(args.scenario, config)
            sim.restore(snap)
            resumed = sim.cycle
            t0 = time.perf_counter()
            if config.cycles > sim.cycle:
                sim.run(config.cycles - sim.cycle)
            elapsed = time.perf_counter() - t0
            result = _result_of(
                args.scenario, config, sim, config.cycles, elapsed,
                {"resumed_from": resumed,
                 "simulated_cycles": config.cycles - resumed})
        elif config.checkpoint_every:
            # checkpointed run: feed the process-wide store, and write
            # each checkpoint to --checkpoint-dir when asked so a fresh
            # process can resume it later
            from .rtl.snapshot import (
                get_checkpoint_store,
                prefix_key,
                resume_longest_prefix,
                run_with_checkpoints,
                save_checkpoint,
            )

            sim = get_registry().build(args.scenario, config)
            store = get_checkpoint_store()
            key = prefix_key(args.scenario, config, sim)

            def on_checkpoint(cycle, snap):
                if not args.checkpoint_dir:
                    return
                path = os.path.join(
                    args.checkpoint_dir,
                    f"{args.scenario}-c{cycle}-{key[:12]}.ckpt")
                save_checkpoint(path, snap)
                print(f"checkpoint: {path}", file=sys.stderr)

            t0 = time.perf_counter()
            resumed = resume_longest_prefix(sim, key, config.cycles, store)
            stored = run_with_checkpoints(
                sim, config.cycles, config.checkpoint_every, store=store,
                key=key, scenario=args.scenario,
                on_checkpoint=on_checkpoint)
            elapsed = time.perf_counter() - t0
            result = _result_of(
                args.scenario, config, sim, config.cycles, elapsed,
                {"resumed_from": resumed,
                 "simulated_cycles": config.cycles - resumed,
                 "checkpoints_stored": stored})
        else:
            result = Session(config).run(args.scenario)
    except (OSError, SimulationError) as exc:
        # unreadable/mismatched checkpoint files are user-input errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(args, result.to_dict(include_activity=args.activity,
                                        include_samples=args.samples))
        return 0
    print(f"scenario {result.scenario}: {result.cycles} cycles in "
          f"{result.seconds:.3f}s ({result.cycles_per_second:,.0f} "
          f"cycles/s)")
    print(f"  engine={config.engine} backend={config.backend} "
          f"seed={config.seed}")
    print(f"  total activity: {result.total_activity} toggles across "
          f"{len(result.activity)} wires, "
          f"{result.diagnostics['modules']} modules")
    if "resumed_from" in result.diagnostics:
        print(f"  resumed from cycle {result.diagnostics['resumed_from']} "
              f"({result.diagnostics['simulated_cycles']} simulated)")
    if result.trace is not None:
        print(result.trace)
    return 0


def cmd_sweep(args) -> int:
    config = args.sim_config
    seeds = None
    if args.seeds:
        seeds = range(config.seed, config.seed + args.seeds)
    results = Session(config).sweep(args.scenarios or None, tag=args.tag,
                                    seeds=seeds)
    if args.json:
        _emit_json(args, _wrap(args, {
            name: r.to_dict() for name, r in results.items()
        }))
        return 0
    total = 0
    for name, r in results.items():
        print(f"{name:18s} {r.cycles:6d} cycles  "
              f"{r.total_activity:10d} toggles")
        total += r.total_activity
    elapsed = next(iter(results.values())).seconds if results else 0.0
    print(f"swept {len(results)} scenarios in {elapsed:.3f}s "
          f"({total} toggles)")
    return 0


def cmd_bench(args) -> int:
    config = args.sim_config
    session = Session(config)
    rows = session.bench(args.scenarios or None, tag=args.tag,
                         warmup=args.warmup, repeats=args.repeats,
                         check=not args.no_check,
                         # the raw CLI value: bench defaults to serial
                         # measurement unless an executor is requested
                         executor=args.executor, jobs=args.jobs)
    if args.json:
        _emit_json(args, _wrap(args, rows))
    else:
        base = "brute/interp"
        conf = f"{config.engine}/{config.backend}"
        print(f"{'scenario':18s} {base + ' c/s':>16} {conf + ' c/s':>22} "
              f"{'speedup':>8}  equal")
        for r in rows:
            eq = {True: "yes", False: "NO", None: "-"}[r["equivalent"]]
            print(f"{r['scenario']:18s} "
                  f"{r['baseline']['cycles_per_second']:16.0f} "
                  f"{r['configured']['cycles_per_second']:22.0f} "
                  f"{r['speedup']:7.2f}x  {eq}")
        if len(rows) > 1:
            geo = statistics.geometric_mean(
                r["speedup"] for r in rows if r["speedup"] > 0)
            print(f"geomean speedup: {geo:.2f}x")
    bad = [r for r in rows if r["equivalent"] is False]
    if bad:
        print("ERROR: configured run diverges from baseline on: "
              + ", ".join(r["scenario"] for r in bad), file=sys.stderr)
        return 1
    return 0


def cmd_inject(args) -> int:
    from .errors import SimulationError
    from .server.client import JobFailed, ServerClient, ServerError

    config = args.sim_config
    extra = {key: getattr(args, key)
             for key in ("inject_seed", "tail_budget")
             if getattr(args, key) is not None}
    try:
        if args.server:
            host, _, port = args.server.rpartition(":")
            client = ServerClient(host or "127.0.0.1", int(port),
                                  timeout=args.timeout)
            try:
                record = client.submit(
                    args.scenario, kind="inject",
                    config=config.to_dict(), faults=args.faults, **extra)
                if record["state"] != "done":
                    record = client.wait(
                        record["id"], timeout=max(args.timeout, 120.0))
                result = client.result(record["id"])
            finally:
                client.close()
        else:
            result = Session(config).inject_campaign(
                args.scenario, faults=args.faults, **extra)
    except (OSError, SimulationError, ServerError, JobFailed) as exc:
        # TimeoutError is an OSError: a timed-out client path lands
        # here too, with the clear message ServerClient attached
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(args, _wrap(args, result))
        return 0
    golden = result["golden"]
    hist = result["histogram"]
    print(f"scenario {result['scenario']}: {result['faults']} faults "
          f"(inject seed {result['inject_seed']}), golden run "
          f"{golden['cycles']} cycles, tail budget "
          f"{result['tail_budget']}")
    print("  outcomes: " + "  ".join(f"{k}={hist[k]}" for k in hist))
    rows = sorted(result["table"].items(),
                  key=lambda kv: (-kv[1]["vulnerability"], kv[0]))
    shown = rows[:args.top]
    print(f"  most vulnerable sites (top {len(shown)}):")
    for site, row in shown:
        print(f"    {row['vulnerability']:7.2%}  {site}  "
              f"({row['faults']} faults: {row['sdc']} sdc, "
              f"{row['detected']} detected, {row['hang']} hang)")
    return 0


def cmd_table1(args) -> int:
    from .harness.table1 import format_table1

    config = args.sim_config
    rows = Session(config).table1(fast=args.fast)
    if args.json:
        _emit_json(args, _wrap(args, [
            {**row._asdict(), "area_overhead": row.area_overhead,
             "power_overhead": row.power_overhead}
            for row in rows
        ]))
        return 0
    print(format_table1(rows))
    return 0


def cmd_table2(args) -> int:
    config = args.sim_config
    cases = Session(config).table2()
    if args.json:
        _emit_json(args, _wrap(args, cases))
        return 0
    for name, case in cases.items():
        print(f"-- {name}: {case.get('issue', '(section 7.2)')}")
        for key, value in case.items():
            if key != "issue":
                print(f"   {key}: {value}")
    return 0


def cmd_figures(args) -> int:
    config = args.sim_config
    figures = Session(config).figures()
    if args.json:
        _emit_json(args, _wrap(args, figures))
        return 0
    for name, fig in figures.items():
        if isinstance(fig, dict):
            keys = ", ".join(sorted(fig))
            print(f"{name}: {keys}")
        else:
            print(f"{name}: {fig}")
    return 0


def cmd_appendix_a(args) -> int:
    config = args.sim_config
    report = Session(config).appendix_a(fast=args.fast)
    if args.json:
        _emit_json(args, _wrap(args, report))
        return 0
    anvil = report["anvil"]
    print(f"anvil typecheck: {anvil['verdict']} in "
          f"{anvil['seconds'] * 1000:.1f}ms (modular={anvil['modular']})")
    for side in ("bmc_full_width", "bmc_reduced_width"):
        r = report[side]
        print(f"{side}: {r['verdict']} after {r['states_explored']} "
              f"states / depth {r['depth_reached']} "
              f"in {r['seconds']:.2f}s")
    return 0


def cmd_serve(args) -> int:
    config = args.sim_config
    Session(config).serve(
        host=args.host, port=args.port, queue_depth=args.queue_depth,
        workers=args.workers, retry_after=args.retry_after,
        trace_depth=args.trace_buffer)
    return 0


# ---------------------------------------------------------------------------
# parser assembly
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified front end: scenarios, sweeps, benchmarks "
                    "and the paper harnesses over one SimConfig.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-scenarios",
                       help="enumerate the scenario registry")
    p.add_argument("--tag", default=None,
                   help="only scenarios carrying this tag")
    _add_config_options(p, fields=())
    p.set_defaults(fn=cmd_list_scenarios)

    p = sub.add_parser("run", help="run one registered scenario")
    p.add_argument("scenario", help="a registry name (see list-scenarios)")
    p.add_argument("--activity", action="store_true",
                   help="include per-wire toggle counts in --json output")
    p.add_argument("--samples", action="store_true",
                   help="include waveform samples in --json output")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   dest="checkpoint_dir",
                   help="write each --checkpoint-every boundary snapshot "
                        "to DIR as a .ckpt file (resumable from a fresh "
                        "process with --resume-from)")
    p.add_argument("--resume-from", default=None, metavar="PATH",
                   dest="resume_from",
                   help="restore a .ckpt checkpoint file into a fresh "
                        "deterministic rebuild and simulate only the "
                        "remaining cycles up to --cycles")
    _add_config_options(p, fields=RUN_FIELDS)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sweep", help="run scenarios as one batch sweep")
    p.add_argument("scenarios", nargs="*",
                   help="registry names (default: every non-sweep "
                        "scenario, or those matching --tag)")
    p.add_argument("--tag", default=None)
    p.add_argument("--seeds", type=int, default=0, metavar="N",
                   help="run each scenario under N consecutive seeds "
                        "(starting at --seed); combine with --batch M "
                        "to advance same-topology instances lock-step")
    _add_config_options(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "bench",
        help="benchmark the configured engine/backend vs the reference")
    p.add_argument("scenarios", nargs="*")
    p.add_argument("--tag", default=None)
    p.add_argument("--warmup", type=int, default=20)
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument("--no-check", action="store_true",
                   help="skip waveform/activity equivalence checks")
    _add_config_options(p, fields=BENCH_FIELDS)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "inject",
        help="seeded fault-injection campaign: fork N faults from warm "
             "prefix snapshots, classify masked/sdc/detected/hang")
    p.add_argument("scenario", help="a registry name (see list-scenarios)")
    p.add_argument("--faults", type=int, default=25, metavar="N",
                   help="number of faults to sample (default 25)")
    p.add_argument("--inject-seed", type=int, default=None,
                   dest="inject_seed", metavar="SEED",
                   help="fault-sampling RNG seed (default: --seed, so "
                        "the plan rides the stimulus seed)")
    p.add_argument("--tail-budget", type=int, default=None,
                   dest="tail_budget", metavar="CYCLES",
                   help="absolute cycle budget for each injected tail "
                        "before it classifies as a hang (default: "
                        "2x the golden run + 64)")
    p.add_argument("--top", type=int, default=8, metavar="N",
                   help="vulnerable sites to print (default 8)")
    p.add_argument("--server", default=None, metavar="HOST:PORT",
                   help="submit the campaign to a running repro server "
                        "instead of executing locally")
    p.add_argument("--timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="per-request socket timeout for --server calls "
                        "(default 60)")
    _add_config_options(p, fields=INJECT_FIELDS)
    p.set_defaults(fn=cmd_inject)

    p = sub.add_parser("table1", help="Table 1: area/power/fmax/latency")
    p.add_argument("--fast", action="store_true",
                   help="skip the activity simulations")
    _add_config_options(p, fields=HARNESS_FIELDS)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("table2", help="Table 2: hazard case studies")
    _add_config_options(p, fields=HARNESS_FIELDS)
    p.set_defaults(fn=cmd_table2)

    p = sub.add_parser("figures", help="Figures 1, 2, 4, 5, 6, 8")
    _add_config_options(p, fields=HARNESS_FIELDS)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("appendix-a",
                       help="Appendix A: typecheck vs BMC")
    p.add_argument("--fast", action="store_true",
                   help="shrink the BMC budgets (CI smoke)")
    _add_config_options(p, fields=("engine", "backend"))
    p.set_defaults(fn=cmd_appendix_a)

    p = sub.add_parser(
        "serve",
        help="serve the registry as a long-lived simulation service "
             "(HTTP job queue + WebSocket trace streams)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 picks a free one; default 8642)")
    p.add_argument("--queue-depth", type=int, default=16, metavar="N",
                   help="max queued (not yet running) jobs before "
                        "submissions get 429 backpressure (default 16)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="job worker threads sharing the process-wide "
                        "warm compile caches (default 2)")
    p.add_argument("--retry-after", type=float, default=1.0,
                   metavar="SECONDS",
                   help="Retry-After hint sent with 429 (default 1)")
    p.add_argument("--trace-buffer", type=int, default=4096, metavar="N",
                   help="per-job trace ring depth; slow WebSocket "
                        "consumers drop (and are told they dropped) "
                        "deltas beyond this (default 4096)")
    _add_config_options(p, fields=ALL_FIELDS)
    p.set_defaults(fn=cmd_serve)

    return parser


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # SIGTERM takes the same clean-exit path as Ctrl-C.  (The serve
        # subcommand swaps in its own loop-level handlers for a drained
        # shutdown; this covers every batch subcommand.)
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):
        pass                     # non-main thread or exotic platform
    try:
        # surface environment-variable garbage before any work starts
        from .rtl.batch import _env_parallel
        _env_parallel()
        args.sim_config = _config_from(args)
    except ValueError as exc:
        # SimConfig/environment validation errors are user-input errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return args.fn(args)
    except UnknownScenarioError as exc:
        # lookup misses name the known scenarios; anything else is a
        # real defect and should traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Ctrl-C / SIGTERM mid-run: a deliberate stop, not a defect --
        # exit with the conventional 130 and no traceback
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
