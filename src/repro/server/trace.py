"""Live trace streaming: a monitor tap on the simulator feeding a
bounded, shared delta ring.

The simulation runs on a job-queue worker *thread* (CPU-bound Python);
WebSocket clients live on the server's asyncio loop.  The bridge
between the two must never stall the simulation on a slow client and
must never grow memory per client, so it is built the other way around
from a per-client mailbox:

* :class:`TraceTap` registers as a ``Simulator.on_cycle`` monitor (this
  is also what cleanly disables the compiled cycle-kernel fast path --
  a streamed run takes the interpreted per-cycle path, which is the
  only path with a per-cycle hook).  Each cycle it computes the delta
  of every watched wire against the last emitted value plus the
  cumulative toggle count, and publishes it.
* :class:`TraceHub` keeps the deltas in one bounded ring shared by all
  subscribers.  Publishing is append-and-evict -- O(1), no waiting --
  so the simulation thread never blocks.
* :class:`TraceSubscription` is a cursor into the ring plus a wakeup
  event on the subscriber's asyncio loop.  A client that falls behind
  by more than the ring depth loses the evicted deltas: its ``dropped``
  counter records exactly how many, and the stream's end frame flags
  the loss instead of silently pretending completeness.  Late
  subscribers replay whatever the ring still holds, so streams opened
  after a job finished still see its (tail of) history.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple


class TraceTap:
    """Per-cycle waveform/activity delta emitter (a simulator monitor).

    Attach with ``sim.on_cycle(tap)`` before the run and detach with
    ``sim.remove_monitor(tap)`` after; each call publishes::

        {"type": "delta", "cycle": c,
         "changes": {label: new_value, ...},   # watched wires that moved
         "activity": total_toggles_so_far}
    """

    def __init__(self, sim, hub: "TraceHub"):
        self._sim = sim
        self._hub = hub
        self._last: Dict[str, int] = {}

    def __call__(self, cycle: int) -> None:
        changes: Dict[str, int] = {}
        last = self._last
        for label, wire, _series in self._sim.waveform._watched:
            value = wire.value
            if last.get(label) != value:
                changes[label] = value
                last[label] = value
        self._hub.publish({
            "type": "delta",
            "cycle": cycle,
            "changes": changes,
            "activity": self._sim.total_activity(),
        })


class TraceSubscription:
    """One client's cursor into a hub's ring, with an asyncio wakeup."""

    def __init__(self, hub: "TraceHub", loop: asyncio.AbstractEventLoop):
        self._hub = hub
        self._loop = loop
        self._event = asyncio.Event()
        # replay from the very first delta: anything already evicted is
        # counted as dropped, so a late subscriber is *told* what the
        # retained tail omits instead of silently starting mid-stream
        self.cursor = 0
        self.dropped = 0

    def _wake(self) -> None:
        self._event.set()

    async def deltas(self):
        """Yield deltas in order until the hub closes and the cursor
        catches up.  Evicted-past deltas are skipped and counted in
        ``dropped``; the generator itself never blocks the producer."""
        hub = self._hub
        while True:
            self._event.clear()
            batch, self.cursor, lost = hub.read_from(self.cursor)
            self.dropped += lost
            for delta in batch:
                yield delta
            if hub.closed and self.cursor >= hub.next_seq():
                return
            await self._event.wait()


class TraceHub:
    """A bounded, thread-safe delta ring with asyncio subscribers.

    ``depth`` bounds total retained deltas (the per-client buffer bound:
    every subscriber reads through this one window).  The producer side
    (:meth:`publish`, :meth:`close`) is called from the simulation
    worker thread; the consumer side (:meth:`subscribe`,
    :meth:`read_from`) from the server's asyncio loop.
    """

    def __init__(self, depth: int = 4096):
        if depth < 1:
            raise ValueError(f"trace ring depth must be >= 1, got {depth}")
        self._lock = threading.Lock()
        self._buf: List[dict] = []
        self._base = 0            # sequence number of _buf[0]
        self._next = 0            # sequence number the next delta gets
        self._depth = depth
        self._subs: List[TraceSubscription] = []
        self.closed = False
        self.end: Optional[dict] = None

    # -- producer side (worker thread) ---------------------------------
    def publish(self, delta: dict) -> None:
        with self._lock:
            if self.closed:
                return
            self._buf.append(delta)
            self._next += 1
            overflow = len(self._buf) - self._depth
            if overflow > 0:
                del self._buf[:overflow]
                self._base += overflow
            subs = list(self._subs)
        self._wake_all(subs)

    def close(self, **end_info) -> None:
        """Mark the stream finished; ``end_info`` lands in the shared
        end record each client's final frame is built from."""
        with self._lock:
            if self.closed:
                return
            self.end = {"type": "end", **end_info}
            self.closed = True
            subs = list(self._subs)
        self._wake_all(subs)

    @staticmethod
    def _wake_all(subs: List[TraceSubscription]) -> None:
        for sub in subs:
            try:
                sub._loop.call_soon_threadsafe(sub._wake)
            except RuntimeError:
                pass             # subscriber's loop already shut down

    # -- consumer side (asyncio loop) ----------------------------------
    def subscribe(self, loop: Optional[asyncio.AbstractEventLoop] = None
                  ) -> TraceSubscription:
        loop = loop or asyncio.get_event_loop()
        sub = TraceSubscription(self, loop)
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: TraceSubscription) -> None:
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)

    def read_from(self, cursor: int) -> Tuple[List[dict], int, int]:
        """``(batch, new_cursor, lost)``: everything retained at or
        after ``cursor``, the cursor to resume from, and how many deltas
        between the old cursor and the batch were already evicted."""
        with self._lock:
            lost = max(0, self._base - cursor)
            start = max(cursor, self._base) - self._base
            batch = self._buf[start:]
            return batch, self._next, lost

    def oldest_seq(self) -> int:
        with self._lock:
            return self._base

    def next_seq(self) -> int:
        with self._lock:
            return self._next

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "depth": self._depth,
                "retained": len(self._buf),
                "published": self._next,
                "subscribers": len(self._subs),
            }
