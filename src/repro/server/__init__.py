"""``repro.server`` -- the long-lived simulation service.

A stdlib-only asyncio subsystem that turns the one-shot
``Session``/``ScenarioRegistry`` API into a serving architecture:

* :mod:`~repro.server.app` -- HTTP endpoints (browse the registry,
  submit run/sweep/bench jobs, poll, fetch structured results) plus
  WebSocket trace streaming, all over asyncio streams.
* :mod:`~repro.server.jobs` -- a bounded job queue with explicit 429
  backpressure, thread workers sharing the process-wide warm pysim and
  cycle-kernel compile caches, and a content-addressed result cache
  that makes repeated submissions O(1).
* :mod:`~repro.server.trace` -- the per-cycle waveform/activity delta
  tap and the bounded ring that fans deltas out to WebSocket clients
  without ever stalling the simulation.
* :mod:`~repro.server.client` -- a small blocking client (tests,
  examples, CI smoke).

Start one with ``python -m repro serve``, ``Session().serve()``, or
directly::

    from repro.server import ReproServer, ServerClient

    with ReproServer(port=0).start_in_thread() as server:
        client = ServerClient(port=server.port)
        result = client.run("streams", cycles=256)
"""

from .app import ReproServer
from .client import JobFailed, ServerBusy, ServerClient, ServerError
from .jobs import Backpressure, BadSubmission, Job, JobQueue, ResultCache
from .trace import TraceHub, TraceSubscription, TraceTap

__all__ = [
    "ReproServer",
    "ServerClient",
    "ServerError",
    "ServerBusy",
    "JobFailed",
    "JobQueue",
    "Job",
    "Backpressure",
    "BadSubmission",
    "ResultCache",
    "TraceHub",
    "TraceSubscription",
    "TraceTap",
]
