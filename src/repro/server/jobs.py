"""The server's job engine: a bounded queue, a thread worker pool over
the process-wide warm compile caches, and a content-addressed result
cache.

Why threads, not processes: the whole point of a long-lived service is
that compile work survives across requests.  The pysim and cycle-kernel
caches (:mod:`repro.codegen.pysim`, :mod:`repro.rtl.kernel`) are
process-global and lock-guarded, so worker *threads* all hit one warm
cache -- the second submission of any topology compiles nothing.  (The
GIL serializes the simulation itself, but jobs still overlap their
pure-Python phases, and a ``sweep`` job may itself fan out on the
``process`` executor for real multi-core work.)

Backpressure is explicit: the queue holds at most ``depth`` not-yet-
started jobs; a submission beyond that raises :class:`Backpressure`,
which the HTTP layer translates into ``429`` + ``Retry-After``.  The
server never accepts unbounded work.

Results are cached at two levels, both keyed by content:

* **submit key** -- SHA-256 of (kind, scenario, canonical config JSON).
  A repeat submission of a finished run is answered without building or
  running anything: O(1), zero recompiles.
* **content key** -- SHA-256 of (topology fingerprint, result-relevant
  config, stimulus hash), computed after elaboration.  The topology
  fingerprint is the cycle-kernel source digest
  (:func:`repro.rtl.kernel.topology_shape`) when the topology has one
  -- a pure function of the topology shape, stable across builds and
  processes -- and the stimulus hash covers (scenario, seed, stim),
  which the builders are deterministic in.  Engine and backend are
  deliberately *excluded*: the repo's equivalence suites pin every
  engine x backend pair bit-identical, so a result computed under one
  pair serves a submission under another (the hit is flagged in the
  result's diagnostics, with the pair that actually computed it).

Identical in-flight submissions coalesce onto one queued/running job --
eight clients asking for the same run occupy one queue slot and pay one
simulation.  This is the first slice of the ROADMAP's incremental-
resimulation item: repeated requests are O(1) cache hits.

Underneath the result cache sits the snapshot tier
(:mod:`repro.rtl.snapshot`): the queue shares the process-wide
:class:`~repro.rtl.snapshot.CheckpointStore` with direct
``Session.run``/``sweep`` callers, the prefix keys reuse the same
topology-fingerprint + stimulus-hash derivation as the content keys
above, and run submissions accept ``from_cycle`` -- the job restores
the deepest checkpoint at or below that cycle for its (topology,
stimulus) and simulates only the tail, which is what lets clients fork
divergent runs from a shared prefix.  Streamed resumed runs publish
absolute cycle numbers (the trace tap reads ``sim.cycle``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import queue
import threading
import time
import traceback as traceback_mod
from typing import Dict, List, Optional

from ..api import (
    RunResult,
    Session,
    SimConfig,
    _result_of,
    get_registry,
)
from ..codegen import pysim
from ..rtl import kernel
from ..rtl.simulator import run_guarded
from ..rtl.snapshot import (
    get_checkpoint_store,
    prefix_key,
    resume_longest_prefix,
    run_with_checkpoints,
    stimulus_key,
    topology_key,
)
from .trace import TraceHub, TraceTap

#: job lifecycle states, in order
STATES = ("queued", "running", "done", "failed", "cancelled")

#: submission kinds the queue understands
KINDS = ("run", "sweep", "bench", "inject")


class Backpressure(RuntimeError):
    """The bounded queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, retry_after: float):
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({depth} queued job(s)); "
            f"retry after {retry_after:g}s"
        )


class BadSubmission(ValueError):
    """A submission payload the queue refuses (unknown kind/scenario,
    invalid config overrides, wrong field types)."""


_JOB_IDS = itertools.count(1)


class Job:
    """One submitted unit of work and its lifecycle record."""

    __slots__ = (
        "id", "kind", "scenario", "scenarios", "tag", "seeds", "config",
        "stream", "hub", "params", "state", "error", "traceback",
        "result", "cached", "submit_key", "content_key", "submitted",
        "started", "finished",
    )

    def __init__(self, kind: str, config: SimConfig,
                 scenario: Optional[str] = None,
                 scenarios: Optional[List[str]] = None,
                 tag: Optional[str] = None, seeds: Optional[int] = None,
                 stream: bool = False, trace_depth: int = 4096,
                 params: Optional[Dict[str, object]] = None):
        self.id = f"job-{next(_JOB_IDS)}"
        self.kind = kind
        self.scenario = scenario
        self.scenarios = scenarios
        self.tag = tag
        self.seeds = seeds
        self.config = config
        self.stream = stream
        self.hub = TraceHub(depth=trace_depth) if stream else None
        self.params = params or {}
        self.state = "queued"
        self.error: Optional[str] = None
        self.traceback: Optional[str] = None   # full worker traceback
        self.result = None           # RunResult (run) or plain data
        self.cached: Optional[str] = None      # None | "submit" | "content"
        self.submit_key = self._submit_key()
        self.content_key: Optional[str] = None
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None

    def _submit_key(self) -> str:
        material = json.dumps({
            "kind": self.kind,
            "scenario": self.scenario,
            "scenarios": self.scenarios,
            "tag": self.tag,
            "seeds": self.seeds,
            "config": self.config.to_json(),
            "params": self.params,
        }, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    @property
    def finished_state(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def record(self, include_result: bool = False) -> Dict[str, object]:
        """The job's wire form (the ``GET /jobs/<id>`` body)."""
        out: Dict[str, object] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "stream": self.stream,
            "cached": self.cached,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
        }
        if self.kind != "run":
            out["scenarios"] = self.scenarios
            out["tag"] = self.tag
            out["seeds"] = self.seeds
        if self.error is not None:
            out["error"] = self.error
        if self.traceback is not None:
            out["traceback"] = self.traceback
        if include_result and self.state == "done":
            out["result"] = self.result_payload()
        return out

    def result_payload(self):
        """The JSON-ready result body: the pinned
        :meth:`~repro.api.RunResult.to_dict` schema for run jobs, the
        already-structured rows/maps for sweep/bench."""
        if isinstance(self.result, RunResult):
            return self.result.to_dict(include_activity=True,
                                       include_samples=True)
        return self.result


class ResultCache:
    """Content-addressed finished-run storage (run-kind jobs only).

    Stored results are detached (``sim=None``) so the cache holds
    sampled data, not live module graphs.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._by_submit: Dict[str, str] = {}
        self._by_content: Dict[str, RunResult] = {}
        self._hits = 0
        self._content_hits = 0
        self._misses = 0

    def lookup_submit(self, submit_key: str) -> Optional[RunResult]:
        with self._lock:
            content_key = self._by_submit.get(submit_key)
            if content_key is None:
                self._misses += 1
                return None
            self._hits += 1
            return self._by_content[content_key]

    def lookup_content(self, submit_key: str, content_key: str
                       ) -> Optional[RunResult]:
        with self._lock:
            hit = self._by_content.get(content_key)
            if hit is not None:
                self._content_hits += 1
                self._by_submit[submit_key] = content_key
            return hit

    def store(self, submit_key: str, content_key: str,
              result: RunResult) -> None:
        detached = dataclasses.replace(result, sim=None)
        with self._lock:
            self._by_content.setdefault(content_key, detached)
            self._by_submit[submit_key] = content_key

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "content_hits": self._content_hits,
                "misses": self._misses,
                "entries": len(self._by_content),
                "submit_keys": len(self._by_submit),
            }


class JobQueue:
    """Bounded submissions, thread workers, shared warm caches."""

    def __init__(self, config: Optional[SimConfig] = None,
                 depth: int = 16, workers: int = 2,
                 retry_after: float = 1.0, trace_depth: int = 4096):
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self.config = config if config is not None else SimConfig()
        self.depth = depth
        self.retry_after = retry_after
        self.trace_depth = trace_depth
        self.cache = ResultCache()
        # the snapshot tier under the result cache: the process-wide
        # store, shared with direct Session.run/sweep callers
        self.checkpoints = get_checkpoint_store()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._inflight: Dict[str, Job] = {}    # submit_key -> live run job
        self._queued = 0
        self._coalesced = 0
        self._accepting = False
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"repro-job-worker-{i}")
            for i in range(workers)
        ]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "JobQueue":
        self._accepting = True
        for worker in self._workers:
            worker.start()
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> Dict[str, int]:
        """Stop accepting, cancel everything still queued, and (when
        ``drain``) wait for running jobs to finish.  Returns
        ``{"cancelled": n, "drained": m}`` for the shutdown log line."""
        with self._lock:
            self._accepting = False
            cancelled = 0
            for job in self._jobs.values():
                if job.state == "queued":
                    job.state = "cancelled"
                    job.finished = time.time()
                    self._inflight.pop(job.submit_key, None)
                    cancelled += 1
            running = sum(1 for j in self._jobs.values()
                          if j.state == "running")
        for _ in self._workers:
            self._queue.put(None)
        if drain:
            deadline = None if timeout is None else time.time() + timeout
            for worker in self._workers:
                if not worker.is_alive():
                    continue
                remaining = None if deadline is None \
                    else max(0.0, deadline - time.time())
                worker.join(remaining)
        return {"cancelled": cancelled, "drained": running}

    # -- submission ----------------------------------------------------
    def submit(self, payload: Dict[str, object]) -> Job:
        """Validate and accept one submission; returns the (possibly
        shared or already-done) job.  Raises :class:`BadSubmission` on
        malformed payloads and :class:`Backpressure` when full."""
        job = self._job_from(payload)
        with self._lock:
            if not self._accepting:
                raise Backpressure(self.depth, self.retry_after)
            if job.kind == "run" and not job.stream:
                cached = self.cache.lookup_submit(job.submit_key)
                if cached is not None:
                    job.state = "done"
                    job.cached = "submit"
                    job.started = job.finished = time.time()
                    job.result = self._annotated(cached, job.config,
                                                 "submit")
                    self._remember(job)
                    return job
            if job.kind == "run":
                existing = self._inflight.get(job.submit_key)
                if existing is not None and (existing.stream
                                             or not job.stream):
                    # identical work already queued/running: share it
                    # (a stream request needs a hub, so it only shares
                    # a job that has one)
                    self._coalesced += 1
                    return existing
            if self._queued >= self.depth:
                raise Backpressure(self.depth, self.retry_after)
            self._queued += 1
            self._remember(job)
            if job.kind == "run":
                self._inflight[job.submit_key] = job
        self._queue.put(job)
        return job

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._order.append(job.id)

    def _job_from(self, payload: Dict[str, object]) -> Job:
        if not isinstance(payload, dict):
            raise BadSubmission(
                f"submission must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        kind = payload.get("kind", "run")
        if kind not in KINDS:
            raise BadSubmission(
                f"unknown job kind {kind!r}: known kinds are "
                + ", ".join(repr(k) for k in KINDS)
            )
        overrides = payload.get("config") or {}
        if not isinstance(overrides, dict):
            raise BadSubmission("config must be an object of SimConfig "
                                "field overrides")
        cycles = payload.get("cycles")
        if cycles is not None:
            overrides = {**overrides, "cycles": cycles}
        try:
            config = self.config.replace(**overrides)
        except (TypeError, ValueError) as exc:
            raise BadSubmission(f"bad config override: {exc}")
        stream = bool(payload.get("stream", False))
        trace_depth = payload.get("trace_buffer", self.trace_depth)
        if not isinstance(trace_depth, int) or isinstance(trace_depth, bool) \
                or trace_depth < 1:
            raise BadSubmission(
                f"trace_buffer must be a positive int, got {trace_depth!r}"
            )
        scenario = payload.get("scenario")
        scenarios = payload.get("scenarios")
        tag = payload.get("tag")
        seeds = payload.get("seeds")
        params = {}
        if kind == "run":
            if not isinstance(scenario, str) or not scenario:
                raise BadSubmission("run jobs need a scenario name")
            registry = get_registry()
            if scenario not in registry:
                try:
                    registry.get(scenario)   # raises with suggestions
                except KeyError as exc:
                    raise BadSubmission(str(exc.args[0]))
            from_cycle = payload.get("from_cycle")
            if from_cycle is not None:
                if not isinstance(from_cycle, int) \
                        or isinstance(from_cycle, bool) or from_cycle < 0:
                    raise BadSubmission(
                        f"from_cycle must be a non-negative int, got "
                        f"{from_cycle!r}"
                    )
                if from_cycle >= config.cycles:
                    raise BadSubmission(
                        f"from_cycle {from_cycle} must be below the "
                        f"run's cycle count {config.cycles} (nothing "
                        f"would be simulated)"
                    )
                params["from_cycle"] = from_cycle
        elif kind == "inject":
            if stream:
                raise BadSubmission(
                    "trace streaming applies to run jobs only, not "
                    "'inject' (a campaign runs many forked tails, not "
                    "one waveform)"
                )
            if not isinstance(scenario, str) or not scenario:
                raise BadSubmission("inject jobs need a scenario name")
            registry = get_registry()
            if scenario not in registry:
                try:
                    registry.get(scenario)   # raises with suggestions
                except KeyError as exc:
                    raise BadSubmission(str(exc.args[0]))
            faults = payload.get("faults", 25)
            if not isinstance(faults, int) or isinstance(faults, bool) \
                    or faults < 1:
                raise BadSubmission(
                    f"faults must be a positive int, got {faults!r}")
            params["faults"] = faults
            for key in ("inject_seed", "tail_budget"):
                value = payload.get(key)
                if value is None:
                    continue
                if not isinstance(value, int) or isinstance(value, bool) \
                        or (key == "tail_budget" and value < 1):
                    raise BadSubmission(
                        f"{key} must be an int"
                        + (" >= 1" if key == "tail_budget" else "")
                        + f", got {value!r}")
                params[key] = value
        else:
            if stream:
                raise BadSubmission(
                    f"trace streaming applies to run jobs only, not "
                    f"{kind!r} (sweeps and benches have no single "
                    f"per-cycle waveform)"
                )
            if scenarios is not None and not (
                    isinstance(scenarios, list)
                    and all(isinstance(s, str) for s in scenarios)):
                raise BadSubmission("scenarios must be a list of names")
            if seeds is not None and (
                    not isinstance(seeds, int) or isinstance(seeds, bool)
                    or seeds < 1):
                raise BadSubmission(
                    f"seeds must be a positive int, got {seeds!r}")
            if kind == "bench":
                for key in ("warmup", "repeats"):
                    if key in payload:
                        value = payload[key]
                        if not isinstance(value, int) \
                                or isinstance(value, bool) or value < 0:
                            raise BadSubmission(
                                f"{key} must be a non-negative int, "
                                f"got {value!r}")
                        params[key] = value
        return Job(kind=kind, config=config, scenario=scenario,
                   scenarios=scenarios, tag=tag, seeds=seeds,
                   stream=stream, trace_depth=trace_depth, params=params)

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job; running jobs cannot be preempted (the
        caller answers 409 for those)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                return job
            job.state = "cancelled"
            job.finished = time.time()
            self._queued -= 1
            if self._inflight.get(job.submit_key) is job:
                del self._inflight[job.submit_key]
            return job

    def stats(self) -> Dict[str, object]:
        with self._lock:
            states: Dict[str, int] = {state: 0 for state in STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "depth": self.depth,
                "queued": self._queued,
                "workers": len(self._workers),
                "states": states,
                "coalesced": self._coalesced,
                "result_cache": self.cache.stats(),
                "checkpoints": self.checkpoints.stats(),
                "compile_caches": {
                    "pysim": pysim.cache_stats(),
                    "kernel": kernel.cache_stats(),
                },
            }

    # -- execution (worker threads) ------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                if job.state != "queued":
                    continue                 # cancelled while queued
                self._queued -= 1
                job.state = "running"
                job.started = time.time()
            try:
                self._execute(job)
                job.state = "done"
            except Exception as exc:     # report, never kill the worker
                job.error = f"{type(exc).__name__}: {exc}"
                # the full traceback rides along in the job record so a
                # remote client can diagnose an unexpected worker crash
                # without access to the server's logs
                job.traceback = traceback_mod.format_exc()
                job.state = "failed"
            finally:
                job.finished = time.time()
                with self._lock:
                    if self._inflight.get(job.submit_key) is job:
                        del self._inflight[job.submit_key]
                if job.hub is not None:
                    job.hub.close(cycles=job.config.cycles,
                                  state=job.state, error=job.error)

    def _execute(self, job: Job) -> None:
        if job.kind == "run":
            self._execute_run(job)
        elif job.kind == "inject":
            session = Session(job.config)
            job.result = session.inject_campaign(
                job.scenario,
                faults=job.params.get("faults", 25),
                inject_seed=job.params.get("inject_seed"),
                tail_budget=job.params.get("tail_budget"))
        elif job.kind == "sweep":
            session = Session(job.config)
            results = session.sweep(
                job.scenarios or None, tag=job.tag,
                seeds=None if not job.seeds else range(
                    job.config.seed, job.config.seed + job.seeds))
            job.result = {
                name: r.to_dict(include_activity=True)
                for name, r in results.items()
            }
        else:                            # bench
            session = Session(job.config)
            job.result = session.bench(
                job.scenarios or None, tag=job.tag,
                warmup=job.params.get("warmup", 20),
                repeats=job.params.get("repeats", 1))

    def _execute_run(self, job: Job) -> None:
        cfg = job.config
        sim = get_registry().build(job.scenario, cfg)
        job.content_key = self._content_key(job, sim)
        if not job.stream:
            # from_cycle is deliberately absent from the content key: a
            # resumed run is bit-identical to the from-0 run, so either
            # answers the other
            cached = self.cache.lookup_content(job.submit_key,
                                               job.content_key)
            if cached is not None:
                job.cached = "content"
                job.result = self._annotated(cached, cfg, "content")
                return
        from_cycle = job.params.get("from_cycle")
        every = cfg.checkpoint_every
        extra = None
        resumed = 0
        key = None
        if from_cycle is not None or every:
            key = prefix_key(job.scenario, cfg, sim)
            limit = cfg.cycles if from_cycle is None else from_cycle
            resumed = resume_longest_prefix(sim, key, limit,
                                            self.checkpoints)
            extra = {"resumed_from": resumed,
                     "simulated_cycles": cfg.cycles - resumed}
        tap = None
        if job.hub is not None:
            # attached after the restore: a resumed stream begins at the
            # restored boundary and publishes absolute cycle numbers
            tap = TraceTap(sim, job.hub)
            sim.on_cycle(tap)
        t0 = time.perf_counter()
        if every:
            run_with_checkpoints(sim, cfg.cycles, every,
                                 store=self.checkpoints, key=key,
                                 scenario=job.scenario,
                                 max_wall_time=cfg.max_wall_time)
        elif cfg.cycles > sim.cycle:
            run_guarded(sim, cfg.cycles - sim.cycle, cfg.max_wall_time)
        elapsed = time.perf_counter() - t0
        if tap is not None:
            sim.remove_monitor(tap)
        job.result = _result_of(job.scenario, cfg, sim, cfg.cycles,
                                elapsed, extra)
        self.cache.store(job.submit_key, job.content_key, job.result)

    @staticmethod
    def _content_key(job: Job, sim) -> str:
        """The content address of a run: topology fingerprint x
        result-relevant config x stimulus hash, derived through the
        same :mod:`repro.rtl.snapshot` helpers the checkpoint tier's
        prefix keys use.  Engine/backend/executor knobs are excluded --
        results are pinned bit-identical across them -- so submissions
        differing only in those share one entry."""
        cfg = job.config
        material = json.dumps(
            ["run", topology_key(job.scenario, cfg, sim),
             stimulus_key(job.scenario, cfg), cfg.cycles, cfg.trace],
            separators=(",", ":"))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    @staticmethod
    def _annotated(cached: RunResult, config: SimConfig,
                   level: str) -> RunResult:
        """A cache hit re-labelled for its requester: the requesting
        config is echoed, and the diagnostics say which cache level
        answered and which engine/backend pair actually computed the
        result (they may differ from the request on a content hit)."""
        return dataclasses.replace(
            cached, config=config,
            diagnostics={
                **cached.diagnostics,
                "result_cache": level,
                "computed_by": {
                    "engine": cached.config.engine,
                    "backend": cached.config.backend,
                },
            })
