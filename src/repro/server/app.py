"""The asyncio front end: HTTP routes over the job queue, WebSocket
trace streams over the hubs.

One :class:`ReproServer` owns one :class:`~repro.server.jobs.JobQueue`
(and through it the process-wide warm compile caches) and serves:

======  =========================  ==========================================
method  path                       answer
======  =========================  ==========================================
GET     /health                    liveness + version + registry size
GET     /scenarios                 registered scenarios (``?tag=`` filters)
GET     /scenarios/<name>          one scenario's tags/description/defaults
POST    /jobs                      submit run/sweep/bench (202; 200 cached;
                                   429 + Retry-After when the queue is full).
                                   Run jobs accept ``from_cycle``: the job
                                   restores the deepest checkpoint at or
                                   below that cycle for its (topology,
                                   stimulus) prefix and simulates only the
                                   tail -- submitting several tails against
                                   one checkpointed prefix forks divergent
                                   runs from cycle k.  Checkpoints come from
                                   earlier jobs run with
                                   ``config.checkpoint_every``
GET     /jobs                      every job's lifecycle record
GET     /jobs/<id>                 one job's record
GET     /jobs/<id>/result          finished result (409 until done)
DELETE  /jobs/<id>                 cancel a queued job (409 if running)
GET     /jobs/<id>/trace           WebSocket upgrade: live delta stream
GET     /stats                     queue/cache/trace statistics
======  =========================  ==========================================

All request handling is async and tiny; every heavy operation happens on
the queue's worker threads.  The server can run three ways -- blocking
(:meth:`serve_forever`, the CLI path, with signal-driven graceful
shutdown), embedded in a host loop (:meth:`start`/:meth:`stop`), or on a
daemon thread (:meth:`start_in_thread`/:meth:`close`, the tests' and
``Session.serve(background=True)`` path).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import Optional

from ..api import SimConfig, get_registry
from .jobs import Backpressure, BadSubmission, JobQueue
from .protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    ProtocolError,
    Request,
    json_response,
    read_request,
    ws_close,
    ws_frame,
    ws_handshake_response,
    ws_read_frame,
    ws_text,
)


class ReproServer:
    """The long-lived simulation service."""

    def __init__(self, config: Optional[SimConfig] = None,
                 host: str = "127.0.0.1", port: int = 8642,
                 queue_depth: int = 16, workers: int = 2,
                 retry_after: float = 1.0, trace_depth: int = 4096):
        self.host = host
        self.port = port
        self.queue = JobQueue(config=config, depth=queue_depth,
                              workers=workers, retry_after=retry_after,
                              trace_depth=trace_depth)
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._shutdown_summary = {"cancelled": 0, "drained": 0}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "ReproServer":
        """Bind and start serving on the running loop (non-blocking).
        ``port=0`` picks a free port; ``self.port`` holds the real one
        after this returns."""
        self._loop = asyncio.get_running_loop()
        self.queue.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, drain: bool = True) -> dict:
        """Stop accepting connections, cancel queued jobs and (when
        ``drain``) wait for running ones off-loop.  Returns the
        cancelled/drained counts for the shutdown log line."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # idle keep-alive connections would outlive the loop otherwise
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, lambda: self.queue.shutdown(drain=drain))
        self._shutdown_summary = summary
        return summary

    def serve_forever(self) -> dict:
        """Run until SIGINT/SIGTERM, then drain and report -- the
        ``python -m repro serve`` path."""
        async def _main():
            await self.start()
            print(f"repro.server listening on "
                  f"http://{self.host}:{self.port} "
                  f"({len(get_registry())} scenarios, "
                  f"{len(self.queue._workers)} workers, "
                  f"queue depth {self.queue.depth})", flush=True)
            stop_event = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop_event.set)
                except (NotImplementedError, RuntimeError):
                    pass         # non-main thread or exotic platform
            await stop_event.wait()
            return await self.stop(drain=True)

        summary = asyncio.run(_main())
        print(f"repro.server: shut down cleanly "
              f"({summary['drained']} running job(s) drained, "
              f"{summary['cancelled']} queued job(s) cancelled)",
              file=sys.stderr, flush=True)
        return summary

    def start_in_thread(self) -> "ReproServer":
        """Start on a fresh loop on a daemon thread; returns once the
        socket is bound (so ``self.port`` is usable immediately)."""
        ready = threading.Event()
        failure: list = []

        def _run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except Exception as exc:
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        return self

    def close(self, drain: bool = True) -> None:
        """Shut down a :meth:`start_in_thread` server and join it."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            self.queue.shutdown(drain=drain)
            return
        future = asyncio.run_coroutine_threadsafe(
            self.stop(drain=drain), loop)
        future.result(timeout=60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        self._thread = None

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(json_response(400, {"error": str(exc)}))
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._serve_trace(request, reader, writer)
                    break        # a websocket consumes the connection
                try:
                    status, payload, extra = self._dispatch(request)
                except Backpressure as exc:
                    status, payload = 429, {
                        "error": str(exc),
                        "retry_after": exc.retry_after,
                    }
                    extra = (("Retry-After",
                              f"{max(1, round(exc.retry_after))}"),)
                except (BadSubmission, ProtocolError) as exc:
                    status, payload, extra = 400, {"error": str(exc)}, ()
                except KeyError as exc:   # includes UnknownScenarioError
                    status, payload, extra = (
                        404, {"error": str(exc.args[0]) if exc.args
                              else str(exc)}, ())
                writer.write(json_response(status, payload,
                                           extra_headers=extra))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    RuntimeError):
                pass

    # -- routing -------------------------------------------------------
    def _dispatch(self, request: Request):
        """Route one plain-HTTP request; returns (status, payload,
        extra_headers)."""
        method, parts = request.method, request.parts
        if parts == ("health",) and method == "GET":
            return 200, {
                "status": "ok",
                "scenarios": len(get_registry()),
                "queue": {"depth": self.queue.depth},
            }, ()
        if parts == ("scenarios",) and method == "GET":
            return 200, self._scenarios_payload(
                request.query.get("tag")), ()
        if len(parts) == 2 and parts[0] == "scenarios" and method == "GET":
            return 200, self._scenario_payload(parts[1]), ()
        if parts == ("jobs",):
            if method == "POST":
                return self._submit(request)
            if method == "GET":
                return 200, {
                    "jobs": [j.record() for j in self.queue.jobs()],
                }, ()
            return 405, {"error": f"{method} not allowed on /jobs"}, ()
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.queue.get(parts[1])
            if job is None:
                return 404, {"error": f"unknown job {parts[1]!r}"}, ()
            if len(parts) == 2:
                if method == "GET":
                    return 200, job.record(), ()
                if method == "DELETE":
                    job = self.queue.cancel(job.id)
                    if job.state == "running":
                        return 409, {
                            "error": f"job {job.id} is running and "
                                     "cannot be cancelled",
                            "state": job.state,
                        }, ()
                    return 200, job.record(), ()
                return 405, {
                    "error": f"{method} not allowed on /jobs/<id>"}, ()
            if parts[2] == "result" and method == "GET":
                if job.state != "done":
                    return 409, {
                        "error": f"job {job.id} is {job.state}, "
                                 "result not available",
                        "state": job.state,
                        "job": job.record(),
                    }, ()
                return 200, {
                    "kind": job.kind,
                    "cached": job.cached,
                    "result": job.result_payload(),
                }, ()
        if parts == ("stats",) and method == "GET":
            return 200, self.queue.stats(), ()
        return 404, {"error": f"no route for {method} {request.path}"}, ()

    def _submit(self, request: Request):
        payload = request.json()
        job = self.queue.submit(payload)
        status = 200 if job.state == "done" else 202
        return status, job.record(), ()

    @staticmethod
    def _scenarios_payload(tag: Optional[str]) -> dict:
        registry = get_registry()
        return {
            "scenarios": [
                {
                    "name": sc.name,
                    "tags": sorted(sc.tags),
                    "description": sc.description,
                }
                for sc in registry
                if tag is None or tag in sc.tags
            ],
            "tags": registry.tags(),
        }

    @staticmethod
    def _scenario_payload(name: str) -> dict:
        sc = get_registry().get(name)      # raises UnknownScenarioError
        return {
            "name": sc.name,
            "tags": sorted(sc.tags),
            "description": sc.description,
        }

    # -- websocket trace streaming -------------------------------------
    async def _serve_trace(self, request: Request,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        parts = request.parts
        if len(parts) != 3 or parts[0] != "jobs" or parts[2] != "trace":
            writer.write(json_response(
                404, {"error": f"no websocket route for {request.path}"}))
            await writer.drain()
            return
        job = self.queue.get(parts[1])
        if job is None:
            writer.write(json_response(
                404, {"error": f"unknown job {parts[1]!r}"}))
            await writer.drain()
            return
        if job.hub is None:
            writer.write(json_response(
                409, {"error": f"job {job.id} was not submitted with "
                               "stream=true; no trace to stream"}))
            await writer.drain()
            return
        try:
            writer.write(ws_handshake_response(request))
            await writer.drain()
        except ProtocolError as exc:
            writer.write(json_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        hub = job.hub
        sub = hub.subscribe(asyncio.get_running_loop())
        closer = asyncio.create_task(self._watch_client(reader, writer))
        try:
            async for delta in sub.deltas():
                if closer.done():
                    return
                writer.write(ws_text(json.dumps(
                    delta, sort_keys=True, separators=(",", ":"))))
                await writer.drain()
            end = dict(hub.end or {"type": "end"})
            end["dropped"] = sub.dropped
            end["job"] = job.id
            writer.write(ws_text(json.dumps(
                end, sort_keys=True, separators=(",", ":"))))
            writer.write(ws_close())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            hub.unsubscribe(sub)
            closer.cancel()
            try:
                await closer
            except (asyncio.CancelledError, Exception):
                pass

    @staticmethod
    async def _watch_client(reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        """Drain client frames so a close (or EOF) is noticed even
        while the stream is mid-flight; answers pings."""
        while True:
            try:
                opcode, payload = await ws_read_frame(reader)
            except ProtocolError:
                return
            if opcode == OP_CLOSE:
                return
            if opcode == OP_PING:
                writer.write(ws_frame(OP_PONG, payload))
                await writer.drain()
