"""A small blocking client for the service -- stdlib only
(``http.client`` for HTTP, a raw socket for the WebSocket trace
stream).  This is what the tests, the examples and CI smoke drive; it
is deliberately synchronous so callers need no event loop.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import struct
import time
from typing import Dict, Iterator, List, Optional

from ..api import RunResult
from .protocol import OP_CLOSE, OP_PING, OP_PONG, OP_TEXT, websocket_accept


class ServerError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) \
            else payload
        super().__init__(f"server answered {status}: {detail}")


class ServerBusy(ServerError):
    """429: the job queue is full; ``retry_after`` says when to retry."""

    def __init__(self, status: int, payload, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobFailed(RuntimeError):
    """A polled job finished in the ``failed`` state."""

    def __init__(self, record: Dict[str, object]):
        self.record = record
        super().__init__(
            f"job {record.get('id')} failed: {record.get('error')}")


class ServerClient:
    """One keep-alive HTTP connection to a :class:`ReproServer`.

    >>> client = ServerClient(port=server.port)
    >>> result = client.run("streams", cycles=256)   # doctest: +SKIP
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str, body=None):
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {} if payload is None else {
            "Content-Type": "application/json"}
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
            try:
                self._conn.request(method, path, body=payload,
                                   headers=headers)
                response = self._conn.getresponse()
                break
            except TimeoutError as exc:
                # socket.timeout; must precede the OSError clause below.
                # A timed-out request is NOT retried -- the server may
                # still be working on it, and resubmitting would double
                # the load exactly when the server is slowest.
                self.close()
                raise TimeoutError(
                    f"no response from {self.host}:{self.port} within "
                    f"{self.timeout:g}s for {method} {path}; the server "
                    f"may be busy or hung -- raise the client timeout "
                    f"(ServerClient(timeout=...) / --timeout) for slow "
                    f"jobs"
                ) from exc
            except (http.client.HTTPException, ConnectionError, OSError):
                # a keep-alive connection the server already closed;
                # reconnect once, then let the error through
                self.close()
                if attempt:
                    raise
        data = response.read()
        decoded = json.loads(data) if data else None
        if response.status == 429:
            retry_after = float(response.headers.get("Retry-After", 1))
            raise ServerBusy(response.status, decoded, retry_after)
        if response.status >= 400:
            raise ServerError(response.status, decoded)
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- browsing ------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._request("GET", "/health")

    def scenarios(self, tag: Optional[str] = None) -> List[Dict[str, object]]:
        path = "/scenarios" + (f"?tag={tag}" if tag else "")
        return self._request("GET", path)["scenarios"]

    def scenario(self, name: str) -> Dict[str, object]:
        return self._request("GET", f"/scenarios/{name}")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    # -- jobs ----------------------------------------------------------
    def submit(self, scenario: Optional[str] = None, *,
               kind: str = "run", cycles: Optional[int] = None,
               config: Optional[Dict[str, object]] = None,
               stream: bool = False, **extra) -> Dict[str, object]:
        """Submit one job; returns its lifecycle record (state
        ``queued`` -- or already ``done`` on a result-cache hit).
        Raises :class:`ServerBusy` on 429."""
        body: Dict[str, object] = {"kind": kind, "stream": stream}
        if scenario is not None:
            body["scenario"] = scenario
        if cycles is not None:
            body["cycles"] = cycles
        if config:
            body["config"] = config
        body.update(extra)
        return self._request("POST", "/jobs", body)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.02) -> Dict[str, object]:
        """Poll until the job leaves the queue/run states.  Raises
        :class:`JobFailed` on failure, :class:`TimeoutError` on
        timeout; returns the final record otherwise."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            state = record["state"]
            if state == "done":
                return record
            if state == "failed":
                raise JobFailed(record)
            if state == "cancelled":
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {state} after {timeout:g}s")
            time.sleep(poll)

    def result(self, job_id: str):
        """A finished job's result: a rebuilt
        :class:`~repro.api.RunResult` for run jobs, the structured
        rows/maps for sweep/bench."""
        envelope = self._request("GET", f"/jobs/{job_id}/result")
        if envelope["kind"] == "run":
            return RunResult.from_dict(envelope["result"])
        return envelope["result"]

    def run(self, scenario: str, cycles: Optional[int] = None,
            config: Optional[Dict[str, object]] = None,
            timeout: float = 120.0) -> RunResult:
        """Submit-wait-fetch sugar for one run job."""
        record = self.submit(scenario, cycles=cycles, config=config)
        if record["state"] != "done":
            self.wait(record["id"], timeout=timeout)
        return self.result(record["id"])

    # -- trace streaming -----------------------------------------------
    def stream(self, job_id: str, timeout: float = 120.0
               ) -> Iterator[Dict[str, object]]:
        """Connect to a job's WebSocket trace and yield every frame as
        a dict -- ``{"type": "delta", ...}`` per cycle with changes,
        then one ``{"type": "end", "dropped": n, ...}``."""
        sock = socket.create_connection((self.host, self.port),
                                        timeout=timeout)
        # a buffered reader keeps frame bytes that arrive in the same
        # TCP segment as the handshake tail
        rfile = sock.makefile("rb")
        try:
            key = base64.b64encode(os.urandom(16)).decode("latin-1")
            sock.sendall((
                f"GET /jobs/{job_id}/trace HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                "\r\n").encode("latin-1"))
            head = self._read_head(rfile)
            status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
            if " 101 " not in f"{status_line} ":
                body = self._read_http_error(rfile, head)
                raise ServerError(
                    int(status_line.split(" ")[1]), body)
            accept = websocket_accept(key)
            if f"sec-websocket-accept: {accept}".lower() not in \
                    head.decode("latin-1").lower():
                raise ServerError(101, {"error": "bad websocket accept"})
            while True:
                opcode, payload = self._read_ws_frame(rfile)
                if opcode == OP_CLOSE:
                    return
                if opcode == OP_PING:
                    sock.sendall(self._masked_frame(OP_PONG, payload))
                    continue
                if opcode == OP_TEXT:
                    frame = json.loads(payload.decode("utf-8"))
                    yield frame
                    if frame.get("type") == "end":
                        # the server's close frame follows; answer with
                        # our own before reading it
                        sock.sendall(self._masked_frame(
                            OP_CLOSE, struct.pack(">H", 1000)))
        except TimeoutError as exc:
            # socket.timeout on the stream socket: no frame within the
            # budget.  Name the stall clearly; never silently retry.
            raise TimeoutError(
                f"trace stream for {job_id} from {self.host}:"
                f"{self.port} produced no frame within {timeout:g}s "
                f"(job stalled or stream detached?)"
            ) from exc
        finally:
            rfile.close()
            sock.close()

    # WebSocket plumbing (client side: masked frames out, plain in)
    @staticmethod
    def _read_head(rfile) -> bytes:
        """The response head, up to and including the blank line."""
        head = b""
        while not head.endswith(b"\r\n\r\n"):
            line = rfile.readline()
            if not line:
                raise ConnectionError(
                    "server closed the connection mid-handshake")
            head += line
        return head

    @staticmethod
    def _read_http_error(rfile, head: bytes):
        """Best-effort body of a non-101 handshake answer."""
        length = 0
        for line in head.decode("latin-1").split("\r\n"):
            if line.lower().startswith("content-length:"):
                length = int(line.split(":", 1)[1].strip())
        body = rfile.read(length) if length else b""
        try:
            return json.loads(body)
        except (ValueError, UnicodeDecodeError):
            return {"error": body.decode("latin-1", "replace")}

    @staticmethod
    def _recv_exactly(rfile, n: int) -> bytes:
        data = rfile.read(n)
        if data is None or len(data) < n:
            raise ConnectionError("server closed the websocket mid-frame")
        return data

    @classmethod
    def _read_ws_frame(cls, rfile):
        b0, b1 = cls._recv_exactly(rfile, 2)
        opcode = b0 & 0x0F
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", cls._recv_exactly(rfile, 2))
        elif length == 127:
            (length,) = struct.unpack(">Q", cls._recv_exactly(rfile, 8))
        payload = cls._recv_exactly(rfile, length) if length else b""
        return opcode, payload

    @staticmethod
    def _masked_frame(opcode: int, payload: bytes = b"") -> bytes:
        key = os.urandom(4)
        head = bytearray([0x80 | (opcode & 0x0F)])
        n = len(payload)
        if n < 126:
            head.append(0x80 | n)
        elif n < (1 << 16):
            head.append(0x80 | 126)
            head += struct.pack(">H", n)
        else:
            head.append(0x80 | 127)
            head += struct.pack(">Q", n)
        head += key
        return bytes(head) + bytes(
            b ^ key[i % 4] for i, b in enumerate(payload))
