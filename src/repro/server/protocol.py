"""Minimal HTTP/1.1 + RFC 6455 WebSocket framing over asyncio streams.

The service deliberately depends on nothing outside the standard
library, so this module implements the thin slice of both protocols the
server actually needs:

* **HTTP/1.1** -- request-line + header parsing, ``Content-Length``
  bodies, keep-alive connections, JSON responses.  No chunked transfer,
  no pipelining subtleties (requests on one connection are handled
  strictly in order), no TLS -- the service fronts a trusted dev/CI
  network, not the open internet.
* **WebSocket** -- the server side of the RFC 6455 opening handshake
  plus text/close/ping frame encoding and decoding.  Server-to-client
  frames are unmasked (per the RFC); client frames are unmasked on
  read.  Fragmented messages are not produced and not accepted (every
  trace delta fits comfortably in one frame).

Anything malformed raises :class:`ProtocolError`; the connection
handler answers 400 where it still can and closes the stream.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: the RFC 6455 handshake GUID, concatenated to the client key before
#: SHA-1 to prove the server speaks WebSocket
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: request bodies beyond this are refused (the largest legitimate body
#: is a job submission -- a few hundred bytes of config JSON)
MAX_BODY = 1 << 20

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    101: "Switching Protocols",
}

# WebSocket opcodes (the subset handled here)
OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


class ProtocolError(ValueError):
    """The peer sent something this minimal layer cannot parse."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]          # keys lower-cased
    body: bytes = b""
    parts: Tuple[str, ...] = field(default=())

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    def json(self):
        """The request body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF before any bytes arrive (the peer
    closed an idle keep-alive connection); raises :class:`ProtocolError`
    on anything malformed or truncated mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    path = unquote(split.path) or "/"
    query = dict(parse_qsl(split.query))
    length = headers.get("content-length", "0")
    try:
        length = int(length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length!r}")
    if length < 0 or length > MAX_BODY:
        raise ProtocolError(f"refusing {length}-byte body (cap {MAX_BODY})")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body")
    parts = tuple(p for p in path.split("/") if p)
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body, parts=parts)


def response(status: int, body: bytes = b"",
             content_type: str = "application/json",
             extra_headers: Sequence[Tuple[str, str]] = ()) -> bytes:
    """Serialize one HTTP/1.1 response (always with Content-Length, so
    keep-alive framing stays unambiguous)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload,
                  extra_headers: Sequence[Tuple[str, str]] = ()) -> bytes:
    body = (json.dumps(payload, sort_keys=True, default=str) + "\n")
    return response(status, body.encode("utf-8"),
                    extra_headers=extra_headers)


# ---------------------------------------------------------------------------
# WebSocket
# ---------------------------------------------------------------------------
def websocket_accept(key: str) -> str:
    """The Sec-WebSocket-Accept value for a client key (RFC 6455 4.2.2)."""
    digest = hashlib.sha1((key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(request: Request) -> bytes:
    """The 101 Switching Protocols response completing the handshake."""
    key = request.headers.get("sec-websocket-key")
    if not key:
        raise ProtocolError("websocket upgrade without Sec-WebSocket-Key")
    headers = "\r\n".join((
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {websocket_accept(key)}",
    ))
    return (headers + "\r\n\r\n").encode("latin-1")


def ws_frame(opcode: int, payload: bytes = b"", mask: bool = False) -> bytes:
    """Encode one unfragmented frame.  Servers send unmasked frames;
    clients (see :mod:`repro.server.client`) must mask."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0
    n = len(payload)
    if n < 126:
        head.append(mask_bit | n)
    elif n < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack(">H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", n)
    if mask:
        key = struct.pack(">I", hash(payload) & 0xFFFFFFFF)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def ws_text(payload: str) -> bytes:
    return ws_frame(OP_TEXT, payload.encode("utf-8"))


def ws_close(code: int = 1000) -> bytes:
    return ws_frame(OP_CLOSE, struct.pack(">H", code))


async def ws_read_frame(reader: asyncio.StreamReader
                        ) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, payload)`` with masking
    removed.  Raises :class:`ProtocolError` on EOF or a fragmented
    message (not produced by either side of this service)."""
    try:
        b0, b1 = await reader.readexactly(2)
    except asyncio.IncompleteReadError:
        raise ProtocolError("websocket connection closed mid-frame")
    if not b0 & 0x80:
        raise ProtocolError("fragmented websocket frames are unsupported")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    length = b1 & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
