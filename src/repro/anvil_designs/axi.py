"""Anvil AXI-Lite routers: demux (1 master -> N slaves) and mux
(N masters -> 1 slave, fair round-robin).

The AXI protocol is channel-shaped already; here each interface is an
Anvil channel of five messages, and the routers are two-thread processes
(independent write and read paths) whose transaction ordering is enforced
by the wait operator instead of hand-written FSM state -- the complexity
the paper says Anvil "abstracts away from the user".
"""

from __future__ import annotations

from typing import List

from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    par,
    read,
    ready,
    recv,
    send,
    set_reg,
    var,
)
from ..lang.types import Logic
from ..designs.axi import ADDR_W, DATA_W


def axi_lite_channel(name: str = "axil") -> ChannelDef:
    """The five AXI-Lite channels as one Anvil channel.  The master owns
    the left endpoint; every payload is stable for its transfer cycle."""
    return ChannelDef(name, [
        MessageDef("aw", Side.RIGHT, Logic(ADDR_W), LifetimeSpec.static(1)),
        MessageDef("w", Side.RIGHT, Logic(DATA_W), LifetimeSpec.static(1)),
        MessageDef("b", Side.LEFT, Logic(2), LifetimeSpec.static(1)),
        MessageDef("ar", Side.RIGHT, Logic(ADDR_W), LifetimeSpec.static(1)),
        MessageDef("r", Side.LEFT, Logic(DATA_W), LifetimeSpec.static(1)),
    ])


def axi_demux(n_slaves: int = 4, name: str = "anvil_axi_demux") -> Process:
    """Route each transaction to the slave selected by the top address
    bits.  One write transaction and one read transaction may be in
    flight concurrently (separate threads), matching the baseline."""
    sel_bits = max((n_slaves - 1).bit_length(), 1)
    shift = ADDR_W - sel_bits
    p = Process(name)
    p.endpoint("m", axi_lite_channel(), Side.RIGHT)
    for i in range(n_slaves):
        p.endpoint(f"s{i}", axi_lite_channel(), Side.LEFT)
    p.register("awq", Logic(ADDR_W))
    p.register("wq", Logic(DATA_W))
    p.register("bq", Logic(2))
    p.register("wsel", Logic(sel_bits))
    p.register("arq", Logic(ADDR_W))
    p.register("rq", Logic(DATA_W))
    p.register("rsel", Logic(sel_bits))

    def write_leg(i: int) -> Term:
        return (
            send(f"s{i}", "aw", read("awq"))
            >> send(f"s{i}", "w", read("wq"))
            >> let(f"b{i}", recv(f"s{i}", "b"),
                   var(f"b{i}") >> set_reg("bq", var(f"b{i}")))
        )

    wbody: Term = write_leg(0)
    for i in range(n_slaves - 1, 0, -1):
        wbody = if_(read("wsel").eq(i), write_leg(i), wbody)
    p.loop(
        let("a", recv("m", "aw"),
            var("a")
            >> par(set_reg("awq", var("a")),
                   set_reg("wsel", var("a").shr(shift)))
            >> let("wd", recv("m", "w"),
                   var("wd") >> set_reg("wq", var("wd"))
                   >> wbody
                   >> send("m", "b", read("bq")))),
        name="write_path",
    )

    def read_leg(i: int) -> Term:
        return (
            send(f"s{i}", "ar", read("arq"))
            >> let(f"r{i}", recv(f"s{i}", "r"),
                   var(f"r{i}") >> set_reg("rq", var(f"r{i}")))
        )

    rbody: Term = read_leg(0)
    for i in range(n_slaves - 1, 0, -1):
        rbody = if_(read("rsel").eq(i), read_leg(i), rbody)
    p.loop(
        let("a", recv("m", "ar"),
            var("a")
            >> par(set_reg("arq", var("a")),
                   set_reg("rsel", var("a").shr(shift)))
            >> rbody
            >> send("m", "r", read("rq"))),
        name="read_path",
    )
    return p


def _rotated_grant(n: int, rr_reg: str, req_of) -> List[Term]:
    """Fair round-robin grant: ``g[i]`` is true iff master ``i`` requests
    and no master earlier in the rotation (starting at ``rr``) does."""
    grants: List[Term] = []
    for i in range(n):
        acc: Term = lit(0, 1)
        for rr_val in range(n):
            order = [(rr_val + k) % n for k in range(n)]
            pos = order.index(i)
            term: Term = read(rr_reg).eq(rr_val) & req_of(i)
            for j in order[:pos]:
                term = term & ~req_of(j)
            acc = acc | term
        grants.append(acc)
    return grants


def axi_mux(n_masters: int = 4, name: str = "anvil_axi_mux") -> Process:
    """Arbitrate N masters onto one slave, round-robin per transaction."""
    rr_bits = max((n_masters - 1).bit_length(), 1)
    p = Process(name)
    for i in range(n_masters):
        p.endpoint(f"m{i}", axi_lite_channel(), Side.RIGHT)
    p.endpoint("s", axi_lite_channel(), Side.LEFT)
    p.register("awq", Logic(ADDR_W))
    p.register("wq", Logic(DATA_W))
    p.register("bq", Logic(2))
    p.register("wrr", Logic(rr_bits))
    p.register("arq", Logic(ADDR_W))
    p.register("rq", Logic(DATA_W))
    p.register("rrr", Logic(rr_bits))

    def write_txn(i: int) -> Term:
        return (
            let(f"a{i}", recv(f"m{i}", "aw"),
                var(f"a{i}")
                >> par(set_reg("awq", var(f"a{i}")),
                       set_reg("wrr", lit((i + 1) % n_masters, rr_bits)))
                >> let(f"wd{i}", recv(f"m{i}", "w"),
                       var(f"wd{i}") >> set_reg("wq", var(f"wd{i}"))
                       >> send("s", "aw", read("awq"))
                       >> send("s", "w", read("wq"))
                       >> let(f"b{i}", recv("s", "b"),
                              var(f"b{i}") >> set_reg("bq", var(f"b{i}"))
                              >> send(f"m{i}", "b", read("bq")))))
        )

    wgrants = _rotated_grant(n_masters, "wrr",
                             lambda i: ready(f"m{i}", "aw"))
    wbody: Term = cycle(1)
    for i in range(n_masters - 1, -1, -1):
        wbody = if_(wgrants[i], write_txn(i), wbody)
    p.loop(wbody, name="write_path")

    def read_txn(i: int) -> Term:
        return (
            let(f"a{i}", recv(f"m{i}", "ar"),
                var(f"a{i}")
                >> par(set_reg("arq", var(f"a{i}")),
                       set_reg("rrr", lit((i + 1) % n_masters, rr_bits)))
                >> send("s", "ar", read("arq"))
                >> let(f"r{i}", recv("s", "r"),
                       var(f"r{i}") >> set_reg("rq", var(f"r{i}"))
                       >> send(f"m{i}", "r", read("rq"))))
        )

    rgrants = _rotated_grant(n_masters, "rrr",
                             lambda i: ready(f"m{i}", "ar"))
    rbody: Term = cycle(1)
    for i in range(n_masters - 1, -1, -1):
        rbody = if_(rgrants[i], read_txn(i), rbody)
    p.loop(rbody, name="read_path")
    return p
