"""Anvil implementations of the common-cells designs (FIFO buffer, spill
register, passthrough stream FIFO).

Each function returns a type-checkable :class:`~repro.lang.process.Process`
that is cycle-for-cycle equivalent to its baseline in
:mod:`repro.designs.streams`.  All three are single-loop processes whose
iteration takes exactly one cycle, using guarded non-blocking sends and
receives -- the stream idiom in which the contract window is the single
offer cycle, so pushes to other FIFO slots never violate a loan.
"""

from __future__ import annotations

from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    set_reg,
    try_recv,
    try_send,
    var,
)
from ..lang.types import Logic


def stream_channel(name: str = "stream", width: int = 8) -> ChannelDef:
    """Valid/ack stream: one ``data`` message, payload stable for the one
    cycle of the transfer."""
    return ChannelDef(name, [
        MessageDef("data", Side.RIGHT, Logic(width), LifetimeSpec.static(1)),
    ])


def if1(cond, then: Term) -> Term:
    """A time-balanced conditional: the else arm idles for the same one
    cycle the then arm's register write takes, so the branch condition
    never affects downstream timing."""
    return if_(cond, then, cycle(1))


def _mem_mux(depth: int, ptr: Term, width: int) -> Term:
    """Combinational read mux over the per-slot registers."""
    expr: Term = read("mem0")
    for i in range(depth - 1, 0, -1):
        expr = mux(ptr.eq(i), read(f"mem{i}"), expr)
    return expr


def _mem_write(depth: int, ptr_reg: str, value: Term) -> Term:
    """Write decoder: ``mem[*ptr] := value`` as an if-chain."""
    body: Term = set_reg("mem0", value)
    for i in range(depth - 1, 0, -1):
        body = if_(read(ptr_reg).eq(i), set_reg(f"mem{i}", value), body)
    return body


def fifo_buffer(depth: int = 4, width: int = 8,
                name: str = "anvil_fifo") -> Process:
    """FIFO buffer with registered output (the ``fifo_v3`` equivalent).

    One loop iteration per cycle:

    * accept an input word while not full (guarded try_recv);
    * offer ``mem[rptr]`` while not empty (guarded try_send);
    * update pointers and the occupancy counter from the two outcomes.
    """
    ptr_w = max((depth - 1).bit_length(), 1)
    cnt_w = depth.bit_length()
    p = Process(name)
    p.endpoint("inp", stream_channel("fifo_in", width), Side.RIGHT)
    p.endpoint("out", stream_channel("fifo_out", width), Side.LEFT)
    for i in range(depth):
        p.register(f"mem{i}", Logic(width))
    p.register("rptr", Logic(ptr_w))
    p.register("wptr", Logic(ptr_w))
    p.register("cnt", Logic(cnt_w))

    not_full = read("cnt").ne(depth)
    not_empty = read("cnt").ne(0)
    body = let(
        "enq", try_recv("inp", "data", guard=not_full),
        let(
            "sent",
            try_send("out", "data", _mem_mux(depth, read("rptr"), width),
                     guard=not_empty),
            par(
                if1(var("enq").field("valid"),
                    par(_mem_write(depth, "wptr", var("enq").field("data")),
                        set_reg("wptr",
                                mux(read("wptr").eq(depth - 1),
                                    lit(0, ptr_w), read("wptr") + 1)))),
                if1(var("sent"),
                    set_reg("rptr",
                            mux(read("rptr").eq(depth - 1),
                                lit(0, ptr_w), read("rptr") + 1))),
                set_reg("cnt",
                        (read("cnt") + var("enq").field("valid"))
                        - var("sent")),
            ),
        ),
    )
    p.loop(body)
    return p


def spill_register(width: int = 8, name: str = "anvil_spill") -> Process:
    """Two-slot skid buffer: the output register ``o`` holds the head
    word, the spill register ``s`` catches the word arriving while the
    output stalls.  All next-state logic is expressed as muxed register
    assignments -- no branches, so the loop body is one cycle flat."""
    p = Process(name)
    p.endpoint("inp", stream_channel("spill_in", width), Side.RIGHT)
    p.endpoint("out", stream_channel("spill_out", width), Side.LEFT)
    p.register("o_data", Logic(width))
    p.register("o_valid", Logic(1))
    p.register("s_data", Logic(width))
    p.register("s_valid", Logic(1))

    space = ~(read("o_valid") & read("s_valid"))
    body = let(
        "enq", try_recv("inp", "data", guard=space),
        let(
            "pop", try_send("out", "data", read("o_data"),
                            guard=read("o_valid")),
            let(
                "push", var("enq").field("valid"),
                let(
                    # state after the pop: the spill word moves up
                    "o2_valid",
                    mux(var("pop"), read("s_valid"), read("o_valid")),
                    par(
                        set_reg(
                            "o_data",
                            mux(var("push") & ~var("o2_valid"),
                                var("enq").field("data"),
                                mux(var("pop"), read("s_data"),
                                    read("o_data")))),
                        set_reg(
                            "o_valid",
                            var("o2_valid") | var("push")),
                        set_reg(
                            "s_data",
                            mux(var("push") & var("o2_valid"),
                                var("enq").field("data"),
                                read("s_data"))),
                        set_reg(
                            "s_valid",
                            (mux(var("pop"), lit(0, 1), read("s_valid")))
                            | (var("push") & var("o2_valid"))),
                    ),
                ),
            ),
        ),
    )
    p.loop(body)
    return p


def passthrough_stream_fifo(depth: int = 4, width: int = 8,
                            name: str = "anvil_stream_fifo") -> Process:
    """Passthrough stream FIFO: an empty FIFO forwards input to output in
    the same cycle; a full FIFO still accepts a write when a simultaneous
    read frees a slot.

    Unlike the original IP (Section 7.2 of the paper), the push guard here
    is *enforced* by construction -- overflowing writes are never
    acknowledged, instead of merely tripping a simulation assertion."""
    ptr_w = max((depth - 1).bit_length(), 1)
    cnt_w = depth.bit_length()
    p = Process(name)
    p.endpoint("inp", stream_channel("sf_in", width), Side.RIGHT)
    p.endpoint("out", stream_channel("sf_out", width), Side.LEFT)
    for i in range(depth):
        p.register(f"mem{i}", Logic(width))
    p.register("rptr", Logic(ptr_w))
    p.register("wptr", Logic(ptr_w))
    p.register("cnt", Logic(cnt_w))

    from ..lang.terms import ready

    not_full = read("cnt").ne(depth)
    not_empty = read("cnt").ne(0)
    # a full FIFO accepts a push when the consumer simultaneously pops
    pop_possible = ready("out", "data") & not_empty
    can_push = not_full | pop_possible
    body = let(
        "enq", try_recv("inp", "data", guard=can_push),
        let(
            "sent",
            try_send("out", "data",
                     mux(not_empty,
                         _mem_mux(depth, read("rptr"), width),
                         var("enq").field("data")),
                     guard=not_empty | var("enq").field("valid")),
            let(
                # passthrough transfers touch no state at all
                "thru", ~not_empty & var("enq").field("valid") & var("sent"),
                let(
                    "push", var("enq").field("valid") & ~var("thru"),
                    let(
                        "pop", var("sent") & ~var("thru"),
                        par(
                            if1(var("push"),
                                par(_mem_write(depth, "wptr",
                                               var("enq").field("data")),
                                    set_reg("wptr",
                                            mux(read("wptr").eq(depth - 1),
                                                lit(0, ptr_w),
                                                read("wptr") + 1)))),
                            if1(var("pop"),
                                set_reg("rptr",
                                        mux(read("rptr").eq(depth - 1),
                                            lit(0, ptr_w),
                                            read("rptr") + 1))),
                            set_reg("cnt",
                                    (read("cnt") + var("push"))
                                    - var("pop")),
                        ),
                    ),
                ),
            ),
        ),
    )
    p.loop(body)
    return p
