"""Anvil Y86-64 sequential core: the typed-channel counterpart of the
RTL pipeline in :mod:`repro.designs.y86`.

One architectural instruction is one trip around the loop: fetch over
the ``imem`` channel, latch the decoded fields (the fetch response only
lives one cycle -- the lifetime checker *requires* the latch, exactly
the PTW-register situation in :mod:`repro.anvil_designs.mmu`), execute,
make one ``dmem`` round trip, commit, and emit a retire event on
``host``.  The architectural contract (fault order, unsigned bounds,
``R[0xF]`` semantics, popq write order) is the one documented in
:mod:`repro.isa.reference`; the differential fuzzer holds all three
models to it.

Channel contracts:

* ``imem``/``dmem``: request and response both ``static(1)`` -- the
  memory server registers the request at the fire edge, and the core
  must latch what it needs from the response before the next cycle;
* ``host``: a 52-bit retire event (``icode . next_pc[47:0]``) per
  attempted instruction, ``static(1)``.

The commit is split over two cycles through scratch registers
(``t_*``): cycle one derives everything from the architectural state
and the memory response, cycle two writes the architectural state from
the scratch values only.  The read and write sets of each cycle are
disjoint, which is how the borrow discipline *wants* a many-register
writeback expressed -- a single-cycle commit would mutate the condition
codes while sibling assignments still hold loans on them.
"""

from __future__ import annotations

from ..isa.encoding import (
    ICALL,
    IHALT,
    IIRMOVQ,
    IJXX,
    IMRMOVQ,
    IOPQ,
    IPOPQ,
    IPUSHQ,
    IRET,
    IRMMOVQ,
    IRRMOVQ,
    MAX_IFUN,
    RNONE,
    RSP,
    SADR,
    SAOK,
    SHLT,
    SINS,
    insn_size,
    needs_regids,
)
from ..isa.reference import MEM_SIZE
from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    recv,
    send,
    set_reg,
    table,
    var,
)
from ..lang.types import Logic

#: retire event: icode (4) . next pc low bits (48)
RETIRE_WIDTH = 52

#: per-icode lookup tables, indexed by the 4-bit icode nibble
_SIZE_TAB = tuple(insn_size(i) if i in MAX_IFUN else 1 for i in range(16))
_REGIDS_TAB = tuple(1 if needs_regids(i) else 0 for i in range(16))
_MAXIFUN_TAB = tuple(MAX_IFUN.get(i, 0) for i in range(16))


def imem_channel() -> ChannelDef:
    """pc request / 10-byte instruction word response."""
    return ChannelDef("y86_imem_ch", [
        MessageDef("req", Side.RIGHT, Logic(64), LifetimeSpec.static(1)),
        MessageDef("res", Side.LEFT, Logic(80), LifetimeSpec.static(1)),
    ])


def dmem_channel() -> ChannelDef:
    """``write(1) . wdata(64) . addr(16)`` request / quad response."""
    return ChannelDef("y86_dmem_ch", [
        MessageDef("req", Side.RIGHT, Logic(81), LifetimeSpec.static(1)),
        MessageDef("res", Side.LEFT, Logic(64), LifetimeSpec.static(1)),
    ])


def retire_channel() -> ChannelDef:
    """One event per attempted instruction (including the stopper)."""
    return ChannelDef("y86_retire_ch", [
        MessageDef("ev", Side.LEFT, Logic(RETIRE_WIDTH),
                   LifetimeSpec.static(1)),
    ])


def y86_core(mem_size: int = MEM_SIZE, name: str = "anvil_y86") -> Process:
    """The sequential Y86-64 core as one looping Anvil process."""
    p = Process(name)
    p.endpoint("imem", imem_channel(), Side.LEFT)
    p.endpoint("dmem", dmem_channel(), Side.LEFT)
    p.endpoint("host", retire_channel(), Side.RIGHT)

    p.register("pc", Logic(64))
    for i in range(15):
        p.register(f"r{i}", Logic(64))
    p.register("zf", Logic(1), init=1)
    p.register("sf", Logic(1))
    p.register("of", Logic(1))
    p.register("stat", Logic(3), init=SAOK)
    p.register("halted", Logic(1))
    p.register("instret", Logic(64))
    # decode latches: the fetch response is static(1), so the fields
    # must live in registers to survive until commit
    p.register("icode", Logic(4))
    p.register("ifun", Logic(4))
    p.register("ra", Logic(4))
    p.register("rb", Logic(4))
    p.register("valc", Logic(64))
    # commit scratch: derived in the response cycle, written back the
    # cycle after (disjoint read/write sets on both cycles)
    p.register("t_vale", Logic(64))
    p.register("t_valm", Logic(64))
    p.register("t_npc", Logic(64))
    p.register("t_dste", Logic(4))
    p.register("t_dstm", Logic(4))
    p.register("t_zf", Logic(1))
    p.register("t_sf", Logic(1))
    p.register("t_of", Logic(1))

    icode = read("icode")
    ifun = read("ifun")

    def eq_any(term, *codes) -> Term:
        out: Term = term.eq(codes[0])
        for c in codes[1:]:
            out = out | term.eq(c)
        return out

    def retire_ev() -> Term:
        return send("host", "ev",
                    read("icode").concat(read("pc").bits(47, 0)))

    def stop(stat_code: int) -> Term:
        """Fault/halt: freeze pc at the stopper, count the attempt."""
        return par(
            set_reg("stat", lit(stat_code, 3)),
            set_reg("halted", lit(1, 1)),
            set_reg("instret", read("instret") + 1),
        ) >> retire_ev()

    # -- fetch + decode latch -----------------------------------------
    iw = var("iw")
    decode_latch = let("iw", recv("imem", "res"), par(
        set_reg("icode", iw.bits(7, 4)),
        set_reg("ifun", iw.bits(3, 0)),
        set_reg("ra", iw.bits(15, 12)),
        set_reg("rb", iw.bits(11, 8)),
        set_reg("valc", mux(table(iw.bits(7, 4), _REGIDS_TAB, 1),
                            iw.shr(16).bits(63, 0),
                            iw.shr(8).bits(63, 0))),
    ))

    # -- decode-derived values (pure register reads) ------------------
    size = table(icode, _SIZE_TAB, 4)
    valp = read("pc") + size
    legal = icode.le(IPOPQ) & ifun.le(table(icode, _MAXIFUN_TAB, 3))
    fetch_oob = read("pc").gt(mem_size - 1)
    encoding_oob = valp.gt(mem_size)

    def rf(idx: Term) -> Term:
        out: Term = lit(0, 64)          # R[0xF] reads zero
        for i in reversed(range(15)):
            out = mux(idx.eq(i), read(f"r{i}"), out)
        return out

    src_a = mux(eq_any(icode, IPOPQ, IRET), lit(RSP, 4), read("ra"))
    src_b = mux(eq_any(icode, IPUSHQ, IPOPQ, ICALL, IRET),
                lit(RSP, 4), read("rb"))
    vala = rf(src_a)
    valb = rf(src_b)
    rsp_v = read(f"r{RSP}")

    # OPq ALU (valb OP vala) with the shared CC derivation
    op_res = mux(ifun.eq(0), valb + vala,
                 mux(ifun.eq(1), valb - vala,
                     mux(ifun.eq(2), valb & vala, valb ^ vala)))
    add_of = (~(vala ^ valb) & (vala ^ op_res)).bit(63)
    sub_of = ((vala ^ valb) & (valb ^ op_res)).bit(63)
    new_of = mux(ifun.eq(0), add_of, mux(ifun.eq(1), sub_of, lit(0, 1)))
    new_zf = op_res.eq(0)
    new_sf = op_res.bit(63)
    is_op = icode.eq(IOPQ)

    # branch/cmov condition against the *old* flags
    sxo = read("sf") ^ read("of")
    nzf = read("zf") ^ 1
    cnd = mux(ifun.eq(0), lit(1, 1),
              mux(ifun.eq(1), sxo | read("zf"),
                  mux(ifun.eq(2), sxo,
                      mux(ifun.eq(3), read("zf"),
                          mux(ifun.eq(4), nzf,
                              mux(ifun.eq(5), sxo ^ 1,
                                  (sxo ^ 1) & nzf))))))

    # -- data-memory leg ----------------------------------------------
    need_mem = eq_any(icode, IRMMOVQ, IMRMOVQ, ICALL, IRET, IPUSHQ,
                      IPOPQ)
    mem_addr = mux(eq_any(icode, IRMMOVQ, IMRMOVQ), read("valc") + valb,
                   mux(eq_any(icode, IPUSHQ, ICALL), rsp_v - 8, rsp_v))
    mem_fault = need_mem & mem_addr.gt(mem_size - 8)
    do_req = need_mem & mem_fault.eq(0)
    is_write = eq_any(icode, IRMMOVQ, IPUSHQ, ICALL)
    wdata = mux(icode.eq(ICALL), valp, vala)
    dreq = (is_write & do_req) \
        .concat(mux(do_req, wdata, lit(0, 64))) \
        .concat(mux(do_req, mem_addr.bits(15, 0), lit(0, 16)))

    # -- commit --------------------------------------------------------
    dm = var("dm")                      # dmem response (valM)
    vale = mux(icode.eq(IRRMOVQ), vala,
               mux(icode.eq(IIRMOVQ), read("valc"),
                   mux(is_op, op_res,
                       mux(eq_any(icode, IPUSHQ, ICALL), rsp_v - 8,
                           rsp_v + 8))))
    dste = mux(icode.eq(IRRMOVQ) & cnd.eq(0), lit(RNONE, 4),
               mux(eq_any(icode, IRRMOVQ, IIRMOVQ, IOPQ), read("rb"),
                   mux(eq_any(icode, ICALL, IRET, IPUSHQ, IPOPQ),
                       lit(RSP, 4), lit(RNONE, 4))))
    dstm = mux(eq_any(icode, IMRMOVQ, IPOPQ), read("ra"),
               lit(RNONE, 4))
    npc = mux(icode.eq(IJXX), mux(cnd, read("valc"), valp),
              mux(icode.eq(ICALL), read("valc"),
                  mux(icode.eq(IRET), dm, valp)))
    derive = par(                       # cycle one: arch + dm -> t_*
        set_reg("t_vale", vale),
        set_reg("t_valm", dm),
        set_reg("t_npc", npc),
        set_reg("t_dste", dste),
        set_reg("t_dstm", dstm),
        set_reg("t_zf", mux(is_op, new_zf, read("zf"))),
        set_reg("t_sf", mux(is_op, new_sf, read("sf"))),
        set_reg("t_of", mux(is_op, new_of, read("of"))),
    )
    writeback = par(                    # cycle two: t_* -> arch
        *[set_reg(f"r{i}",
                  mux(read("t_dstm").eq(i), read("t_valm"),  # dstM wins
                      mux(read("t_dste").eq(i), read("t_vale"),
                          read(f"r{i}"))))
          for i in range(15)],
        set_reg("zf", read("t_zf")),
        set_reg("sf", read("t_sf")),
        set_reg("of", read("t_of")),
        set_reg("pc", read("t_npc")),
        set_reg("instret", read("instret") + 1),
    )
    commit = derive >> writeback >> retire_ev()

    execute = send("dmem", "req", dreq) >> let(
        "dm", recv("dmem", "res"),
        if_(mem_fault, stop(SADR), commit))

    # fault classification order shared with the reference: fetch
    # bounds, legal opcode, whole encoding in bounds, halt, execute
    step = send("imem", "req", read("pc")) >> decode_latch >> if_(
        fetch_oob, stop(SADR),
        if_(legal.eq(0), stop(SINS),
            if_(encoding_oob, stop(SADR),
                if_(icode.eq(IHALT), stop(SHLT), execute))))

    p.loop(if_(read("halted"), cycle(1), step))
    return p
