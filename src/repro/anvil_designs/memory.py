"""Anvil memory subsystem: ROM-backed memory and the Figure 4 cached
memory with a dynamic timing contract.

The channel contract is the paper's running example::

    chan cache_ch {
      left  req : (logic[8] @res)   -- address stable until res
      right res : (logic[8] @#1)    -- data stable one cycle
    }

and the cached process answers hits after 1 cycle, misses after 3 --
run-time-varying latency captured by one static contract.
"""

from __future__ import annotations

from typing import Callable

from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    cycle,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    recv,
    send,
    set_reg,
    table,
    var,
)
from ..lang.types import Logic


def memory_channel(dynamic: bool = True,
                   static_cycles: int = 2) -> ChannelDef:
    """``req`` travels right, ``res`` travels left.  The dynamic variant is
    the cache contract ``[req, req->res)``; the static variant fixes the
    address-stability window to ``static_cycles``."""
    req_life = (
        LifetimeSpec.until("res") if dynamic
        else LifetimeSpec.static(static_cycles)
    )
    return ChannelDef("mem_ch" if not dynamic else "cache_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), req_life),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])


def rom_contents(size: int = 256,
                 fn: Callable[[int], int] = lambda a: a & 0xFF):
    return [fn(a) for a in range(size)]


def memory_process(latency: int = 2, name: str = "anvil_memory",
                   contents=None) -> Process:
    """ROM-backed memory with a fixed processing latency.  The request is
    used *throughout* the processing window, which only type checks
    because the contract guarantees the address stays stable."""
    contents = contents or rom_contents()
    p = Process(name)
    p.endpoint("host", memory_channel(dynamic=True), Side.RIGHT)
    p.register("result", Logic(8))
    p.loop(
        let("a", recv("host", "req"),
            var("a")
            >> cycle(latency - 1)
            >> set_reg("result", table(var("a"), contents, width=8))
            >> send("host", "res", read("result")))
    )
    return p


def cached_memory_process(lines: int = 4, hit_latency: int = 1,
                          miss_latency: int = 3,
                          name: str = "anvil_cached_memory",
                          contents=None) -> Process:
    """Figure 4 (right): dynamic contract, hit in 1 cycle, miss in 3.

    A direct-mapped cache of ``lines`` entries; the backing store is a
    ROM.  The address (``a``) remains usable across the whole lookup
    because the channel contract pins it until ``res`` -- exactly the
    situation a static contract would have to pessimize to the miss
    latency."""
    contents = contents or rom_contents()
    assert miss_latency >= hit_latency + 1
    p = Process(name)
    p.endpoint("host", memory_channel(dynamic=True), Side.RIGHT)
    for i in range(lines):
        p.register(f"tag{i}", Logic(8))
        p.register(f"tagv{i}", Logic(1))
        p.register(f"data{i}", Logic(8))
    p.register("result", Logic(8))

    def line_mux(field: str, idx):
        expr = read(f"{field}0")
        for i in range(lines - 1, 0, -1):
            expr = mux(idx.eq(i), read(f"{field}{i}"), expr)
        return expr

    def line_write(field: str, idx, value):
        body = set_reg(f"{field}0", value)
        for i in range(lines - 1, 0, -1):
            body = if_(idx.eq(i), set_reg(f"{field}{i}", value), body)
        return body

    a = var("a")
    idx = a & (lines - 1)
    hit = line_mux("tagv", idx) & line_mux("tag", idx).eq(a)
    rom = table(a, contents, width=8)
    body = let(
        "a", recv("host", "req"),
        a >> if_(
            hit,
            # hit: respond after hit_latency
            set_reg("result", line_mux("data", idx)),
            # miss: fetch from the backing store, fill the line
            cycle(miss_latency - hit_latency)
            >> par(
                line_write("tag", idx, a),
                line_write("tagv", idx, lit(1, 1)),
                line_write("data", idx, rom),
                set_reg("result", rom),
            ),
        )
        >> send("host", "res", read("result")),
    )
    p.loop(body)
    return p


def cached_memory_static_process(lines: int = 4, worst_latency: int = 3,
                                 name: str = "anvil_cached_memory_static",
                                 contents=None) -> Process:
    """Figure 4 (left): the same cache forced behind a *static* contract.
    Every response -- hit or miss -- must wait for the worst-case delay,
    nullifying the benefit of caching."""
    contents = contents or rom_contents()
    p = Process(name)
    p.endpoint("host", memory_channel(dynamic=False,
                                      static_cycles=worst_latency),
               Side.RIGHT)
    for i in range(lines):
        p.register(f"tag{i}", Logic(8))
        p.register(f"tagv{i}", Logic(1))
        p.register(f"data{i}", Logic(8))
    p.register("result", Logic(8))

    def line_mux(field: str, idx):
        expr = read(f"{field}0")
        for i in range(lines - 1, 0, -1):
            expr = mux(idx.eq(i), read(f"{field}{i}"), expr)
        return expr

    def line_write(field: str, idx, value):
        body = set_reg(f"{field}0", value)
        for i in range(lines - 1, 0, -1):
            body = if_(idx.eq(i), set_reg(f"{field}{i}", value), body)
        return body

    a = var("a")
    idx = a & (lines - 1)
    hit = line_mux("tagv", idx) & line_mux("tag", idx).eq(a)
    rom = table(a, contents, width=8)
    body = let(
        "a", recv("host", "req"),
        a >> set_reg("addr_q", a)
        >> if_(
            hit,
            cycle(worst_latency - 2)   # pad the hit to the worst case
            >> set_reg("result",
                       line_mux("data", read("addr_q") & (lines - 1))),
            cycle(worst_latency - 2)
            >> par(
                line_write("tag", read("addr_q") & (lines - 1),
                           read("addr_q")),
                line_write("tagv", read("addr_q") & (lines - 1), lit(1, 1)),
                line_write("data", read("addr_q") & (lines - 1),
                           table(read("addr_q"), contents, width=8)),
                set_reg("result", table(read("addr_q"), contents, width=8)),
            ),
        )
        >> send("host", "res", read("result")),
    )
    p.register("addr_q", Logic(8))
    p.loop(body)
    return p
