"""Anvil AES cipher core: AES-128/256, encrypt/decrypt, round-per-cycle,
on-the-fly key schedule (forward for encryption, backward for decryption
after a key-expansion pass) -- the OpenTitan-style architecture of the
paper's evaluation.

The S-box and the GF(2^8) multiply tables are ``table`` terms (LUTs),
mirroring the LUT-mapped S-box of the original IP.  One loop iteration is
one cycle; the round counter register drives the *dynamic* latency:
10/14 rounds, doubled-plus for decryption's key pass.
"""

from __future__ import annotations

from typing import List

from ..designs.aes import (
    INV_SBOX,
    RCON,
    REQ_WIDTH,
    SBOX,
)
from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    send,
    set_reg,
    table,
    try_recv,
    var,
)
from ..lang.types import Logic


def aes_channel() -> ChannelDef:
    return ChannelDef("aes_ch", [
        MessageDef("req", Side.RIGHT, Logic(REQ_WIDTH),
                   LifetimeSpec.static(1)),
        MessageDef("res", Side.LEFT, Logic(128), LifetimeSpec.static(1)),
    ])


# ---------------------------------------------------------------------------
# 128-bit term helpers (byte 0 = most significant, as in FIPS-197)
# ---------------------------------------------------------------------------
def _bytes_of(x: Term, n_bytes: int = 16) -> List[Term]:
    width = 8 * n_bytes
    return [x.bits(width - 1 - 8 * i, width - 8 - 8 * i)
            for i in range(n_bytes)]


def _concat(parts: List[Term]) -> Term:
    acc = parts[0]
    for p in parts[1:]:
        acc = acc.concat(p)
    return acc


def _sub_bytes(bs: List[Term], box) -> List[Term]:
    return [table(b, box, 8) for b in bs]


def _shift_rows(bs: List[Term]) -> List[Term]:
    out = list(bs)
    for row in range(1, 4):
        cols = [bs[4 * c + row] for c in range(4)]
        cols = cols[row:] + cols[:row]
        for c in range(4):
            out[4 * c + row] = cols[c]
    return out


def _inv_shift_rows(bs: List[Term]) -> List[Term]:
    out = list(bs)
    for row in range(1, 4):
        cols = [bs[4 * c + row] for c in range(4)]
        cols = cols[-row:] + cols[:-row]
        for c in range(4):
            out[4 * c + row] = cols[c]
    return out


def _xt(b: Term) -> Term:
    """xtime as hardware computes it: shift left, conditionally xor the
    reduction polynomial (a handful of XORs -- not a ROM)."""
    shifted = b.bits(6, 0).concat(lit(0, 1))
    return mux(b.bit(7), shifted ^ 0x1B, shifted)


def _mix_columns(bs: List[Term]) -> List[Term]:
    out: List[Term] = []
    for c in range(4):
        a = bs[4 * c:4 * c + 4]
        out.extend([
            _xt(a[0]) ^ (a[1] ^ _xt(a[1])) ^ a[2] ^ a[3],
            a[0] ^ _xt(a[1]) ^ (a[2] ^ _xt(a[2])) ^ a[3],
            a[0] ^ a[1] ^ _xt(a[2]) ^ (a[3] ^ _xt(a[3])),
            (a[0] ^ _xt(a[0])) ^ a[1] ^ a[2] ^ _xt(a[3]),
        ])
    return out


def _gf_muls(b: Term):
    """9, 11, 13, 14 times ``b`` via the xtime chain (standard inverse
    MixColumns decomposition)."""
    x1 = _xt(b)
    x2 = _xt(x1)
    x3 = _xt(x2)
    return {
        9: x3 ^ b,
        11: x3 ^ x1 ^ b,
        13: x3 ^ x2 ^ b,
        14: x3 ^ x2 ^ x1,
    }


def _inv_mix_columns(bs: List[Term]) -> List[Term]:
    out: List[Term] = []
    for c in range(4):
        a = bs[4 * c:4 * c + 4]
        m = [_gf_muls(x) for x in a]
        out.extend([
            m[0][14] ^ m[1][11] ^ m[2][13] ^ m[3][9],
            m[0][9] ^ m[1][14] ^ m[2][11] ^ m[3][13],
            m[0][13] ^ m[1][9] ^ m[2][14] ^ m[3][11],
            m[0][11] ^ m[1][13] ^ m[2][9] ^ m[3][14],
        ])
    return out


def _words_of(g: Term) -> List[Term]:
    return [g.bits(127 - 32 * i, 96 - 32 * i) for i in range(4)]


def _sub_word(w: Term) -> Term:
    return _concat([table(b, SBOX, 8) for b in _bytes_of(w, 4)])


def _rot_word(w: Term) -> Term:
    return w.bits(23, 0).concat(w.bits(31, 24))


def _gen_group(a: Term, b_last: Term, rcon: Term, type_a: bool) -> Term:
    """Forward key-schedule step: next 4-word group from the group 8
    words back (``a``) and the last word of the previous group."""
    f = _sub_word(_rot_word(b_last)) ^ (rcon.concat(lit(0, 24))) \
        if type_a else _sub_word(b_last)
    aw = _words_of(a)
    n0 = aw[0] ^ f
    n1 = aw[1] ^ n0
    n2 = aw[2] ^ n1
    n3 = aw[3] ^ n2
    return _concat([n0, n1, n2, n3])


def _ungen_group(c: Term, b_last: Term, rcon: Term, type_a: bool,
                 self_chained: bool = False) -> Term:
    """Backward key-schedule step: recover the group 4 (AES-128) or 8
    (AES-256) words back.

    For AES-128 the schedule is self-chained: the non-linear function
    feeds on the *recovered* group's last word (``a3``), not on a separate
    previous group; pass ``self_chained=True`` in that case."""
    cw = _words_of(c)
    a3 = cw[3] ^ cw[2]
    a2 = cw[2] ^ cw[1]
    a1 = cw[1] ^ cw[0]
    feed = a3 if self_chained else b_last
    f = _sub_word(_rot_word(feed)) ^ (rcon.concat(lit(0, 24))) \
        if type_a else _sub_word(feed)
    a0 = cw[0] ^ f
    return _concat([a0, a1, a2, a3])


def _last_word(g: Term) -> Term:
    return g.bits(31, 0)


def aes_core(name: str = "anvil_aes") -> Process:
    """The AES core process.  Phases (register ``phase``):

    0 idle/accept, 1 keygen (decrypt only), 2 initial AddRoundKey,
    3 rounds (one per cycle), 4 respond."""
    p = Process(name)
    p.endpoint("host", aes_channel(), Side.RIGHT)
    p.register("phase", Logic(3))
    p.register("dec", Logic(1))
    p.register("k256", Logic(1))
    p.register("rnd", Logic(5))
    p.register("rci", Logic(4))
    p.register("state", Logic(128))
    p.register("win_hi", Logic(128))
    p.register("win_lo", Logic(128))

    dec = read("dec")
    k256 = read("k256")
    rnd = read("rnd")
    rci = read("rci")
    state = read("state")
    win_hi = read("win_hi")
    win_lo = read("win_lo")
    rounds = mux(k256, lit(14, 5), lit(10, 5))
    rcon_cur = table(rci, RCON, 8)
    rcon_prev = table(rci - 1, RCON, 8)
    rnd_even = (rnd & 1).eq(0)

    # ---- phase 0: accept a request -------------------------------------
    e = var("e")
    word = e.field("data")
    req_op = word.bit(385)
    req_k256 = word.bit(384)
    req_key = word.bits(383, 128)
    req_block = word.bits(127, 0)
    accept = par(
        set_reg("dec", req_op),
        set_reg("k256", req_k256),
        set_reg("state", req_block),
        # for both key sizes the newest 4 words sit in the low half of
        # the key field (a 128-bit key occupies key[127:0])
        set_reg("win_hi", req_key.bits(255, 128)),
        set_reg("win_lo", req_key.bits(127, 0)),
        set_reg("rnd", 0),
        set_reg("rci", 0),
        set_reg("phase", mux(req_op, lit(1, 3), lit(2, 3))),
    )
    phase0 = let(
        "e", try_recv("host", "req", guard=read("phase").eq(0)),
        if_(e.field("valid"), accept, cycle(1)),
    )

    # ---- phase 1: keygen (decryption: roll the schedule forward) -------
    gen_a128 = _gen_group(win_lo, _last_word(win_lo), rcon_cur, True)
    gen_a256 = _gen_group(win_hi, _last_word(win_lo), rcon_cur, True)
    gen_b256 = _gen_group(win_hi, _last_word(win_lo), rcon_cur, False)
    gen256 = mux(rnd_even, gen_a256, gen_b256)
    steps = mux(k256, lit(13, 5), lit(10, 5))
    keygen = par(
        set_reg("win_lo", mux(k256, gen256, gen_a128)),
        set_reg("win_hi", mux(k256, win_lo, win_hi)),
        set_reg("rci", mux(k256 & ~rnd_even, rci, rci + 1)),
        set_reg("rnd", rnd + 1),
        set_reg("phase", mux((rnd + 1).eq(steps), lit(2, 3), lit(1, 3))),
    )

    # ---- phase 2: initial AddRoundKey ----------------------------------
    rk_init = mux(
        dec,
        win_lo,                        # final round key (after keygen)
        mux(k256, win_hi, win_lo),     # first 4 key words
    )
    init = par(
        set_reg("state", state ^ rk_init),
        set_reg("rnd", 1),
        set_reg("phase", lit(3, 3)),
    )

    # ---- phase 3: one round per cycle -----------------------------------
    # round key selection + window update
    enc_gen128 = _gen_group(win_lo, _last_word(win_lo), rcon_cur, True)
    enc_gen256 = mux(rnd_even, gen_a256, gen_b256)
    enc_first256 = rnd.eq(1)
    rk_enc = mux(k256, mux(enc_first256, win_lo, enc_gen256), enc_gen128)
    enc_lo = mux(k256, mux(enc_first256, win_lo, enc_gen256), enc_gen128)
    enc_hi = mux(k256, mux(enc_first256, win_hi, win_lo), win_hi)

    dec_un128 = _ungen_group(win_lo, _last_word(win_lo), rcon_prev, True,
                             self_chained=True)
    # backward 256: recover group c-2 from (c = win_lo, b = win_hi)
    dec_unA = _ungen_group(win_lo, _last_word(win_hi), rcon_prev, True)
    dec_unB = _ungen_group(win_lo, _last_word(win_hi), rcon_prev, False)
    dec_un256 = mux(rnd_even, dec_unA, dec_unB)
    dec_first256 = rnd.eq(1)
    rk_dec = mux(k256, mux(dec_first256, win_hi, dec_un256), dec_un128)
    dec_lo = mux(k256, mux(dec_first256, win_lo, win_hi), dec_un128)
    dec_hi = mux(k256, mux(dec_first256, win_hi, dec_un256), win_hi)

    rk = mux(dec, rk_dec, rk_enc)
    last = rnd.eq(rounds)

    sb = _bytes_of(state)
    enc_sub = _sub_bytes(sb, SBOX)
    enc_shift = _shift_rows(enc_sub)
    enc_normal = _concat(_mix_columns(enc_shift)) ^ rk
    enc_last = _concat(enc_shift) ^ rk
    dec_shift = _inv_shift_rows(sb)
    dec_sub = _concat(_sub_bytes(dec_shift, INV_SBOX)) ^ rk
    dec_normal = _concat(_inv_mix_columns(_bytes_of(dec_sub)))
    round_out = mux(
        dec,
        mux(last, dec_sub, dec_normal),
        mux(last, enc_last, enc_normal),
    )
    # rci moves forward (enc) or backward (dec); for 256 only on A-steps
    rci_step_taken = mux(k256, mux(dec, ~dec_first256 & rnd_even,
                                   ~enc_first256 & rnd_even), lit(1, 1))
    rci_next = mux(rci_step_taken & ~dec, rci + 1,
                   mux(rci_step_taken & dec, rci - 1, rci))
    rounds_step = par(
        set_reg("state", round_out),
        set_reg("win_lo", mux(dec, dec_lo, enc_lo)),
        set_reg("win_hi", mux(dec, dec_hi, enc_hi)),
        set_reg("rci", rci_next),
        set_reg("rnd", rnd + 1),
        set_reg("phase", mux(last, lit(4, 3), lit(3, 3))),
    )

    # ---- phase 4: respond ------------------------------------------------
    respond = send("host", "res", state) >> set_reg("phase", 0)

    body = if_(
        read("phase").eq(0), phase0,
        if_(read("phase").eq(1), keygen,
            if_(read("phase").eq(2), init,
                if_(read("phase").eq(3), rounds_step, respond))),
    )
    p.loop(body)
    return p
