"""Anvil static pipelines: the two-stage ALU and the 2x2 systolic array.

Both use ``recursive`` threads (Section 4.3) with fully static channels:
a new iteration starts every cycle while the previous one is still in its
second stage.  The type checker proves the stage registers are never
overwritten while a downstream stage still needs them -- the II=1 hazard
analysis Filament performs with timeline types.
"""

from __future__ import annotations

from typing import Tuple

from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side, StaticSync
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    let,
    lit,
    mux,
    par,
    read,
    recurse,
    recv,
    send,
    set_reg,
    var,
)
from ..lang.types import Logic


def static_channel(name: str, width: int) -> ChannelDef:
    """Fully static stream: both sides ready every cycle, no handshake."""
    sync = StaticSync(1)
    return ChannelDef(name, [
        MessageDef("data", Side.RIGHT, Logic(width), LifetimeSpec.static(1),
                   sync, sync),
    ])


def pipelined_alu(name: str = "anvil_alu") -> Process:
    """Two-stage ALU, II=1: stage 1 registers all candidate results and
    the opcode; stage 2 registers the selected result and sends it."""
    p = Process(name)
    p.endpoint("inp", static_channel("alu_in", 35), Side.RIGHT)
    p.endpoint("out", static_channel("alu_out", 16), Side.LEFT)
    for k in range(8):
        p.register(f"s1_{k}", Logic(16))
    p.register("s1_op", Logic(3))
    p.register("out_q", Logic(16))

    r = var("r")
    op = r.shr(32) & 7
    a = r.shr(16) & 0xFFFF
    b = r & 0xFFFF
    candidates = [
        a + b, a - b, a & b, a | b, a ^ b,
        a << (b & 0xF), a.shr(b & 0xF), a.lt(b),
    ]
    stage1 = par(
        *[set_reg(f"s1_{k}", candidates[k]) for k in range(8)],
        set_reg("s1_op", op),
    )
    selected: Term = read("s1_0")
    for k in range(7, 0, -1):
        selected = mux(read("s1_op").eq(k), read(f"s1_{k}"), selected)
    stage2 = set_reg("out_q", selected) >> send("out", "data", read("out_q"))
    p.recursive(
        let("r", recv("inp", "data"),
            par(r >> stage1 >> stage2,
                cycle(1) >> recurse()))
    )
    return p


def systolic_array(weights: Tuple[Tuple[int, int], Tuple[int, int]] = ((1, 2), (3, 4)),
                   name: str = "anvil_systolic") -> Process:
    """2x2 weight-stationary systolic array, II=1, latency 2."""
    p = Process(name)
    p.endpoint("inp", static_channel("sa_in", 16), Side.RIGHT)
    p.endpoint("out", static_channel("sa_out", 32), Side.LEFT)
    p.register("p0_0", Logic(16))
    p.register("p0_1", Logic(16))
    p.register("x1_d", Logic(8))
    p.register("y0", Logic(16))
    p.register("y1", Logic(16))

    r = var("r")
    x0 = r & 0xFF
    x1 = r.shr(8) & 0xFF
    stage1 = par(
        set_reg("p0_0", x0.bits(7, 0) * lit(weights[0][0], 8)),
        set_reg("p0_1", x0.bits(7, 0) * lit(weights[0][1], 8)),
        set_reg("x1_d", x1),
    )
    stage2 = par(
        set_reg("y0", read("p0_0") + read("x1_d") * lit(weights[1][0], 8)),
        set_reg("y1", read("p0_1") + read("x1_d") * lit(weights[1][1], 8)),
    ) >> send("out", "data", read("y1").concat(read("y0")))
    p.recursive(
        let("r", recv("inp", "data"),
            par(r >> stage1 >> stage2,
                cycle(1) >> recurse()))
    )
    return p
