"""Anvil MMU: page table walker and TLB with dynamic timing contracts.

The PTW's walk depth -- and therefore its latency -- varies per request;
the channel contract ``req : @res`` lets the walker *use the request for
the whole walk* while the type system still proves every intermediate PTE
is registered before reuse (PTEs only live one cycle)."""

from __future__ import annotations

from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    recv,
    send,
    set_reg,
    var,
)
from ..lang.types import Logic
from ..designs.mmu import FAULT, PPN_MASK, PTE_LEAF, PTE_VALID, ROOT_BASE


def translate_channel() -> ChannelDef:
    """vpn request / translation response."""
    return ChannelDef("xlate_ch", [
        MessageDef("req", Side.RIGHT, Logic(12), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(16), LifetimeSpec.static(1)),
    ])


def walk_memory_channel() -> ChannelDef:
    """PTW <-> page-table memory."""
    return ChannelDef("walkmem_ch", [
        MessageDef("req", Side.RIGHT, Logic(16), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(16), LifetimeSpec.static(1)),
    ])


def ptw_process(root_base: int = ROOT_BASE,
                name: str = "anvil_ptw") -> Process:
    """Three-level page table walker, the levels unrolled in the term.

    Each memory response (a PTE) lives for one cycle only, so the walker
    *must* register it before computing the next level's address -- the
    type checker enforces precisely the register CVA6's PTW also has."""
    p = Process(name)
    p.endpoint("host", translate_channel(), Side.RIGHT)
    p.endpoint("mem", walk_memory_channel(), Side.LEFT)
    p.register("base", Logic(12))
    p.register("result", Logic(16))

    v = var("v")

    def respond() -> Term:
        return send("host", "res", read("result"))

    def leaf_result(pte: Term, level: int) -> Term:
        low_mask = (1 << (4 * level)) - 1
        value = (pte & PPN_MASK) | (v & low_mask) if level else (pte & PPN_MASK)
        return set_reg("result", value)

    def level_step(level: int, addr: Term, deeper: Term) -> Term:
        """Issue one lookup; on a pointer PTE continue with ``deeper``."""
        pte = var(f"pte{level}")
        not_valid = (pte & PTE_VALID).eq(0)
        is_leaf = (pte & PTE_LEAF).ne(0)
        if level == 0:
            on_pointer: Term = set_reg("result", FAULT)
        else:
            on_pointer = set_reg("base", pte & PPN_MASK) >> deeper
        return (
            send("mem", "req", addr)
            >> let(f"pte{level}", recv("mem", "res"),
                   pte
                   >> if_(not_valid,
                          set_reg("result", FAULT),
                          if_(is_leaf,
                              leaf_result(pte, level),
                              on_pointer)))
        )

    l0 = level_step(0, read("base") + (v & 0xF), Term())
    l1 = level_step(1, read("base") + (v.shr(4) & 0xF), l0)
    l2 = level_step(2, lit(root_base, 16) + (v.shr(8) & 0xF), l1)
    p.loop(let("v", recv("host", "req"), v >> l2 >> respond()))
    return p


def tlb_process(entries: int = 4, name: str = "anvil_tlb") -> Process:
    """Fully-associative TLB, FIFO replacement.  Hit latency: one
    registered cycle; miss latency: the walker's dynamic latency plus the
    fill cycle -- all under one dynamic contract."""
    p = Process(name)
    p.endpoint("host", translate_channel(), Side.RIGHT)
    p.endpoint("ptw", translate_channel(), Side.LEFT)
    for i in range(entries):
        p.register(f"tag{i}", Logic(12))
        p.register(f"tagv{i}", Logic(1))
        p.register(f"data{i}", Logic(16))
    rr_w = max((entries - 1).bit_length(), 1)
    p.register("rr", Logic(rr_w))
    p.register("result", Logic(16))

    v = var("v")

    def hit_expr() -> Term:
        expr: Term = lit(0, 1)
        for i in range(entries):
            expr = expr | (read(f"tagv{i}") & read(f"tag{i}").eq(v))
        return expr

    def hit_data() -> Term:
        expr: Term = read("data0")
        for i in range(entries - 1, 0, -1):
            expr = mux(read(f"tagv{i}") & read(f"tag{i}").eq(v),
                       read(f"data{i}"), expr)
        return expr

    def fill(value: Term) -> Term:
        """Install the translation in the round-robin way."""
        def way(i: int) -> Term:
            return par(set_reg(f"tag{i}", v),
                       set_reg(f"tagv{i}", 1),
                       set_reg(f"data{i}", value))
        body: Term = way(0)
        for i in range(entries - 1, 0, -1):
            body = if_(read("rr").eq(i), way(i), body)
        return body

    miss_path = (
        send("ptw", "req", v)
        >> let("t", recv("ptw", "res"),
               var("t")
               >> par(
                   if_((var("t") & FAULT).eq(0),
                       par(fill(var("t")), set_reg("rr", read("rr") + 1)),
                       cycle(1)),
                   set_reg("result", var("t")),
               ))
    )
    p.loop(
        let("v", recv("host", "req"),
            v
            >> if_(hit_expr(),
                   set_reg("result", hit_data()),
                   miss_path)
            >> send("host", "res", read("result")))
    )
    return p
