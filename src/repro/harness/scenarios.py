"""Standard simulation workloads over the paper's six design families.

Each scenario elaborates one bundled design family -- the hand-written
RTL baseline from :mod:`repro.designs` plus, where tractable, its
compiled Anvil twin from :mod:`repro.anvil_designs` -- into a single
:class:`~repro.rtl.simulator.Simulator` with seeded, randomized
stimulus.  The same builder serves three purposes:

* ``benchmarks/bench_simulator.py`` measures cycles/second of the
  levelized engine against the brute-force reference on these workloads;
* ``tests/test_scheduler.py`` asserts waveform- and activity-equivalence
  between the two engines on them;
* :class:`~repro.rtl.batch.BatchSimulator` sweeps run them concurrently.

A second, *Anvil-only* scenario set (``ANVIL_SCENARIOS`` /
:func:`build_anvil_scenario` / :func:`build_anvil_sweep`) elaborates
just the compiled Anvil twins of each family under randomized stimulus.
These are the workloads on which the FSM execution *backend* matters:
``benchmarks/bench_simulator.py`` measures the generated-Python backend
(``backend="pycompiled"``) against the plan interpreter on them, and
``tests/test_pysim.py`` pins backend equivalence over them.

Builders are deterministic in ``seed`` and never consult the engine or
backend, so two sims built with different engine/backend combinations
see identical stimulus.

Every builder registers itself with the canonical
:class:`~repro.api.ScenarioRegistry` (``repro.api.REGISTRY``), tagged
``rtl`` (mixed baseline+Anvil), ``anvil`` (compiled-only; registered
under ``anvil_*`` names) or ``sweep`` (all-in-one simulators).  The
registry is the single code path through which
:class:`~repro.rtl.batch.BatchSimulator.add_scenario`, the benchmark
sweep, the equivalence tests and the ``python -m repro`` CLI look up and
elaborate workloads; the ``SCENARIOS``/``ANVIL_SCENARIOS`` dicts and the
``build_*`` functions below survive only as deprecation shims over it.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict

from ..api import REGISTRY, SimConfig
from ..codegen.simfsm import MessagePort, build_simulation
from ..designs.aes import OP_DECRYPT, OP_ENCRYPT, AesCore, aes_pack
from ..designs.axi import (
    AxiLiteDemux,
    AxiLiteMux,
    AxiMasterDriver,
    AxiPorts,
    RegFileSlave,
)
from ..designs.memory import CachedMemory, HandshakeMemory
from ..designs.mmu import PageTableWalker, Tlb, build_page_table
from ..designs.pipeline import PipelinedAlu, SystolicArray2x2, alu_pack
from ..designs.streams import FifoBuffer, PassthroughStreamFifo, SpillRegister
from ..lang.process import System
from ..rtl.simulator import Simulator
from ..rtl.testing import PortSink, PortSource

#: stimulus depth: enough queued traffic to keep a multi-thousand-cycle
#: benchmark run busy
DEFAULT_STIM = 4000


def _pattern(rng: random.Random, p: float, length: int = 509):
    """A deterministic, periodic readiness pattern for a PortSink."""
    table = [rng.random() < p for _ in range(length)]
    return lambda cycle: table[cycle % length]


def _attach_anvil(sim: Simulator, process, stimuli: Dict[str, dict],
                  stim: int, rng: random.Random, backend: str = "interp"):
    """Elaborate one Anvil process into ``sim`` with external drivers.

    Every received message's data/valid wires are watched, so engine and
    backend equivalence checks compare real compiled-FSM waveforms, not
    just aggregate toggle counts."""
    sys_ = System()
    inst = sys_.add(process)
    chans = {ep: sys_.expose(inst, ep) for ep in list(inst.process.endpoints)}
    ss = build_simulation(sys_, sim=sim, backend=backend)
    for ep, spec in stimuli.items():
        ext = ss.external(chans[ep])
        for msg, maker in spec.get("send", {}).items():
            for _ in range(stim):
                ext.send(msg, maker(rng))
        for msg in spec.get("recv", ()):
            ext.always_receive(msg)
            port = ext.ports[msg]
            label = f"{sim.name}.{process.name}.{ep}.{msg}"
            sim.watch(port.data, f"{label}.data")
            sim.watch(port.valid, f"{label}.valid")
    return ss


# ---------------------------------------------------------------------------
# the six design families
# ---------------------------------------------------------------------------
@REGISTRY.scenario("streams", tags=("rtl",))
def scenario_streams(engine: str = "levelized", seed: int = 0,
                     stim: int = DEFAULT_STIM, sim: Simulator = None,
                     backend: str = "interp") -> Simulator:
    """Baseline stream chain (fifo -> spill -> passthrough fifo) plus the
    Anvil spill register."""
    from ..anvil_designs.streams import spill_register

    sim = sim or Simulator("streams", engine=engine)
    rng = random.Random(seed)
    a, b, c = (MessagePort(f"st.{n}", 8) for n in "abc")
    src = PortSource("st_src", a)
    src.push(*(rng.randrange(256) for _ in range(stim)))
    sim.add(src)
    sim.add(FifoBuffer("st_fifo", a, b, depth=4))
    sim.add(SpillRegister("st_spill", b, c))
    # a passthrough chain: valid/ready propagate combinationally through
    # every stage, the levelized scheduler's home turf (the seed loop
    # needs one full global iteration per stage)
    stages = [c] + [MessagePort(f"st.p{i}", 8) for i in range(4)]
    for i in range(4):
        sim.add(PassthroughStreamFifo(
            f"st_pfifo{i}", stages[i], stages[i + 1], depth=2
        ))
    d = stages[-1]
    sim.add(PortSink("st_sink", d, _pattern(rng, 0.7)))
    sim.watch(d.data, "st.out.data")
    sim.watch(d.valid, "st.out.valid")
    _attach_anvil(
        sim, spill_register(),
        {"inp": {"send": {"data": lambda r: r.randrange(256)}},
         "out": {"recv": ["data"]}},
        stim, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("memory", tags=("rtl",))
def scenario_memory(engine: str = "levelized", seed: int = 0,
                    stim: int = DEFAULT_STIM, sim: Simulator = None,
                    backend: str = "interp") -> Simulator:
    """Handshake memory and cached memory under random request streams,
    plus the Anvil fixed-latency memory."""
    from ..anvil_designs.memory import memory_process

    sim = sim or Simulator("memory", engine=engine)
    rng = random.Random(seed)
    hq, hs = MessagePort("hm.req", 8), MessagePort("hm.res", 8)
    cq, cs = MessagePort("cm.req", 8), MessagePort("cm.res", 8)
    hsrc = PortSource("hm_src", hq)
    hsrc.push(*(rng.randrange(256) for _ in range(stim)))
    csrc = PortSource("cm_src", cq)
    csrc.push(*(rng.randrange(32) for _ in range(stim)))
    sim.add(hsrc)
    sim.add(HandshakeMemory("hm_mem", hq, hs, latency=2))
    sim.add(PortSink("hm_sink", hs, _pattern(rng, 0.8)))
    sim.add(csrc)
    sim.add(CachedMemory("cm_mem", cq, cs, lines=4))
    sim.add(PortSink("cm_sink", cs, _pattern(rng, 0.8)))
    sim.watch(hs.data, "hm.res.data")
    sim.watch(cs.valid, "cm.res.valid")
    _attach_anvil(
        sim, memory_process(latency=2),
        {"host": {"send": {"req": lambda r: r.randrange(256)},
                  "recv": ["res"]}},
        stim, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("aes", tags=("rtl",))
def scenario_aes(engine: str = "levelized", seed: int = 0,
                 stim: int = DEFAULT_STIM, sim: Simulator = None,
                 backend: str = "interp") -> Simulator:
    """The AES core under a random mix of 128/256-bit encrypts and
    decrypts."""
    sim = sim or Simulator("aes", engine=engine)
    rng = random.Random(seed)
    req = MessagePort("aes.req", 386)
    res = MessagePort("aes.res", 128)
    src = PortSource("aes_src", req)
    jobs = max(stim // 16, 64)   # ~15-30 cycles of latency per job
    for _ in range(jobs):
        src.push(aes_pack(
            rng.choice((OP_ENCRYPT, OP_DECRYPT)),
            rng.getrandbits(128), rng.getrandbits(256),
            rng.choice((128, 256)),
        ))
    sim.add(src)
    sim.add(AesCore("aes_core", req, res))
    sim.add(PortSink("aes_sink", res, _pattern(rng, 0.9)))
    sim.watch(res.valid, "aes.res.valid")
    return sim


@REGISTRY.scenario("axi", tags=("rtl",))
def scenario_axi(engine: str = "levelized", seed: int = 0,
                 stim: int = DEFAULT_STIM, sim: Simulator = None,
                 backend: str = "interp") -> Simulator:
    """AXI-Lite demux (1 master -> 4 slaves) and mux (4 masters -> 1
    slave) under random read/write traffic, plus the Anvil demux."""
    from ..anvil_designs.axi import axi_demux

    sim = sim or Simulator("axi", engine=engine)
    rng = random.Random(seed)

    def load(drv: AxiMasterDriver, n: int):
        for _ in range(n):
            if rng.random() < 0.5:
                drv.write(rng.randrange(1 << 12), rng.randrange(1 << 16))
            else:
                drv.read(rng.randrange(1 << 12))

    dm = AxiPorts("dx.m")
    dslaves = [AxiPorts(f"dx.s{i}") for i in range(4)]
    ddrv = AxiMasterDriver("dx_drv", dm)
    load(ddrv, stim // 4)
    sim.add(ddrv)
    sim.add(AxiLiteDemux("dx_demux", dm, dslaves))
    for i, sp in enumerate(dslaves):
        sim.add(RegFileSlave(f"dx_rf{i}", sp))

    mmasters = [AxiPorts(f"mx.m{i}") for i in range(4)]
    ms = AxiPorts("mx.s")
    for i, mp in enumerate(mmasters):
        drv = AxiMasterDriver(f"mx_drv{i}", mp)
        load(drv, stim // 8)
        sim.add(drv)
    sim.add(AxiLiteMux("mx_mux", mmasters, ms))
    sim.add(RegFileSlave("mx_rf", ms))
    sim.watch(dm.b.valid, "axi.m.b.valid")
    sim.watch(ms.aw.valid, "axi.s.aw.valid")
    _attach_anvil(
        sim, axi_demux(),
        {"m": {"send": {"aw": lambda r: r.randrange(1 << 12),
                        "w": lambda r: r.randrange(1 << 16)},
               "recv": ["b", "r"]},
         **{f"s{i}": {"recv": ["aw", "w", "ar"]} for i in range(4)}},
        stim // 8, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("mmu", tags=("rtl",))
def scenario_mmu(engine: str = "levelized", seed: int = 0,
                 stim: int = DEFAULT_STIM, sim: Simulator = None,
                 backend: str = "interp") -> Simulator:
    """TLB + page-table walker + backing memory walking a real page
    table under a random (hit-heavy) VPN stream."""
    sim = sim or Simulator("mmu", engine=engine)
    rng = random.Random(seed)
    table = build_page_table(
        {vpn: 0x800 + vpn for vpn in range(0, 64, 3)}
    )
    hq, hs = MessagePort("mmu.hq", 12), MessagePort("mmu.hs", 16)
    tq, ts = MessagePort("mmu.tq", 12), MessagePort("mmu.ts", 16)
    mq, ms = MessagePort("mmu.mq", 16), MessagePort("mmu.ms", 16)
    src = PortSource("mmu_src", hq)
    src.push(*(rng.choice((0, 3, 6, 9, 12, 1)) for _ in range(stim)))
    sim.add(src)
    sim.add(Tlb("mmu_tlb", hq, hs, tq, ts, entries=4))
    sim.add(PageTableWalker("mmu_ptw", tq, ts, mq, ms))
    sim.add(HandshakeMemory("mmu_mem", mq, ms, latency=1,
                            contents=lambda a: table.get(a, 0)))
    sim.add(PortSink("mmu_sink", hs, _pattern(rng, 0.85)))
    sim.watch(hs.data, "mmu.res.data")
    sim.watch(tq.valid, "mmu.walk.valid")
    return sim


@REGISTRY.scenario("pipeline", tags=("rtl",))
def scenario_pipeline(engine: str = "levelized", seed: int = 0,
                      stim: int = DEFAULT_STIM, sim: Simulator = None,
                      backend: str = "interp") -> Simulator:
    """Statically pipelined ALU and systolic array at full throughput,
    plus the Anvil pipelined ALU (II=1: traffic every cycle)."""
    from ..anvil_designs.pipeline import pipelined_alu

    sim = sim or Simulator("pipeline", engine=engine)
    rng = random.Random(seed)
    ai, ao = MessagePort("alu.i", 35), MessagePort("alu.o", 16)
    si, so = MessagePort("sys.i", 16), MessagePort("sys.o", 32)
    asrc = PortSource("alu_src", ai)
    asrc.push(*(alu_pack(rng.randrange(8), rng.randrange(1 << 16),
                         rng.randrange(1 << 16)) for _ in range(stim)))
    ssrc = PortSource("sys_src", si)
    ssrc.push(*(rng.randrange(1 << 16) for _ in range(stim)))
    sim.add(asrc)
    sim.add(PipelinedAlu("alu_dut", ai, ao))
    sim.add(PortSink("alu_sink", ao))
    sim.add(ssrc)
    sim.add(SystolicArray2x2("sys_dut", si, so))
    sim.add(PortSink("sys_sink", so))
    sim.watch(ao.data, "alu.out.data")
    sim.watch(so.data, "sys.out.data")
    _attach_anvil(
        sim, pipelined_alu(),
        {"inp": {"send": {"data": lambda r: alu_pack(
            r.randrange(8), r.randrange(1 << 16), r.randrange(1 << 16))}},
         "out": {"recv": ["data"]}},
        stim, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("sweep", tags=("rtl", "sweep"))
def scenario_sweep(engine: str = "levelized", seed: int = 0,
                   stim: int = DEFAULT_STIM, sim: Simulator = None,
                   backend: str = "interp") -> Simulator:
    """All six mixed families elaborated into one simulator -- the
    'design sweep' shape the harness tables run, and the regime where
    the seed's global fixpoint loop hurts most."""
    sim = sim or Simulator("sweep", engine=engine)
    for builder in (scenario_streams, scenario_memory, scenario_aes,
                    scenario_axi, scenario_mmu, scenario_pipeline):
        builder(engine=engine, seed=seed, stim=stim, sim=sim,
                backend=backend)
    return sim


#: deprecated view kept for one release; use ``repro.api.get_registry()``
SCENARIOS: Dict[str, Callable[..., Simulator]] = {
    "streams": scenario_streams,
    "memory": scenario_memory,
    "aes": scenario_aes,
    "axi": scenario_axi,
    "mmu": scenario_mmu,
    "pipeline": scenario_pipeline,
}


def _deprecated(old: str, new: str):
    warnings.warn(
        f"{old} is deprecated; use {new} (see repro.api)",
        DeprecationWarning, stacklevel=3,
    )


def build_scenario(name: str, engine: str = "levelized", seed: int = 0,
                   stim: int = DEFAULT_STIM,
                   backend: str = "interp") -> Simulator:
    """Deprecated shim: kwargs-era entry point over the registry."""
    _deprecated("build_scenario()",
                "Session.build(name) / get_registry().build(name, config)")
    return REGISTRY.build(name, SimConfig(
        engine=engine, seed=seed, stim=stim, backend=backend))


def build_sweep(engine: str = "levelized", seed: int = 0,
                stim: int = DEFAULT_STIM,
                backend: str = "interp") -> Simulator:
    """Deprecated shim: the registered ``sweep`` scenario."""
    _deprecated("build_sweep()", 'Session.build("sweep")')
    return REGISTRY.build("sweep", SimConfig(
        engine=engine, seed=seed, stim=stim, backend=backend))


# ---------------------------------------------------------------------------
# the Anvil-only scenarios: compiled processes, no baseline RTL
# ---------------------------------------------------------------------------
@REGISTRY.scenario("anvil_streams", tags=("anvil",))
def anvil_streams(engine: str = "levelized", seed: int = 0,
                  stim: int = DEFAULT_STIM, sim: Simulator = None,
                  backend: str = "interp") -> Simulator:
    """All three compiled stream cells under random traffic with bursty
    consumers."""
    from ..anvil_designs.streams import (
        fifo_buffer,
        passthrough_stream_fifo,
        spill_register,
    )

    sim = sim or Simulator("anvil_streams", engine=engine)
    rng = random.Random(seed)
    stimuli = {"inp": {"send": {"data": lambda r: r.randrange(256)}},
               "out": {"recv": ["data"]}}
    _attach_anvil(sim, fifo_buffer(depth=4), stimuli, stim, rng,
                  backend=backend)
    _attach_anvil(sim, spill_register(), stimuli, stim, rng,
                  backend=backend)
    _attach_anvil(sim, passthrough_stream_fifo(), stimuli, stim, rng,
                  backend=backend)
    return sim


@REGISTRY.scenario("anvil_memory", tags=("anvil",))
def anvil_memory(engine: str = "levelized", seed: int = 0,
                 stim: int = DEFAULT_STIM, sim: Simulator = None,
                 backend: str = "interp") -> Simulator:
    """Fixed-latency and cached compiled memories under random requests
    (the cached one exercises branches: hit and miss paths)."""
    from ..anvil_designs.memory import cached_memory_process, memory_process

    sim = sim or Simulator("anvil_memory", engine=engine)
    rng = random.Random(seed)
    _attach_anvil(
        sim, memory_process(latency=2),
        {"host": {"send": {"req": lambda r: r.randrange(256)},
                  "recv": ["res"]}},
        stim, rng, backend=backend,
    )
    _attach_anvil(
        sim, cached_memory_process(lines=4),
        {"host": {"send": {"req": lambda r: r.randrange(32)},
                  "recv": ["res"]}},
        stim, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("anvil_aes", tags=("anvil",))
def anvil_aes(engine: str = "levelized", seed: int = 0,
              stim: int = DEFAULT_STIM, sim: Simulator = None,
              backend: str = "interp") -> Simulator:
    """The compiled AES core -- by far the largest event graph (the
    14-round key schedule and round functions are fully unrolled), the
    workload where per-event interpretation hurts most."""
    from ..anvil_designs.aes import aes_core
    from ..designs.aes import OP_DECRYPT, OP_ENCRYPT, aes_pack

    sim = sim or Simulator("anvil_aes", engine=engine)
    rng = random.Random(seed)
    jobs = max(stim // 16, 64)
    _attach_anvil(
        sim, aes_core(),
        {"host": {"send": {"req": lambda r: aes_pack(
            r.choice((OP_ENCRYPT, OP_DECRYPT)), r.getrandbits(128),
            r.getrandbits(256), r.choice((128, 256)))},
            "recv": ["res"]}},
        jobs, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("anvil_axi", tags=("anvil",))
def anvil_axi(engine: str = "levelized", seed: int = 0,
              stim: int = DEFAULT_STIM, sim: Simulator = None,
              backend: str = "interp") -> Simulator:
    """Compiled AXI-Lite demux and mux routers under random read/write
    transactions on every leg."""
    from ..anvil_designs.axi import axi_demux, axi_mux

    sim = sim or Simulator("anvil_axi", engine=engine)
    rng = random.Random(seed)
    _attach_anvil(
        sim, axi_demux(),
        {"m": {"send": {"aw": lambda r: r.randrange(1 << 12),
                        "w": lambda r: r.randrange(1 << 16)},
               "recv": ["b", "r"]},
         **{f"s{i}": {"recv": ["aw", "w", "ar"]} for i in range(4)}},
        stim // 4, rng, backend=backend,
    )
    _attach_anvil(
        sim, axi_mux(),
        {**{f"m{i}": {"send": {"aw": lambda r: r.randrange(1 << 12),
                               "w": lambda r: r.randrange(1 << 16)},
                      "recv": ["b", "r"]} for i in range(4)},
         "s": {"recv": ["aw", "w", "ar"]}},
        stim // 8, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("anvil_mmu", tags=("anvil",))
def anvil_mmu(engine: str = "levelized", seed: int = 0,
              stim: int = DEFAULT_STIM, sim: Simulator = None,
              backend: str = "interp") -> Simulator:
    """A *connected* compiled system: the TLB's ``ptw`` endpoint is wired
    to the walker's ``host`` endpoint in one Anvil ``System``; only the
    request stream and the page-table memory are external.  The walker's
    memory responses are preloaded pseudo-PTEs, so walks vary in depth
    deterministically."""
    from ..anvil_designs.mmu import ptw_process, tlb_process
    from ..designs.mmu import PTE_LEAF, PTE_VALID

    sim = sim or Simulator("anvil_mmu", engine=engine)
    rng = random.Random(seed)
    sys_ = System()
    tlb = sys_.add(tlb_process())
    ptw = sys_.add(ptw_process())
    sys_.connect(tlb, "ptw", ptw, "host")
    host_ch = sys_.expose(tlb, "host")
    mem_ch = sys_.expose(ptw, "mem")
    ss = build_simulation(sys_, sim=sim, backend=backend)
    host = ss.external(host_ch)
    host.always_receive("res")
    sim.watch(host.ports["res"].data, f"{sim.name}.anvil_tlb.host.res.data")
    sim.watch(host.ports["res"].valid,
              f"{sim.name}.anvil_tlb.host.res.valid")
    for _ in range(stim):
        host.send("req", rng.choice((0, 3, 6, 9, 12, 1)))
    mem = ss.external(mem_ch)
    mem.always_receive("req")
    for _ in range(stim):
        # random PTEs biased towards valid leaves so walks terminate
        pte = rng.randrange(1 << 12) << 4
        pte |= PTE_VALID | (PTE_LEAF if rng.random() < 0.7 else 0)
        mem.send("res", pte)
    return sim


@REGISTRY.scenario("anvil_pipeline", tags=("anvil",))
def anvil_pipeline(engine: str = "levelized", seed: int = 0,
                   stim: int = DEFAULT_STIM, sim: Simulator = None,
                   backend: str = "interp") -> Simulator:
    """Compiled pipelined ALU and systolic array at full throughput
    (II=1: every event graph iteration overlaps with its successor)."""
    from ..anvil_designs.pipeline import pipelined_alu, systolic_array

    sim = sim or Simulator("anvil_pipeline", engine=engine)
    rng = random.Random(seed)
    _attach_anvil(
        sim, pipelined_alu(),
        {"inp": {"send": {"data": lambda r: alu_pack(
            r.randrange(8), r.randrange(1 << 16), r.randrange(1 << 16))}},
         "out": {"recv": ["data"]}},
        stim, rng, backend=backend,
    )
    _attach_anvil(
        sim, systolic_array(),
        {"inp": {"send": {"data": lambda r: r.randrange(1 << 16)}},
         "out": {"recv": ["data"]}},
        stim, rng, backend=backend,
    )
    return sim


@REGISTRY.scenario("anvil_sweep", tags=("anvil", "sweep"))
def scenario_anvil_sweep(engine: str = "levelized", seed: int = 0,
                         stim: int = DEFAULT_STIM, sim: Simulator = None,
                         backend: str = "interp") -> Simulator:
    """All six compiled families in one simulator -- the backend
    benchmark's sweep shape."""
    sim = sim or Simulator("anvil_sweep", engine=engine)
    for builder in (anvil_streams, anvil_memory, anvil_aes, anvil_axi,
                    anvil_mmu, anvil_pipeline):
        builder(engine=engine, seed=seed, stim=stim, sim=sim,
                backend=backend)
    return sim


# ---------------------------------------------------------------------------
# the Y86-64 CPU workload family (tag: "cpu")
# ---------------------------------------------------------------------------


def _y86_scenario(workload: str, engine: str, seed: int, stim: int,
                  sim: Simulator, backend: str) -> Simulator:
    """One bundled Y86 program run on *both* CPU implementations.

    The RTL 5-stage pipeline executes the program directly; the compiled
    Anvil sequential core executes the same image through its typed
    imem/dmem channels against a :class:`~repro.designs.y86.Y86MemoryServer`.
    The data-array length scales with ``stim`` so sweeps shape work the
    same way they do for the other families, and the values come from
    ``seed`` alone -- engine and backend never see different programs."""
    from ..designs.y86 import Y86PipelineCpu, attach_anvil_y86
    from ..isa.assembler import assemble
    from ..isa.programs import BUNDLED

    sim = sim or Simulator(f"y86_{workload}", engine=engine)
    rng = random.Random(seed)
    n = max(4, min(stim // 250, 16))
    values = [rng.getrandbits(64) for _ in range(n)]
    prog = assemble(BUNDLED[workload](values))
    cpu = sim.add(Y86PipelineCpu(f"y86_{workload}_cpu", prog.image))
    for wire in (cpu.w_pc, cpu.instret_w, cpu.rax, cpu.halted_w):
        sim.watch(wire, f"{sim.name}.{cpu.name}.{wire.name}")
    _core, _server, host = attach_anvil_y86(
        sim, prog.image, backend=backend, name=f"y86_{workload}")
    port = host.ports["ev"]
    label = f"{sim.name}.y86_{workload}_core.host.ev"
    sim.watch(port.data, f"{label}.data")
    sim.watch(port.valid, f"{label}.valid")
    return sim


@REGISTRY.scenario("y86_sum", tags=("cpu",))
def y86_sum(engine: str = "levelized", seed: int = 0,
            stim: int = DEFAULT_STIM, sim: Simulator = None,
            backend: str = "interp") -> Simulator:
    """The CSAPP sum loop over a seeded array, on both Y86 cores."""
    return _y86_scenario("sum", engine, seed, stim, sim, backend)


@REGISTRY.scenario("y86_sort", tags=("cpu",))
def y86_sort(engine: str = "levelized", seed: int = 0,
             stim: int = DEFAULT_STIM, sim: Simulator = None,
             backend: str = "interp") -> Simulator:
    """Signed bubble sort: branch-heavy, with data-dependent control."""
    return _y86_scenario("sort", engine, seed, stim, sim, backend)


@REGISTRY.scenario("y86_memcpy", tags=("cpu",))
def y86_memcpy(engine: str = "levelized", seed: int = 0,
               stim: int = DEFAULT_STIM, sim: Simulator = None,
               backend: str = "interp") -> Simulator:
    """Copy-and-checksum: load/store pairs through the memory stage."""
    return _y86_scenario("memcpy", engine, seed, stim, sim, backend)


#: deprecated view kept for one release; note the registry names these
#: ``anvil_streams`` ... -- this dict keeps the old short keys
ANVIL_SCENARIOS: Dict[str, Callable[..., Simulator]] = {
    "streams": anvil_streams,
    "memory": anvil_memory,
    "aes": anvil_aes,
    "axi": anvil_axi,
    "mmu": anvil_mmu,
    "pipeline": anvil_pipeline,
}


def build_anvil_scenario(name: str, engine: str = "levelized",
                         seed: int = 0, stim: int = DEFAULT_STIM,
                         backend: str = "interp") -> Simulator:
    """Deprecated shim: short-name lookup over the ``anvil_*`` registry
    entries."""
    _deprecated("build_anvil_scenario()",
                'Session.build("anvil_<name>")')
    key = name if name.startswith("anvil_") else f"anvil_{name}"
    return REGISTRY.build(key, SimConfig(
        engine=engine, seed=seed, stim=stim, backend=backend))


def build_anvil_sweep(engine: str = "levelized", seed: int = 0,
                      stim: int = DEFAULT_STIM,
                      backend: str = "interp") -> Simulator:
    """Deprecated shim: the registered ``anvil_sweep`` scenario."""
    _deprecated("build_anvil_sweep()", 'Session.build("anvil_sweep")')
    return REGISTRY.build("anvil_sweep", SimConfig(
        engine=engine, seed=seed, stim=stim, backend=backend))
