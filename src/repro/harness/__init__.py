"""Experiment harness: regenerates every table and figure of the paper.

All four drivers (``generate_table1``, ``generate_table2``,
``generate_figures``, ``appendix_a``) accept a
:class:`~repro.api.SimConfig` (or :class:`~repro.api.Session`) via
``config=``; the loose ``parallel``/``backend`` keywords survive as
compatibility shims.  The workload builders in :mod:`.scenarios`
register with the canonical scenario registry
(:func:`repro.api.get_registry`); the ``SCENARIOS``/``ANVIL_SCENARIOS``
dicts and ``build_*`` helpers re-exported here are deprecated shims
over it.
"""

from .appendix_a import appendix_a
from .figures import (
    figure1,
    figure2_anvil,
    figure2_bsv,
    figure4,
    figure5,
    figure6,
    figure8,
    generate_figures,
)
from .scenarios import (
    ANVIL_SCENARIOS,
    SCENARIOS,
    build_anvil_scenario,
    build_anvil_sweep,
    build_scenario,
    build_sweep,
)
from .table1 import Table1Row, format_table1, generate_table1
from .table2 import generate_table2, stream_fifo_safety

__all__ = [
    "appendix_a", "figure1", "figure2_anvil", "figure2_bsv", "figure4",
    "figure5", "figure6", "figure8", "generate_figures",
    "ANVIL_SCENARIOS", "SCENARIOS", "build_anvil_scenario",
    "build_anvil_sweep", "build_scenario", "build_sweep",
    "Table1Row", "format_table1",
    "generate_table1", "generate_table2", "stream_fifo_safety",
]
