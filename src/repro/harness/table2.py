"""Table 2 + Section 7.2: real-world timing-hazard case studies.

Each case distils one of the paper's open-source issues into a minimal
design and shows (a) the hazard manifesting dynamically in the baseline
and/or (b) Anvil rejecting the unsafe formulation statically while
accepting the contract-respecting one.
"""

from __future__ import annotations

from typing import Dict

from ..core.typecheck import check_process
from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    cycle,
    let,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)
from ..lang.types import Logic
from ..rtl.executors import JobSpec, job_kind


def _req_res(name="ch", until=True):
    return ChannelDef(name, [
        MessageDef("req", Side.RIGHT, Logic(8),
                   LifetimeSpec.until("res") if until
                   else LifetimeSpec.static(1)),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])


def case_opentitan_entropy() -> Dict[str, object]:
    """OpenTitan issue 10983: firmware writes entropy while the pipeline
    state machine is not ready.  In Anvil the write is a message whose
    synchronization *is* the ready handshake -- the unsafe fire-and-forget
    formulation (mutating the staging register before the pipeline
    consumed it) is rejected."""
    ch = _req_res("entropy_ch")
    unsafe = Process("fw_entropy_unsafe")
    unsafe.endpoint("rng", ch, Side.LEFT)
    unsafe.register("entropy", Logic(8))
    # fires the data then immediately overwrites the staging register,
    # without waiting for the pipeline to acknowledge the previous word
    unsafe.loop(
        send("rng", "req", read("entropy"))
        >> set_reg("entropy", read("entropy") + 1)
        >> let("a", recv("rng", "res"), var("a") >> unit())
    )
    safe = Process("fw_entropy_safe")
    safe.endpoint("rng", ch, Side.LEFT)
    safe.register("entropy", Logic(8))
    safe.loop(
        send("rng", "req", read("entropy"))
        >> let("a", recv("rng", "res"),
               var("a") >> set_reg("entropy", read("entropy") + 1))
    )
    ru, rs = check_process(unsafe), check_process(safe)
    return {
        "issue": "OpenTitan entropy source (issue 10983)",
        "unsafe_rejected": not ru.ok,
        "error_kinds": sorted({type(e).kind for e in ru.errors}),
        "safe_accepted": rs.ok,
    }


def case_coyote_two_cycle_valid() -> Dict[str, object]:
    """Coyote issue 78: the completion-queue valid pulses for 2 cycles.
    In Anvil the send's required window is exactly one transfer; sending
    the same message again while the first window is live is a static
    error; the correctly spaced version passes."""
    ch = ChannelDef("cq", [
        MessageDef("cq_wr", Side.RIGHT, Logic(8), LifetimeSpec.static(2)),
    ])
    unsafe = Process("coyote_unsafe")
    unsafe.endpoint("cq", ch, Side.LEFT)
    unsafe.register("v", Logic(8))
    unsafe.loop(
        send("cq", "cq_wr", read("v"))
        >> send("cq", "cq_wr", read("v"))   # double pulse, window overlap
        >> set_reg("v", read("v") + 1)
    )
    safe = Process("coyote_safe")
    safe.endpoint("cq", ch, Side.LEFT)
    safe.register("v", Logic(8))
    safe.loop(
        send("cq", "cq_wr", read("v"))
        >> cycle(2)
        >> set_reg("v", read("v") + 1)
    )
    ru, rs = check_process(unsafe), check_process(safe)
    return {
        "issue": "Coyote 2-cycle cq valid burst (issue 78)",
        "unsafe_rejected": not ru.ok,
        "error_kinds": sorted({type(e).kind for e in ru.errors}),
        "safe_accepted": rs.ok,
    }


def case_ibex_instr_valid() -> Dict[str, object]:
    """ibex commit f5d408d: a missing instr_valid_id signal coupled the
    pipeline stages.  In Anvil the stage-to-stage transfer is a message;
    the handshake cannot be forgotten because it *is* the language
    construct (compare the compiled FSM's handshake ports)."""
    from ..codegen.sysverilog import emit_process

    ch = ChannelDef("stage_ch", [
        MessageDef("instr", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
    ])
    stage = Process("ibex_if_stage")
    stage.endpoint("id", ch, Side.LEFT)
    stage.register("fetched", Logic(8))
    stage.loop(
        set_reg("fetched", read("fetched") + 1)
        >> send("id", "instr", read("fetched"))
    )
    report = check_process(stage)
    sv = emit_process(stage)
    return {
        "issue": "ibex decoupled pipeline stages (commit f5d408d)",
        "safe_accepted": report.ok,
        "valid_generated": "id_instr_valid" in sv,
        "ack_generated": "id_instr_ack" in sv,
    }


def case_snax_alu_handshake() -> Dict[str, object]:
    """snax-cluster PR 163: ALU ready asserted without consulting the
    operand valids.  Anvil's compiled handshake asserts readiness exactly
    at the receiving event -- the generated ack port is driven by the
    FSM, not hand-written."""
    from ..codegen.sysverilog import emit_process

    ch_a = ChannelDef("op_a", [
        MessageDef("data", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
    ])
    ch_b = ChannelDef("op_b", [
        MessageDef("data", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
    ])
    ch_o = ChannelDef("acc", [
        MessageDef("data", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
    ])
    alu = Process("snax_alu")
    alu.endpoint("a", ch_a, Side.RIGHT)
    alu.endpoint("b", ch_b, Side.RIGHT)
    alu.endpoint("o", ch_o, Side.LEFT)
    alu.register("xq", Logic(8))
    alu.register("r", Logic(8))
    # each operand is registered the cycle it arrives: its 1-cycle
    # contract cannot cover waiting for the *other* operand, and the
    # checker enforces exactly that
    alu.loop(
        let("x", recv("a", "data"),
            var("x") >> set_reg("xq", var("x"))
            >> let("y", recv("b", "data"),
                   var("y")
                   >> set_reg("r", read("xq") + var("y"))
                   >> send("o", "data", read("r"))))
    )
    report = check_process(alu)
    sv = emit_process(alu)
    return {
        "issue": "snax-cluster ALU valid-ready fix (PR 163)",
        "safe_accepted": report.ok,
        "both_operand_acks_generated":
            "a_data_ack" in sv and "b_data_ack" in sv,
    }


def case_core2axi_w_valid() -> Dict[str, object]:
    """core2axi commit 25eba94: a missing w_valid assertion.  The Anvil
    AW/W sends *are* the valid assertions; nothing to forget."""
    from ..anvil_designs.axi import axi_demux
    from ..codegen.sysverilog import emit_process

    p = axi_demux(2, name="core2axi_bridge")
    report = check_process(p)
    sv = emit_process(p)
    return {
        "issue": "core2axi missing w_valid (commit 25eba94)",
        "safe_accepted": report.ok,
        "w_valid_generated": "s0_w_valid" in sv and "s1_w_valid" in sv,
    }


#: the Table 2 case studies by name -- the declarative surface the
#: ``table2_case`` job kind dispatches on (``stream_fifo`` is special:
#: it simulates and therefore consumes the config's backend)
CASES = {
    "opentitan": case_opentitan_entropy,
    "coyote": case_coyote_two_cycle_valid,
    "ibex": case_ibex_instr_valid,
    "snax": case_snax_alu_handshake,
    "core2axi": case_core2axi_w_valid,
}


@job_kind("table2_case")
def _table2_case_job(spec: JobSpec) -> Dict[str, object]:
    """Run one named case study (any executor; nothing to pickle but
    the name and the config)."""
    case = spec.param("case")
    if case == "stream_fifo":
        return stream_fifo_safety(backend=spec.config.backend,
                                  engine=spec.config.engine)
    return CASES[case]()


def generate_table2(parallel=None, backend: str = None,
                    config=None) -> Dict[str, Dict[str, object]]:
    """All five case studies plus the Section 7.2 stream-FIFO dynamic
    comparison; independent, so each runs as one declarative
    ``table2_case`` :class:`~repro.rtl.executors.JobSpec` on the
    configured executor.  ``config`` (a :class:`~repro.api.SimConfig`
    or :class:`~repro.api.Session`) supplies the FSM execution backend
    of the dynamic case, the executor and the pool size; the
    ``parallel``/``backend`` keywords survive as a compatibility shim
    and win over the config when given."""
    from ..api import pool_args, resolve_config
    from ..rtl.batch import run_batch

    cfg = resolve_config(config, parallel=parallel, backend=backend)
    return run_batch(
        [JobSpec(kind="table2_case", name=name, config=cfg,
                 params=(("case", name),))
         for name in [*CASES, "stream_fifo"]],
        **pool_args(cfg),
    )


def stream_fifo_safety(backend: str = "interp",
                       engine: str = "levelized") -> Dict[str, object]:
    """Section 7.2: the stream FIFO's documented-but-unenforced write
    guard -- the baseline overflows dynamically, the compiled Anvil
    twin (run on ``backend``/``engine``) never acknowledges an
    overflowing push, so the same traffic arrives intact."""
    from ..codegen.simfsm import MessagePort, build_simulation
    from ..designs.streams import PassthroughStreamFifo
    from ..lang.process import System
    from ..rtl.simulator import Simulator
    from ..rtl.testing import PortSink, PortSource

    sim = Simulator(engine=engine)
    inp, out = MessagePort("in", 8), MessagePort("out", 8)
    dut = PassthroughStreamFifo("fifo", inp, out, depth=2,
                                guard_writes=False)
    src, sink = PortSource("src", inp), PortSink("sink", out,
                                                 lambda c: c > 10)
    src.push(*range(1, 9))
    for m in (src, dut, sink):
        sim.add(m)
    sim.run(60)
    from ..anvil_designs.streams import passthrough_stream_fifo
    anvil_report = check_process(passthrough_stream_fifo(depth=2))
    # the dynamic side of the comparison: same stall, no data loss
    sys_ = System()
    inst = sys_.add(passthrough_stream_fifo(depth=2))
    in_ch = sys_.expose(inst, "inp")
    out_ch = sys_.expose(inst, "out")
    ss = build_simulation(sys_, backend=backend, engine=engine)
    ext_in, ext_out = ss.external(in_ch), ss.external(out_ch)
    for v in range(1, 9):
        ext_in.send("data", v)
    ss.sim.on_cycle(lambda c: ext_out.always_receive("data", c > 10))
    ss.sim.run(60)
    anvil_received = [v for _, v in ext_out.received.get("data", [])]
    return {
        "baseline_overflows": dut.overflows,
        "baseline_assertions": list(dut.assertions),
        "baseline_data_lost":
            [v for _, v in sink.received] != list(range(1, 9)),
        "anvil_guard_enforced_by_construction": anvil_report.ok,
        "anvil_data_lost": anvil_received != list(range(1, 9)),
        "anvil_backend": backend,
    }
