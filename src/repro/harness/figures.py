"""Figure harnesses: 1 (memory hazard), 2 (BSV schedules), 4 (static vs
dynamic cache contract), 5 (compile-time checks), 6 (Encrypt lifetimes /
event graph), 8 (event-graph optimizations)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..bsv import Rule, RuleScheduler, RuleState, TimingContractMonitor
from ..codegen.simfsm import build_simulation
from ..core.graph_builder import GraphBuilder
from ..core.optimize import optimize
from ..core.typecheck import check_process
from ..designs.memory import NaiveTop, RawMemory
from ..lang.process import Process, System
from ..lang.terms import (
    cycle,
    let,
    par,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)
from ..lang.types import Logic
from ..rtl.executors import JobSpec, job_kind
from ..rtl.simulator import Simulator


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------
def figure1(cycles: int = 16, engine: str = "levelized") -> Dict[str, object]:
    """The motivating timing hazard: Top misreading a 2-cycle memory."""
    sim = Simulator("fig1", engine=engine)
    mem = RawMemory("mem", latency=2)
    top = NaiveTop("top", mem)
    sim.add(mem)
    sim.add(top)
    sim.watch(mem.req, "req")
    sim.watch(mem.inp, "input")
    sim.watch(mem.out, "output")
    sim.run(cycles)
    observed = [v for _, v in top.reads]
    expected = list(range(len(observed)))
    return {
        "waveform": sim.waveform.render(),
        "observed": observed,
        "expected": expected,
        "hazard": observed != expected,
    }


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------
def _bsv_top(priority: List[str]):
    """The Figure 2 BSV design: read a cache, enqueue the value to a FIFO.

    Rules specify per-cycle behaviour only; the schedule decides order.
    The cache takes 2 cycles and requires the address stable until the
    response -- an inter-cycle contract no BSV schedule can see."""
    state = RuleState(address=0, data=0, have_data=0, cache_busy=0,
                      cache_cnt=0, cache_addr=0, pending_req=0)
    monitor = TimingContractMonitor()
    fifo: List[Tuple[int, int]] = []   # (address looked up, value enqueued)
    cycle_ref = [0]

    def cache_model(state: RuleState):
        """2-cycle cache shared with the rules via registers."""
        if state.read("cache_busy"):
            if state.read("cache_cnt") == 0:
                state.write("data", state.read("cache_addr") + 0x10)
                state.write("have_data", 1)
                state.write("cache_busy", 0)
                monitor.release("address")
            else:
                state.write("cache_cnt", state.read("cache_cnt") - 1)
                monitor.observe(cycle_ref[0], "address",
                                state.read("address"))
        elif state.read("pending_req"):
            monitor.pin("address", state.read("address"),
                        "cache processing the lookup")
            state.write("cache_addr", state.read("address"))
            state.write("cache_busy", 1)
            state.write("cache_cnt", 1)
            state.write("pending_req", 0)

    rules = [
        Rule("send_cache_req",
             lambda s: not s.read("cache_busy") and not s.read("have_data")
             and not s.read("pending_req"),
             lambda s: s.write("pending_req", 1)),
        Rule("change_address",
             lambda s: s.read("pending_req") == 0 or True,
             lambda s: s.write("address", s.read("address") + 1)),
        Rule("enq_fifo",
             lambda s: bool(s.read("have_data")),
             lambda s: (s.call("fifo.enq", s.read("data")),
                        s.write("have_data", 0))),
    ]
    sched = RuleScheduler(state, rules, priority)
    sched.on_method("fifo.enq",
                    lambda v: fifo.append((state.read("cache_addr"), v)))

    def run(cycles: int):
        for _ in range(cycles):
            cache_model(state)
            state.commit()
            sched.step()
            cycle_ref[0] = sched.cycle
    return run, monitor, fifo, sched


def figure2_bsv(cycles: int = 24) -> Dict[str, object]:
    """Run the three BSV schedules of Figure 2 under the contract
    monitor.  All are conflict-free; the ones that mutate the address
    mid-lookup violate the inter-cycle contract."""
    out = {}
    schedules = {
        "schedule1": ["send_cache_req", "change_address", "enq_fifo"],
        "schedule2": ["change_address", "send_cache_req", "enq_fifo"],
        "schedule3": ["send_cache_req", "enq_fifo", "change_address"],
    }
    for name, priority in schedules.items():
        run, monitor, fifo, sched = _bsv_top(priority)
        run(cycles)
        out[name] = {
            "violations": list(monitor.violations),
            "timing_safe": monitor.ok,
            "enqueued": list(fifo),
        }
    return out


def figure2_anvil() -> Dict[str, object]:
    """The same three designs in Anvil: two rejected statically with the
    paper's exact error classes, the registered version accepted."""
    from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side

    cache_ch = ChannelDef("cache_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])
    fifo_ch = ChannelDef("fifo_ch", [
        MessageDef("enq_req", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
    ])

    def make(body, name):
        p = Process(name)
        p.endpoint("cache", cache_ch, Side.LEFT)
        p.endpoint("fifo", fifo_ch, Side.LEFT)
        p.register("address", Logic(8))
        p.register("enq_data", Logic(8))
        p.loop(body)
        return check_process(p)

    direct = make(
        send("cache", "req", read("address"))
        >> let("d", recv("cache", "res"),
               var("d")
               >> par(set_reg("address", read("address") + 1),
                      send("fifo", "enq_req", var("d")))),
        "forward_unregistered",
    )
    early = make(
        send("cache", "req", read("address"))
        >> set_reg("address", read("address") + 1)
        >> let("d", recv("cache", "res"),
               var("d") >> set_reg("enq_data", var("d"))
               >> send("fifo", "enq_req", read("enq_data"))),
        "early_address_mutation",
    )
    safe = make(
        send("cache", "req", read("address"))
        >> let("d", recv("cache", "res"),
               var("d")
               >> par(set_reg("address", read("address") + 1),
                      set_reg("enq_data", var("d")))
               >> send("fifo", "enq_req", read("enq_data"))),
        "registered_forward",
    )
    return {
        "forward_unregistered": {
            "verdict": "rejected",
            "errors": [type(e).kind for e in direct.errors],
        },
        "early_address_mutation": {
            "verdict": "rejected",
            "errors": [type(e).kind for e in early.errors],
        },
        "registered_forward": {
            "verdict": "accepted" if safe.ok else "rejected",
            "errors": [],
        },
    }


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------
def figure4(addresses=None, cycles: int = 200,
            backend: str = "interp",
            engine: str = "levelized") -> Dict[str, object]:
    """Static vs dynamic contract on the cached memory."""
    from ..anvil_designs.memory import (
        cached_memory_process,
        cached_memory_static_process,
    )
    addresses = addresses or [5, 5, 9, 9, 5]

    def drive(factory):
        sys_ = System()
        inst = sys_.add(factory())
        ch = sys_.expose(inst, "host")
        ss = build_simulation(sys_, backend=backend, engine=engine)
        ext = ss.external(ch)
        ext.always_receive("res")
        for a in addresses:
            ext.send("req", a)
        ss.sim.run(cycles)
        reqs, ress = ext.sent.get("req", []), ext.received.get("res", [])
        return [r[0] - q[0] for q, r in zip(reqs, ress)]

    dynamic = drive(cached_memory_process)
    static = drive(cached_memory_static_process)
    return {
        "addresses": addresses,
        "dynamic_latencies": dynamic,
        "static_latencies": static,
        "dynamic_total": sum(dynamic),
        "static_total": sum(static),
        "speedup": sum(static) / max(sum(dynamic), 1),
    }


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------
def figure5() -> Dict[str, object]:
    """Derived action sequences + contract checks for Top_Unsafe/Top_Safe."""
    from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side

    mem_ch = ChannelDef("mem_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.static(2)),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])
    cache_ch = ChannelDef("cache_ch", [
        MessageDef("req", Side.RIGHT, Logic(8), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(8), LifetimeSpec.static(1)),
    ])

    unsafe = Process("Top_Unsafe")
    unsafe.endpoint("mem", mem_ch, Side.LEFT)
    unsafe.register("address", Logic(8))
    unsafe.loop(
        send("mem", "req", read("address"))
        >> set_reg("address", read("address") + 1)
        >> let("d", recv("mem", "res"), var("d") >> unit())
    )
    safe = Process("Top_Safe")
    safe.endpoint("cache", cache_ch, Side.LEFT)
    safe.register("address", Logic(8))
    safe.register("enq_data", Logic(8))
    safe.loop(
        send("cache", "req", read("address"))
        >> let("d", recv("cache", "res"),
               var("d")
               >> par(set_reg("address", read("address") + 1),
                      set_reg("enq_data", var("d"))))
    )
    r_unsafe = check_process(unsafe)
    r_safe = check_process(safe)
    return {
        "Top_Unsafe": {
            "decision": "UNSAFE" if not r_unsafe.ok else "SAFE",
            "checks": [str(e) for e in r_unsafe.errors],
        },
        "Top_Safe": {
            "decision": "SAFE" if r_safe.ok else "UNSAFE",
            "checks": [],
        },
    }


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------
def figure6() -> Dict[str, object]:
    """The Encrypt process: inferred lifetimes/loans and the event graph."""
    from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
    from ..lang.terms import if_, lit

    encrypt_ch = ChannelDef("encrypt_ch", [
        MessageDef("enc_req", Side.RIGHT, Logic(8),
                   LifetimeSpec.until("enc_res")),
        MessageDef("enc_res", Side.LEFT, Logic(8),
                   LifetimeSpec.until("enc_req")),
    ])
    rng_ch = ChannelDef("rng_ch", [
        MessageDef("rng_req", Side.RIGHT, Logic(8), LifetimeSpec.static(1)),
        MessageDef("rng_res", Side.LEFT, Logic(8), LifetimeSpec.static(2)),
    ])
    p = Process("Encrypt")
    p.endpoint("ch1", encrypt_ch, Side.RIGHT)
    p.endpoint("ch2", rng_ch, Side.RIGHT)
    p.register("rd1_ctext", Logic(8))
    p.register("r2_key", Logic(8))
    p.loop(
        let("ptext", recv("ch1", "enc_req"),
        let("noise", recv("ch2", "rng_req"),
        let("r1_key", lit(25, 8),
            var("ptext")
            >> if_(var("ptext").ne(0),
                   set_reg("rd1_ctext",
                           (var("ptext") ^ var("r1_key")) + var("noise")),
                   set_reg("rd1_ctext", var("ptext")))
            >> cycle(1)
            >> par(set_reg("r2_key", var("r1_key") ^ var("noise")),
                   send("ch2", "rng_res", read("r2_key")))
            >> send("ch1", "enc_res", read("rd1_ctext"))
            >> send("ch1", "enc_res", var("r1_key")))))
    )
    report = check_process(p)
    built = GraphBuilder(p, p.threads[0]).build(1)
    lifetimes = [
        f"{u.context}: value live [e{u.value.start}, {u.value.end}); "
        f"needed [e{u.window_start}, {u.window_end})"
        for u in built.uses
    ]
    return {
        "decision": "UNSAFE" if not report.ok else "SAFE",
        "errors": [str(e) for e in report.errors],
        "lifetimes": lifetimes,
        "event_graph_dot": built.graph.to_dot(),
        "event_count": len(built.graph),
    }


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------
#: figure name -> harness function; the declarative surface the
#: ``figure`` job kind dispatches on (figures 1 and 4 simulate and
#: therefore consume the config's engine; figure 4 also its backend)
FIGURES = {
    "figure1": figure1,
    "figure2_bsv": figure2_bsv,
    "figure2_anvil": figure2_anvil,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
}


@job_kind("figure")
def _figure_job(spec: JobSpec) -> Dict[str, object]:
    """Run one named figure harness (any executor)."""
    name = spec.param("figure")
    if name == "figure1":
        return figure1(engine=spec.config.engine)
    if name == "figure4":
        return figure4(backend=spec.config.backend,
                       engine=spec.config.engine)
    if name == "figure8":
        return figure8()       # defined below FIGURES; looked up lazily
    return FIGURES[name]()


def generate_figures(parallel=None, backend: str = None,
                     config=None) -> Dict[str, object]:
    """Every figure harness as one sweep of declarative ``figure``
    :class:`~repro.rtl.executors.JobSpec` jobs (each figure builds its
    own simulators/processes, so the jobs are independent; the
    ``process`` executor runs them on real cores, ``thread`` remains the
    GIL-bound compatibility reference).  ``config`` (a
    :class:`~repro.api.SimConfig` or :class:`~repro.api.Session`)
    supplies the FSM execution backend wherever a figure simulates a
    compiled process (figure 4), the executor and the pool size; the
    ``parallel``/``backend`` keywords survive as a compatibility shim
    and win over the config when given."""
    from ..api import pool_args, resolve_config
    from ..rtl.batch import run_batch

    cfg = resolve_config(config, parallel=parallel, backend=backend)
    return run_batch(
        [JobSpec(kind="figure", name=name, config=cfg,
                 params=(("figure", name),))
         for name in [*FIGURES, "figure8"]],
        **pool_args(cfg),
    )


def figure8() -> Dict[str, object]:
    """Optimization-pass statistics over every compiled design."""
    from ..anvil_designs.aes import aes_core
    from ..anvil_designs.axi import axi_demux, axi_mux
    from ..anvil_designs.memory import cached_memory_process
    from ..anvil_designs.mmu import ptw_process, tlb_process
    from ..anvil_designs.pipeline import pipelined_alu, systolic_array
    from ..anvil_designs.streams import (
        fifo_buffer,
        passthrough_stream_fifo,
        spill_register,
    )
    out = {}
    for factory in (fifo_buffer, spill_register, passthrough_stream_fifo,
                    tlb_process, ptw_process, aes_core, axi_demux, axi_mux,
                    pipelined_alu, systolic_array, cached_memory_process):
        proc = factory()
        per_thread = []
        for thread in proc.threads:
            built = GraphBuilder(proc, thread).build(1)
            before = len(built.graph)
            opt, _, stats = optimize(built.graph)
            per_thread.append({
                "before": before,
                "after": len(opt),
                "removed": dict(stats.removed),
            })
        out[proc.name] = per_thread
    return out
