"""Table 1: area, power, fmax and latency for the ten evaluation designs.

For every design the harness:

1. costs the hand-written baseline inventory and the compiled Anvil
   process with the same gate library;
2. runs a standard workload on the *simulated* Anvil design and measures
   switching activity for the dynamic-power estimate;
3. records cycle latency of both implementations (always equal -- the
   zero-latency-overhead claim).
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..anvil_designs import axi as anv_axi
from ..anvil_designs import mmu as anv_mmu
from ..anvil_designs import pipeline as anv_pipeline
from ..anvil_designs import streams as anv_streams
from ..anvil_designs.aes import aes_core
from ..codegen.simfsm import build_simulation, compile_process
from ..lang.process import System
from ..rtl.executors import JobSpec, job_kind
from ..synth import baselines, estimate_compiled
from ..synth.cost import CostReport


class Table1Row(NamedTuple):
    design: str
    base_area: float
    anvil_area: float
    base_power: float
    anvil_power: float
    base_fmax: float
    anvil_fmax: float
    latency: str
    latency_overhead: int

    @property
    def area_overhead(self) -> float:
        return (self.anvil_area - self.base_area) / self.base_area * 100

    @property
    def power_overhead(self) -> float:
        return (self.anvil_power - self.base_power) / self.base_power * 100


def _activity(factory, endpoint_stimuli, cycles=150, backend="interp",
              engine="levelized", **kw) -> float:
    """Toggles per cycle of the compiled design under a workload."""
    sys_ = System()
    inst = sys_.add(factory(**kw))
    chans = {}
    for ep in list(inst.process.endpoints):
        chans[ep] = sys_.expose(inst, ep)
    ss = build_simulation(sys_, backend=backend, engine=engine)
    for ep, stim in endpoint_stimuli.items():
        ext = ss.external(chans[ep])
        for msg, values in stim.get("send", {}).items():
            for v in values:
                ext.send(msg, v)
        for msg in stim.get("recv", []):
            ext.always_receive(msg)
    ss.sim.run(cycles)
    return ss.sim.total_activity() / max(ss.sim.cycle, 1)


def _spec_rows() -> List[dict]:
    from ..designs.aes import OP_DECRYPT, OP_ENCRYPT, aes_pack

    k = 0x000102030405060708090A0B0C0D0E0F
    pt = 0x00112233445566778899AABBCCDDEEFF
    return [
        dict(
            name="FIFO Buffer(SV)",
            factory=lambda: anv_streams.fifo_buffer(depth=4, width=32),
            baseline=lambda: baselines.fifo_buffer(4, 32),
            stimuli={"inp": {"send": {"data": list(range(40))}},
                     "out": {"recv": ["data"]}},
            latency="dyn",
        ),
        dict(
            name="Spill Register(SV)",
            factory=anv_streams.spill_register,
            baseline=baselines.spill_register,
            stimuli={"inp": {"send": {"data": list(range(40))}},
                     "out": {"recv": ["data"]}},
            latency="dyn",
        ),
        dict(
            name="Passthrough Stream FIFO(SV)",
            factory=anv_streams.passthrough_stream_fifo,
            baseline=baselines.passthrough_stream_fifo,
            stimuli={"inp": {"send": {"data": list(range(40))}},
                     "out": {"recv": ["data"]}},
            latency="1",
        ),
        dict(
            name="CVA6 Translation Lookaside Buffer(SV)",
            factory=anv_mmu.tlb_process,
            baseline=baselines.tlb,
            stimuli={"host": {"send": {"req": [1, 2, 1, 2, 3] * 4},
                              "recv": ["res"]},
                     "ptw": {"recv": ["req"]}},
            latency="dyn",
        ),
        dict(
            name="CVA6 Page Table Walker(SV)",
            factory=anv_mmu.ptw_process,
            baseline=baselines.ptw,
            stimuli={"host": {"send": {"req": [0x123, 0x200] * 5},
                              "recv": ["res"]},
                     "mem": {"recv": ["req"]}},
            latency="dyn",
        ),
        dict(
            name="AES Cipher Core(SV)",
            factory=aes_core,
            baseline=baselines.aes_core,
            stimuli={"host": {"send": {"req": [
                aes_pack(OP_ENCRYPT, pt, k, 128),
                aes_pack(OP_DECRYPT, pt, k, 128),
            ]}, "recv": ["res"]}},
            latency="dyn",
        ),
        dict(
            name="AXI-Lite Demux Router(SV)",
            factory=anv_axi.axi_demux,
            baseline=baselines.axi_demux,
            stimuli={"m": {"send": {"aw": [0x010, 0x410],
                                    "w": [0xAB, 0xCD]},
                           "recv": ["b", "r"]},
                     **{f"s{i}": {"recv": ["aw", "w", "ar"]}
                        for i in range(4)}},
            latency="dyn",
        ),
        dict(
            name="AXI-Lite Mux Router(SV)",
            factory=anv_axi.axi_mux,
            baseline=baselines.axi_mux,
            stimuli={**{f"m{i}": {"send": {"aw": [i], "w": [i]},
                                  "recv": ["b", "r"]}
                        for i in range(4)},
                     "s": {"recv": ["aw", "w", "ar"]}},
            latency="dyn",
        ),
        dict(
            name="Pipelined ALU(Filament)",
            factory=anv_pipeline.pipelined_alu,
            baseline=baselines.pipelined_alu,
            stimuli={"inp": {"send": {"data": list(range(30))}},
                     "out": {"recv": ["data"]}},
            latency="1",
        ),
        dict(
            name="Systolic Array(Filament)",
            factory=anv_pipeline.systolic_array,
            baseline=baselines.systolic_array,
            stimuli={"inp": {"send": {"data": list(range(30))}},
                     "out": {"recv": ["data"]}},
            latency="1",
        ),
    ]


def _row(spec: dict, fast: bool, backend: str = "interp",
         engine: str = "levelized") -> Table1Row:
    """One Table 1 row: cost both implementations, simulate activity."""
    base: CostReport = spec["baseline"]()
    proc = spec["factory"]()
    anv = estimate_compiled(compile_process(proc))
    port_toggles = 0.0 if fast else _activity(
        spec["factory"], spec["stimuli"], backend=backend, engine=engine
    )
    # port toggles seed the activity estimate; internal nodes switch
    # in proportion to the logic they feed (activity density model)
    toggles = port_toggles + anv.area * 0.06
    base_toggles = (
        port_toggles * (base.area / max(anv.area, 1.0))
        + base.area * 0.06
    )
    freq = min(base.fmax, anv.fmax) / 2.0
    return Table1Row(
        design=spec["name"],
        base_area=base.area,
        anvil_area=anv.area,
        base_power=base.power(base_toggles, freq),
        anvil_power=anv.power(toggles, freq),
        base_fmax=base.fmax,
        anvil_fmax=anv.fmax,
        latency=spec["latency"],
        latency_overhead=0,   # asserted by the equivalence test suite
    )


@job_kind("table1_row")
def _table1_row_job(spec: JobSpec) -> Table1Row:
    """Recompute one Table 1 row from its declarative description --
    the row index into :func:`_spec_rows` plus the config's engine and
    backend -- so the job ships to any executor, including the process
    pool."""
    rows = _spec_rows()
    return _row(rows[spec.param("index")], spec.param("fast", False),
                spec.config.backend, spec.config.engine)


def generate_table1(fast: bool = False, parallel=None,
                    backend: str = None, config=None) -> List[Table1Row]:
    """Compute every row of Table 1.

    Rows are independent (each builds its own processes and simulators),
    so each becomes one declarative ``table1_row``
    :class:`~repro.rtl.executors.JobSpec` -- an index into the row spec
    table plus the resolved config -- and the list runs as one sweep on
    the configured executor (``process`` buys real multi-core speedup;
    ``thread`` remains the GIL-bound compatibility reference).
    ``config`` (a :class:`~repro.api.SimConfig` or
    :class:`~repro.api.Session`) supplies the FSM execution backend of
    the activity simulations, the executor and the pool size; the
    ``parallel``/``backend`` keywords survive as a compatibility shim
    and win over the config when given.  Results are backend- and
    executor-independent, only the wall-clock changes."""
    from ..api import pool_args, resolve_config
    from ..rtl.batch import run_batch

    cfg = resolve_config(config, parallel=parallel, backend=backend)
    specs = _spec_rows()
    results = run_batch(
        [JobSpec(kind="table1_row", name=spec["name"], config=cfg,
                 params=(("index", i), ("fast", fast)))
         for i, spec in enumerate(specs)],
        **pool_args(cfg),
    )
    return [results[spec["name"]] for spec in specs]


def format_table1(rows: List[Table1Row]) -> str:
    lines = [
        f"{'Design':40s} {'Area(b)':>9} {'Area(A)':>9} {'ovh':>7} "
        f"{'P(b)mW':>8} {'P(A)mW':>8} {'ovh':>7} "
        f"{'fmax(b)':>8} {'fmax(A)':>8} {'Lat':>4} {'+Lat':>5}"
    ]
    for r in rows:
        lines.append(
            f"{r.design:40s} {r.base_area:9.0f} {r.anvil_area:9.0f} "
            f"{r.area_overhead:+6.1f}% {r.base_power:8.3f} "
            f"{r.anvil_power:8.3f} {r.power_overhead:+6.1f}% "
            f"{r.base_fmax:8.0f} {r.anvil_fmax:8.0f} {r.latency:>4} "
            f"{r.latency_overhead:5d}"
        )
    sv_rows = rows[:8]
    avg_area = sum(r.area_overhead for r in sv_rows) / len(sv_rows)
    avg_power = sum(r.power_overhead for r in sv_rows) / len(sv_rows)
    lines.append(
        f"Average overhead vs SystemVerilog baselines: "
        f"Area={avg_area:+.2f}%, Power={avg_power:+.2f}%"
    )
    fil = rows[8:]
    avg_fa = sum(r.area_overhead for r in fil) / len(fil)
    lines.append(
        f"Average overhead vs Filament baselines: Area={avg_fa:+.2f}%"
    )
    return "\n".join(lines)
