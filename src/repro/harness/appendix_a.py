"""Appendix A: language-based vs verification-based hazard detection.

Listing 1 (grandchild/child/Top): the child forwards ``*r & d`` whose
lifetime is one cycle, but the Top-facing contract requires it to live
until the response -- Anvil rejects it in milliseconds, modularly (the
child alone).

Listing 2 (the SystemVerilog formulation with an assertion): bounded
model checking must chase the concrete state space, which the 32-bit
counter makes astronomically large; the checker exhausts its budget
without finding the violation.
"""

from __future__ import annotations

import time
from typing import Dict

from ..core.typecheck import check_process
from ..errors import ValueNotLiveError
from ..lang.channels import ChannelDef, LifetimeSpec, MessageDef, Side
from ..lang.process import Process
from ..lang.terms import (
    let,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)
from ..lang.types import Logic
from ..rtl.executors import JobSpec, job_kind
from ..verif import Assertion, BoundedModelChecker, TransitionSystem


def listing1_channels():
    ch = ChannelDef("ch", [
        MessageDef("data", Side.RIGHT, Logic(1), LifetimeSpec.until("res")),
        MessageDef("res", Side.LEFT, Logic(1), LifetimeSpec.static(1)),
    ])
    ch_s = ChannelDef("ch_s", [
        MessageDef("data", Side.RIGHT, Logic(1), LifetimeSpec.static(1)),
    ])
    return ch, ch_s


def listing1_child() -> Process:
    """The paper's ``child``: sends ``*r & d`` where ``d`` only lives one
    cycle but the contract demands liveness until ``res``."""
    ch, ch_s = listing1_channels()
    child = Process("child")
    child.endpoint("ep", ch, Side.LEFT)        # towards Top
    child.endpoint("ep_s", ch_s, Side.RIGHT)   # from grandchild
    child.register("r", Logic(1))
    child.loop(
        set_reg("r", ~read("r"))
        >> let("d", recv("ep_s", "data"),
               var("d")
               >> send("ep", "data", read("r") & var("d"))
               >> let("_", recv("ep", "res"), unit()))
    )
    return child


def listing1_child_safe() -> Process:
    """The contract-respecting repair: register ``d`` on arrival, send
    the registered copy -- register reads live until the next mutation,
    which the loop structure puts after the response."""
    ch, ch_s = listing1_channels()
    child = Process("child_safe")
    child.endpoint("ep", ch, Side.LEFT)
    child.endpoint("ep_s", ch_s, Side.RIGHT)
    child.register("r", Logic(1))
    child.register("dq", Logic(1))
    child.loop(
        let("d", recv("ep_s", "data"),
            var("d") >> set_reg("dq", var("d")))
        >> send("ep", "data", read("r") & read("dq"))
        >> let("_", recv("ep", "res"),
               var("_") >> set_reg("r", ~read("r")))
    )
    return child


def anvil_side(backend: str = "interp",
               engine: str = "levelized") -> Dict[str, object]:
    t0 = time.time()
    report = check_process(listing1_child())
    elapsed = time.time() - t0
    safe = listing1_child_safe()
    safe_report = check_process(safe)
    # the accepted repair also *runs*: simulate it end-to-end on the
    # selected FSM execution backend
    from ..codegen.simfsm import build_simulation
    from ..lang.process import System

    sys_ = System()
    inst = sys_.add(safe)
    top_ch = sys_.expose(inst, "ep")
    gc_ch = sys_.expose(inst, "ep_s")
    ss = build_simulation(sys_, backend=backend, engine=engine)
    gc = ss.external(gc_ch)
    top = ss.external(top_ch)
    for i in range(16):
        gc.send("data", i & 1)
    top.always_receive("data")
    for _ in range(16):
        top.send("res", 0)
    ss.sim.run(80)
    transfers = len(top.received.get("data", []))
    return {
        "verdict": "rejected" if not report.ok else "accepted",
        "error": str(report.errors[0]) if report.errors else "",
        "value_not_live": any(
            isinstance(e, ValueNotLiveError) for e in report.errors
        ),
        "seconds": elapsed,
        "modular": True,   # only `child` was examined
        "safe_variant_accepted": safe_report.ok,
        "safe_variant_transfers": transfers,
        "backend": backend,
    }


def listing2_system(counter_bits: int = 32) -> TransitionSystem:
    """Listing 2 as a transition system: grandchild counts; its data bit
    flips once the counter passes 0x100000; child forwards ``r & d`` while
    Top holds the value for three cycles and asserts stability."""
    threshold = 0x100000 if counter_bits >= 21 else (1 << (counter_bits - 2))
    mask = (1 << counter_bits) - 1

    def step(state: dict, inputs: dict) -> dict:
        cnt = (state["cnt"] + 1) & mask
        d = 1 if cnt > threshold else 0
        r = state["r"] ^ 1
        phase = (state["phase"] + 1) % 4
        out = dict(state)
        out.update(cnt=cnt, r=r, d=d, phase=phase)
        if phase == 0:
            out["held"] = state["r"] & state["d"]   # Top samples the value
            out["held_age"] = 0
        else:
            out["held_age"] = state["held_age"] + 1
            out["sampled_now"] = state["r"] & state["d"]
        return out

    initial = dict(cnt=0, r=0, d=0, phase=0, held=0, held_age=0,
                   sampled_now=0)
    return TransitionSystem(initial, step)


def verification_side(max_depth: int = 2000, max_states: int = 60_000,
                      time_budget: float = 5.0,
                      counter_bits: int = 32) -> Dict[str, object]:
    """Bounded model checking of the stability assertion."""
    system = listing2_system(counter_bits)

    def stable(prev, state):
        # the value Top holds must equal what the wires now carry
        if prev is None or state["phase"] == 0 or state["held_age"] > 2:
            return True
        return state["sampled_now"] == state["held"]

    bmc = BoundedModelChecker(
        system,
        [Assertion("data == $past(data)", stable)],
        max_depth=max_depth,
        max_states=max_states,
        time_budget=time_budget,
    )
    result = bmc.run()
    return {
        "verdict": result.verdict,
        "found_violation": result.found_violation,
        "depth_reached": result.depth,
        "states_explored": result.states,
        "seconds": result.elapsed,
        "counter_bits": counter_bits,
    }


@job_kind("appendix_anvil")
def _appendix_anvil_job(spec: JobSpec) -> Dict[str, object]:
    """The language side, on the config's settle engine and FSM
    execution backend."""
    return anvil_side(backend=spec.config.backend,
                      engine=spec.config.engine)


@job_kind("appendix_bmc")
def _appendix_bmc_job(spec: JobSpec) -> Dict[str, object]:
    """One bounded-model-checking side; budgets ride in the params."""
    return verification_side(**dict(spec.param("budgets")))


def appendix_a(parallel: bool = False, backend: str = None,
               config=None, fast: bool = False,
               executor: str = None) -> Dict[str, object]:
    """The full comparison.

    ``config`` (a :class:`~repro.api.SimConfig` or
    :class:`~repro.api.Session`) supplies the FSM execution backend of
    the simulated Anvil side; the ``backend`` keyword survives as a
    compatibility shim and wins when given.

    ``parallel``/``executor`` are this driver's own knobs (never taken
    from the config) and default to a *serial* run, the only in-process
    setting whose output is meaningful: the BMC sides run against
    *wall-clock* time budgets, so GIL contention under the thread
    executor starves them of explored states per second and can flip
    the budget-bounded verdicts themselves (e.g. the reduced-width case
    failing to reach its violation on a slow runner), not just skew the
    reported seconds.  ``executor="process"`` is the one concurrent
    setting that preserves the verdicts -- each side owns a whole
    worker process, so nothing shares its GIL (budgets still assume the
    workers get real cores).

    ``fast=True`` shrinks the BMC budgets for CI/CLI smoke runs while
    preserving the qualitative outcome (full width exhausts its budget
    without the violation; reduced width reaches it)."""
    from ..api import resolve_config
    from ..rtl.batch import run_batch

    cfg = resolve_config(config, backend=backend)
    full_kw = dict(counter_bits=32)
    reduced_kw = dict(counter_bits=8, time_budget=10.0,
                      max_states=2_000_000, max_depth=400)
    if fast:
        full_kw.update(time_budget=0.5, max_states=8_000, max_depth=300)
        reduced_kw.update(time_budget=2.0, max_states=200_000)
    jobs = [
        JobSpec(kind="appendix_anvil", name="anvil", config=cfg),
        # full-size counter: the BMC burns its budget without the
        # violation
        JobSpec(kind="appendix_bmc", name="bmc_full_width",
                params=(("budgets", tuple(full_kw.items())),)),
        # shrunk counter (what a verification engineer must do by
        # hand): now the violation is reachable within budget
        JobSpec(kind="appendix_bmc", name="bmc_reduced_width",
                params=(("budgets", tuple(reduced_kw.items())),)),
    ]
    if executor is None:
        executor = "thread" if parallel else "serial"
    # an explicit process request overrides the serial-by-default
    # parallel knob -- worker processes do not contend on the GIL
    return run_batch(jobs,
                     parallel=None if executor == "process" else parallel,
                     executor=executor)
