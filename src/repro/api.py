"""The unified run-time surface: ``SimConfig`` -> ``Session`` -> results.

PR 1 (the levelized engine) and PR 2 (the generated-Python FSM backend)
each threaded a new knob -- ``engine``, ``backend``, ``parallel``,
``seed`` -- positionally through the scenario builders, the batch
runner, the four harness drivers and the benchmark.  This module
consolidates that surface behind three pieces:

* :class:`SimConfig` -- one frozen, validated configuration record for
  every axis the simulation stack exposes.  Invalid values fail at
  construction time with actionable errors naming the known choices.
* :class:`ScenarioRegistry` -- scenarios register themselves once (by
  decorator, with tags like ``rtl``/``anvil``/``sweep``/``cpu``) and
  are then
  uniformly enumerable, benchable, batchable and testable.  The
  canonical instance is populated by :mod:`repro.harness.scenarios`;
  use :func:`get_registry` to obtain it fully populated.
* :class:`Session` -- owns a ``SimConfig``, builds simulators from the
  registry, runs single scenarios or sweeps (delegating to
  :class:`~repro.rtl.batch.BatchSimulator`), measures benchmark pairs,
  and drives the four paper harnesses.  Every run returns a structured
  :class:`RunResult`.

``python -m repro`` (:mod:`repro.__main__`) is a thin CLI over a
``Session``; the legacy keyword/positional entry points survive as
deprecation shims that forward here.

Quickstart::

    from repro import Session, SimConfig

    s = Session(SimConfig(engine="levelized", backend="pycompiled"))
    result = s.run("anvil_aes", cycles=500)
    print(result.total_activity, result.cycles_per_second)
    for name, r in s.sweep(tag="anvil", cycles=200).items():
        print(name, r.total_activity)
"""

from __future__ import annotations

import dataclasses
import difflib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .codegen.simfsm import BACKENDS
from .rtl.batch import MAX_BATCH, BatchSimulator, _env_batch, run_batch
from .rtl.executors import EXECUTORS, JobSpec, ScenarioRun
from .rtl.simulator import ENGINES, Simulator, run_guarded
from .rtl.snapshot import (
    get_checkpoint_store,
    prefix_key,
    resume_longest_prefix,
    run_with_checkpoints,
)
from .rtl.waveform import Waveform

Parallel = Union[bool, int, None]


def _choices(known: Sequence[str]) -> str:
    return ", ".join(repr(k) for k in known)


def _env_checkpoint_every() -> Optional[int]:
    """``$REPRO_CHECKPOINT_EVERY`` as a cycle interval; unset, empty or
    ``0`` mean off (None)."""
    raw = os.environ.get("REPRO_CHECKPOINT_EVERY", "").strip()
    if raw in ("", "0"):
        return None
    try:
        every = int(raw)
    except ValueError:
        every = -1
    if every < 1:
        raise ValueError(
            f"REPRO_CHECKPOINT_EVERY must be a non-negative int cycle "
            f"interval (0 disables), got {raw!r}"
        )
    return every


def _env_max_wall_time() -> Optional[float]:
    """``$REPRO_MAX_WALL_TIME`` as a wall-clock budget in seconds;
    unset, empty or ``0`` mean no watchdog (None)."""
    raw = os.environ.get("REPRO_MAX_WALL_TIME", "").strip()
    if raw in ("", "0"):
        return None
    try:
        budget = float(raw)
    except ValueError:
        budget = -1.0
    if budget <= 0:
        raise ValueError(
            f"REPRO_MAX_WALL_TIME must be a positive number of seconds "
            f"(0 disables), got {raw!r}"
        )
    return budget


# ---------------------------------------------------------------------------
# SimConfig
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SimConfig:
    """One immutable record of every run-time knob.

    ``engine``
        module-level settle scheduling (:data:`repro.rtl.simulator.ENGINES`):
        ``levelized`` (the default), ``kernel`` (the levelized topology
        exec-compiled into a per-topology cycle kernel) or ``brute``
        (the seed reference).  ``None`` resolves to ``$REPRO_ENGINE``
        when set, else ``levelized``;
    ``backend``
        compiled-Anvil FSM execution (:data:`repro.codegen.simfsm.BACKENDS`);
    ``parallel``
        batch-runner pool size: ``None`` auto, ``False`` serial, an int
        forces a worker count (see :mod:`repro.rtl.batch`);
    ``executor``
        sweep execution strategy (:data:`repro.rtl.executors.EXECUTORS`):
        ``serial``, ``thread`` (the compatibility reference and default)
        or ``process`` (picklable JobSpecs on a multi-core process
        pool).  ``None`` resolves to ``$REPRO_EXECUTOR`` when set, else
        ``thread``;
    ``jobs``
        forced executor worker count (``None`` -> auto; the modern
        spelling of an integer ``parallel``);
    ``seed``
        stimulus RNG seed -- builders are deterministic in it;
    ``cycles``
        default cycle count for :meth:`Session.run`/:meth:`Session.sweep`;
    ``stim``
        stimulus depth override (``None`` -> each scenario's default);
    ``batch``
        lock-step batch width for same-topology sweep instances: a
        :meth:`Session.sweep` over ``seeds`` groups up to this many
        instances per scenario into one compiled batched cycle kernel
        (:mod:`repro.rtl.kernel`).  ``None`` resolves to
        ``$REPRO_BATCH`` when set, else ``1`` (scalar).  ``brute``-
        engine runs always stay scalar -- brute is the semantic
        reference batching is held to;
    ``trace``
        when true, :class:`RunResult` carries the rendered ASCII waveform;
    ``checkpoint_every``
        auto-checkpoint interval in cycles: :meth:`Session.run` (and the
        ``run_scenario`` executor jobs behind :meth:`Session.sweep`)
        snapshot the simulator every N cycles into the process-wide
        :class:`~repro.rtl.snapshot.CheckpointStore` and, before
        running, restore the longest stored prefix whose (topology,
        stimulus) matches -- so a re-run simulates only the tail.
        ``None`` resolves to ``$REPRO_CHECKPOINT_EVERY`` when set and
        non-zero, else off.
    ``max_wall_time``
        wall-clock watchdog budget in seconds: :meth:`Session.run`, the
        executor jobs and fault-injection tails cancel a run with
        :class:`~repro.errors.WatchdogTimeout` once it has simulated
        past this budget (checked between chunks, so the overshoot is
        bounded).  ``None`` resolves to ``$REPRO_MAX_WALL_TIME`` when
        set and non-zero, else no watchdog.
    """

    engine: Optional[str] = None
    backend: str = "interp"
    parallel: Parallel = None
    executor: Optional[str] = None
    jobs: Optional[int] = None
    seed: int = 0
    cycles: int = 1000
    stim: Optional[int] = None
    batch: Optional[int] = None
    trace: bool = False
    checkpoint_every: Optional[int] = None
    max_wall_time: Optional[float] = None

    def __post_init__(self):
        if self.engine is None:
            env = os.environ.get("REPRO_ENGINE")
            object.__setattr__(self, "engine", env or "levelized")
            if self.engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {self.engine!r}: known engines are "
                    f"{_choices(ENGINES)} (did REPRO_ENGINE leak a typo?)"
                )
        if self.executor is None:
            env = os.environ.get("REPRO_EXECUTOR")
            object.__setattr__(self, "executor", env or "thread")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}: known executors "
                f"are {_choices(EXECUTORS)} (did REPRO_EXECUTOR leak a "
                f"typo?)"
            )
        if self.jobs is not None and (
                not isinstance(self.jobs, int) or isinstance(self.jobs, bool)
                or self.jobs < 1):
            raise ValueError(
                f"jobs must be a positive int worker count or None, "
                f"got {self.jobs!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}: known engines are "
                f"{_choices(ENGINES)}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}: known backends are "
                f"{_choices(BACKENDS)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an int, got {self.seed!r}")
        if not isinstance(self.cycles, int) or isinstance(self.cycles, bool) \
                or self.cycles < 1:
            raise ValueError(
                f"cycles must be a positive int, got {self.cycles!r}"
            )
        if self.stim is not None and (
                not isinstance(self.stim, int) or isinstance(self.stim, bool)
                or self.stim < 1):
            raise ValueError(
                f"stim must be a positive int or None, got {self.stim!r}"
            )
        if self.parallel is not None and not isinstance(
                self.parallel, (bool, int)):
            raise ValueError(
                f"parallel must be a bool, an int worker count or None, "
                f"got {self.parallel!r}"
            )
        if self.batch is None:
            # _env_batch raises its own actionable error on junk values
            object.__setattr__(self, "batch", _env_batch() or 1)
        if not isinstance(self.batch, int) or isinstance(self.batch, bool) \
                or not 1 <= self.batch <= MAX_BATCH:
            raise ValueError(
                f"batch must be an int width between 1 and {MAX_BATCH}, "
                f"got {self.batch!r} (did REPRO_BATCH leak a typo?)"
            )
        if self.checkpoint_every is None:
            object.__setattr__(
                self, "checkpoint_every", _env_checkpoint_every())
        if self.checkpoint_every is not None and (
                not isinstance(self.checkpoint_every, int)
                or isinstance(self.checkpoint_every, bool)
                or self.checkpoint_every < 1):
            raise ValueError(
                f"checkpoint_every must be a positive int cycle interval "
                f"or None, got {self.checkpoint_every!r} (did "
                f"REPRO_CHECKPOINT_EVERY leak a typo?)"
            )
        if self.max_wall_time is None:
            object.__setattr__(self, "max_wall_time", _env_max_wall_time())
        if self.max_wall_time is not None and (
                not isinstance(self.max_wall_time, (int, float))
                or isinstance(self.max_wall_time, bool)
                or self.max_wall_time <= 0):
            raise ValueError(
                f"max_wall_time must be a positive number of seconds or "
                f"None, got {self.max_wall_time!r} (did "
                f"REPRO_MAX_WALL_TIME leak a typo?)"
            )

    def replace(self, **overrides) -> "SimConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable mapping of every field (the shape echoed
        into benchmark blobs and ``--json`` CLI output)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SimConfig field(s) {_choices(unknown)}: known "
                f"fields are {_choices(sorted(known))}"
            )
        return cls(**data)

    def to_json(self) -> str:
        """The canonical JSON form: sorted keys, compact separators.

        This is the pinned wire schema -- the server, the CLI ``--json``
        paths and the benchmark blobs all serialize configs through
        here, and the server's result cache uses the canonical text as
        key material (equal configs always hash equally)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SimConfig":
        """Inverse of :meth:`to_json` (re-validated on construction)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"SimConfig JSON must decode to an object, got "
                f"{type(data).__name__}"
            )
        return cls.from_dict(data)


def resolve_config(config: Union["SimConfig", "Session", None] = None,
                   **overrides) -> SimConfig:
    """Coerce ``(config, legacy keyword overrides)`` into one ``SimConfig``.

    This is the compatibility seam the harness drivers share: ``config``
    may be a ``SimConfig``, a ``Session`` (its config is taken) or
    ``None`` (defaults); any override whose value is not ``None`` wins
    over the corresponding config field.
    """
    if isinstance(config, Session):
        config = config.config
    cfg = config if config is not None else SimConfig()
    if not isinstance(cfg, SimConfig):
        raise TypeError(
            f"config must be a SimConfig, a Session or None, got "
            f"{type(cfg).__name__}"
        )
    overrides = {k: v for k, v in overrides.items() if v is not None}
    return cfg.replace(**overrides) if overrides else cfg


def pool_args(cfg: SimConfig) -> Dict[str, object]:
    """The ``run_batch`` keyword arguments one config implies: ``jobs``
    (the forced worker count) wins over the legacy ``parallel`` knob,
    and the executor rides along."""
    parallel = cfg.jobs if cfg.jobs is not None else cfg.parallel
    return {"parallel": parallel, "executor": cfg.executor}


# ---------------------------------------------------------------------------
# the scenario registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One registered workload: a deterministic simulator builder."""

    name: str
    builder: Callable[..., Simulator]
    tags: frozenset
    description: str = ""

    def build(self, config: SimConfig, sim: Optional[Simulator] = None
              ) -> Simulator:
        """Elaborate under ``config`` (optionally into an existing sim)."""
        kwargs = dict(engine=config.engine, seed=config.seed,
                      backend=config.backend, sim=sim)
        if config.stim is not None:
            kwargs["stim"] = config.stim
        return self.builder(**kwargs)


class UnknownScenarioError(KeyError):
    """Raised on a registry lookup miss (a user-input error: the message
    names the known scenarios, and the CLI reports it without a
    traceback)."""


class ScenarioRegistry:
    """Named, tagged, enumerable scenarios -- defined once, consumed by
    the batch runner, the benchmark sweep, the equivalence tests and the
    CLI alike.

    >>> registry = ScenarioRegistry()
    >>> @registry.scenario("toy", tags=("rtl",))
    ... def build_toy(engine="levelized", seed=0, stim=100, sim=None,
    ...               backend="interp"):
    ...     ...
    """

    def __init__(self):
        self._scenarios: Dict[str, Scenario] = {}

    # -- registration --------------------------------------------------
    def scenario(self, name: str, tags: Sequence[str] = (),
                 description: str = ""):
        """Decorator form of :meth:`add`; returns the builder unchanged."""
        def decorate(builder):
            self.add(name, builder, tags=tags, description=description)
            return builder
        return decorate

    def add(self, name: str, builder: Callable[..., Simulator],
            tags: Sequence[str] = (), description: str = "") -> Scenario:
        if name in self._scenarios:
            raise ValueError(f"scenario {name!r} is already registered")
        if not description and builder.__doc__:
            description = builder.__doc__.strip().splitlines()[0]
        sc = Scenario(name=name, builder=builder, tags=frozenset(tags),
                      description=description)
        self._scenarios[name] = sc
        return sc

    def remove(self, name: str) -> bool:
        """Drop a registered scenario; True if it was present."""
        return self._scenarios.pop(name, None) is not None

    # -- lookup --------------------------------------------------------
    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            hint = ""
            close = difflib.get_close_matches(name, self._scenarios, n=3)
            if close:
                hint = f" (did you mean {_choices(close)}?)"
            raise UnknownScenarioError(
                f"unknown scenario {name!r}{hint}: known scenarios are "
                f"{_choices(self.names())}"
            ) from None

    def names(self, tag: Optional[str] = None, *,
              exclude: Optional[str] = None) -> List[str]:
        """Registered names in registration order, optionally filtered
        to those carrying ``tag`` and/or not carrying ``exclude``."""
        return [
            s.name for s in self._scenarios.values()
            if (tag is None or tag in s.tags)
            and (exclude is None or exclude not in s.tags)
        ]

    def tags(self) -> List[str]:
        """Every tag in use, sorted."""
        return sorted({t for s in self._scenarios.values() for t in s.tags})

    def build(self, name: str, config: Optional[SimConfig] = None,
              sim: Optional[Simulator] = None) -> Simulator:
        return self.get(name).build(config or SimConfig(), sim=sim)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)

    def __repr__(self):
        return f"ScenarioRegistry({self.names()})"


#: the canonical registry.  :mod:`repro.harness.scenarios` populates it
#: at import time; call :func:`get_registry` to get it populated.
REGISTRY = ScenarioRegistry()


def get_registry() -> ScenarioRegistry:
    """The canonical registry, with the bundled scenarios registered."""
    from .harness import scenarios  # noqa: F401  (imports register)
    return REGISTRY


def list_scenarios(tag: Optional[str] = None) -> List[str]:
    """Names of every registered scenario (optionally tag-filtered)."""
    return get_registry().names(tag)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RunResult:
    """What one scenario run produced.

    ``cycles`` is the cycle count this run advanced; ``activity`` is the
    per-wire toggle map keyed by ``(module, wire)``; ``waveform`` is the
    live waveform handle (``trace`` its rendered form when the config
    asked for it); ``seconds`` the wall-clock of the run phase only
    (elaboration excluded).
    """

    scenario: str
    config: SimConfig
    cycles: int
    total_activity: int
    activity: Dict[Tuple[str, str], int]
    waveform: Waveform
    seconds: float
    trace: Optional[str] = None
    diagnostics: Dict[str, object] = field(default_factory=dict)
    sim: Simulator = field(default=None, repr=False, compare=False)

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.seconds if self.seconds > 0 else 0.0

    def to_dict(self, include_activity: bool = False,
                include_samples: bool = False) -> Dict[str, object]:
        """The pinned JSON-serializable schema of one run.

        This one shape is the CLI ``--json`` output, the server wire
        format and the benchmark record: activity keys flatten to
        ``"module/wire"`` strings, waveform samples (when asked for)
        ride along as ``{label: [value, ...]}``.  :meth:`from_dict`
        inverts it."""
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "total_activity": self.total_activity,
            "seconds": self.seconds,
            "cycles_per_second": self.cycles_per_second,
            "diagnostics": dict(self.diagnostics),
        }
        if include_activity:
            out["activity"] = {
                f"{module}/{wire}": count
                for (module, wire), count in sorted(self.activity.items())
            }
        if include_samples:
            out["samples"] = {
                label: list(series)
                for label, series in sorted(self.waveform.samples.items())
            }
        if self.trace is not None:
            out["trace"] = self.trace
        return out

    def to_json(self) -> str:
        """The full wire form: :meth:`to_dict` with activity and
        samples included, canonically encoded.  Round-trips through
        :meth:`from_json` bit-identically on every observable (cycles,
        activity, samples, trace)."""
        return json.dumps(
            self.to_dict(include_activity=True, include_samples=True),
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` form.

        The reconstructed result carries the sampled waveform data but
        no live simulator (``sim`` is ``None``) -- it is the shape a
        server client receives.  ``cycles_per_second`` is a derived
        property and is recomputed, not read back."""
        activity: Dict[Tuple[str, str], int] = {}
        for key, count in (data.get("activity") or {}).items():
            module, _, wire = key.partition("/")
            activity[(module, wire)] = count
        waveform = Waveform()
        waveform.samples = {
            label: list(series)
            for label, series in (data.get("samples") or {}).items()
        }
        config = data.get("config")
        return cls(
            scenario=data["scenario"],
            config=SimConfig.from_dict(config)
            if isinstance(config, dict) else config,
            cycles=data["cycles"],
            total_activity=data["total_activity"],
            activity=activity,
            waveform=waveform,
            seconds=data.get("seconds", 0.0),
            trace=data.get("trace"),
            diagnostics=dict(data.get("diagnostics") or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def _result_of(name: str, config: SimConfig, sim: Simulator,
               cycles: int, seconds: float,
               extra_diagnostics: Optional[Dict[str, object]] = None
               ) -> RunResult:
    diagnostics = {
        "engine": sim.engine,
        "modules": len(sim.modules),
        "watched_signals": len(sim.waveform.samples),
        "final_cycle": sim.cycle,
    }
    diagnostics.update(extra_diagnostics or {})
    return RunResult(
        scenario=name,
        config=config,
        cycles=cycles,
        total_activity=sim.total_activity(),
        activity=dict(sim.activity),
        waveform=sim.waveform,
        seconds=seconds,
        trace=sim.waveform.render() if config.trace else None,
        diagnostics=diagnostics,
        sim=sim,
    )


def _result_from_scenario_run(config: SimConfig, run: ScenarioRun,
                              seconds: float,
                              extra_diagnostics: Optional[Dict[str, object]]
                              = None) -> RunResult:
    """Lift an executor job's :class:`~repro.rtl.executors.ScenarioRun`
    into a :class:`RunResult`.  When the job ran in-process the live
    simulator and its waveform come along; a run shipped back from a
    worker process carries the sampled waveform data only."""
    if run.sim is not None:
        waveform = run.sim.waveform
    else:
        waveform = Waveform()
        waveform.samples = {k: list(v) for k, v in run.samples.items()}
    diagnostics = {
        "engine": run.engine,
        "modules": run.modules,
        "watched_signals": run.watched,
        "final_cycle": run.final_cycle,
        "job_seconds": run.seconds,
    }
    if run.resumed_from:
        diagnostics["resumed_from"] = run.resumed_from
        diagnostics["simulated_cycles"] = run.cycles - run.resumed_from
    diagnostics.update(extra_diagnostics or {})
    return RunResult(
        scenario=run.scenario,
        config=config,
        cycles=run.cycles,
        total_activity=run.total_activity,
        activity=dict(run.activity),
        waveform=waveform,
        seconds=seconds,
        trace=run.trace,
        diagnostics=diagnostics,
        sim=run.sim,
    )


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------
class Session:
    """A configured front door to the whole simulation stack.

    A ``Session`` owns one :class:`SimConfig` (its defaults for every
    run), resolves scenarios through the registry, and exposes the
    operations the repository previously scattered over loose keyword
    arguments: single runs, batch sweeps, benchmark pairs, and the four
    paper harness drivers.  Per-call ``**overrides`` produce a derived
    config for that call only.
    """

    def __init__(self, config: Optional[SimConfig] = None, **overrides):
        self.config = resolve_config(config, **overrides)

    @property
    def registry(self) -> ScenarioRegistry:
        return get_registry()

    def with_config(self, **overrides) -> "Session":
        """A new session whose config differs by ``overrides``."""
        return Session(self.config.replace(**overrides))

    # -- building and running ------------------------------------------
    def build(self, scenario: str, sim: Optional[Simulator] = None,
              **overrides) -> Simulator:
        """Elaborate one registered scenario under this session's config."""
        cfg = resolve_config(self.config, **overrides)
        return self.registry.build(scenario, cfg, sim=sim)

    def run(self, scenario: str, cycles: Optional[int] = None,
            **overrides) -> RunResult:
        """Build and run one scenario; returns a :class:`RunResult`."""
        cfg = resolve_config(self.config, cycles=cycles, **overrides)
        sim = self.registry.build(scenario, cfg)
        extra = None
        t0 = time.perf_counter()
        if cfg.checkpoint_every:
            # incremental re-simulation: restore the longest stored
            # prefix for this (topology, stimulus), run only the tail,
            # and leave checkpoints behind for the next caller
            store = get_checkpoint_store()
            key = prefix_key(scenario, cfg, sim)
            resumed = resume_longest_prefix(sim, key, cfg.cycles, store)
            stored = run_with_checkpoints(
                sim, cfg.cycles, cfg.checkpoint_every,
                store=store, key=key, scenario=scenario,
                max_wall_time=cfg.max_wall_time)
            extra = {
                "resumed_from": resumed,
                "simulated_cycles": cfg.cycles - resumed,
                "checkpoints_stored": stored,
            }
        else:
            run_guarded(sim, cfg.cycles, cfg.max_wall_time)
        elapsed = time.perf_counter() - t0
        return _result_of(scenario, cfg, sim, cfg.cycles, elapsed, extra)

    def _select(self, scenarios: Optional[Sequence[str]],
                tag: Optional[str]) -> List[str]:
        """Scenario selection shared by batch/sweep/bench: an explicit
        name list, else every scenario carrying ``tag``, else every
        non-sweep scenario (the all-in-one sweeps would duplicate the
        individual families' work)."""
        if scenarios:
            return list(scenarios)
        return self.registry.names(
            tag, exclude=None if tag == "sweep" else "sweep")

    def batch(self, scenarios: Optional[Sequence[str]] = None,
              tag: Optional[str] = None, **overrides) -> BatchSimulator:
        """A :class:`~repro.rtl.batch.BatchSimulator` holding the named
        (or tag-selected) scenarios, ready to step as one sweep."""
        cfg = resolve_config(self.config, **overrides)
        batch = BatchSimulator(
            parallel=cfg.jobs if cfg.jobs is not None else cfg.parallel,
            executor=cfg.executor)
        for name in self._select(scenarios, tag):
            batch.add_scenario(name, cfg)
        return batch

    def sweep(self, scenarios: Optional[Sequence[str]] = None,
              tag: Optional[str] = None, cycles: Optional[int] = None,
              seeds: Optional[Sequence[int]] = None,
              **overrides) -> Dict[str, RunResult]:
        """Run many scenarios as one executor sweep.

        Every selected scenario becomes one declarative
        :class:`~repro.rtl.executors.JobSpec` (``run_scenario``), and
        the whole list runs on the configured executor -- ``thread`` by
        default, ``process`` for real multi-core sweeps (workers build
        and run each scenario from its registry description, so nothing
        unpicklable crosses the pool boundary).

        ``seeds`` turns the sweep into a stimulus campaign: every
        scenario runs once per seed, keyed ``"name@s<seed>"``.  With
        ``config.batch > 1`` (or ``REPRO_BATCH``), each scenario's
        seeds are grouped into lock-step batches of up to ``batch``
        instances advancing through one compiled batched kernel pass
        per group (``run_scenario_batch`` jobs) -- M-way vectorization
        inside each executor job, composing with P-way processes across
        jobs.  Result keys and values are identical either way (batched
        runs are pinned bit-equal to scalar ones); ``brute``-engine
        campaigns always take the scalar path.

        Returns results keyed in selection order; each result's
        ``seconds`` is the wall-clock of the whole sweep (the scenarios
        run concurrently, so per-scenario wall-clock is not separable
        -- ``diagnostics["job_seconds"]`` has each job's own run-phase
        timing).
        """
        cfg = resolve_config(self.config, cycles=cycles, **overrides)
        names = self._select(scenarios, tag)
        if seeds is None:
            specs = [
                JobSpec(kind="run_scenario", name=name, scenario=name,
                        config=cfg)
                for name in names
            ]
            keys = {name: name for name in names}
        else:
            seeds = list(seeds)
            specs = []
            keys = {}            # result key -> (job name, index or None)
            if cfg.batch > 1 and cfg.engine != "brute":
                for name in names:
                    for j in range(0, len(seeds), cfg.batch):
                        group = seeds[j:j + cfg.batch]
                        spec_name = f"{name}@g{j // cfg.batch}"
                        specs.append(JobSpec(
                            kind="run_scenario_batch", name=spec_name,
                            scenario=name, config=cfg,
                            params=(("seeds", tuple(group)),)))
                        for pos, s in enumerate(group):
                            keys[f"{name}@s{s}"] = (spec_name, pos)
            else:
                for name in names:
                    for s in seeds:
                        spec_name = f"{name}@s{s}"
                        specs.append(JobSpec(
                            kind="run_scenario", name=spec_name,
                            scenario=name, config=cfg.replace(seed=s)))
                        keys[spec_name] = spec_name
        t0 = time.perf_counter()
        runs = run_batch(specs, **pool_args(cfg))
        elapsed = time.perf_counter() - t0
        diag = {"sweep_size": len(keys)}
        out = {}
        for key, where in keys.items():
            run = runs[where] if isinstance(where, str) \
                else runs[where[0]][where[1]]
            out[key] = _result_from_scenario_run(cfg, run, elapsed, diag)
        return out

    # -- fault injection -----------------------------------------------
    def inject_campaign(self, scenario: str, faults: int = 25, *,
                        inject_seed: Optional[int] = None,
                        tail_budget: Optional[int] = None,
                        **overrides) -> Dict[str, object]:
        """Run a seeded fault-injection campaign against one scenario.

        ``faults`` injections are sampled from
        ``random.Random(inject_seed or config.seed)`` over every
        injectable site x the golden run's cycle span, each forked from
        a warm prefix snapshot, run under a cycle-budget (and optional
        ``max_wall_time``) watchdog and classified against the golden
        run -- see :mod:`repro.inject.campaign` for the taxonomy and
        the result shape.

        With a ``serial`` executor (or ``jobs=1``) the whole campaign
        runs in-process.  Otherwise the sampled plan is split into
        contiguous shards, each an ``inject_campaign``
        :class:`~repro.rtl.executors.JobSpec` on the configured
        executor (``process`` gives real multi-core sweeps), and the
        shard outcomes are re-aggregated -- the merged result is
        identical to the serial one (``elapsed`` aside)."""
        from .inject.campaign import (
            assemble_result,
            default_budget,
            plan_faults,
            run_campaign,
        )

        cfg = resolve_config(self.config, **overrides)
        seed = cfg.seed if inject_seed is None else inject_seed
        workers = cfg.jobs if cfg.jobs is not None else (
            os.cpu_count() or 1)
        if cfg.executor == "serial" or workers <= 1 or faults <= 1:
            return run_campaign(
                scenario, cfg, n_faults=faults, inject_seed=seed,
                tail_budget=tail_budget)

        t0 = time.perf_counter()
        golden, plan = plan_faults(
            scenario, cfg, n_faults=faults, inject_seed=seed)
        # one global tail budget, fixed up front, so every shard
        # classifies hangs exactly as the serial campaign would
        budget = tail_budget if tail_budget else default_budget(
            int(golden["cycles"]))
        budget = max(budget, max(f.cycle for f in plan) + 1)
        shards = max(1, min(workers, len(plan)))
        per = -(-len(plan) // shards)      # ceil division
        specs = []
        offsets = []
        for i in range(0, len(plan), per):
            group = plan[i:i + per]
            specs.append(JobSpec(
                kind="inject_campaign",
                name=f"{scenario}@f{i // per}", scenario=scenario,
                config=cfg, params=(
                    ("faults", tuple(
                        tuple(sorted(f.to_dict().items()))
                        for f in group)),
                    ("inject_seed", seed),
                    ("tail_budget", budget),
                )))
            offsets.append(i)
        runs = run_batch(specs, **pool_args(cfg))
        outcomes = []
        for spec, offset in zip(specs, offsets):
            shard = runs[spec.name]
            for rec in shard["outcomes"]:
                rec = dict(rec)
                rec["index"] += offset
                outcomes.append(rec)
        outcomes.sort(key=lambda rec: rec["index"])
        return assemble_result(
            scenario, cfg, seed, plan, budget, golden, outcomes,
            time.perf_counter() - t0)

    # -- benchmarking --------------------------------------------------
    def bench(self, scenarios: Optional[Sequence[str]] = None,
              tag: Optional[str] = None, *, cycles: Optional[int] = None,
              warmup: int = 20, repeats: int = 1,
              baseline: Optional[SimConfig] = None,
              check: bool = True, executor: Optional[str] = None,
              jobs: Optional[int] = None) -> List[Dict[str, object]]:
        """Measure this config against a baseline config per scenario.

        The baseline defaults to the reference pair (``brute`` engine,
        ``interp`` backend) with this session's seed/stim, so the result
        reads as "what the configured fast paths buy".  Each row carries
        cycles/second for both configs, the speedup, and (when ``check``)
        waveform/activity equivalence between the two runs.

        Every (scenario, config) measurement is one ``bench_scenario``
        :class:`~repro.rtl.executors.JobSpec`; each runs one untimed
        warm-up iteration first so compile costs (pycompiled sources,
        cycle kernels) never pollute the timed repeats.  The measurement
        executor
        defaults to ``serial`` regardless of the session config --
        timing jobs interleaved under the GIL would corrupt each other's
        cycles/second -- and must be requested explicitly (``process``
        isolates measurements in their own workers and is the sensible
        concurrent choice).
        """
        cfg = resolve_config(self.config, cycles=cycles)
        base = baseline or cfg.replace(engine="brute", backend="interp")
        names = self._select(scenarios, tag)
        specs = [
            JobSpec(kind="bench_scenario", name=f"{name}:{label}",
                    scenario=name, config=variant, cycles=cfg.cycles,
                    params=(("warmup", warmup), ("repeats", repeats)))
            for name in names
            for label, variant in (("baseline", base), ("configured", cfg))
        ]
        pool = jobs if jobs is not None else cfg.jobs
        runs = run_batch(specs, parallel=pool if pool is not None
                         else cfg.parallel,
                         executor=executor or "serial")
        rows = []
        for name in names:
            b, c = runs[f"{name}:baseline"], runs[f"{name}:configured"]
            equivalent = True
            if check:
                equivalent = (b.activity == c.activity
                              and b.samples == c.samples)
            rows.append({
                "scenario": name,
                "baseline": {"config": base.to_dict(),
                             "cycles_per_second": b.cycles_per_second},
                "configured": {"config": cfg.to_dict(),
                               "cycles_per_second": c.cycles_per_second},
                "speedup": (c.cycles_per_second / b.cycles_per_second
                            if b.cycles_per_second else 0.0),
                "equivalent": equivalent if check else None,
            })
        return rows

    # -- serving -------------------------------------------------------
    def serve(self, host: str = "127.0.0.1", port: int = 8642,
              queue_depth: int = 16, workers: int = 2,
              background: bool = False, **server_kwargs):
        """Serve this session's config as a long-lived simulation
        service (:mod:`repro.server`): HTTP endpoints for the scenario
        registry and job submission, WebSocket trace streaming, one
        process-wide warm compile cache shared by every worker.

        Blocking by default (returns after a clean SIGINT/SIGTERM
        shutdown); ``background=True`` instead starts the server on a
        daemon thread and returns the live
        :class:`~repro.server.ReproServer` (call ``.close()`` when
        done) -- the shape tests and notebooks want."""
        from .server import ReproServer

        server = ReproServer(config=self.config, host=host, port=port,
                             queue_depth=queue_depth, workers=workers,
                             **server_kwargs)
        if background:
            return server.start_in_thread()
        server.serve_forever()
        return server

    # -- the paper harnesses -------------------------------------------
    def table1(self, fast: bool = False):
        """Table 1 rows under this session's backend/parallel config."""
        from .harness.table1 import generate_table1
        return generate_table1(fast=fast, config=self.config)

    def table2(self) -> Dict[str, Dict[str, object]]:
        from .harness.table2 import generate_table2
        return generate_table2(config=self.config)

    def figures(self) -> Dict[str, object]:
        from .harness.figures import generate_figures
        return generate_figures(config=self.config)

    def appendix_a(self, fast: bool = False,
                   executor: Optional[str] = None) -> Dict[str, object]:
        """Appendix A under this session's backend.  ``executor`` is the
        driver's own knob (serial by default; see
        :func:`repro.harness.appendix_a.appendix_a` for why the session
        executor is deliberately not consulted)."""
        from .harness.appendix_a import appendix_a
        return appendix_a(config=self.config, fast=fast, executor=executor)

    def __repr__(self):
        return f"Session({self.config!r})"
