"""Y86-64 5-stage pipelined CPU (the CSAPP PIPE microarchitecture) and
the RTL memory server that backs the Anvil sequential core.

:class:`Y86PipelineCpu` is a self-contained module in the
:class:`~repro.designs.pipeline.PipelinedAlu` idiom: all sequential
logic lives in ``tick()`` (stages computed in reverse order against the
current pipeline registers, then committed together), and ``eval_comb``
only drives the observability wires from committed state -- so the
module is fully hinted and the compiled cycle kernel engages.

Microarchitecture (CSAPP figure 4.52, adapted):

* predict-taken fetch (``predPC = valC`` for jumps/calls), mispredicted
  branches detected in execute squash the two wrong-path instructions;
* full forwarding network ``e_valE > m_valM > M_valE > W_valM > W_valE``
  with Sel A routing ``valP`` for call/jXX;
* load-use hazard: one-cycle stall of fetch/decode plus an execute
  bubble;
* ``ret``: three decode bubbles while fetch stalls;
* exceptions (HLT/ADR/INS) ride the stat field; an excepting
  instruction reaching writeback freezes the machine, younger
  instructions are squashed before they commit state, and condition
  codes are gated so wrong-path/post-exception ``OPq`` never set them.

The architectural contract (fault classification order, unsigned bounds
checks, ``R[0xF]`` reads zero, popq write order) is the one spelled out
in :mod:`repro.isa.reference`; :mod:`repro.isa.fuzz` differences the two
models over random programs.
"""

from __future__ import annotations

from typing import Dict

from ..codegen.simfsm import MessagePort
from ..isa.encoding import (
    ICALL,
    IHALT,
    IIRMOVQ,
    IJXX,
    IMRMOVQ,
    INOP,
    IOPQ,
    IPOPQ,
    IPUSHQ,
    IRET,
    IRMMOVQ,
    IRRMOVQ,
    RNONE,
    RSP,
    SADR,
    SAOK,
    SHLT,
    SINS,
    U64,
    insn_size,
    needs_regids,
    needs_valc,
    valid_instruction,
)
from ..isa.reference import MEM_SIZE, ArchState, alu, cond
from ..rtl.module import Module

#: pipeline-register stat for a bubble (never escapes to ArchState)
SBUB = 0

_ERROR_STATS = (SHLT, SADR, SINS)


def _bubble() -> Dict[str, int]:
    return {"stat": SBUB, "icode": INOP, "ifun": 0, "ra": RNONE,
            "rb": RNONE, "valc": 0, "valp": 0, "vala": 0, "valb": 0,
            "vale": 0, "valm": 0, "dste": RNONE, "dstm": RNONE,
            "srca": RNONE, "srcb": RNONE, "cnd": 0, "pc": 0}


class Y86PipelineCpu(Module):
    """The 5-stage pipelined CPU with unified instruction/data memory."""

    def __init__(self, name: str, program: bytes,
                 mem_size: int = MEM_SIZE):
        super().__init__(name)
        if len(program) > mem_size:
            raise ValueError(
                f"program ({len(program)} bytes) exceeds memory "
                f"({mem_size} bytes)")
        self.mem_size = mem_size
        self._image = bytes(program)
        # observability wires (driven from committed state only)
        self.w_pc = self.wire("w_pc", 64)
        self.w_icode = self.wire("w_icode", 4)
        self.w_stat = self.wire("w_stat", 3)
        self.halted_w = self.wire("halted", 1)
        self.instret_w = self.wire("instret", 32)
        self.rax = self.wire("rax", 64)
        self.rsp = self.wire("rsp", 64)
        self.cc = self.wire("cc", 3)
        # hazard-event counters for the unit tests
        self.loaduse_stalls = 0
        self.mispredict_squashes = 0
        self.ret_bubbles = 0
        self._init_state()

    def _init_state(self) -> None:
        self.memory = bytearray(self.mem_size)
        self.memory[:len(self._image)] = self._image
        self.registers = [0] * 16          # index 15 = RNONE, reads 0
        self.zf, self.sf, self.of = 1, 0, 0
        self.halted = False
        self.stat = SAOK
        self.stop_pc = 0
        self.instret = 0
        self.F = {"predpc": 0}
        self.D = _bubble()
        self.E = _bubble()
        self.M = _bubble()
        self.W = _bubble()

    def reset(self) -> None:
        self._init_state()
        self.loaduse_stalls = 0
        self.mispredict_squashes = 0
        self.ret_bubbles = 0

    # -- scheduler hints ----------------------------------------------
    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        return (self.w_pc, self.w_icode, self.w_stat, self.halted_w,
                self.instret_w, self.rax, self.rsp, self.cc)

    def eval_comb(self):
        self.w_pc.set(self.W["pc"])
        self.w_icode.set(self.W["icode"])
        self.w_stat.set(self.W["stat"])
        self.halted_w.set(1 if self.halted else 0)
        self.instret_w.set(self.instret & 0xFFFFFFFF)
        self.rax.set(self.registers[0])
        self.rsp.set(self.registers[RSP])
        self.cc.set((self.zf << 2) | (self.sf << 1) | self.of)

    # -- architectural helpers ----------------------------------------
    def _rd8(self, addr: int) -> int:
        return int.from_bytes(self.memory[addr:addr + 8], "little")

    def _wr8(self, addr: int, value: int) -> None:
        self.memory[addr:addr + 8] = (value & U64).to_bytes(8, "little")

    def _mem_ok(self, addr: int) -> bool:
        return addr <= self.mem_size - 8

    def _rget(self, rid: int) -> int:
        return self.registers[rid] if rid != RNONE else 0

    def arch_state(self) -> ArchState:
        """Final architectural state (meaningful once ``halted``)."""
        return ArchState(
            registers=tuple(self.registers[:15]),
            zf=self.zf, sf=self.sf, of=self.of,
            pc=self.stop_pc, stat=self.stat, instret=self.instret,
            memory=bytes(self.memory),
        )

    # -- the clock edge: all five stages ------------------------------
    def tick(self):
        if self.halted:
            return
        F, D, E, M, W = self.F, self.D, self.E, self.M, self.W

        # ---- writeback (oldest first: an excepting instruction
        # reaching W freezes the machine before any younger stage runs,
        # which is exactly CSAPP's W-stall/M-bubble exception gating)
        if W["stat"] in _ERROR_STATS:
            self.halted = True
            self.stat = W["stat"]
            self.stop_pc = W["pc"]
            self.instret += 1
            return
        if W["stat"] == SAOK:
            if W["dste"] != RNONE:
                self.registers[W["dste"]] = W["vale"]
            if W["dstm"] != RNONE:
                self.registers[W["dstm"]] = W["valm"]   # popq %rsp: M wins
            self.instret += 1

        # ---- memory stage
        m_stat = M["stat"]
        m_valm = 0
        if m_stat == SAOK:
            micode = M["icode"]
            if micode in (IMRMOVQ, IPOPQ, IRET):
                addr = M["vala"] if micode in (IPOPQ, IRET) else M["vale"]
                if self._mem_ok(addr):
                    m_valm = self._rd8(addr)
                else:
                    m_stat = SADR
            elif micode in (IRMMOVQ, IPUSHQ, ICALL):
                addr = M["vale"]
                if self._mem_ok(addr):
                    self._wr8(addr, M["vala"])
                else:
                    m_stat = SADR
        m_err = m_stat in _ERROR_STATS

        # ---- execute stage
        eicode = E["icode"]
        alufun = E["ifun"] if eicode == IOPQ else 0
        if eicode in (IRRMOVQ,):
            alua, alub = E["vala"], 0
        elif eicode == IIRMOVQ:
            alua, alub = E["valc"], 0
        elif eicode in (IRMMOVQ, IMRMOVQ):
            alua, alub = E["valc"], E["valb"]
        elif eicode == IOPQ:
            alua, alub = E["vala"], E["valb"]
        elif eicode in (ICALL, IPUSHQ):
            alua, alub = (-8) & U64, E["valb"]
        elif eicode in (IRET, IPOPQ):
            alua, alub = 8, E["valb"]
        else:
            alua, alub = 0, 0
        e_vale, e_zf, e_sf, e_of = alu(alufun, alua, alub)
        # CC gate: only a committed-path OPq with no older exception in
        # flight may set the flags
        if eicode == IOPQ and E["stat"] == SAOK and not m_err \
                and W["stat"] not in _ERROR_STATS:
            self.zf, self.sf, self.of = e_zf, e_sf, e_of
        e_cnd = cond(E["ifun"], self.zf, self.sf, self.of) \
            if eicode in (IJXX, IRRMOVQ) else 1
        e_dste = E["dste"]
        if eicode == IRRMOVQ and not e_cnd:
            e_dste = RNONE
        mispredict = (eicode == IJXX and E["stat"] == SAOK
                      and not e_cnd)

        # ---- decode stage
        dicode = D["icode"]
        d_srca = d_srcb = d_dste = d_dstm = RNONE
        if dicode in (IRRMOVQ, IRMMOVQ, IOPQ, IPUSHQ):
            d_srca = D["ra"]
        elif dicode in (IPOPQ, IRET):
            d_srca = RSP
        if dicode in (IOPQ, IRMMOVQ, IMRMOVQ):
            d_srcb = D["rb"]
        elif dicode in (IPUSHQ, IPOPQ, ICALL, IRET):
            d_srcb = RSP
        if dicode in (IRRMOVQ, IIRMOVQ, IOPQ):
            d_dste = D["rb"]
        elif dicode in (IPUSHQ, IPOPQ, ICALL, IRET):
            d_dste = RSP
        if dicode in (IMRMOVQ, IPOPQ):
            d_dstm = D["ra"]

        def forward(src: int, fallback: int) -> int:
            if src == RNONE:
                return fallback
            if src == e_dste:
                return e_vale
            if src == M["dstm"]:
                return m_valm
            if src == M["dste"]:
                return M["vale"]
            if src == W["dstm"]:
                return W["valm"]
            if src == W["dste"]:
                return W["vale"]
            return fallback

        if dicode in (ICALL, IJXX):
            d_vala = D["valp"]                      # Sel A
        else:
            d_vala = forward(d_srca, self._rget(d_srca))
        d_valb = forward(d_srcb, self._rget(d_srcb))

        # ---- pipeline control
        load_use = (eicode in (IMRMOVQ, IPOPQ)
                    and E["dstm"] in (d_srca, d_srcb)
                    and E["dstm"] != RNONE)
        ret_in_flight = IRET in (dicode, eicode, M["icode"]) and (
            (dicode == IRET and D["stat"] == SAOK)
            or (eicode == IRET and E["stat"] == SAOK)
            or (M["icode"] == IRET and M["stat"] == SAOK))
        f_stall = load_use or ret_in_flight
        d_stall = load_use
        d_bubble = mispredict or (ret_in_flight and not load_use)
        e_bubble = mispredict or load_use
        if load_use:
            self.loaduse_stalls += 1
        if mispredict:
            self.mispredict_squashes += 1
        if ret_in_flight and not load_use:
            self.ret_bubbles += 1

        # ---- fetch stage
        if M["icode"] == IJXX and M["stat"] == SAOK and not M["cnd"]:
            f_pc = M["vala"]                       # mispredict correction
        elif W["icode"] == IRET and W["stat"] == SAOK:
            f_pc = W["valm"]
        else:
            f_pc = F["predpc"]
        f = self._fetch(f_pc)
        f_predpc = f["valc"] if f["icode"] in (IJXX, ICALL) else f["valp"]

        # ---- commit the new pipeline registers
        if not f_stall:
            F["predpc"] = f_predpc
        if d_stall:
            pass
        elif d_bubble:
            self.D = _bubble()
        else:
            self.D = f
        if e_bubble:
            self.E = _bubble()
        else:
            self.E = dict(D, vala=d_vala, valb=d_valb, dste=d_dste,
                          dstm=d_dstm, srca=d_srca, srcb=d_srcb)
        if m_err and M["stat"] == SAOK:
            # the M-stage instruction faulted on its access: it rides to
            # W with the fault; its stat travels in the new W below
            pass
        self.M = _bubble() if m_err else dict(
            E, cnd=e_cnd, vale=e_vale, dste=e_dste)
        self.W = dict(M, stat=m_stat, valm=m_valm)

    def _fetch(self, pc: int) -> Dict[str, int]:
        """Fetch + predecode at ``pc`` with the shared classification
        order (bounds, INS, encoding bounds, HLT)."""
        out = _bubble()
        out["pc"] = pc
        if pc > self.mem_size - 1:
            out["stat"] = SADR
            out["valp"] = pc + 1
            return out
        byte0 = self.memory[pc]
        icode, ifun = byte0 >> 4, byte0 & 0xF
        if not valid_instruction(icode, ifun):
            out["stat"] = SINS
            out["valp"] = pc + 1
            return out
        size = insn_size(icode)
        if pc + size > self.mem_size:
            out["stat"] = SADR
            out["valp"] = pc + 1
            return out
        out["icode"], out["ifun"] = icode, ifun
        out["valp"] = pc + size
        pos = pc + 1
        if needs_regids(icode):
            out["ra"], out["rb"] = self.memory[pos] >> 4, \
                self.memory[pos] & 0xF
            pos += 1
        if needs_valc(icode):
            out["valc"] = self._rd8(pos)
        out["stat"] = SHLT if icode == IHALT else SAOK
        return out


def run_to_halt(sim, cpu: Y86PipelineCpu, max_cycles: int = 20_000,
                chunk: int = 256) -> int:
    """Run ``sim`` in kernel-friendly chunks until the CPU halts;
    returns the cycle count.  Raises if the budget is exhausted."""
    start = sim.cycle
    while not cpu.halted:
        if sim.cycle - start >= max_cycles:
            raise RuntimeError(
                f"{cpu.name} did not halt within {max_cycles} cycles")
        sim.run(min(chunk, max_cycles - (sim.cycle - start)))
    return sim.cycle - start


def attach_anvil_y86(sim, image: bytes, backend: str = "interp",
                     mem_size: int = MEM_SIZE, name: str = "y86"):
    """Build the Anvil sequential core co-simulation inside ``sim``:
    compile :func:`repro.anvil_designs.y86.y86_core`, replace the
    imem/dmem test-bench externals with a :class:`Y86MemoryServer`
    holding ``image``, and drain retire events on the host side.

    Returns ``(core, server, host)`` -- the compiled process module
    (architectural registers in ``core.regs``), the memory server, and
    the host :class:`~repro.codegen.simfsm.ExternalEndpoint`."""
    from ..anvil_designs.y86 import y86_core
    from ..codegen.simfsm import build_simulation
    from ..lang.process import System

    sys_ = System(f"{name}_sys")
    inst = sys_.add(y86_core(mem_size=mem_size, name=f"{name}_core"))
    chans = {n: sys_.expose(inst, n) for n in ("imem", "dmem", "host")}
    ss = build_simulation(sys_, sim=sim, backend=backend)
    imem_ext = ss.external(chans["imem"])
    dmem_ext = ss.external(chans["dmem"])
    host = ss.external(chans["host"])
    sim.modules = [m for m in sim.modules
                   if m not in (imem_ext, dmem_ext)]
    sim.scheduler.invalidate()
    server = sim.add(Y86MemoryServer(
        f"{name}_mem", imem_ext.ports["req"], imem_ext.ports["res"],
        dmem_ext.ports["req"], dmem_ext.ports["res"], image,
        mem_size=mem_size))
    host.always_receive("ev")
    core = next(m for m in sim.modules
                if getattr(m, "name", "") == f"{name}_core")
    return core, server, host


def anvil_arch_state(core, server) -> ArchState:
    """Read the :class:`~repro.isa.reference.ArchState` out of a halted
    Anvil core (``core.regs``) and its memory server."""
    regs = core.regs
    return ArchState(
        registers=tuple(regs[f"r{i}"] for i in range(15)),
        zf=regs["zf"], sf=regs["sf"], of=regs["of"],
        pc=regs["pc"], stat=regs["stat"], instret=regs["instret"],
        memory=bytes(server.memory),
    )


class Y86MemoryServer(Module):
    """Fetch + load/store server for the Anvil sequential core.

    Serves two request/response port pairs from one flat byte image:

    * ``imem``: request = 64-bit pc, response = the 10 bytes at pc
      little-endian-packed into 80 bits (zero-padded past the end);
    * ``dmem``: request = ``write(1) . wdata(64) . addr(16)`` (concat
      order, addr in the low bits), response = the 8-byte little-endian
      quad at addr (zero for writes, which commit at the request edge).

    Both legs respond with a fixed one-cycle latency, like
    :class:`~repro.designs.memory.HandshakeMemory`.
    """

    def __init__(self, name: str, imem_req: MessagePort,
                 imem_res: MessagePort, dmem_req: MessagePort,
                 dmem_res: MessagePort, program: bytes,
                 mem_size: int = MEM_SIZE):
        super().__init__(name)
        if len(program) > mem_size:
            raise ValueError(
                f"program ({len(program)} bytes) exceeds memory "
                f"({mem_size} bytes)")
        self.mem_size = mem_size
        self._image = bytes(program)
        self.memory = bytearray(mem_size)
        self.memory[:len(program)] = program
        self.imem_req, self.imem_res = imem_req, imem_res
        self.dmem_req, self.dmem_res = dmem_req, dmem_res
        self._ihave, self._iword = False, 0
        self._dhave, self._dword = False, 0
        for w in (*imem_req.wires(), *imem_res.wires(),
                  *dmem_req.wires(), *dmem_res.wires()):
            self.adopt(w)

    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        return (self.imem_req.ack, self.imem_res.valid,
                self.imem_res.data, self.dmem_req.ack,
                self.dmem_res.valid, self.dmem_res.data)

    def eval_comb(self):
        self.imem_req.ack.set(0 if self._ihave else 1)
        self.imem_res.valid.set(1 if self._ihave else 0)
        self.imem_res.data.set(self._iword)
        self.dmem_req.ack.set(0 if self._dhave else 1)
        self.dmem_res.valid.set(1 if self._dhave else 0)
        self.dmem_res.data.set(self._dword)

    def tick(self):
        if self._ihave:
            if self.imem_res.fires:
                self._ihave = False
        elif self.imem_req.fires:
            pc = self.imem_req.data.value
            blob = bytes(self.memory[pc:pc + 10])
            self._iword = int.from_bytes(blob.ljust(10, b"\0"), "little")
            self._ihave = True
        if self._dhave:
            if self.dmem_res.fires:
                self._dhave = False
        elif self.dmem_req.fires:
            req = self.dmem_req.data.value
            addr = req & 0xFFFF
            wdata = (req >> 16) & U64
            write = (req >> 80) & 1
            if write:
                self.memory[addr:addr + 8] = wdata.to_bytes(8, "little")
                self._dword = 0
            else:
                blob = bytes(self.memory[addr:addr + 8]).ljust(8, b"\0")
                self._dword = int.from_bytes(blob, "little")
            self._dhave = True

    def reset(self):
        self.memory = bytearray(self.mem_size)
        self.memory[:len(self._image)] = self._image
        self._ihave = self._dhave = False
