"""AXI-Lite baselines: a register-file slave, a serializing demux router
(1 master -> N slaves, routed by high address bits) and a mux router
(N masters -> 1 slave, fair round-robin arbitration).

The five AXI-Lite channels (AW, W, B, AR, R) are modelled as five messages
on one channel; the routers process one transaction at a time, preserving
AW/W -> B and AR -> R ordering exactly like the paper's routers preserve
ordering with their internal FIFOs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module

OKAY = 0
ADDR_W = 12
DATA_W = 16


class AxiPorts:
    """The five message ports of one AXI-Lite interface."""

    def __init__(self, prefix: str):
        self.aw = MessagePort(f"{prefix}.aw", ADDR_W)
        self.w = MessagePort(f"{prefix}.w", DATA_W)
        self.b = MessagePort(f"{prefix}.b", 2)
        self.ar = MessagePort(f"{prefix}.ar", ADDR_W)
        self.r = MessagePort(f"{prefix}.r", DATA_W)

    def all(self):
        return (self.aw, self.w, self.b, self.ar, self.r)

    def wires(self):
        for p in self.all():
            yield from p.wires()


class RegFileSlave(Module):
    """Minimal AXI-Lite slave: a word-addressed register file."""

    W_IDLE, W_DATA, W_RESP = range(3)
    R_IDLE, R_RESP = range(2)

    def __init__(self, name: str, ports: AxiPorts, words: int = 64):
        super().__init__(name)
        self.ports = ports
        self.words = words
        self.mem: Dict[int, int] = {}
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE
        self.waddr = 0
        self.raddr = 0
        for w in ports.wires():
            self.adopt(w)

    def _index(self, addr: int) -> int:
        return addr % self.words

    def comb_inputs(self):
        return ()      # pure function of the two FSM states

    def comb_outputs(self):
        p = self.ports
        return (p.aw.ack, p.w.ack, p.b.valid, p.b.data, p.ar.ack,
                p.r.valid, p.r.data)

    def eval_comb(self):
        p = self.ports
        p.aw.ack.set(1 if self.wstate == self.W_IDLE else 0)
        p.w.ack.set(1 if self.wstate == self.W_DATA else 0)
        p.b.valid.set(1 if self.wstate == self.W_RESP else 0)
        p.b.data.set(OKAY)
        p.ar.ack.set(1 if self.rstate == self.R_IDLE else 0)
        p.r.valid.set(1 if self.rstate == self.R_RESP else 0)
        p.r.data.set(self.mem.get(self._index(self.raddr), 0))

    def tick(self):
        p = self.ports
        if self.wstate == self.W_IDLE and p.aw.fires:
            self.waddr = p.aw.data.value
            self.wstate = self.W_DATA
        elif self.wstate == self.W_DATA and p.w.fires:
            self.mem[self._index(self.waddr)] = p.w.data.value
            self.wstate = self.W_RESP
        elif self.wstate == self.W_RESP and p.b.fires:
            self.wstate = self.W_IDLE
        if self.rstate == self.R_IDLE and p.ar.fires:
            self.raddr = p.ar.data.value
            self.rstate = self.R_RESP
        elif self.rstate == self.R_RESP and p.r.fires:
            self.rstate = self.R_IDLE

    def reset(self):
        self.mem = {}
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE


class AxiLiteDemux(Module):
    """1 master -> N slaves, selected by the top address bits."""

    W_IDLE, W_DATA, W_FWD_AW, W_FWD_W, W_WAIT_B, W_RESP = range(6)
    R_IDLE, R_FWD_AR, R_WAIT_R, R_RESP = range(4)

    def __init__(self, name: str, master: AxiPorts, slaves: List[AxiPorts]):
        super().__init__(name)
        self.master = master
        self.slaves = slaves
        self.sel_bits = max((len(slaves) - 1).bit_length(), 1)
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE
        self.awq = self.wq = self.bq = 0
        self.arq = self.rq = 0
        self.wsel = self.rsel = 0
        for w in master.wires():
            self.adopt(w)
        for s in slaves:
            for w in s.wires():
                self.adopt(w)

    def _select(self, addr: int) -> int:
        return (addr >> (ADDR_W - self.sel_bits)) % len(self.slaves)

    def comb_inputs(self):
        return ()      # routing is a pure function of the FSM states

    def comb_outputs(self):
        m = self.master
        outs = [m.aw.ack, m.w.ack, m.b.valid, m.b.data, m.ar.ack,
                m.r.valid, m.r.data]
        for s in self.slaves:
            outs += [s.aw.valid, s.aw.data, s.w.valid, s.w.data,
                     s.b.ack, s.ar.valid, s.ar.data, s.r.ack]
        return outs

    def eval_comb(self):
        m = self.master
        m.aw.ack.set(1 if self.wstate == self.W_IDLE else 0)
        m.w.ack.set(1 if self.wstate == self.W_DATA else 0)
        m.b.valid.set(1 if self.wstate == self.W_RESP else 0)
        m.b.data.set(self.bq)
        m.ar.ack.set(1 if self.rstate == self.R_IDLE else 0)
        m.r.valid.set(1 if self.rstate == self.R_RESP else 0)
        m.r.data.set(self.rq)
        for i, s in enumerate(self.slaves):
            s.aw.valid.set(
                1 if (self.wstate == self.W_FWD_AW and self.wsel == i) else 0
            )
            s.aw.data.set(self.awq)
            s.w.valid.set(
                1 if (self.wstate == self.W_FWD_W and self.wsel == i) else 0
            )
            s.w.data.set(self.wq)
            s.b.ack.set(
                1 if (self.wstate == self.W_WAIT_B and self.wsel == i) else 0
            )
            s.ar.valid.set(
                1 if (self.rstate == self.R_FWD_AR and self.rsel == i) else 0
            )
            s.ar.data.set(self.arq)
            s.r.ack.set(
                1 if (self.rstate == self.R_WAIT_R and self.rsel == i) else 0
            )

    def tick(self):
        m = self.master
        if self.wstate == self.W_IDLE and m.aw.fires:
            self.awq = m.aw.data.value
            self.wsel = self._select(self.awq)
            self.wstate = self.W_DATA
        elif self.wstate == self.W_DATA and m.w.fires:
            self.wq = m.w.data.value
            self.wstate = self.W_FWD_AW
        elif self.wstate == self.W_FWD_AW and self.slaves[self.wsel].aw.fires:
            self.wstate = self.W_FWD_W
        elif self.wstate == self.W_FWD_W and self.slaves[self.wsel].w.fires:
            self.wstate = self.W_WAIT_B
        elif self.wstate == self.W_WAIT_B and self.slaves[self.wsel].b.fires:
            self.bq = self.slaves[self.wsel].b.data.value
            self.wstate = self.W_RESP
        elif self.wstate == self.W_RESP and m.b.fires:
            self.wstate = self.W_IDLE

        if self.rstate == self.R_IDLE and m.ar.fires:
            self.arq = m.ar.data.value
            self.rsel = self._select(self.arq)
            self.rstate = self.R_FWD_AR
        elif self.rstate == self.R_FWD_AR and self.slaves[self.rsel].ar.fires:
            self.rstate = self.R_WAIT_R
        elif self.rstate == self.R_WAIT_R and self.slaves[self.rsel].r.fires:
            self.rq = self.slaves[self.rsel].r.data.value
            self.rstate = self.R_RESP
        elif self.rstate == self.R_RESP and m.r.fires:
            self.rstate = self.R_IDLE

    def reset(self):
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE


class AxiLiteMux(Module):
    """N masters -> 1 slave with fair round-robin arbitration."""

    W_IDLE, W_DATA, W_FWD_AW, W_FWD_W, W_WAIT_B, W_RESP = range(6)
    R_IDLE, R_FWD_AR, R_WAIT_R, R_RESP = range(4)

    def __init__(self, name: str, masters: List[AxiPorts], slave: AxiPorts):
        super().__init__(name)
        self.masters = masters
        self.slave = slave
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE
        self.wgrant = self.rgrant = 0
        self.wrr = self.rrr = 0
        self.awq = self.wq = self.bq = 0
        self.arq = self.rq = 0
        self.grants: List[int] = []
        for mp in masters:
            for w in mp.wires():
                self.adopt(w)
        for w in slave.wires():
            self.adopt(w)

    def _pick(self, rr: int, requesting) -> Optional[int]:
        n = len(self.masters)
        for k in range(n):
            i = (rr + k) % n
            if requesting(i):
                return i
        return None

    def comb_inputs(self):
        # combinational arbitration: the AW/AR acks consult every
        # master's valid
        return [w for m in self.masters for w in (m.aw.valid, m.ar.valid)]

    def comb_outputs(self):
        outs = []
        for m in self.masters:
            outs += [m.aw.ack, m.w.ack, m.b.valid, m.b.data, m.ar.ack,
                     m.r.valid, m.r.data]
        s = self.slave
        outs += [s.aw.valid, s.aw.data, s.w.valid, s.w.data, s.b.ack,
                 s.ar.valid, s.ar.data, s.r.ack]
        return outs

    def eval_comb(self):
        s = self.slave
        for i, m in enumerate(self.masters):
            m.aw.ack.set(
                1 if (self.wstate == self.W_IDLE
                      and self._pick(self.wrr,
                                     lambda j: self.masters[j].aw.valid.value)
                      == i) else 0
            )
            m.w.ack.set(
                1 if (self.wstate == self.W_DATA and self.wgrant == i) else 0
            )
            m.b.valid.set(
                1 if (self.wstate == self.W_RESP and self.wgrant == i) else 0
            )
            m.b.data.set(self.bq)
            m.ar.ack.set(
                1 if (self.rstate == self.R_IDLE
                      and self._pick(self.rrr,
                                     lambda j: self.masters[j].ar.valid.value)
                      == i) else 0
            )
            m.r.valid.set(
                1 if (self.rstate == self.R_RESP and self.rgrant == i) else 0
            )
            m.r.data.set(self.rq)
        s.aw.valid.set(1 if self.wstate == self.W_FWD_AW else 0)
        s.aw.data.set(self.awq)
        s.w.valid.set(1 if self.wstate == self.W_FWD_W else 0)
        s.w.data.set(self.wq)
        s.b.ack.set(1 if self.wstate == self.W_WAIT_B else 0)
        s.ar.valid.set(1 if self.rstate == self.R_FWD_AR else 0)
        s.ar.data.set(self.arq)
        s.r.ack.set(1 if self.rstate == self.R_WAIT_R else 0)

    def tick(self):
        if self.wstate == self.W_IDLE:
            for i, m in enumerate(self.masters):
                if m.aw.fires:
                    self.wgrant = i
                    self.grants.append(i)
                    self.awq = m.aw.data.value
                    self.wstate = self.W_DATA
                    break
        elif self.wstate == self.W_DATA and \
                self.masters[self.wgrant].w.fires:
            self.wq = self.masters[self.wgrant].w.data.value
            self.wstate = self.W_FWD_AW
        elif self.wstate == self.W_FWD_AW and self.slave.aw.fires:
            self.wstate = self.W_FWD_W
        elif self.wstate == self.W_FWD_W and self.slave.w.fires:
            self.wstate = self.W_WAIT_B
        elif self.wstate == self.W_WAIT_B and self.slave.b.fires:
            self.bq = self.slave.b.data.value
            self.wstate = self.W_RESP
        elif self.wstate == self.W_RESP and \
                self.masters[self.wgrant].b.fires:
            self.wrr = (self.wgrant + 1) % len(self.masters)
            self.wstate = self.W_IDLE

        if self.rstate == self.R_IDLE:
            for i, m in enumerate(self.masters):
                if m.ar.fires:
                    self.rgrant = i
                    self.arq = m.ar.data.value
                    self.rstate = self.R_FWD_AR
                    break
        elif self.rstate == self.R_FWD_AR and self.slave.ar.fires:
            self.rstate = self.R_WAIT_R
        elif self.rstate == self.R_WAIT_R and self.slave.r.fires:
            self.rq = self.slave.r.data.value
            self.rstate = self.R_RESP
        elif self.rstate == self.R_RESP and \
                self.masters[self.rgrant].r.fires:
            self.rrr = (self.rgrant + 1) % len(self.masters)
            self.rstate = self.R_IDLE

    def reset(self):
        self.wstate = self.W_IDLE
        self.rstate = self.R_IDLE
        self.grants = []


class AxiMasterDriver(Module):
    """Test-bench master: issues queued write/read operations in order."""

    IDLE, AW, W, B, AR, R = range(6)

    def __init__(self, name: str, ports: AxiPorts):
        super().__init__(name)
        self.ports = ports
        self.ops: List[Tuple] = []     # ("w", addr, data) | ("r", addr)
        self.responses: List[Tuple[int, str, int]] = []
        self.state = self.IDLE
        self.cycle = 0
        for w in ports.wires():
            self.adopt(w)

    def write(self, addr: int, data: int):
        self.ops.append(("w", addr, data))

    def read(self, addr: int):
        self.ops.append(("r", addr))

    @property
    def done(self) -> bool:
        return self.state == self.IDLE and not self.ops

    def comb_inputs(self):
        return ()      # drives from its op queue and FSM state

    def comb_outputs(self):
        p = self.ports
        return (p.aw.valid, p.aw.data, p.w.valid, p.w.data, p.b.ack,
                p.ar.valid, p.ar.data, p.r.ack)

    def eval_comb(self):
        p = self.ports
        op = self.ops[0] if self.ops else None
        p.aw.valid.set(1 if self.state == self.AW else 0)
        p.w.valid.set(1 if self.state == self.W else 0)
        p.b.ack.set(1 if self.state == self.B else 0)
        p.ar.valid.set(1 if self.state == self.AR else 0)
        p.r.ack.set(1 if self.state == self.R else 0)
        if op:
            if op[0] == "w":
                p.aw.data.set(op[1])
                p.w.data.set(op[2])
            else:
                p.ar.data.set(op[1])

    def tick(self):
        p = self.ports
        if self.state == self.IDLE and self.ops:
            self.state = self.AW if self.ops[0][0] == "w" else self.AR
        elif self.state == self.AW and p.aw.fires:
            self.state = self.W
        elif self.state == self.W and p.w.fires:
            self.state = self.B
        elif self.state == self.B and p.b.fires:
            self.responses.append((self.cycle, "b", p.b.data.value))
            self.ops.pop(0)
            self.state = self.IDLE
        elif self.state == self.AR and p.ar.fires:
            self.state = self.R
        elif self.state == self.R and p.r.fires:
            self.responses.append((self.cycle, "r", p.r.data.value))
            self.ops.pop(0)
            self.state = self.IDLE
        self.cycle += 1
