"""Memory subsystem baselines: the Figure 1 raw-wire memory, a handshake
memory, and a cached memory with dynamic hit/miss latency (Figure 4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module


def default_contents(addr: int) -> int:
    """The paper's toy memory: address ``a`` holds value ``a`` (rendered
    'Val a' in Figure 1)."""
    return addr & 0xFF


class RawMemory(Module):
    """The SystemVerilog interface of Figure 1: ``inp``/``req``/``out``
    wires and *no* handshake.  The memory needs ``latency`` cycles to
    dereference; a new request is only noticed when ``req`` is high and
    the pipeline is idle.  This is the module against which the paper's
    ``Top`` misbehaves."""

    def __init__(self, name: str, latency: int = 2,
                 contents: Callable[[int], int] = default_contents):
        super().__init__(name)
        self.latency = latency
        self.contents = contents
        self.inp = self.wire("inp", 8)
        self.req = self.wire("req", 1)
        self.out = self.wire("out", 8)
        self._busy = 0       # cycles remaining on the in-flight lookup
        self._pending = 0    # address being dereferenced
        self._result: Optional[int] = None

    def comb_inputs(self):
        return ()      # req/inp are only sampled at the clock edge

    def comb_outputs(self):
        return (self.out,)

    def eval_comb(self):
        if self._result is not None:
            self.out.set(self._result)

    def tick(self):
        if self._busy > 0:
            # the lookup pipeline only advances while req is asserted --
            # the behaviour Figure 1's Top fails to account for
            if self.req.value:
                self._busy -= 1
                if self._busy == 0:
                    self._result = self.contents(self._pending)
        elif self.req.value:
            self._pending = self.inp.value
            self._busy = self.latency - 1
            if self._busy == 0:
                self._result = self.contents(self._pending)

    def reset(self):
        self._busy = 0
        self._result = None


class NaiveTop(Module):
    """Figure 1's ``Top``: toggles ``req`` every cycle, expects the output
    exactly one cycle after raising ``req`` -- the classic timing hazard."""

    def __init__(self, name: str, mem: RawMemory):
        super().__init__(name)
        self.mem = mem
        self.address = 0
        self.reads: List[Tuple[int, int]] = []
        self._req = 1
        self.cycle = 0

    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        # NaiveTop never tracks these wires itself (part of the hazard
        # it models); declaring them keeps the scheduler's change scan
        # exact instead of falling back to the catch-all pass
        return (self.mem.req, self.mem.inp)

    def eval_comb(self):
        self.mem.req.set(self._req)
        self.mem.inp.set(self.address)

    def tick(self):
        if self._req:
            self.address = (self.address + 1) & 0xFF
        else:
            self.reads.append((self.cycle, self.mem.out.value))
        self._req ^= 1
        self.cycle += 1


class HandshakeMemory(Module):
    """Request/response memory with valid/ack handshakes and a fixed
    processing latency."""

    def __init__(self, name: str, req: MessagePort, res: MessagePort,
                 latency: int = 2,
                 contents: Callable[[int], int] = default_contents):
        super().__init__(name)
        self.req = req
        self.res = res
        self.latency = latency
        self.contents = contents
        self.store: Dict[int, int] = {}
        self._busy = 0
        self._pending = 0
        self._have_result = False
        self._result = 0
        for w in (*req.wires(), *res.wires()):
            self.adopt(w)

    def lookup(self, addr: int) -> int:
        return self.store.get(addr, self.contents(addr))

    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        return (self.req.ack, self.res.valid, self.res.data)

    def eval_comb(self):
        self.req.ack.set(
            1 if (self._busy == 0 and not self._have_result) else 0
        )
        self.res.valid.set(1 if self._have_result else 0)
        self.res.data.set(self._result)

    def tick(self):
        if self._have_result:
            if self.res.fires:
                self._have_result = False
        elif self._busy > 0:
            self._busy -= 1
            if self._busy == 0:
                self._result = self.lookup(self._pending)
                self._have_result = True
        elif self.req.fires:
            self._pending = self.req.data.value
            self._busy = self.latency - 1
            if self._busy == 0:
                self._result = self.lookup(self._pending)
                self._have_result = True

    def reset(self):
        self._busy = 0
        self._have_result = False


class CachedMemory(Module):
    """Memory front-end with a small direct-mapped cache: hits respond
    after ``hit_latency`` cycles, misses after ``miss_latency`` (Figure 4's
    dynamic timing behaviour).  Tracks per-request latencies for the
    experiment harness."""

    def __init__(self, name: str, req: MessagePort, res: MessagePort,
                 lines: int = 4, hit_latency: int = 1, miss_latency: int = 3,
                 contents: Callable[[int], int] = default_contents):
        super().__init__(name)
        self.req = req
        self.res = res
        self.lines = lines
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self.contents = contents
        self.tags: List[Optional[int]] = [None] * lines
        self.data: List[int] = [0] * lines
        self._busy = 0
        self._pending = 0
        self._was_hit = False
        self._have_result = False
        self._result = 0
        self.latencies: List[Tuple[int, str, int]] = []  # (addr, kind, cycles)
        self._req_cycle = 0
        self.cycle = 0
        for w in (*req.wires(), *res.wires()):
            self.adopt(w)

    def comb_inputs(self):
        return ()

    def comb_outputs(self):
        return (self.req.ack, self.res.valid, self.res.data)

    def eval_comb(self):
        self.req.ack.set(
            1 if (self._busy == 0 and not self._have_result) else 0
        )
        self.res.valid.set(1 if self._have_result else 0)
        self.res.data.set(self._result)

    def tick(self):
        if self._have_result:
            if self.res.fires:
                self._have_result = False
        elif self._busy > 0:
            self._busy -= 1
            if self._busy == 0:
                self._finish()
        elif self.req.fires:
            addr = self.req.data.value
            self._pending = addr
            self._req_cycle = self.cycle
            idx = addr % self.lines
            self._was_hit = self.tags[idx] == addr
            delay = self.hit_latency if self._was_hit else self.miss_latency
            self._busy = delay - 1
            if self._busy == 0:
                self._finish()
        self.cycle += 1

    def _finish(self):
        addr = self._pending
        idx = addr % self.lines
        if self._was_hit:
            value = self.data[idx]
        else:
            value = self.contents(addr)
            self.tags[idx] = addr
            self.data[idx] = value
        self._result = value
        self._have_result = True
        self.latencies.append(
            (addr, "hit" if self._was_hit else "miss",
             self.cycle - self._req_cycle + 1)
        )

    def reset(self):
        self.tags = [None] * self.lines
        self._busy = 0
        self._have_result = False
        self.latencies = []
