"""AES cipher core baseline (OpenTitan-style, unmasked).

Supports AES-128 and AES-256, encryption and decryption, with an
on-the-fly key schedule.  One round per cycle; decryption first runs a
key-expansion pass (one cycle per round) to reach the final round key,
then walks the schedule backwards -- exactly the dynamic-latency
behaviour the paper highlights.  The S-box is a lookup table, matching
the LUT-mapped S-box of the original core.

This module also provides the pure-Python AES reference used by every
test (validated against the FIPS-197 vectors).
"""

from __future__ import annotations

from typing import List, Tuple

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module

# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def _build_sbox() -> List[int]:
    # multiplicative inverse in GF(2^8) followed by the affine transform
    p, q = 1, 1
    sbox = [0] * 256
    while True:
        # p := p * 3
        p = p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)
        # q := q / 3
        q ^= q << 1
        q ^= q << 2
        q ^= q << 4
        q &= 0xFF
        if q & 0x80:
            q ^= 0x09
        x = q ^ _rotl8(q, 1) ^ _rotl8(q, 2) ^ _rotl8(q, 3) ^ _rotl8(q, 4)
        sbox[p] = (x ^ 0x63) & 0xFF
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


def _rotl8(x: int, n: int) -> int:
    return ((x << n) | (x >> (8 - n))) & 0xFF


SBOX = _build_sbox()
INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

XTIME = [((x << 1) ^ (0x1B if x & 0x80 else 0)) & 0xFF for x in range(256)]


def _gmul(a: int, b: int) -> int:
    out = 0
    for _ in range(8):
        if b & 1:
            out ^= a
        b >>= 1
        a = XTIME[a]
    return out


GMUL9 = [_gmul(x, 9) for x in range(256)]
GMUL11 = [_gmul(x, 11) for x in range(256)]
GMUL13 = [_gmul(x, 13) for x in range(256)]
GMUL14 = [_gmul(x, 14) for x in range(256)]

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
        0x6C, 0xD8, 0xAB, 0x4D]

# ---------------------------------------------------------------------------
# pure-Python reference (state = list of 16 bytes, column-major as FIPS-197)
# ---------------------------------------------------------------------------


def block_to_bytes(block: int) -> List[int]:
    return [(block >> (8 * (15 - i))) & 0xFF for i in range(16)]


def bytes_to_block(bs: List[int]) -> int:
    out = 0
    for b in bs:
        out = (out << 8) | (b & 0xFF)
    return out


def expand_key(key: int, keylen: int) -> List[int]:
    """Full key schedule: returns the list of round keys (128-bit ints).

    ``keylen`` is 128 or 256."""
    nk = keylen // 32
    rounds = 10 if keylen == 128 else 14
    key_bytes = [(key >> (8 * (keylen // 8 - 1 - i))) & 0xFF
                 for i in range(keylen // 8)]
    words = [
        tuple(key_bytes[4 * i:4 * i + 4]) for i in range(nk)
    ]
    total_words = 4 * (rounds + 1)
    for i in range(nk, total_words):
        prev = list(words[i - 1])
        if i % nk == 0:
            prev = prev[1:] + prev[:1]
            prev = [SBOX[b] for b in prev]
            prev[0] ^= RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            prev = [SBOX[b] for b in prev]
        words.append(tuple(
            a ^ b for a, b in zip(words[i - nk], prev)
        ))
    round_keys = []
    for r in range(rounds + 1):
        bs = []
        for w in words[4 * r:4 * r + 4]:
            bs.extend(w)
        round_keys.append(bytes_to_block(bs))
    return round_keys


def _sub_bytes(s, box):
    return [box[b] for b in s]


def _shift_rows(s):
    # state laid out column-major: byte index = 4*col + row
    out = list(s)
    for row in range(1, 4):
        cols = [s[4 * c + row] for c in range(4)]
        cols = cols[row:] + cols[:row]
        for c in range(4):
            out[4 * c + row] = cols[c]
    return out


def _inv_shift_rows(s):
    out = list(s)
    for row in range(1, 4):
        cols = [s[4 * c + row] for c in range(4)]
        cols = cols[-row:] + cols[:-row]
        for c in range(4):
            out[4 * c + row] = cols[c]
    return out


def _mix_columns(s):
    out = []
    for c in range(4):
        a = s[4 * c:4 * c + 4]
        out.extend([
            XTIME[a[0]] ^ (a[1] ^ XTIME[a[1]]) ^ a[2] ^ a[3],
            a[0] ^ XTIME[a[1]] ^ (a[2] ^ XTIME[a[2]]) ^ a[3],
            a[0] ^ a[1] ^ XTIME[a[2]] ^ (a[3] ^ XTIME[a[3]]),
            (a[0] ^ XTIME[a[0]]) ^ a[1] ^ a[2] ^ XTIME[a[3]],
        ])
    return [b & 0xFF for b in out]


def _inv_mix_columns(s):
    out = []
    for c in range(4):
        a = s[4 * c:4 * c + 4]
        out.extend([
            GMUL14[a[0]] ^ GMUL11[a[1]] ^ GMUL13[a[2]] ^ GMUL9[a[3]],
            GMUL9[a[0]] ^ GMUL14[a[1]] ^ GMUL11[a[2]] ^ GMUL13[a[3]],
            GMUL13[a[0]] ^ GMUL9[a[1]] ^ GMUL14[a[2]] ^ GMUL11[a[3]],
            GMUL11[a[0]] ^ GMUL13[a[1]] ^ GMUL9[a[2]] ^ GMUL14[a[3]],
        ])
    return [b & 0xFF for b in out]


def aes_encrypt(block: int, key: int, keylen: int = 128) -> int:
    rks = expand_key(key, keylen)
    s = block_to_bytes(block ^ rks[0])
    for r in range(1, len(rks)):
        s = _sub_bytes(s, SBOX)
        s = _shift_rows(s)
        if r != len(rks) - 1:
            s = _mix_columns(s)
        s = block_to_bytes(bytes_to_block(s) ^ rks[r])
    return bytes_to_block(s)


def aes_decrypt(block: int, key: int, keylen: int = 128) -> int:
    rks = expand_key(key, keylen)
    s = block_to_bytes(block ^ rks[-1])
    for r in range(len(rks) - 2, -1, -1):
        s = _inv_shift_rows(s)
        s = _sub_bytes(s, INV_SBOX)
        s = block_to_bytes(bytes_to_block(s) ^ rks[r])
        if r != 0:
            s = _inv_mix_columns(s)
    return bytes_to_block(s)


# ---------------------------------------------------------------------------
# request/response encoding shared with the Anvil core
# ---------------------------------------------------------------------------
OP_ENCRYPT = 0
OP_DECRYPT = 1
REQ_WIDTH = 1 + 1 + 256 + 128  # op, keylen256, key, block


def aes_pack(op: int, block: int, key: int, keylen: int = 128) -> int:
    k256 = 1 if keylen == 256 else 0
    return (
        (op & 1) << 385 | (k256 << 384) | ((key & (1 << 256) - 1) << 128)
        | (block & (1 << 128) - 1)
    )


class AesCore(Module):
    """Round-per-cycle AES core with on-the-fly key schedule.

    States: IDLE -> (KEYGEN for decryption) -> ROUND* -> RESPOND.
    Latency = rounds (+ rounds again for the decrypt key pass) + 2."""

    IDLE, INIT, KEYGEN, ROUND, RESPOND = range(5)

    def __init__(self, name: str, req: MessagePort, res: MessagePort):
        super().__init__(name)
        self.req = req
        self.res = res
        self.state = self.IDLE
        self.op = OP_ENCRYPT
        self.rounds = 10
        self.keylen = 128
        self.rnd = 0
        self.block = 0
        self.round_keys: List[int] = []
        self.s: List[int] = [0] * 16
        self.result = 0
        self.latencies: List[Tuple[str, int]] = []
        self._req_cycle = 0
        self.cycle = 0
        for w in (*req.wires(), *res.wires()):
            self.adopt(w)

    def comb_inputs(self):
        return ()      # handshake outputs depend only on the FSM state

    def comb_outputs(self):
        return (self.req.ack, self.res.valid, self.res.data)

    def eval_comb(self):
        self.req.ack.set(1 if self.state == self.IDLE else 0)
        self.res.valid.set(1 if self.state == self.RESPOND else 0)
        self.res.data.set(self.result)

    def tick(self):
        if self.state == self.IDLE:
            if self.req.fires:
                word = self.req.data.value
                self.op = (word >> 385) & 1
                self.keylen = 256 if (word >> 384) & 1 else 128
                key = (word >> 128) & ((1 << 256) - 1)
                if self.keylen == 128:
                    key &= (1 << 128) - 1
                self.block = word & ((1 << 128) - 1)
                self.rounds = 10 if self.keylen == 128 else 14
                # the hardware expands one round key per KEYGEN/ROUND
                # cycle; precomputing the list here models the same
                # per-cycle schedule without bit-twiddling the registers
                self.round_keys = expand_key(key, self.keylen)
                self._req_cycle = self.cycle
                self.rnd = 0
                self.state = (
                    self.KEYGEN if self.op == OP_DECRYPT else self.INIT
                )
        elif self.state == self.KEYGEN:
            # one cycle per schedule step, walking to the final round key
            # (AES-128: 10 single-group steps; AES-256: 13 group steps,
            # the initial 8-word key already covers rk0/rk1)
            steps = 10 if self.keylen == 128 else 13
            self.rnd += 1
            if self.rnd == steps:
                self.rnd = 0
                self.state = self.INIT
        elif self.state == self.INIT:
            first_key = (
                self.round_keys[0] if self.op == OP_ENCRYPT
                else self.round_keys[-1]
            )
            self.s = block_to_bytes(self.block ^ first_key)
            self.rnd = 1
            self.state = self.ROUND
        elif self.state == self.ROUND:
            last = self.rnd == self.rounds
            if self.op == OP_ENCRYPT:
                s = _sub_bytes(self.s, SBOX)
                s = _shift_rows(s)
                if not last:
                    s = _mix_columns(s)
                key = self.round_keys[self.rnd]
                self.s = block_to_bytes(bytes_to_block(s) ^ key)
            else:
                s = _inv_shift_rows(self.s)
                s = _sub_bytes(s, INV_SBOX)
                key = self.round_keys[self.rounds - self.rnd]
                s = block_to_bytes(bytes_to_block(s) ^ key)
                if not last:
                    s = _inv_mix_columns(s)
                self.s = s
            if last:
                self.result = bytes_to_block(self.s)
                self.state = self.RESPOND
            else:
                self.rnd += 1
        elif self.state == self.RESPOND:
            if self.res.fires:
                kind = f"{'dec' if self.op else 'enc'}{self.keylen}"
                self.latencies.append(
                    (kind, self.cycle - self._req_cycle + 1)
                )
                self.state = self.IDLE
        self.cycle += 1

    def reset(self):
        self.state = self.IDLE
        self.latencies = []
