"""Baseline common-cells designs: FIFO buffer, spill register, passthrough
stream FIFO.

These re-implement the PULP ``common_cells`` IPs the paper benchmarks
(fifo_v3 + stream wrappers, spill_register, passthrough stream_fifo) as
cycle-accurate RTL modules on the simulator substrate.  All three speak
valid/ack streams on :class:`~repro.codegen.simfsm.MessagePort` wire
triplets, so they co-simulate directly against compiled Anvil processes.
"""

from __future__ import annotations

from typing import List

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module


class FifoBuffer(Module):
    """``fifo_v3``-style FIFO with registered output (no fall-through).

    * ``in_ready`` (= input ack) while not full;
    * ``out_valid`` while not empty; ``out_data`` is ``mem[rptr]``;
    * dynamic latency: a word is visible on the output the cycle after its
      push at the earliest.
    """

    def __init__(self, name: str, inp: MessagePort, out: MessagePort,
                 depth: int = 4):
        super().__init__(name)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.inp = inp
        self.out = out
        self.depth = depth
        self.width = inp.data.width
        self.mem: List[int] = [0] * depth
        self.rptr = 0
        self.wptr = 0
        self.cnt = 0
        for w in (*inp.wires(), *out.wires()):
            self.adopt(w)

    @property
    def full(self) -> bool:
        return self.cnt == self.depth

    @property
    def empty(self) -> bool:
        return self.cnt == 0

    def comb_inputs(self):
        return ()      # full/empty/head are register state

    def comb_outputs(self):
        return (self.inp.ack, self.out.valid, self.out.data)

    def eval_comb(self):
        self.inp.ack.set(0 if self.full else 1)
        self.out.valid.set(0 if self.empty else 1)
        self.out.data.set(self.mem[self.rptr])

    def tick(self):
        push = bool(self.inp.fires and not self.full)
        pop = bool(self.out.fires and not self.empty)
        if push:
            self.mem[self.wptr] = self.inp.data.value
            self.wptr = (self.wptr + 1) % self.depth
        if pop:
            self.rptr = (self.rptr + 1) % self.depth
        self.cnt += int(push) - int(pop)

    def reset(self):
        self.mem = [0] * self.depth
        self.rptr = self.wptr = self.cnt = 0


class SpillRegister(Module):
    """Two-slot skid buffer (``spill_register``): breaks the ready path
    while sustaining full throughput.

    The output register ``o`` holds the head word; the spill register
    ``s`` catches the word arriving while the output is stalled.  FIFO
    order, capacity 2, one-cycle latency, one word per cycle throughput.
    """

    def __init__(self, name: str, inp: MessagePort, out: MessagePort):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.o_data = 0
        self.o_valid = False
        self.s_data = 0
        self.s_valid = False
        for w in (*inp.wires(), *out.wires()):
            self.adopt(w)

    def comb_inputs(self):
        return ()      # both slots are registers

    def comb_outputs(self):
        return (self.inp.ack, self.out.valid, self.out.data)

    def eval_comb(self):
        self.inp.ack.set(0 if (self.o_valid and self.s_valid) else 1)
        self.out.valid.set(1 if self.o_valid else 0)
        self.out.data.set(self.o_data)

    def tick(self):
        pop = bool(self.out.fires)
        push = bool(self.inp.fires)
        data = self.inp.data.value
        # state after the pop: the spill word moves up
        o2_valid = self.s_valid if pop else self.o_valid
        o2_data = self.s_data if pop else self.o_data
        s2_valid = False if pop else self.s_valid
        # the push fills the first free slot
        if push and not o2_valid:
            self.o_data, self.o_valid = data, True
            self.s_valid = s2_valid
        elif push:
            self.o_data, self.o_valid = o2_data, o2_valid
            self.s_data, self.s_valid = data, True
        else:
            self.o_data, self.o_valid = o2_data, o2_valid
            self.s_valid = s2_valid

    def reset(self):
        self.o_valid = self.s_valid = False
        self.o_data = self.s_data = 0


class PassthroughStreamFifo(Module):
    """Stream FIFO with passthrough: reads allowed only when non-empty,
    writes when non-full -- *except* that a simultaneous read+write is
    accepted even when full (the slot being freed is reused), and an empty
    FIFO passes input straight to the output in the same cycle.

    Section 7.2 of the paper observes that the original IP does not
    actually *prevent* contract-violating writes; it only raises simulation
    assertions.  :meth:`unguarded_push` reproduces that behaviour for the
    safety experiment.
    """

    def __init__(self, name: str, inp: MessagePort, out: MessagePort,
                 depth: int = 4, guard_writes: bool = True):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.depth = depth
        self.guard_writes = guard_writes
        self.mem: List[int] = [0] * depth
        self.rptr = 0
        self.wptr = 0
        self.cnt = 0
        self.overflows = 0
        self.assertions: List[str] = []
        self.cycle = 0
        for w in (*inp.wires(), *out.wires()):
            self.adopt(w)

    @property
    def full(self) -> bool:
        return self.cnt == self.depth

    @property
    def empty(self) -> bool:
        return self.cnt == 0

    def comb_inputs(self):
        # passthrough: the output combinationally mirrors the input, and
        # the push guard reads the (own) out.valid / downstream out.ack
        return (self.inp.valid, self.inp.data, self.out.valid,
                self.out.ack)

    def comb_outputs(self):
        return (self.inp.ack, self.out.valid, self.out.data)

    def eval_comb(self):
        popping = bool(self.out.valid.value and self.out.ack.value)
        if self.guard_writes:
            # write allowed when not full, or when full with simultaneous pop
            can_push = (not self.full) or popping
        else:
            can_push = True  # the original IP: only an assertion guards this
        self.inp.ack.set(1 if can_push else 0)
        if self.empty:
            # passthrough: input shows on the output in the same cycle
            self.out.valid.set(self.inp.valid.value)
            self.out.data.set(self.inp.data.value)
        else:
            self.out.valid.set(1)
            self.out.data.set(self.mem[self.rptr])

    def tick(self):
        in_fire = self.inp.fires
        out_fire = self.out.fires
        if self.empty and in_fire and out_fire:
            pass  # passthrough: never touches the memory
        else:
            if in_fire:
                if self.full and not out_fire:
                    self.overflows += 1
                    self.assertions.append(
                        f"cycle {self.cycle}: push on full fifo (data "
                        f"{self.inp.data.value:#x} lost)"
                    )
                else:
                    self.mem[self.wptr] = self.inp.data.value
                    self.wptr = (self.wptr + 1) % self.depth
                    self.cnt += 1
            if out_fire and not self.empty:
                self.rptr = (self.rptr + 1) % self.depth
                self.cnt -= 1
        self.cycle += 1

    def reset(self):
        self.mem = [0] * self.depth
        self.rptr = self.wptr = self.cnt = 0
        self.overflows = 0
        self.assertions = []
        self.cycle = 0
