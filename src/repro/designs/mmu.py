"""CVA6-style MMU baselines: translation lookaside buffer and page table
walker.

A simplified Sv39 flavour sized for simulation: 12-bit virtual page
numbers walked in three 4-bit levels, 16-bit PTEs::

    PTE[15] = valid, PTE[14] = leaf, PTE[11:0] = ppn / next-level base

The PTW's latency varies with the walk depth and the memory's response
time -- the dynamic timing behaviour the paper highlights as inexpressible
under static contracts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module

PTE_VALID = 1 << 15
PTE_LEAF = 1 << 14
PPN_MASK = 0xFFF
FAULT = 1 << 15  # response fault flag

ROOT_BASE = 0x100


def build_page_table(mapping: Dict[int, int],
                     root_base: int = ROOT_BASE) -> Dict[int, int]:
    """Construct a 3-level page table for ``vpn -> ppn`` pairs.

    Returns a word-addressed memory image (address -> 16-bit word).
    Table frames are allocated downward from ``root_base``."""
    memory: Dict[int, int] = {}
    next_frame = [root_base + 0x10]

    def alloc() -> int:
        base = next_frame[0]
        next_frame[0] += 0x10
        return base

    tables: Dict[Tuple[int, ...], int] = {(): root_base}
    for vpn, ppn in sorted(mapping.items()):
        idx2 = (vpn >> 8) & 0xF
        idx1 = (vpn >> 4) & 0xF
        idx0 = vpn & 0xF
        l2 = tables[()]
        key1 = (idx2,)
        if key1 not in tables:
            tables[key1] = alloc()
            memory[l2 + idx2] = PTE_VALID | (tables[key1] & PPN_MASK)
        l1 = tables[key1]
        key0 = (idx2, idx1)
        if key0 not in tables:
            tables[key0] = alloc()
            memory[l1 + idx1] = PTE_VALID | (tables[key0] & PPN_MASK)
        l0 = tables[key0]
        memory[l0 + idx0] = PTE_VALID | PTE_LEAF | (ppn & PPN_MASK)
    return memory


class PageTableWalker(Module):
    """Baseline PTW FSM: up to three memory round trips per request, one
    registered compute cycle after each PTE (mirroring CVA6's registered
    PTE path)."""

    IDLE, ISSUE, WAIT, STEP, RESPOND = range(5)

    def __init__(self, name: str, host_req: MessagePort,
                 host_res: MessagePort, mem_req: MessagePort,
                 mem_res: MessagePort, root_base: int = ROOT_BASE):
        super().__init__(name)
        self.host_req = host_req
        self.host_res = host_res
        self.mem_req = mem_req
        self.mem_res = mem_res
        self.root_base = root_base
        self.state = self.IDLE
        self.vpn = 0
        self.level = 2
        self.base = root_base
        self.pte = 0
        self.result = 0
        self.walk_lengths: List[int] = []
        self._req_cycle = 0
        self.cycle = 0
        for p in (host_req, host_res, mem_req, mem_res):
            for w in p.wires():
                self.adopt(w)

    def _index(self, level: int) -> int:
        return (self.vpn >> (4 * level)) & 0xF

    def comb_inputs(self):
        return ()      # pure function of the walk FSM state

    def comb_outputs(self):
        return (self.host_req.ack, self.mem_req.valid, self.mem_req.data,
                self.mem_res.ack, self.host_res.valid, self.host_res.data)

    def eval_comb(self):
        self.host_req.ack.set(1 if self.state == self.IDLE else 0)
        self.mem_req.valid.set(1 if self.state == self.ISSUE else 0)
        self.mem_req.data.set(self.base + self._index(self.level))
        self.mem_res.ack.set(1 if self.state == self.WAIT else 0)
        self.host_res.valid.set(1 if self.state == self.RESPOND else 0)
        self.host_res.data.set(self.result)

    def tick(self):
        if self.state == self.IDLE:
            if self.host_req.fires:
                self.vpn = self.host_req.data.value & 0xFFF
                self.level = 2
                self.base = self.root_base
                self._req_cycle = self.cycle
                self.state = self.ISSUE
        elif self.state == self.ISSUE:
            if self.mem_req.fires:
                self.state = self.WAIT
        elif self.state == self.WAIT:
            if self.mem_res.fires:
                self.pte = self.mem_res.data.value
                self.state = self.STEP
        elif self.state == self.STEP:
            # one registered cycle to decode the PTE
            if not self.pte & PTE_VALID:
                self.result = FAULT
                self.state = self.RESPOND
            elif self.pte & PTE_LEAF:
                low_mask = (1 << (4 * self.level)) - 1
                self.result = (self.pte & PPN_MASK) | (self.vpn & low_mask)
                self.state = self.RESPOND
            elif self.level == 0:
                self.result = FAULT  # level-0 pointer PTE is a fault
                self.state = self.RESPOND
            else:
                self.base = self.pte & PPN_MASK
                self.level -= 1
                self.state = self.ISSUE
        elif self.state == self.RESPOND:
            if self.host_res.fires:
                self.walk_lengths.append(self.cycle - self._req_cycle + 1)
                self.state = self.IDLE
        self.cycle += 1

    def reset(self):
        self.state = self.IDLE
        self.walk_lengths = []


class Tlb(Module):
    """Baseline TLB: fully-associative, FIFO replacement; hit responds
    after one registered cycle, miss defers to the PTW."""

    IDLE, HIT_RESPOND, WALK, FILL, RESPOND = range(5)

    def __init__(self, name: str, host_req: MessagePort,
                 host_res: MessagePort, ptw_req: MessagePort,
                 ptw_res: MessagePort, entries: int = 4):
        super().__init__(name)
        self.host_req = host_req
        self.host_res = host_res
        self.ptw_req = ptw_req
        self.ptw_res = ptw_res
        self.entries = entries
        self.tags: List[Optional[int]] = [None] * entries
        self.data: List[int] = [0] * entries
        self.rr = 0
        self.state = self.IDLE
        self.vpn = 0
        self.result = 0
        self.hits = 0
        self.misses = 0
        self.latencies: List[Tuple[str, int]] = []
        self._req_cycle = 0
        self.cycle = 0
        for p in (host_req, host_res, ptw_req, ptw_res):
            for w in p.wires():
                self.adopt(w)

    def comb_inputs(self):
        return ()      # pure function of the TLB FSM state

    def comb_outputs(self):
        return (self.host_req.ack, self.ptw_req.valid, self.ptw_req.data,
                self.ptw_res.ack, self.host_res.valid, self.host_res.data)

    def eval_comb(self):
        self.host_req.ack.set(1 if self.state == self.IDLE else 0)
        self.ptw_req.valid.set(1 if self.state == self.WALK else 0)
        self.ptw_req.data.set(self.vpn)
        self.ptw_res.ack.set(1 if self.state == self.WALK else 0)
        respond = self.state in (self.HIT_RESPOND, self.RESPOND)
        self.host_res.valid.set(1 if respond else 0)
        self.host_res.data.set(self.result)

    def tick(self):
        if self.state == self.IDLE:
            if self.host_req.fires:
                self.vpn = self.host_req.data.value & 0xFFF
                self._req_cycle = self.cycle
                hit_way = None
                for i, t in enumerate(self.tags):
                    if t == self.vpn:
                        hit_way = i
                        break
                if hit_way is not None:
                    self.hits += 1
                    self.result = self.data[hit_way]
                    self.state = self.HIT_RESPOND
                else:
                    self.misses += 1
                    self.state = self.WALK
        elif self.state == self.WALK:
            if self.ptw_req.fires:
                pass  # request accepted; stay until the response
            if self.ptw_res.fires:
                self.result = self.ptw_res.data.value
                self.state = self.FILL
        elif self.state == self.FILL:
            if not self.result & FAULT:
                self.tags[self.rr] = self.vpn
                self.data[self.rr] = self.result
                self.rr = (self.rr + 1) % self.entries
            self.state = self.RESPOND
        elif self.state in (self.HIT_RESPOND, self.RESPOND):
            if self.host_res.fires:
                kind = "hit" if self.state == self.HIT_RESPOND else "miss"
                self.latencies.append(
                    (kind, self.cycle - self._req_cycle + 1)
                )
                self.state = self.IDLE
        self.cycle += 1

    def reset(self):
        self.tags = [None] * self.entries
        self.state = self.IDLE
        self.hits = self.misses = 0
        self.latencies = []
