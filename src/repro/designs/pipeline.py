"""Statically pipelined baselines: a two-stage ALU and a 2x2 weight-
stationary systolic array (the designs the paper compares against
Filament).  Fixed latency 2, initiation interval 1.
"""

from __future__ import annotations

from typing import Tuple

from ..codegen.simfsm import MessagePort
from ..rtl.module import Module

ALU_OPS = ("add", "sub", "and", "or", "xor", "shl", "shr", "lt")


def alu_pack(op: int, a: int, b: int) -> int:
    """{op[2:0], a[15:0], b[15:0]} -> 35-bit request word (b is LSB)."""
    return ((op & 7) << 32) | ((a & 0xFFFF) << 16) | (b & 0xFFFF)


def alu_reference(op: int, a: int, b: int) -> int:
    a &= 0xFFFF
    b &= 0xFFFF
    return [
        a + b, a - b, a & b, a | b, a ^ b,
        a << (b & 0xF), a >> (b & 0xF), int(a < b),
    ][op & 7] & 0xFFFF


class PipelinedAlu(Module):
    """Two-stage ALU: stage 1 computes every candidate result, stage 2
    selects by the registered opcode.  Valid bits ride along the pipeline;
    the downstream is assumed always ready (static timing)."""

    def __init__(self, name: str, inp: MessagePort, out: MessagePort):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.s1 = [0] * 8          # candidate results
        self.s1_op = 0
        self.s1_valid = False
        self.out_q = 0
        self.out_valid = False
        for w in (*inp.wires(), *out.wires()):
            self.adopt(w)

    def comb_inputs(self):
        return ()      # statically scheduled: always ready, state-driven

    def comb_outputs(self):
        return (self.inp.ack, self.out.valid, self.out.data)

    def eval_comb(self):
        self.inp.ack.set(1)
        self.out.valid.set(1 if self.out_valid else 0)
        self.out.data.set(self.out_q)

    def tick(self):
        # stage 2
        self.out_valid = self.s1_valid
        if self.s1_valid:
            self.out_q = self.s1[self.s1_op]
        # stage 1
        if self.inp.fires:
            word = self.inp.data.value
            op = (word >> 32) & 7
            a = (word >> 16) & 0xFFFF
            b = word & 0xFFFF
            self.s1 = [alu_reference(k, a, b) for k in range(8)]
            self.s1_op = op
            self.s1_valid = True
        else:
            self.s1_valid = False

    def reset(self):
        self.s1_valid = self.out_valid = False


class SystolicArray2x2(Module):
    """2x2 weight-stationary systolic array computing, per input vector
    ``(x0, x1)``, the products ``y_j = w0j*x0 + w1j*x1``.

    Stage 1 multiplies the first weight row and delays ``x1``; stage 2
    accumulates the second row -- latency 2, II = 1.
    """

    def __init__(self, name: str, inp: MessagePort, out: MessagePort,
                 weights: Tuple[Tuple[int, int], Tuple[int, int]] = ((1, 2), (3, 4))):
        super().__init__(name)
        self.inp = inp
        self.out = out
        self.w = weights
        self.p0 = [0, 0]        # stage-1 partial products
        self.x1_d = 0
        self.s1_valid = False
        self.y = [0, 0]
        self.out_valid = False
        for w_ in (*inp.wires(), *out.wires()):
            self.adopt(w_)

    def comb_inputs(self):
        return ()      # statically scheduled: always ready, state-driven

    def comb_outputs(self):
        return (self.inp.ack, self.out.valid, self.out.data)

    def eval_comb(self):
        self.inp.ack.set(1)
        self.out.valid.set(1 if self.out_valid else 0)
        self.out.data.set(
            ((self.y[1] & 0xFFFF) << 16) | (self.y[0] & 0xFFFF)
        )

    def tick(self):
        # stage 2
        self.out_valid = self.s1_valid
        if self.s1_valid:
            self.y = [
                (self.p0[j] + self.w[1][j] * self.x1_d) & 0xFFFF
                for j in range(2)
            ]
        # stage 1
        if self.inp.fires:
            word = self.inp.data.value
            x0 = word & 0xFF
            x1 = (word >> 8) & 0xFF
            self.p0 = [(self.w[0][j] * x0) & 0xFFFF for j in range(2)]
            self.x1_d = x1
            self.s1_valid = True
        else:
            self.s1_valid = False

    def reset(self):
        self.s1_valid = self.out_valid = False


def systolic_reference(weights, x0: int, x1: int) -> Tuple[int, int]:
    return tuple(
        (weights[0][j] * (x0 & 0xFF) + weights[1][j] * (x1 & 0xFF)) & 0xFFFF
        for j in range(2)
    )
