"""Run-time timing-contract monitor.

The inter-cycle constraints an Anvil channel contract states -- "the
address stays unchanged from the request until the response", "the data
is live for one cycle after the transfer" -- become *dynamic* checks
here.  BSV-scheduled designs run under this monitor to demonstrate that
conflict-free per-cycle schedules can still violate the contracts Anvil
discharges statically (Figure 2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class TimingContractMonitor:
    """Tracks value-stability windows and records violations."""

    def __init__(self):
        self.violations: List[str] = []
        # name -> (value pinned, reason); released explicitly
        self._pinned: Dict[str, Tuple[int, str]] = {}

    def pin(self, name: str, value: int, reason: str):
        """From now until :meth:`release`, ``name`` must keep ``value``."""
        self._pinned[name] = (value, reason)

    def release(self, name: str):
        self._pinned.pop(name, None)

    def observe(self, cycle: int, name: str, value: int):
        pinned = self._pinned.get(name)
        if pinned is not None and pinned[0] != value:
            self.violations.append(
                f"cycle {cycle}: {name} changed to {value:#x} while pinned "
                f"at {pinned[0]:#x} ({pinned[1]})"
            )

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self):
        state = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"TimingContractMonitor({state})"
