"""Bluespec-SystemVerilog-style rule scheduling substrate (Figure 2).

BSV describes hardware as guarded atomic *rules*; a compiler-generated
scheduler picks, every cycle, a maximal subset of enabled rules that do
not conflict (touch the same state).  Crucially -- as the paper's Figure 2
argues -- scheduling is per-cycle: BSV cannot express *inter-cycle*
constraints such as "the address must stay unchanged until the response
arrives", so conflict-free schedules can still be timing-unsafe.
"""

from .rules import Rule, RuleAction, RuleState
from .scheduler import RuleScheduler, ScheduleTrace
from .contract import TimingContractMonitor

__all__ = [
    "Rule", "RuleAction", "RuleState", "RuleScheduler", "ScheduleTrace",
    "TimingContractMonitor",
]
