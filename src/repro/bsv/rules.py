"""Rules and rule state.

A :class:`RuleState` is the register file rules act on.  A :class:`Rule`
has a guard (a predicate over the pre-cycle state) and a body that stages
register writes and method calls; the scheduler commits staged effects
atomically at the end of the cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class RuleState:
    """Registers plus staged writes for one cycle."""

    def __init__(self, **regs: int):
        self.regs: Dict[str, int] = dict(regs)
        self._staged: Dict[str, int] = {}
        self.method_calls: List[Tuple[str, int]] = []

    def read(self, name: str) -> int:
        return self.regs[name]

    def write(self, name: str, value: int):
        if name not in self.regs:
            raise KeyError(f"unknown register {name!r}")
        self._staged[name] = value

    def call(self, method: str, arg: int = 0):
        """Invoke a method of another module (e.g. fifo.enq)."""
        self.method_calls.append((method, arg))

    def staged_targets(self) -> set:
        return set(self._staged)

    def commit(self):
        self.regs.update(self._staged)
        self._staged = {}
        calls = self.method_calls
        self.method_calls = []
        return calls

    def discard(self):
        self._staged = {}
        self.method_calls = []


class RuleAction:
    """Effects staged by one rule in one cycle (for conflict analysis)."""

    def __init__(self, writes: set, methods: set):
        self.writes = writes
        self.methods = methods
        self.staged_snapshot = None
        self.methods_snapshot = None

    def conflicts_with(self, other: "RuleAction") -> bool:
        return bool(self.writes & other.writes or
                    self.methods & other.methods)


class Rule:
    """A guarded atomic rule."""

    def __init__(self, name: str,
                 guard: Callable[[RuleState], bool],
                 body: Callable[[RuleState], None]):
        self.name = name
        self.guard = guard
        self.body = body

    def stage(self, state: RuleState) -> Optional[RuleAction]:
        """Evaluate the guard and stage effects; returns the action (with
        a snapshot for conflict rollback) or ``None`` when the guard is
        false."""
        if not self.guard(state):
            return None
        staged_before = dict(state._staged)
        methods_before = list(state.method_calls)
        self.body(state)
        writes = {
            k for k, v in state._staged.items()
            if k not in staged_before or staged_before[k] != v
        } | (state.staged_targets() - set(staged_before))
        methods = {m for m, _ in state.method_calls} - {
            m for m, _ in methods_before
        }
        action = RuleAction(writes, methods)
        action.staged_snapshot = staged_before
        action.methods_snapshot = methods_before
        return action

    def __repr__(self):
        return f"Rule({self.name})"
