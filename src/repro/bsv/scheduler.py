"""Per-cycle rule scheduler.

Every cycle, rules are considered in a fixed priority order (the
*schedule*); each enabled rule whose staged effects do not conflict with
already-selected rules executes atomically.  Different priority orders
produce different -- all conflict-free -- schedules, which is exactly the
degree of freedom Figure 2 exploits to show timing-unsafe outcomes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .rules import Rule, RuleAction, RuleState


class ScheduleTrace:
    """Which rules fired in which cycle."""

    def __init__(self):
        self.fired: List[List[str]] = []

    def record(self, cycle: int, names: List[str]):
        while len(self.fired) <= cycle:
            self.fired.append([])
        self.fired[cycle] = names

    def count(self, rule_name: str) -> int:
        return sum(1 for names in self.fired for n in names if n == rule_name)

    def __repr__(self):
        return f"ScheduleTrace({len(self.fired)} cycles)"


class RuleScheduler:
    """Executes rules over a :class:`RuleState` with per-cycle maximal
    conflict-free selection."""

    def __init__(self, state: RuleState, rules: Sequence[Rule],
                 priority: Optional[Sequence[str]] = None):
        self.state = state
        self.rules = list(rules)
        by_name = {r.name: r for r in self.rules}
        if priority is not None:
            self.order = [by_name[n] for n in priority]
        else:
            self.order = list(self.rules)
        self.trace = ScheduleTrace()
        self.cycle = 0
        self.method_handlers: Dict[str, Callable[[int], None]] = {}

    def on_method(self, name: str, handler: Callable[[int], None]):
        self.method_handlers[name] = handler

    def step(self):
        fired: List[str] = []
        committed = RuleAction(set(), set())
        for rule in self.order:
            action = rule.stage(self.state)
            if action is None:
                continue
            if action.conflicts_with(committed):
                # conflict: roll the rule's staging back entirely
                self.state._staged = dict(action.staged_snapshot)
                self.state.method_calls = list(action.methods_snapshot)
                continue
            committed = RuleAction(
                committed.writes | action.writes,
                committed.methods | action.methods,
            )
            fired.append(rule.name)
        self.trace.record(self.cycle, fired)
        for method, arg in self.state.commit():
            handler = self.method_handlers.get(method)
            if handler is not None:
                handler(arg)
        self.cycle += 1

    def run(self, cycles: int):
        for _ in range(cycles):
            self.step()
