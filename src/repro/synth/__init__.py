"""Synthesis cost model (Table 1): area / power / fmax estimation."""

from .cost import CostReport, estimate_compiled, estimate_inventory
from .gates import LIBRARY, fmax_mhz, gate_area, gate_leakage
from . import baselines

__all__ = [
    "CostReport", "estimate_compiled", "estimate_inventory",
    "LIBRARY", "fmax_mhz", "gate_area", "gate_leakage", "baselines",
]
