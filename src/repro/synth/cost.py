"""Synthesis cost estimation.

Two front ends feed one cost model:

* :func:`estimate_compiled` introspects a compiled Anvil process: every
  runtime expression decomposes into gates, every architectural register,
  value slot and FSM state bit becomes a flop.  This automatically charges
  Anvil for its generated FSM -- the source of the small area overheads
  Table 1 reports.
* Hand-written baselines supply a structural inventory (see
  :mod:`repro.synth.baselines`), the way a designer would count a
  hand-optimized RTL module.

Power = leakage (area-proportional) + dynamic (simulated switching
activity at the operating frequency).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..codegen import rexpr as rx
from ..codegen.simfsm import CompiledProcess
from ..core.events import (
    EventKind,
    RecvBindAction,
    RegWriteAction,
    SendDataAction,
)
from ..core.graph_builder import LatchAction
from .gates import LIBRARY, fmax_mhz, gate_area, gate_leakage


class CostReport:
    def __init__(self, name: str, gates: Dict[str, int], flops: int,
                 depth: int):
        self.name = name
        self.gates = dict(gates)
        self.flops = flops
        self.depth = depth

    @property
    def comb_area(self) -> float:
        return gate_area(self.gates)

    @property
    def noncomb_area(self) -> float:
        return self.flops * LIBRARY["flop"].area

    @property
    def area(self) -> float:
        return self.comb_area + self.noncomb_area

    @property
    def fmax(self) -> float:
        return fmax_mhz(self.depth)

    def power(self, toggles_per_cycle: float, freq_mhz: float) -> float:
        """Total power (mW) at the given activity and frequency."""
        leak = gate_leakage(self.gates) / 1000.0
        leak += self.flops * LIBRARY["flop"].leakage / 1000.0
        # each toggle costs the average gate energy through a small fanout
        energy_fj = 0.9
        dynamic = toggles_per_cycle * energy_fj * freq_mhz * 1e-6
        return leak + dynamic

    def __repr__(self):
        return (
            f"CostReport({self.name}: {self.area:.0f} um2, "
            f"{self.flops} flops, depth {self.depth})"
        )


def _merge(total: Dict[str, int], extra: Dict[str, int]):
    for g, n in extra.items():
        total[g] = total.get(g, 0) + n


def _co_cyclic(result_graph, a: int, b: int) -> bool:
    """Heuristic (cost model only): two events fire in the same cycle if
    their concrete times agree under several slack/branch samples."""
    from ..semantics.log import concrete_times

    class _Shim:
        graph = result_graph
    shim = _Shim()
    conds = {
        ev.cond_id for ev in result_graph.events
        if ev.kind is EventKind.BRANCH
    }
    for slack in (0, 1, 2):
        for taken in (True, False):
            slacks = {
                ev.eid: slack for ev in result_graph.events
                if ev.kind is EventKind.SYNC and ev.static_slack is None
            }
            times = concrete_times(shim, slacks, {c: taken for c in conds})
            ta, tb = times[a], times[b]
            if ta is not None and tb is not None and ta != tb:
                return False
    return True


def estimate_compiled(compiled: CompiledProcess,
                      name: str = "") -> CostReport:
    """Cost a compiled Anvil process from its IR.

    Mirrors what synthesis does to the generated SystemVerilog:

    * combinational logic is costed once per unique expression node
      (common subexpressions are shared);
    * FSM state registers exist only where the FSM actually waits --
      dynamic handshakes, cycle counters, multi-predecessor joins; the
      purely combinational ``fire`` wires of zero-time events synthesize
      to wires, not flops;
    * a value slot needs a register only when it is read outside the
      cycle it is latched in (same-cycle uses go through the bypass
      wire and the flop is pruned as dead).
    """
    process = compiled.process
    gates: Dict[str, int] = {}
    flops = 0

    for reg in process.registers.values():
        flops += reg.dtype.width

    skey_memo: Dict[int, tuple] = {}
    node_seen: set = set()
    depth_memo: Dict[int, int] = {}
    max_depth = 0

    def skey(expr: rx.RExpr) -> tuple:
        """Structural key: identical logic built twice synthesizes once
        (common-subexpression elimination)."""
        cached = skey_memo.get(id(expr))
        if cached is not None:
            return cached
        params: tuple
        if isinstance(expr, rx.RLit):
            params = ("lit", expr.value, expr.width)
        elif isinstance(expr, rx.RReg):
            params = ("reg", expr.name)
        elif isinstance(expr, rx.RSlot):
            params = ("slot", expr.slot)
        elif isinstance(expr, rx.RBin):
            params = ("bin", expr.op, expr.width)
        elif isinstance(expr, rx.RUn):
            params = ("un", expr.op, expr.width)
        elif isinstance(expr, rx.RSlice):
            params = ("slice", expr.hi, expr.lo)
        elif isinstance(expr, rx.RField):
            params = ("field", expr.lo, expr.width)
        elif isinstance(expr, rx.RMux):
            params = ("mux", expr.width)
        elif isinstance(expr, rx.RTable):
            params = ("table", expr.entries, expr.width)
        elif isinstance(expr, rx.RBundle):
            params = ("bundle", expr.width)
        elif isinstance(expr, rx.RReady):
            params = ("ready", expr.endpoint, expr.message)
        else:
            params = (type(expr).__name__, expr.width)
        key = params + tuple(skey(c) for c in expr.children())
        skey_memo[id(expr)] = key
        return key

    gather_memo: Dict[tuple, Dict[str, int]] = {}

    def gather(expr: rx.RExpr) -> Dict[str, int]:
        """Gate demand of a subtree with two synthesis optimizations:
        structural CSE (a structurally-identical subtree costs nothing the
        second time) and operator sharing across mux alternatives (the two
        arms are mutually exclusive, so their operators merge elementwise).
        """
        nonlocal max_depth
        key = skey(expr)
        if key in gather_memo:
            return {}
        gather_memo[key] = {}
        out: Dict[str, int] = dict(expr.gate_count())
        if isinstance(expr, rx.RMux):
            _merge(out, gather(expr.cond))
            arm_a = gather(expr.a)
            arm_b = gather(expr.b)
            for gk in set(arm_a) | set(arm_b):
                out[gk] = out.get(gk, 0) + max(
                    arm_a.get(gk, 0), arm_b.get(gk, 0)
                )
        else:
            for c in expr.children():
                _merge(out, gather(c))
        return out

    def charge_depth(expr: rx.RExpr) -> int:
        nonlocal max_depth
        ik = id(expr)
        if ik in depth_memo:
            return depth_memo[ik]
        kid = max((charge_depth(c) for c in expr.children()), default=0)
        d = expr.depth() + kid
        depth_memo[ik] = d
        max_depth = max(max_depth, d)
        return d

    def charge(expr: Optional[rx.RExpr]) -> int:
        if expr is None:
            return 0
        _merge(gates, gather(expr))
        return charge_depth(expr)

    for cthread in compiled.threads:
        g = cthread.graph
        for expr in cthread.cond_exprs.values():
            charge(expr)

        # which slots are read outside their latch cycle?
        slot_readers: Dict[int, set] = {}   # slot -> event ids reading it
        slot_latch: Dict[int, Tuple[int, int]] = {}  # slot -> (event, width)

        def note_reads(expr: Optional[rx.RExpr], eid: int):
            if expr is None:
                return
            for node in rx.walk(expr):
                if isinstance(node, rx.RSlot):
                    slot_readers.setdefault(node.slot, set()).add(eid)

        # FSM state: a hand-encoded FSM needs log2(#control states) bits;
        # the control states are the distinct time offsets the thread's
        # events occupy within an iteration, plus one wait flag per
        # dynamic handshake.  A steady one-cycle loop costs no state.
        from ..semantics.log import concrete_times

        class _Shim:
            graph = g
        conds = {
            ev.cond_id for ev in g.events
            if ev.kind is EventKind.BRANCH
        }
        offsets = set()
        for taken in (True, False):
            times = concrete_times(
                _Shim(), {}, {c: taken for c in conds}
            )
            offsets.update(t for t in times if t is not None)
        if len(offsets) > 1:
            flops += max((len(offsets) - 1).bit_length(), 1)
        # sources that drive the same register or the same message data
        # port from different events are active in different cycles: a
        # resource-sharing synthesizer merges their operators behind the
        # existing select logic, so they are costed elementwise-max.
        shared_groups: Dict[tuple, list] = {}
        for ev in g.events:
            if ev.kind is EventKind.SYNC and ev.static_slack is None:
                flops += 1          # in-flight handshake state
            _merge(gates, {"and": 1})   # fire wire
            for act in ev.actions:
                if isinstance(act, RegWriteAction):
                    shared_groups.setdefault(
                        ("reg", act.reg), []
                    ).append(act.source)
                    note_reads(act.source, ev.eid)
                    _merge(gates, {"and": 1})   # write enable
                elif isinstance(act, SendDataAction):
                    shared_groups.setdefault(
                        ("send", act.endpoint, act.message), []
                    ).append(act.source)
                    note_reads(act.source, ev.eid)
                elif isinstance(act, LatchAction):
                    charge(act.source)
                    note_reads(act.source, ev.eid)
                    slot_latch[act.slot] = (ev.eid, act.source.width or 1)
                elif isinstance(act, RecvBindAction):
                    msg = process.get_endpoint(act.endpoint).message(
                        act.message
                    )
                    slot_latch[act.target] = (ev.eid, msg.dtype.width)
        for key, sources in shared_groups.items():
            demands = []
            for s in sources:
                demands.append(gather(s))
                charge_depth(s)
            merged: Dict[str, int] = {}
            for d in demands:
                for gk, n in d.items():
                    merged[gk] = max(merged.get(gk, 0), n)
            _merge(gates, merged)
            if len(sources) > 1:
                width = max(s.width or 1 for s in sources)
                _merge(gates, {"mux2": width * (len(sources) - 1)})
        for cond_id, expr in cthread.cond_exprs.items():
            for node in rx.walk(expr):
                if isinstance(node, rx.RSlot):
                    slot_readers.setdefault(node.slot, set())
        for slot, (latch_eid, width) in slot_latch.items():
            readers = slot_readers.get(slot, set())
            if any(not _co_cyclic(g, latch_eid, r) for r in readers):
                flops += width
        flops += 1  # boot flag
    return CostReport(name or process.name, gates, flops, max_depth)


def estimate_inventory(name: str, flops: int, gates: Dict[str, int],
                       depth: int) -> CostReport:
    """Cost a hand-written baseline from its structural inventory."""
    return CostReport(name, gates, flops, depth)
