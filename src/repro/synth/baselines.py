"""Structural inventories of the hand-written baseline designs.

Each function counts the registers and combinational primitives a
hand-optimized RTL implementation of the design instantiates -- the
granularity a synthesis report would show.  These feed
:func:`repro.synth.cost.estimate_inventory` for the baseline columns of
Table 1.
"""

from __future__ import annotations

from typing import Dict

from .cost import CostReport, estimate_inventory


def _adder(bits: int) -> Dict[str, int]:
    return {"xor": 2 * bits, "and": 2 * bits}


def _cmp_eq(bits: int) -> Dict[str, int]:
    return {"xor": bits, "or": max(bits - 1, 1)}


def _mux(bits: int, ways: int = 2) -> Dict[str, int]:
    return {"mux2": bits * max(ways - 1, 1)}


def _acc(*parts: Dict[str, int]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for p in parts:
        for g, n in p.items():
            out[g] = out.get(g, 0) + n
    return out


def fifo_buffer(depth: int = 4, width: int = 32) -> CostReport:
    ptr_w = max((depth - 1).bit_length(), 1)
    cnt_w = depth.bit_length()
    flops = depth * width + 2 * ptr_w + cnt_w
    gates = _acc(
        _mux(width, depth),            # read mux
        {"and": depth * width},        # write decoder enables
        _adder(ptr_w), _adder(ptr_w), _adder(cnt_w),
        _cmp_eq(cnt_w), _cmp_eq(cnt_w),
        {"and": 6, "inv": 4},          # handshake logic
    )
    depth_lv = 2 + max((depth - 1).bit_length(), 1)
    return estimate_inventory("fifo_buffer[SV]", flops, gates, depth_lv)


def spill_register(width: int = 8) -> CostReport:
    flops = 2 * width + 2
    gates = _acc(
        _mux(width),                 # output select (head vs spill)
        _mux(width),                 # fill-target steering
        {"and": 10, "or": 5, "inv": 5},   # valid/ready control
    )
    return estimate_inventory("spill_register[SV]", flops, gates, 3)


def passthrough_stream_fifo(depth: int = 4, width: int = 8) -> CostReport:
    base = fifo_buffer(depth, width)
    gates = _acc(base.gates, _mux(width), {"and": 4, "or": 3})
    return estimate_inventory(
        "stream_fifo[SV]", base.flops, gates, base.depth + 1
    )


def tlb(entries: int = 4, vpn_w: int = 12, data_w: int = 16) -> CostReport:
    flops = entries * (vpn_w + 1 + data_w) + 2 + 16 + 12 + 3
    gates = _acc(
        *[_cmp_eq(vpn_w) for _ in range(entries)],   # CAM match
        _mux(data_w, entries),
        {"and": entries * 2, "or": entries},
        {"and": 10, "inv": 6},                        # FSM
    )
    return estimate_inventory("tlb[SV]", flops, gates, 4)


def ptw(addr_w: int = 16) -> CostReport:
    flops = 12 + 12 + 16 + 16 + 3 + 2
    gates = _acc(
        _adder(addr_w),             # table address
        _mux(4, 3),                 # level-index select
        _mux(16, 4),                # result select (leaf/fault/levels)
        {"or": 32, "and": 40},      # ppn|offset merge, PTE decode
        _cmp_eq(2), _cmp_eq(3),     # level / state compare
        {"and": 26, "inv": 10, "or": 10},  # handshake + state decode
    )
    return estimate_inventory("ptw[SV]", flops, gates, 7)


def aes_core() -> CostReport:
    # state + key schedule registers + control
    flops = 128 + 256 + 5 + 4 + 3 + 2
    # 16 dual-direction S-boxes + 4 key-schedule S-boxes (LUT-mapped,
    # 128 lut4 per direction); forward+inverse MixColumns as xtime-chain
    # XOR networks with per-byte select muxes; AddRoundKey; state/key
    # path muxing for enc/dec/128/256 and the round-key recursion
    gates = _acc(
        {"lut4": 20 * 128},                   # shared S-boxes
        {"xor": 16 * 24 + 16 * 56},           # mix + inv-mix networks
        {"mux2": 16 * 40},                    # xtime/select muxes
        {"xor": 128 + 128 + 3 * 32},          # addkey + key recursion
        _mux(128, 6), _mux(128, 4),           # state / round-key muxing
        {"and": 60, "inv": 24, "or": 24},     # round control
    )
    return estimate_inventory("aes_core[SV]", flops, gates, 9)


def axi_demux(n_slaves: int = 4, addr_w: int = 12,
              data_w: int = 16) -> CostReport:
    flops = addr_w * 2 + data_w * 2 + 2 + 2 * 2 + 6
    gates = _acc(
        _mux(data_w + 2, n_slaves),          # B/R response muxes
        {"and": n_slaves * 10, "inv": n_slaves * 2},  # per-slave gating
        _cmp_eq(2), _cmp_eq(2), _cmp_eq(3),
        {"and": 22, "inv": 10, "or": 10},    # two transaction FSMs
    )
    return estimate_inventory("axi_demux[SV]", flops, gates, 5)


def axi_mux(n_masters: int = 4, addr_w: int = 12,
            data_w: int = 16) -> CostReport:
    flops = addr_w * 2 + data_w * 2 + 2 + 2 * 2 + 2 * 2 + 6
    gates = _acc(
        _mux(addr_w, n_masters), _mux(data_w, n_masters),  # AW/W muxes
        _mux(addr_w, n_masters),                           # AR mux
        {"and": n_masters * 14, "or": n_masters * 8,
         "inv": n_masters * 3},    # two rotating-priority arbiters
        {"and": n_masters * 6},    # per-master response routing (B/R)
        {"and": 22, "inv": 10, "or": 10},   # two transaction FSMs
    )
    return estimate_inventory("axi_mux[SV]", flops, gates, 6)


def pipelined_alu(width: int = 16) -> CostReport:
    flops = 8 * width + 3 + width + 2
    gates = _acc(
        _adder(width), _adder(width),          # add, sub
        {"and": width, "or": width, "xor": width},
        {"mux2": 2 * width * 4},               # two barrel shifters
        {"xor": width, "and": width},          # comparator (lt)
        _mux(width, 8),                        # stage-2 select
        _cmp_eq(3), _cmp_eq(3), _cmp_eq(3),    # opcode decode
        {"and": 10, "inv": 5},                 # valid pipeline control
    )
    return estimate_inventory("pipelined_alu[SV]", flops, gates, 8)


def systolic_array(width: int = 8) -> CostReport:
    flops = 2 * 16 + 16 + 2 * 16 + 2
    gates = _acc(
        # four 8x8 multipliers (array style) + two adders
        {"and": 4 * width * width, "xor": 4 * 2 * width * width},
        _adder(16), _adder(16),
    )
    return estimate_inventory("systolic_array[SV]", flops, gates, 8)


def memory(latency: int = 2) -> CostReport:
    flops = 8 + 8 + 2 + 1
    gates = _acc({"lut4": 128}, {"and": 8, "inv": 4})
    return estimate_inventory("memory[SV]", flops, gates, 3)


def cached_memory(lines: int = 4) -> CostReport:
    flops = lines * (8 + 1 + 8) + 8 + 3 + 2
    gates = _acc(
        *[_cmp_eq(8) for _ in range(lines)],
        _mux(8, lines),
        {"lut4": 128},
        {"and": 12, "inv": 6, "or": 6},
    )
    return estimate_inventory("cached_memory[SV]", flops, gates, 4)
