"""Gate library constants for the synthesis cost model.

The numbers are representative of a commercial 22 nm standard-cell
library at nominal corner (areas in um^2, delays in ps).  Absolute
accuracy is not the goal -- both the Anvil-generated designs and the
hand-written baselines are costed with the *same* library, so the
relative overheads Table 1 reports are meaningful.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class GateSpec(NamedTuple):
    area: float      # um^2
    delay: float     # ps per level
    leakage: float   # uW
    energy: float    # fJ per output toggle


LIBRARY: Dict[str, GateSpec] = {
    "and": GateSpec(0.60, 14.0, 0.0011, 0.55),
    "or": GateSpec(0.60, 14.0, 0.0011, 0.55),
    "xor": GateSpec(1.00, 18.0, 0.0018, 0.80),
    "inv": GateSpec(0.30, 8.0, 0.0006, 0.30),
    "mux2": GateSpec(1.20, 16.0, 0.0020, 0.75),
    "lut4": GateSpec(2.40, 22.0, 0.0042, 1.30),
    "flop": GateSpec(4.00, 0.0, 0.0075, 2.20),
}

FLOP_OVERHEAD_PS = 55.0     # clk->q + setup
WIRE_FACTOR = 1.25          # routing overhead on combinational delay


def gate_area(counts: Dict[str, int]) -> float:
    return sum(LIBRARY[g].area * n for g, n in counts.items() if g in LIBRARY)


def gate_leakage(counts: Dict[str, int]) -> float:
    return sum(
        LIBRARY[g].leakage * n for g, n in counts.items() if g in LIBRARY
    )


def path_delay_ps(levels: int) -> float:
    """Critical-path delay for ``levels`` of average gates."""
    avg = 16.0
    return FLOP_OVERHEAD_PS + WIRE_FACTOR * avg * max(levels, 1)


def fmax_mhz(levels: int) -> float:
    return 1e6 / path_delay_ps(levels)
