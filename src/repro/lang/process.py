"""Processes, threads and systems (Section 4.2--4.3).

A :class:`Process` is a template: registers, endpoint formal parameters and
one or more threads (``loop`` or ``recursive``).  A :class:`System` wires
process instances together through channel instances and is the unit that
the simulator executes and the compositional type check covers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ElaborationError
from .channels import ChannelDef, Side
from .terms import Term
from .types import DataType, Logic


class Register:
    """A process-local register with an initial value."""

    def __init__(self, name: str, dtype: DataType, init: int = 0):
        self.name = name
        self.dtype = dtype
        self.init = dtype.mask(init)

    def __repr__(self):
        return f"reg {self.name} : {self.dtype!r}"


class Endpoint:
    """A formal endpoint parameter of a process: a side of some channel."""

    def __init__(self, name: str, channel: ChannelDef, side: Side):
        self.name = name
        self.channel = channel
        self.side = side

    def message(self, name: str):
        return self.channel.message(name)

    def sends(self, message: str) -> bool:
        """True iff this endpoint is the sender of ``message``."""
        return self.channel.message(message).sender_side() is self.side

    def __repr__(self):
        return f"{self.name} : {self.side.value} {self.channel.name}"


class Thread:
    """One concurrent thread of a process body."""

    LOOP = "loop"
    RECURSIVE = "recursive"

    def __init__(self, body: Term, kind: str = LOOP, name: str = ""):
        if kind not in (self.LOOP, self.RECURSIVE):
            raise ValueError(f"unknown thread kind {kind!r}")
        self.body = body
        self.kind = kind
        self.name = name

    def __repr__(self):
        return f"{self.kind}{{{self.body!r}}}"


class Process:
    """An Anvil ``proc``: the unit of compilation and type checking."""

    def __init__(self, name: str):
        self.name = name
        self.endpoints: Dict[str, Endpoint] = {}
        self.registers: Dict[str, Register] = {}
        self.threads: List[Thread] = []

    # -- declaration helpers --------------------------------------------
    def endpoint(self, name: str, channel: ChannelDef, side: Side) -> Endpoint:
        if name in self.endpoints:
            raise ElaborationError(f"duplicate endpoint {name!r} in {self.name}")
        ep = Endpoint(name, channel, side)
        self.endpoints[name] = ep
        return ep

    def register(self, name: str, dtype: Optional[DataType] = None, init: int = 0,
                 width: Optional[int] = None) -> Register:
        if name in self.registers:
            raise ElaborationError(f"duplicate register {name!r} in {self.name}")
        if dtype is None:
            dtype = Logic(width or 1)
        reg = Register(name, dtype, init)
        self.registers[name] = reg
        return reg

    def loop(self, body: Term, name: str = "") -> Thread:
        th = Thread(body, Thread.LOOP, name or f"loop{len(self.threads)}")
        self.threads.append(th)
        return th

    def recursive(self, body: Term, name: str = "") -> Thread:
        th = Thread(body, Thread.RECURSIVE, name or f"rec{len(self.threads)}")
        self.threads.append(th)
        return th

    # -- lookups ----------------------------------------------------------
    def get_endpoint(self, name: str) -> Endpoint:
        try:
            return self.endpoints[name]
        except KeyError:
            raise ElaborationError(
                f"process {self.name!r} has no endpoint {name!r}"
            ) from None

    def get_register(self, name: str) -> Register:
        try:
            return self.registers[name]
        except KeyError:
            raise ElaborationError(
                f"process {self.name!r} has no register {name!r}"
            ) from None

    def __repr__(self):
        return (
            f"proc {self.name}({', '.join(map(repr, self.endpoints.values()))})"
        )


class ProcessInstance:
    """A named instantiation of a process inside a system."""

    def __init__(self, process: Process, name: str):
        self.process = process
        self.name = name
        # endpoint name -> (channel instance id, side)
        self.bindings: Dict[str, Tuple[int, Side]] = {}

    def __repr__(self):
        return f"{self.name} : {self.process.name}"


class ChannelInstance:
    """A concrete channel created by wiring two endpoints together."""

    def __init__(self, cid: int, channel: ChannelDef):
        self.cid = cid
        self.channel = channel
        # side -> (instance name, endpoint name); either side may instead be
        # bound to an external (non-Anvil) driver.
        self.ends: Dict[Side, Tuple[str, str]] = {}

    def __repr__(self):
        return f"chan#{self.cid}:{self.channel.name}"


class System:
    """A closed (or externally-driven) composition of process instances.

    >>> sys = System("demo")
    >>> top = sys.add(top_proc)          # doctest: +SKIP
    >>> mem = sys.add(mem_proc)          # doctest: +SKIP
    >>> sys.connect(top, "mem", mem, "host")   # doctest: +SKIP
    """

    def __init__(self, name: str = "system"):
        self.name = name
        self.instances: Dict[str, ProcessInstance] = {}
        self.channels: List[ChannelInstance] = []

    def add(self, process: Process, name: str = "") -> ProcessInstance:
        name = name or process.name
        if name in self.instances:
            raise ElaborationError(f"duplicate instance name {name!r}")
        inst = ProcessInstance(process, name)
        self.instances[name] = inst
        return inst

    def connect(
        self,
        a: ProcessInstance,
        a_endpoint: str,
        b: ProcessInstance,
        b_endpoint: str,
    ) -> ChannelInstance:
        """Wire endpoint ``a.a_endpoint`` to ``b.b_endpoint``; the two must
        reference the same channel definition from opposite sides."""
        ea = a.process.get_endpoint(a_endpoint)
        eb = b.process.get_endpoint(b_endpoint)
        if ea.channel is not eb.channel and ea.channel.name != eb.channel.name:
            raise ElaborationError(
                f"channel mismatch: {ea.channel.name} vs {eb.channel.name}"
            )
        if ea.side is eb.side:
            raise ElaborationError(
                f"both endpoints claim the {ea.side.value} side of "
                f"{ea.channel.name}"
            )
        chan = ChannelInstance(len(self.channels), ea.channel)
        chan.ends[ea.side] = (a.name, a_endpoint)
        chan.ends[eb.side] = (b.name, b_endpoint)
        self.channels.append(chan)
        a.bindings[a_endpoint] = (chan.cid, ea.side)
        b.bindings[b_endpoint] = (chan.cid, eb.side)
        return chan

    def expose(self, a: ProcessInstance, a_endpoint: str) -> ChannelInstance:
        """Create a channel whose far side is external (driven by a test
        bench or a non-Anvil RTL module)."""
        ea = a.process.get_endpoint(a_endpoint)
        chan = ChannelInstance(len(self.channels), ea.channel)
        chan.ends[ea.side] = (a.name, a_endpoint)
        self.channels.append(chan)
        a.bindings[a_endpoint] = (chan.cid, ea.side)
        return chan

    def unbound_endpoints(self) -> List[Tuple[str, str]]:
        out = []
        for inst in self.instances.values():
            for ep in inst.process.endpoints.values():
                if ep.name not in inst.bindings:
                    out.append((inst.name, ep.name))
        return out

    def __repr__(self):
        return (
            f"System({self.name!r}, {len(self.instances)} instances, "
            f"{len(self.channels)} channels)"
        )
