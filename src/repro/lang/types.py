"""Hardware data types: ``logic[N]`` vectors and named bundles (structs).

Values of every type are carried as Python integers masked to the type's
width; bundles pack their fields LSB-first, mirroring SystemVerilog packed
structs, so a bundle is interchangeable with a ``logic`` vector of the same
total width.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class DataType:
    """Base class for hardware data types."""

    @property
    def width(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def mask(self, value: int) -> int:
        return value & ((1 << self.width) - 1)


class Logic(DataType):
    """A ``logic[N]`` bit vector.  ``Logic(1)`` is a single wire."""

    __slots__ = ("_width",)

    def __init__(self, width: int = 1):
        if width <= 0:
            raise ValueError("logic width must be positive")
        self._width = width

    @property
    def width(self) -> int:
        return self._width

    def __eq__(self, other):
        return isinstance(other, Logic) and other._width == self._width

    def __hash__(self):
        return hash(("logic", self._width))

    def __repr__(self):
        return f"logic[{self._width}]"


class Bundle(DataType):
    """A packed struct of named fields, LSB-first.

    >>> pair = Bundle([("addr", Logic(8)), ("data", Logic(8))])
    >>> pair.width
    16
    >>> pair.pack({"addr": 0x12, "data": 0x34})
    13330
    """

    __slots__ = ("fields",)

    def __init__(self, fields: List[Tuple[str, DataType]]):
        if not fields:
            raise ValueError("bundle needs at least one field")
        self.fields: Tuple[Tuple[str, DataType], ...] = tuple(fields)
        names = [n for n, _ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in bundle")

    @property
    def width(self) -> int:
        return sum(t.width for _, t in self.fields)

    def field_range(self, name: str) -> Tuple[int, int]:
        """Return ``(lo_bit, width)`` of a field."""
        lo = 0
        for n, t in self.fields:
            if n == name:
                return lo, t.width
            lo += t.width
        raise KeyError(f"no field {name!r} in bundle")

    def field_type(self, name: str) -> DataType:
        for n, t in self.fields:
            if n == name:
                return t
        raise KeyError(f"no field {name!r} in bundle")

    def pack(self, values: Dict[str, int]) -> int:
        out = 0
        lo = 0
        for n, t in self.fields:
            out |= t.mask(values.get(n, 0)) << lo
            lo += t.width
        return out

    def unpack(self, value: int) -> Dict[str, int]:
        out = {}
        lo = 0
        for n, t in self.fields:
            out[n] = (value >> lo) & ((1 << t.width) - 1)
            lo += t.width
        return out

    def __eq__(self, other):
        return isinstance(other, Bundle) and other.fields == self.fields

    def __hash__(self):
        return hash(("bundle", self.fields))

    def __repr__(self):
        inner = ", ".join(f"{n}: {t!r}" for n, t in self.fields)
        return f"{{{inner}}}"


BIT = Logic(1)
