"""Channels, messages, message contracts and synchronization modes.

A channel type definition (Section 4.1 of the paper) is a template for a
bidirectional, unbuffered channel with two endpoints (*left* and *right*).
Each message declares:

* its direction of travel (``LEFT`` = towards the left endpoint);
* a data type;
* a *message contract*: the duration after the synchronization event for
  which the carried value is guaranteed to stay unchanged -- a static
  ``#k`` cycles or a dynamic "until message m next synchronizes";
* per-endpoint *sync modes*: ``@dyn`` (run-time valid/ack handshake),
  static ``@#k`` (ready at most every k cycles) or dependent
  ``@#m+k`` (exactly k cycles after message ``m``).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence

from ..core.patterns import Duration
from .types import DataType, Logic


class Side(enum.Enum):
    LEFT = "left"
    RIGHT = "right"

    @property
    def other(self) -> "Side":
        return Side.RIGHT if self is Side.LEFT else Side.LEFT


class SyncMode:
    """Synchronization mode of one side of a message."""

    is_dynamic = False


class DynamicSync(SyncMode):
    """``@dyn`` -- one-bit run-time handshake signal."""

    is_dynamic = True

    def __repr__(self):
        return "@dyn"

    def __eq__(self, other):
        return isinstance(other, DynamicSync)

    def __hash__(self):
        return hash("@dyn")


class StaticSync(SyncMode):
    """``@#k`` -- the side is ready at most every ``k`` cycles after the
    previous synchronization of the same message."""

    def __init__(self, interval: int):
        if interval < 1:
            raise ValueError("static sync interval must be >= 1")
        self.interval = interval

    def __repr__(self):
        return f"@#{self.interval}"

    def __eq__(self, other):
        return isinstance(other, StaticSync) and other.interval == self.interval

    def __hash__(self):
        return hash(("static", self.interval))


class DependentSync(SyncMode):
    """``@#m+k`` -- synchronizes exactly ``k`` cycles after message ``m``."""

    def __init__(self, message: str, offset: int):
        if offset < 0:
            raise ValueError("dependent sync offset must be >= 0")
        self.message = message
        self.offset = offset

    def __repr__(self):
        return f"@#{self.message}+{self.offset}"

    def __eq__(self, other):
        return (
            isinstance(other, DependentSync)
            and other.message == self.message
            and other.offset == self.offset
        )

    def __hash__(self):
        return hash(("dep", self.message, self.offset))


class LifetimeSpec:
    """Contract lifetime of a message's payload, relative to its own sync
    event: either ``#k`` cycles or until message ``m`` next synchronizes."""

    def __init__(self, cycles: Optional[int] = None, message: str = ""):
        if (cycles is None) == (not message):
            raise ValueError("specify exactly one of cycles / message")
        self.cycles = cycles
        self.message = message

    @staticmethod
    def static(cycles: int) -> "LifetimeSpec":
        return LifetimeSpec(cycles=cycles)

    @staticmethod
    def until(message: str) -> "LifetimeSpec":
        return LifetimeSpec(message=message)

    @property
    def is_static(self) -> bool:
        return self.cycles is not None

    def as_duration(self, endpoint: str) -> Duration:
        """Instantiate at a concrete endpoint name."""
        if self.is_static:
            return Duration.static(self.cycles)
        return Duration.dynamic(endpoint, self.message)

    def __repr__(self):
        return f"@#{self.cycles}" if self.is_static else f"@{self.message}"

    def __eq__(self, other):
        return (
            isinstance(other, LifetimeSpec)
            and other.cycles == self.cycles
            and other.message == self.message
        )

    def __hash__(self):
        return hash((self.cycles, self.message))


class MessageDef:
    """One message of a channel definition."""

    def __init__(
        self,
        name: str,
        direction: Side,
        dtype: DataType,
        lifetime: LifetimeSpec,
        left_sync: Optional[SyncMode] = None,
        right_sync: Optional[SyncMode] = None,
    ):
        self.name = name
        self.direction = direction
        self.dtype = dtype
        self.lifetime = lifetime
        self.left_sync = left_sync or DynamicSync()
        self.right_sync = right_sync or DynamicSync()

    def sync_of(self, side: Side) -> SyncMode:
        return self.left_sync if side is Side.LEFT else self.right_sync

    @property
    def fully_dynamic(self) -> bool:
        return self.left_sync.is_dynamic and self.right_sync.is_dynamic

    def sender_side(self) -> Side:
        """The side that *sends* this message (opposite its travel
        direction)."""
        return self.direction.other

    def __repr__(self):
        return (
            f"{self.direction.value} {self.name} : ({self.dtype!r}"
            f"{self.lifetime!r}) {self.left_sync!r}-{self.right_sync!r}"
        )


class ChannelDef:
    """A channel type definition: a named collection of messages."""

    def __init__(self, name: str, messages: Sequence[MessageDef]):
        self.name = name
        self.messages: Dict[str, MessageDef] = {}
        for m in messages:
            if m.name in self.messages:
                raise ValueError(f"duplicate message {m.name!r} in {name}")
            self.messages[m.name] = m

    def message(self, name: str) -> MessageDef:
        try:
            return self.messages[name]
        except KeyError:
            raise KeyError(
                f"channel {self.name!r} has no message {name!r}"
            ) from None

    def __iter__(self):
        return iter(self.messages.values())

    def __repr__(self):
        return f"chan {self.name} {{{len(self.messages)} messages}}"


def simple_channel(
    name: str,
    req_width: int = 8,
    res_width: int = 8,
    req_lifetime: Optional[LifetimeSpec] = None,
    res_lifetime: Optional[LifetimeSpec] = None,
) -> ChannelDef:
    """Convenience constructor for the ubiquitous request/response channel.

    ``req`` travels right (the left endpoint is the client), ``res`` travels
    left.  Default contracts are the paper's dynamic memory contract:
    ``req`` stays valid until ``res``, and ``res`` for one cycle.
    """
    return ChannelDef(
        name,
        [
            MessageDef(
                "req",
                Side.RIGHT,
                Logic(req_width),
                req_lifetime or LifetimeSpec.until("res"),
            ),
            MessageDef(
                "res",
                Side.LEFT,
                Logic(res_width),
                res_lifetime or LifetimeSpec.static(1),
            ),
        ],
    )
