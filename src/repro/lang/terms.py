"""The term language of Anvil (Section 4.4--4.5) as a Python-embedded DSL.

Terms describe both computation and timing.  Every term evaluates to a value
(possibly the empty/unit value) and the evaluation may take multiple cycles.
The two timing-control operators are:

* ``t1 >> t2`` (the *wait* operator): evaluate ``t2`` only after ``t1``
  completes;
* ``par(t1, t2)`` (the paper's ``t1; t2``): start both in parallel, the
  combined term completes when both have.

Python operator overloads build combinational expressions::

    (read("a") ^ lit(0xff, 8)) + read("b")

``==``/``!=`` are kept as *structural identity* on AST nodes (so terms can
live in sets and dicts); use :meth:`Term.eq` / :meth:`Term.ne` for the
hardware comparison operators.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .types import DataType, Logic

TermLike = Union["Term", int, bool]


def _coerce(value: TermLike) -> "Term":
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Literal(int(value), Logic(1))
    if isinstance(value, int):
        return Literal(value, None)
    raise TypeError(f"cannot use {value!r} as an Anvil term")


class Term:
    """Base class of all Anvil terms."""

    # -- timing-control operators ---------------------------------------
    def __rshift__(self, other: TermLike) -> "Wait":
        return Wait(self, _coerce(other))

    def then(self, other: TermLike) -> "Wait":
        return Wait(self, _coerce(other))

    # -- combinational operators ----------------------------------------
    def __add__(self, o):
        return BinOp("add", self, _coerce(o))

    def __radd__(self, o):
        return BinOp("add", _coerce(o), self)

    def __sub__(self, o):
        return BinOp("sub", self, _coerce(o))

    def __rsub__(self, o):
        return BinOp("sub", _coerce(o), self)

    def __mul__(self, o):
        return BinOp("mul", self, _coerce(o))

    def __rmul__(self, o):
        return BinOp("mul", _coerce(o), self)

    def __xor__(self, o):
        return BinOp("xor", self, _coerce(o))

    def __rxor__(self, o):
        return BinOp("xor", _coerce(o), self)

    def __and__(self, o):
        return BinOp("and", self, _coerce(o))

    def __rand__(self, o):
        return BinOp("and", _coerce(o), self)

    def __or__(self, o):
        return BinOp("or", self, _coerce(o))

    def __ror__(self, o):
        return BinOp("or", _coerce(o), self)

    def __lshift__(self, o):
        return BinOp("shl", self, _coerce(o))

    def __invert__(self):
        return UnOp("not", self)

    # comparisons as named methods (== stays structural identity)
    def eq(self, o):
        return BinOp("eq", self, _coerce(o))

    def ne(self, o):
        return BinOp("ne", self, _coerce(o))

    def lt(self, o):
        return BinOp("lt", self, _coerce(o))

    def le(self, o):
        return BinOp("le", self, _coerce(o))

    def gt(self, o):
        return BinOp("gt", self, _coerce(o))

    def ge(self, o):
        return BinOp("ge", self, _coerce(o))

    def shr(self, o):
        return BinOp("shr", self, _coerce(o))

    def concat(self, o):
        """Bit concatenation; ``self`` becomes the high bits."""
        return BinOp("concat", self, _coerce(o))

    def field(self, name: str) -> "Field":
        return Field(self, name)

    def bits(self, hi: int, lo: int) -> "Slice":
        return Slice(self, hi, lo)

    def bit(self, i: int) -> "Slice":
        return Slice(self, i, i)

    def children(self) -> Tuple["Term", ...]:
        return ()

    def __repr__(self):
        return f"{type(self).__name__}"


class Literal(Term):
    """A constant.  Lifetime is eternal."""

    def __init__(self, value: int, dtype: Optional[DataType] = None):
        self.value = value
        self.dtype = dtype

    def __repr__(self):
        return f"Lit({self.value})"


class Var(Term):
    """Reference to a let-bound name; completes when the binding has."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"Var({self.name})"


class ReadReg(Term):
    """``*r`` -- the signal carrying the current value of register ``r``."""

    def __init__(self, reg: str):
        self.reg = reg

    def __repr__(self):
        return f"*{self.reg}"


class BinOp(Term):
    OPS = {
        "add", "sub", "mul", "and", "or", "xor", "eq", "ne",
        "lt", "le", "gt", "ge", "shl", "shr", "concat",
    }

    def __init__(self, op: str, a: Term, b: Term):
        if op not in self.OPS:
            raise ValueError(f"unknown binary operator {op!r}")
        self.op = op
        self.a = a
        self.b = b

    def children(self):
        return (self.a, self.b)

    def __repr__(self):
        return f"({self.a!r} {self.op} {self.b!r})"


class UnOp(Term):
    OPS = {"not", "neg", "redor", "redand", "redxor"}

    def __init__(self, op: str, a: Term):
        if op not in self.OPS:
            raise ValueError(f"unknown unary operator {op!r}")
        self.op = op
        self.a = a

    def children(self):
        return (self.a,)

    def __repr__(self):
        return f"({self.op} {self.a!r})"


class Field(Term):
    def __init__(self, a: Term, name: str):
        self.a = a
        self.name = name

    def children(self):
        return (self.a,)

    def __repr__(self):
        return f"{self.a!r}.{self.name}"


class Slice(Term):
    def __init__(self, a: Term, hi: int, lo: int):
        if hi < lo:
            raise ValueError("slice hi < lo")
        self.a = a
        self.hi = hi
        self.lo = lo

    def children(self):
        return (self.a,)

    def __repr__(self):
        return f"{self.a!r}[{self.hi}:{self.lo}]"


class BundleLit(Term):
    """Construct a bundle value from per-field terms."""

    def __init__(self, dtype, fields: Dict[str, TermLike]):
        self.dtype = dtype
        self.fields = {k: _coerce(v) for k, v in fields.items()}

    def children(self):
        return tuple(self.fields.values())

    def __repr__(self):
        return f"Bundle({list(self.fields)})"


class Cycle(Term):
    """``cycle N`` -- evaluate to unit after N cycles (timing control)."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("cycle count must be >= 0")
        self.n = n

    def __repr__(self):
        return f"cycle{self.n}"


class Send(Term):
    """``send ep.m(payload)`` -- completes when the message synchronizes."""

    def __init__(self, endpoint: str, message: str, payload: TermLike):
        self.endpoint = endpoint
        self.message = message
        self.payload = _coerce(payload)

    def children(self):
        return (self.payload,)

    def __repr__(self):
        return f"send {self.endpoint}.{self.message}"


class Recv(Term):
    """``recv ep.m`` -- completes when the message synchronizes; evaluates
    to the received value with the contract's lifetime."""

    def __init__(self, endpoint: str, message: str):
        self.endpoint = endpoint
        self.message = message

    def __repr__(self):
        return f"recv {self.endpoint}.{self.message}"


class TrySend(Term):
    """Non-blocking send: offers the message for exactly this cycle and
    completes immediately; evaluates to a 1-bit success flag (the
    counterpart was ready and the value transferred).

    This is the primitive behind stream-style interfaces (FIFOs, spill
    registers): the producer can retract or change the offer next cycle,
    which is safe because the contract window is the single offer cycle.
    """

    def __init__(self, endpoint: str, message: str, payload: TermLike,
                 guard: Optional[TermLike] = None):
        self.endpoint = endpoint
        self.message = message
        self.payload = _coerce(payload)
        self.guard = _coerce(guard) if guard is not None else None

    def children(self):
        if self.guard is None:
            return (self.payload,)
        return (self.payload, self.guard)

    def __repr__(self):
        return f"try_send {self.endpoint}.{self.message}"


class TryRecv(Term):
    """Non-blocking receive: accepts the message if it is being offered
    this cycle and completes immediately.  Evaluates to a value one bit
    wider than the message: ``{valid, data}`` with ``valid`` as the MSB."""

    def __init__(self, endpoint: str, message: str,
                 guard: Optional[TermLike] = None):
        self.endpoint = endpoint
        self.message = message
        self.guard = _coerce(guard) if guard is not None else None

    def children(self):
        return () if self.guard is None else (self.guard,)

    def __repr__(self):
        return f"try_recv {self.endpoint}.{self.message}"


class Table(Term):
    """Combinational lookup table (LUT): ``entries[index]``.

    The index is truncated to ``ceil(log2(len(entries)))`` bits.  This is
    how ROM-style logic such as the AES S-box is expressed, matching the
    LUT-mapped S-box of the OpenTitan core the paper evaluates."""

    def __init__(self, index: TermLike, entries, width: Optional[int] = None):
        entries = tuple(int(v) for v in entries)
        if not entries:
            raise ValueError("table needs at least one entry")
        self.index = _coerce(index)
        self.entries = entries
        self.width = width or max(max(entries).bit_length(), 1)

    def children(self):
        return (self.index,)

    def __repr__(self):
        return f"table[{len(self.entries)}]"


class Ready(Term):
    """``ready(ep.m)`` -- 1-bit signal: counterpart currently offering m."""

    def __init__(self, endpoint: str, message: str):
        self.endpoint = endpoint
        self.message = message

    def __repr__(self):
        return f"ready({self.endpoint}.{self.message})"


class Let(Term):
    """``let x = bound in body``.

    Both ``bound`` and ``body`` start evaluating immediately (the paper's
    async/await-like composition); a :class:`Var` reference to ``x`` inside
    ``body`` waits for ``bound`` to complete.
    """

    def __init__(self, name: str, bound: TermLike, body: TermLike):
        self.name = name
        self.bound = _coerce(bound)
        self.body = _coerce(body)

    def children(self):
        return (self.bound, self.body)

    def __repr__(self):
        return f"let {self.name} = {self.bound!r} in ..."


class If(Term):
    """``if cond then t else e``; the else branch defaults to unit."""

    def __init__(self, cond: TermLike, then: TermLike, els: Optional[TermLike] = None):
        self.cond = _coerce(cond)
        self.then = _coerce(then)
        self.els = _coerce(els) if els is not None else None

    def children(self):
        if self.els is None:
            return (self.cond, self.then)
        return (self.cond, self.then, self.els)

    def __repr__(self):
        return f"if {self.cond!r} ..."


class Mux(Term):
    """Combinational 2:1 select: ``cond ? a : b``.

    Unlike :class:`If`, a mux is a pure value -- all three operands are
    wires evaluated in place and no control-flow events are created."""

    def __init__(self, cond: TermLike, a: TermLike, b: TermLike):
        self.cond = _coerce(cond)
        self.a = _coerce(a)
        self.b = _coerce(b)

    def children(self):
        return (self.cond, self.a, self.b)

    def __repr__(self):
        return f"({self.cond!r} ? {self.a!r} : {self.b!r})"


class SetReg(Term):
    """``set r := t`` -- register mutation; completes after one cycle."""

    def __init__(self, reg: str, value: TermLike):
        self.reg = reg
        self.value = _coerce(value)

    def children(self):
        return (self.value,)

    def __repr__(self):
        return f"set {self.reg} := {self.value!r}"


class Wait(Term):
    """``t1 >> t2`` -- the wait operator."""

    def __init__(self, first: TermLike, second: TermLike):
        self.first = _coerce(first)
        self.second = _coerce(second)

    def children(self):
        return (self.first, self.second)

    def __repr__(self):
        return f"({self.first!r} >> {self.second!r})"


class Par(Term):
    """``t1; t2`` -- start both in parallel; completes when both have;
    evaluates to the second term's value."""

    def __init__(self, first: TermLike, second: TermLike):
        self.first = _coerce(first)
        self.second = _coerce(second)

    def children(self):
        return (self.first, self.second)

    def __repr__(self):
        return f"({self.first!r}; {self.second!r})"


class DPrint(Term):
    """Simulation-only debug print (the paper's ``dprint``)."""

    def __init__(self, fmt: str, arg: Optional[TermLike] = None):
        self.fmt = fmt
        self.arg = _coerce(arg) if arg is not None else None

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def __repr__(self):
        return f"dprint({self.fmt!r})"


class Recurse(Term):
    """``recurse`` -- restart a ``recursive`` thread from its beginning
    (a new overlapped iteration); only valid inside recursive threads."""

    def __repr__(self):
        return "recurse"


class Unit(Term):
    """The empty value ``()``."""

    def __repr__(self):
        return "()"


# ----------------------------------------------------------------------
# builder helpers (the public DSL surface)
# ----------------------------------------------------------------------
def lit(value: int, width: Optional[int] = None) -> Literal:
    """A literal; ``lit(5, 8)`` is the paper's ``8'd5``."""
    return Literal(value, Logic(width) if width else None)


def read(reg: str) -> ReadReg:
    """``*reg``."""
    return ReadReg(reg)


def var(name: str) -> Var:
    return Var(name)


def recv(endpoint: str, message: str) -> Recv:
    return Recv(endpoint, message)


def send(endpoint: str, message: str, payload: TermLike) -> Send:
    return Send(endpoint, message, payload)


def ready(endpoint: str, message: str) -> Ready:
    return Ready(endpoint, message)


def try_send(endpoint: str, message: str, payload: TermLike,
             guard: Optional[TermLike] = None) -> TrySend:
    """Non-blocking send, optionally gated: the offer (valid) is only
    asserted while ``guard`` holds."""
    return TrySend(endpoint, message, payload, guard)


def try_recv(endpoint: str, message: str,
             guard: Optional[TermLike] = None) -> TryRecv:
    """Non-blocking receive, optionally gated: acceptance (ack) is only
    asserted while ``guard`` holds."""
    return TryRecv(endpoint, message, guard)


def table(index: TermLike, entries, width: Optional[int] = None) -> Table:
    return Table(index, entries, width)


def cycle(n: int = 1) -> Cycle:
    return Cycle(n)


def let(name: str, bound: TermLike, body: TermLike) -> Let:
    return Let(name, bound, body)


def if_(cond: TermLike, then: TermLike, els: Optional[TermLike] = None) -> If:
    return If(cond, then, els)


def set_reg(reg: str, value: TermLike) -> SetReg:
    return SetReg(reg, value)


def par(*terms: TermLike) -> Term:
    """``t1; t2; ...`` -- parallel composition, left-assoc."""
    if not terms:
        return Unit()
    acc = _coerce(terms[0])
    for t in terms[1:]:
        acc = Par(acc, _coerce(t))
    return acc


def seq(*terms: TermLike) -> Term:
    """``t1 >> t2 >> ...`` -- sequential composition, left-assoc."""
    if not terms:
        return Unit()
    acc = _coerce(terms[0])
    for t in terms[1:]:
        acc = Wait(acc, _coerce(t))
    return acc


def dprint(fmt: str, arg: Optional[TermLike] = None) -> DPrint:
    return DPrint(fmt, arg)


def recurse() -> Recurse:
    return Recurse()


def unit() -> Unit:
    return Unit()


def mux(cond: TermLike, a: TermLike, b: TermLike) -> Mux:
    """Combinational 2:1 mux (a pure value; no control flow)."""
    return Mux(cond, a, b)


def bundle(dtype, **fields: TermLike) -> BundleLit:
    return BundleLit(dtype, fields)
