"""Textual front-end for the paper's concrete syntax (a pragmatic subset).

Parses channel and process definitions in the style of Section 4::

    chan cache_ch {
      left  req : (logic[8] @res) @dyn-@dyn,
      right res : (logic[8] @#1)
    }

    proc top(mem : left cache_ch) {
      reg address : logic[8];
      loop {
        send mem.req (*address) >>
        let d = recv mem.res >>
        set address := *address + 1
      }
    }

and produces the same :class:`~repro.lang.process.Process` /
:class:`~repro.lang.channels.ChannelDef` objects as the Python DSL, so
parsed designs go through the identical type checker and compiler.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from .channels import (
    ChannelDef,
    DependentSync,
    DynamicSync,
    LifetimeSpec,
    MessageDef,
    Side,
    StaticSync,
    SyncMode,
)
from .process import Process
from .terms import (
    Term,
    cycle,
    if_,
    let,
    lit,
    par,
    read,
    recv,
    send,
    set_reg,
    unit,
    var,
)
from .types import Logic

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+'d\d+|\d+'h[0-9a-fA-F]+|\d+'b[01]+|\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>:=|->|>>|==|!=|<=|>=|[@#{}()\[\],.;:+\-*^&|~<>=])
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "chan", "proc", "reg", "loop", "recursive", "left", "right",
    "logic", "send", "recv", "set", "let", "if", "else", "cycle",
    "dyn", "in",
}


class _Tokens:
    def __init__(self, text: str):
        self.items: List[Tuple[str, str, int]] = []  # (kind, value, line)
        line = 1
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise ParseError(f"unexpected character {text[pos]!r}", line)
            pos = m.end()
            kind = m.lastgroup
            value = m.group()
            line += value.count("\n")
            if kind == "ws":
                continue
            self.items.append((kind, value, line))
        self.i = 0

    def peek(self, offset: int = 0) -> Tuple[str, str, int]:
        if self.i + offset >= len(self.items):
            return ("eof", "", -1)
        return self.items[self.i + offset]

    def next(self) -> Tuple[str, str, int]:
        t = self.peek()
        self.i += 1
        return t

    def expect(self, value: str) -> Tuple[str, str, int]:
        kind, v, line = self.next()
        if v != value:
            raise ParseError(f"expected {value!r}, got {v!r}", line)
        return kind, v, line

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.next()
            return True
        return False

    @property
    def done(self) -> bool:
        return self.i >= len(self.items)


def _parse_number(text: str) -> Tuple[int, Optional[int]]:
    """Returns (value, width or None) for verilog-style literals."""
    if "'" in text:
        width_s, rest = text.split("'", 1)
        base = rest[0]
        digits = rest[1:]
        value = int(digits, {"d": 10, "h": 16, "b": 2}[base])
        return value, int(width_s)
    if text.startswith("0x"):
        return int(text, 16), None
    return int(text), None


class Parser:
    """Recursive-descent parser producing ChannelDef / Process objects."""

    def __init__(self, text: str):
        self.toks = _Tokens(text)
        self.channels: Dict[str, ChannelDef] = {}
        self.processes: Dict[str, Process] = {}

    # ------------------------------------------------------------------
    def parse(self) -> "Parser":
        while not self.toks.done:
            kind, value, line = self.toks.peek()
            if value == "chan":
                self._parse_channel()
            elif value == "proc":
                self._parse_process()
            else:
                raise ParseError(
                    f"expected 'chan' or 'proc', got {value!r}", line
                )
        return self

    # -- channels ----------------------------------------------------------
    def _parse_dtype(self) -> Logic:
        self.toks.expect("logic")
        width = 1
        if self.toks.accept("["):
            _, num, _ = self.toks.next()
            width = int(num)
            self.toks.expect("]")
        return Logic(width)

    def _parse_lifetime(self) -> LifetimeSpec:
        self.toks.expect("@")
        if self.toks.accept("#"):
            _, num, _ = self.toks.next()
            return LifetimeSpec.static(int(num))
        _, name, _ = self.toks.next()
        return LifetimeSpec.until(name)

    def _parse_sync_mode(self) -> SyncMode:
        self.toks.expect("@")
        if self.toks.accept("dyn"):
            return DynamicSync()
        self.toks.expect("#")
        kind, tok, line = self.toks.next()
        if kind == "num":
            return StaticSync(int(tok))
        # dependent: @#msg+k
        msg = tok
        offset = 0
        if self.toks.accept("+"):
            _, num, _ = self.toks.next()
            offset = int(num)
        return DependentSync(msg, offset)

    def _parse_channel(self):
        self.toks.expect("chan")
        _, name, _ = self.toks.next()
        self.toks.expect("{")
        messages: List[MessageDef] = []
        while not self.toks.accept("}"):
            _, side_s, line = self.toks.next()
            if side_s not in ("left", "right"):
                raise ParseError(
                    f"expected message direction, got {side_s!r}", line
                )
            direction = Side.LEFT if side_s == "left" else Side.RIGHT
            _, mname, _ = self.toks.next()
            self.toks.expect(":")
            self.toks.expect("(")
            dtype = self._parse_dtype()
            lifetime = self._parse_lifetime()
            self.toks.expect(")")
            left_sync: Optional[SyncMode] = None
            right_sync: Optional[SyncMode] = None
            if self.toks.peek()[1] == "@":
                left_sync = self._parse_sync_mode()
                self.toks.expect("-")
                right_sync = self._parse_sync_mode()
            messages.append(MessageDef(
                mname, direction, dtype, lifetime, left_sync, right_sync,
            ))
            self.toks.accept(",")
        self.channels[name] = ChannelDef(name, messages)

    # -- processes ----------------------------------------------------------
    def _parse_process(self):
        self.toks.expect("proc")
        _, name, _ = self.toks.next()
        proc = Process(name)
        self.toks.expect("(")
        while not self.toks.accept(")"):
            _, ep_name, _ = self.toks.next()
            self.toks.expect(":")
            _, side_s, line = self.toks.next()
            if side_s not in ("left", "right"):
                raise ParseError(f"expected endpoint side, got {side_s!r}",
                                 line)
            _, ch_name, line = self.toks.next()
            if ch_name not in self.channels:
                raise ParseError(f"unknown channel {ch_name!r}", line)
            proc.endpoint(
                ep_name, self.channels[ch_name],
                Side.LEFT if side_s == "left" else Side.RIGHT,
            )
            self.toks.accept(",")
        self.toks.expect("{")
        while not self.toks.accept("}"):
            kind, value, line = self.toks.peek()
            if value == "reg":
                self.toks.next()
                _, rname, _ = self.toks.next()
                self.toks.expect(":")
                dtype = self._parse_dtype()
                self.toks.accept(";")
                proc.register(rname, dtype)
            elif value in ("loop", "recursive"):
                self.toks.next()
                self.toks.expect("{")
                body = self._parse_term()
                self.toks.expect("}")
                if value == "loop":
                    proc.loop(body)
                else:
                    proc.recursive(body)
            else:
                raise ParseError(
                    f"expected 'reg', 'loop' or 'recursive', got {value!r}",
                    line,
                )
        self.processes[name] = proc

    # -- terms ---------------------------------------------------------------
    def _parse_term(self) -> Term:
        """wait-chains bind loosest:  t1 >> t2 >> t3."""
        t = self._parse_par()
        while self.toks.accept(">>"):
            t = t >> self._parse_par()
        return t

    def _parse_par(self) -> Term:
        t = self._parse_simple()
        while self.toks.accept(";"):
            if self.toks.peek()[1] in ("}", ")"):   # trailing semicolon
                break
            t = par(t, self._parse_simple())
        return t

    def _parse_simple(self) -> Term:
        kind, value, line = self.toks.peek()
        if value == "{":
            self.toks.next()
            t = self._parse_term()
            self.toks.expect("}")
            return t
        if value == "send":
            self.toks.next()
            ep, msg = self._parse_endpoint_msg()
            self.toks.expect("(")
            payload = self._parse_expr()
            self.toks.expect(")")
            return send(ep, msg, payload)
        if value == "recv":
            self.toks.next()
            ep, msg = self._parse_endpoint_msg()
            return recv(ep, msg)
        if value == "set":
            self.toks.next()
            _, rname, _ = self.toks.next()
            self.toks.expect(":=")
            return set_reg(rname, self._parse_expr())
        if value == "let":
            self.toks.next()
            _, vname, _ = self.toks.next()
            self.toks.expect("=")
            bound = self._parse_simple()
            if self.toks.accept("in"):
                body = self._parse_term()
            elif self.toks.accept(">>"):
                body = self._parse_term()
            else:
                body = unit()
            return let(vname, bound, body)
        if value == "cycle":
            self.toks.next()
            _, num, _ = self.toks.next()
            return cycle(int(num))
        if value == "if":
            self.toks.next()
            cond = self._parse_expr()
            self.toks.expect("{")
            then = self._parse_term()
            self.toks.expect("}")
            els = None
            if self.toks.accept("else"):
                self.toks.expect("{")
                els = self._parse_term()
                self.toks.expect("}")
            return if_(cond, then, els)
        # fall back to an expression-as-term (e.g. a var reference wait)
        return self._parse_expr()

    def _parse_endpoint_msg(self) -> Tuple[str, str]:
        _, ep, _ = self.toks.next()
        self.toks.expect(".")
        _, msg, _ = self.toks.next()
        return ep, msg

    # -- expressions (precedence: cmp < or < xor < and < add < unary) -------
    def _parse_expr(self) -> Term:
        t = self._parse_or()
        while True:
            v = self.toks.peek()[1]
            if v == "==":
                self.toks.next()
                t = t.eq(self._parse_or())
            elif v == "!=":
                self.toks.next()
                t = t.ne(self._parse_or())
            elif v == "<":
                self.toks.next()
                t = t.lt(self._parse_or())
            elif v == ">":
                self.toks.next()
                t = t.gt(self._parse_or())
            elif v == "<=":
                self.toks.next()
                t = t.le(self._parse_or())
            elif v == ">=":
                self.toks.next()
                t = t.ge(self._parse_or())
            else:
                return t

    def _parse_or(self) -> Term:
        t = self._parse_xor()
        while self.toks.peek()[1] == "|":
            self.toks.next()
            t = t | self._parse_xor()
        return t

    def _parse_xor(self) -> Term:
        t = self._parse_and()
        while self.toks.peek()[1] == "^":
            self.toks.next()
            t = t ^ self._parse_and()
        return t

    def _parse_and(self) -> Term:
        t = self._parse_add()
        while self.toks.peek()[1] == "&":
            self.toks.next()
            t = t & self._parse_add()
        return t

    def _parse_add(self) -> Term:
        t = self._parse_unary()
        while self.toks.peek()[1] in ("+", "-"):
            op = self.toks.next()[1]
            rhs = self._parse_unary()
            t = t + rhs if op == "+" else t - rhs
        return t

    def _parse_unary(self) -> Term:
        kind, value, line = self.toks.peek()
        if value == "*":
            self.toks.next()
            _, rname, _ = self.toks.next()
            return read(rname)
        if value == "~":
            self.toks.next()
            return ~self._parse_unary()
        if value == "(":
            self.toks.next()
            t = self._parse_expr()
            self.toks.expect(")")
            return t
        if kind == "num":
            self.toks.next()
            v, width = _parse_number(value)
            return lit(v, width)
        if kind == "id" and value not in KEYWORDS:
            self.toks.next()
            return var(value)
        raise ParseError(f"unexpected token {value!r} in expression", line)


def parse(text: str) -> Parser:
    """Parse Anvil source text; returns the parser with ``.channels`` and
    ``.processes`` populated."""
    return Parser(text).parse()


def parse_process(text: str, name: Optional[str] = None) -> Process:
    """Parse source text and return one process (the only one, or by
    name)."""
    p = parse(text)
    if not p.processes:
        raise ParseError("no process definitions found")
    if name is None:
        if len(p.processes) > 1:
            raise ParseError(
                f"multiple processes defined: {sorted(p.processes)}; "
                "pass a name"
            )
        return next(iter(p.processes.values()))
    if name not in p.processes:
        raise ParseError(f"no process named {name!r}")
    return p.processes[name]
