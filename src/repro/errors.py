"""Exception hierarchy for the Anvil reproduction.

The compiler reports *static* errors as :class:`TypeCheckError` subclasses
mirroring the three checks of the paper (Section 5.4):

* Valid Value Use      -> :class:`ValueNotLiveError`
* Valid Register Mutation -> :class:`LoanedRegisterMutationError`
* Valid Message Send   -> :class:`MessageSendError`

Run-time (simulation) violations of channel contracts -- which can only occur
for designs that bypassed the type checker, e.g. baselines or deliberately
unsafe compositions -- raise :class:`ContractViolationError`.
"""

from __future__ import annotations


class AnvilError(Exception):
    """Base class for every error raised by this library."""


class ParseError(AnvilError):
    """Raised by the textual front-end on malformed Anvil source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ElaborationError(AnvilError):
    """Raised when a process references unknown registers/endpoints/messages."""


class TypeCheckError(AnvilError):
    """Base class for static timing-safety violations.

    Attributes
    ----------
    process:
        Name of the process being checked, if known.
    detail:
        Human-readable description of the failed constraint.
    """

    kind = "timing error"

    def __init__(self, detail: str, process: str = ""):
        self.process = process
        self.detail = detail
        where = f" in process '{process}'" if process else ""
        super().__init__(f"{self.kind}{where}: {detail}")


class ValueNotLiveError(TypeCheckError):
    """A value is used (or sent) outside its inferred lifetime."""

    kind = "Value not live long enough"


class LoanedRegisterMutationError(TypeCheckError):
    """A register is mutated while loaned to a live signal or message."""

    kind = "Attempted assignment to a loaned register"


class MessageSendError(TypeCheckError):
    """Two sends of the same message have overlapping required lifetimes,
    or a send cannot satisfy the channel's sync-mode constraints."""

    kind = "Invalid message send"


class SimulationError(AnvilError):
    """Internal simulator failure (e.g. a combinational loop)."""


class ContractViolationError(AnvilError):
    """A channel timing contract was violated during simulation."""


class WatchdogTimeout(SimulationError):
    """A run exceeded its wall-clock watchdog budget and was cancelled.

    Raised by :func:`repro.rtl.simulator.run_guarded` (and everything
    layered on it: ``Session.run``, the executor workers, the job
    queue) when ``SimConfig(max_wall_time=...)`` is set and the
    simulation does not finish in time.  The fault-injection campaign
    layer classifies it as a ``hang`` outcome.  The message is plain
    text so the exception survives pickling across process-pool
    workers."""


class VerificationError(AnvilError):
    """Raised by the bounded model checker on assertion failure."""

    def __init__(self, message: str, trace=None):
        self.trace = trace or []
        super().__init__(message)


class BudgetExceeded(AnvilError):
    """The bounded model checker ran out of its state/step budget."""

    def __init__(self, message: str, states_explored: int = 0):
        self.states_explored = states_explored
        super().__init__(message)
