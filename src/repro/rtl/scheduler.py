"""Levelized, change-driven combinational scheduler.

The seed simulator settled each cycle by re-evaluating *every* module's
combinational logic in a bounded fixpoint loop and snapshotting *all*
wire values into fresh dicts on every iteration -- O(iterations x wires)
per cycle, dominated by allocation.  This module replaces that loop with
the classic levelized dirty-set algorithm used by cycle-based simulators:

1. **Build** (cached): every module is one combinational block.  Block
   *outputs* are the wires ``eval_comb`` may write, block *inputs* the
   wires it may read -- taken from the optional
   :meth:`~repro.rtl.module.Module.comb_inputs` /
   :meth:`~repro.rtl.module.Module.comb_outputs` hints, conservatively
   defaulting to "all tracked wires".  Writer->reader edges induce a
   module dependency graph; its strongly connected components
   (iterative Tarjan) are levelized into a topological order of groups.
2. **Settle** (per cycle): every block starts dirty (register state may
   have changed at the clock edge).  Groups are evaluated in level
   order; after each evaluation only that block's output wires are
   scanned, and a change marks exactly the readers of the changed wire
   dirty.  Multi-module groups (genuine combinational feedback, e.g. a
   valid/ack handshake pair) iterate to a local fixpoint.  A group that
   fails to stabilize within ``max_settle_iters`` is a true
   combinational loop and raises :class:`~repro.errors.SimulationError`
   naming the unstable wires and the modules on the cycle.
3. **Catch-all scan**: one O(wires) pass per settle absorbs writes to
   wires the writer never declared or tracked (e.g. a test bench poking
   a foreign module's wires), preserving the seed engine's semantics
   for undisciplined modules.

Activity (toggle) accounting is incremental: only wires that actually
changed during a settle are compared against their previous settled
value -- no full-wire snapshot dicts.  Counts are keyed per *wire
object* and reported under ``(owning module, wire name)`` keys, fixing
the seed bug where same-named wires in different modules silently merged
their toggle counts.

The build is cached per simulator and invalidated by
:meth:`CombScheduler.invalidate` (called from ``Simulator.add``) or by a
cheap topology fingerprint check, so late wiring (``Module.adopt`` after
``add``, e.g. ``bind_endpoint``) is picked up automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError


class CombScheduler:
    """Per-:class:`~repro.rtl.simulator.Simulator` evaluation engine."""

    def __init__(self, sim):
        self.sim = sim
        self._stale = True
        self._topo_key: Optional[tuple] = None
        # wire registry (parallel lists indexed by wire index)
        self._wires: List = []
        self._values: List[int] = []
        self._prev_settled: List[Optional[int]] = []
        self._toggles: List[int] = []
        self._owner: List[int] = []
        self._readers: List[Tuple[int, ...]] = []
        # module tables
        self._scan: List[List[tuple]] = []      # module -> [(wire, idx)]
        self._scan_all: List[tuple] = []        # every wire with its index
        self._catch_all: List[tuple] = []       # wires no writer scans
        self._eval_fns: List = []               # bound eval_comb per module
        self._self_mark: List[bool] = []
        self._groups: List[List[int]] = []      # SCCs in topological order
        self._all_dirty = b""
        self._dirty = bytearray()
        self._changed: set = set()
        self._needs_prime = True
        self._undeclared_writers = True   # conservative until built
        # statistics (benchmarks / tests)
        self.eval_count = 0
        self.settle_count = 0

    # -- cache management --------------------------------------------------
    def invalidate(self):
        self._stale = True

    def _fingerprint(self) -> tuple:
        # the identity component hashes the *ordered* id tuple:
        # reordering sim.modules changes the evaluation order and the
        # activity attribution, so it must invalidate the cached
        # topology (an order-insensitive sum would not)
        modules = self.sim.modules
        return (
            len(modules),
            sum(len(m._wires) for m in modules),
            hash(tuple(map(id, modules))),
        )

    def _ensure_built(self):
        if self._stale or self._topo_key != self._fingerprint():
            self._rebuild()

    def _rebuild(self):
        modules = list(self.sim.modules)
        n_mod = len(modules)
        # carry per-wire accounting across rebuilds (modules added mid-run
        # must not reset toggle counts of existing wires)
        carried = {
            id(w): (self._values[i], self._prev_settled[i], self._toggles[i])
            for i, w in enumerate(self._wires)
        }

        wires: List = []
        windex: Dict[int, int] = {}
        owner: List[int] = []
        mod_tracked: List[List[int]] = []

        def register(w, mi: int) -> int:
            wi = windex.get(id(w))
            if wi is None:
                wi = len(wires)
                windex[id(w)] = wi
                wires.append(w)
                owner.append(mi)
            return wi

        for mi, m in enumerate(modules):
            seen = dict.fromkeys(register(w, mi) for w in m.wires())
            mod_tracked.append(list(seen))

        self_mark: List[bool] = []
        in_sets: List[List[int]] = []
        scan: List[List[tuple]] = []
        undeclared_writers = False
        for mi, m in enumerate(modules):
            ins = m.comb_inputs()
            outs = m.comb_outputs()
            if outs is None:
                # no write declaration: the module may write wires it
                # does not even track, so the catch-all scan must cover
                # every wire
                undeclared_writers = True
            if ins is None:
                in_idx = list(mod_tracked[mi])
            else:
                in_idx = list(dict.fromkeys(register(w, mi) for w in ins))
            if outs is None:
                out_idx = list(mod_tracked[mi])
            else:
                out_idx = list(dict.fromkeys(register(w, mi) for w in outs))
            in_sets.append(in_idx)
            scan.append([(wires[wi], wi) for wi in out_idx])
            # a block reading one of its own outputs may combinationally
            # feed itself (always true for undeclared/conservative
            # blocks): re-mark it dirty when its outputs change
            self_mark.append(bool(set(in_idx) & set(out_idx)))

        n_wire = len(wires)
        readers_l: List[List[int]] = [[] for _ in range(n_wire)]
        for mi, in_idx in enumerate(in_sets):
            for wi in in_idx:
                readers_l[wi].append(mi)

        # module dependency graph: writer -> reader per shared wire
        succ: List[set] = [set() for _ in range(n_mod)]
        for mi in range(n_mod):
            for _w, wi in scan[mi]:
                for oi in readers_l[wi]:
                    if oi != mi or self_mark[mi]:
                        succ[mi].add(oi)
        # Tarjan already yields the SCCs topologically ordered -- that
        # order IS the levelization the settle loop walks
        groups = _tarjan_scc(n_mod, succ)

        values = [0] * n_wire
        prev: List[Optional[int]] = [None] * n_wire
        toggles = [0] * n_wire
        for wi, w in enumerate(wires):
            got = carried.get(id(w))
            if got is not None:
                values[wi], prev[wi], toggles[wi] = got
            else:
                values[wi] = w.value
                self._needs_prime = True

        self._wires = wires
        self._values = values
        self._prev_settled = prev
        self._toggles = toggles
        self._owner = owner
        self._readers = [tuple(r) for r in readers_l]
        self._scan = scan
        self._scan_all = [(w, wi) for wi, w in enumerate(wires)]
        # the per-settle catch-all need only cover wires no declared
        # writer scans (test-bench pokes land there); scanned wires are
        # re-checked after every writer evaluation anyway.  With any
        # undeclared writer in the mix, cover everything.
        self._undeclared_writers = undeclared_writers
        if undeclared_writers:
            self._catch_all = self._scan_all
        else:
            covered = {wi for mscan in scan for _w, wi in mscan}
            self._catch_all = [
                (w, wi) for w, wi in self._scan_all if wi not in covered
            ]
        self._eval_fns = [m.eval_comb for m in modules]
        self._self_mark = self_mark
        self._groups = [sorted(g) for g in groups]
        self._all_dirty = bytes([1]) * n_mod
        self._dirty = bytearray(n_mod)
        self._changed = {wi for wi in self._changed if wi < n_wire}
        self._stale = False
        self._topo_key = self._fingerprint()

    # -- introspection -----------------------------------------------------
    def levels(self) -> List[List[str]]:
        """Module names per evaluation group, in topological order (for
        docs, tests and debugging)."""
        self._ensure_built()
        modules = self.sim.modules
        return [[modules[mi].name for mi in g] for g in self._groups]

    # -- the per-cycle fixpoint --------------------------------------------
    def settle(self) -> int:
        """Evaluate combinational logic to a fixpoint; returns the number
        of evaluation passes (1 for a pure feed-forward design)."""
        self._ensure_built()
        sim = self.sim
        values = self._values
        changed = self._changed
        changed_add = changed.add
        readers = self._readers
        scan = self._scan
        evals_fns = self._eval_fns
        self_mark = self._self_mark
        dirty = self._dirty
        max_iters = sim.max_settle_iters
        evals = 0

        # a clock edge may have changed any register, so every block is
        # dirty at the start of the cycle.  (Wires poked from outside
        # eval_comb -- test benches writing inputs between steps -- are
        # absorbed by the catch-all scan below.)
        dirty[:] = self._all_dirty

        passes = 0
        for _outer in range(max_iters):
            passes += 1
            for group in self._groups:
                if len(group) == 1:
                    # fast path: an acyclic block settles in one shot
                    # (or a bounded few, if it feeds itself)
                    mi = group[0]
                    iters = 0
                    while dirty[mi]:
                        iters += 1
                        if iters > max_iters:
                            raise self._loop_error(group)
                        dirty[mi] = 0
                        evals_fns[mi]()
                        evals += 1
                        mark = self_mark[mi]
                        for w, wi in scan[mi]:
                            v = w.value
                            if v != values[wi]:
                                values[wi] = v
                                changed_add(wi)
                                for oi in readers[wi]:
                                    if oi != mi or mark:
                                        dirty[oi] = 1
                    continue
                # a strongly connected group (combinational feedback,
                # e.g. a handshake pair): iterate to a local fixpoint
                for _it in range(max_iters):
                    busy = False
                    for mi in group:
                        if not dirty[mi]:
                            continue
                        busy = True
                        dirty[mi] = 0
                        evals_fns[mi]()
                        evals += 1
                        mark = self_mark[mi]
                        for w, wi in scan[mi]:
                            v = w.value
                            if v != values[wi]:
                                values[wi] = v
                                changed_add(wi)
                                for oi in readers[wi]:
                                    if oi != mi or mark:
                                        dirty[oi] = 1
                    if not busy:
                        break
                else:
                    raise self._loop_error(group)
            # catch-all: writes to wires the writer never declared/tracked
            rescan_hit = False
            for w, wi in self._catch_all:
                v = w.value
                if v != values[wi]:
                    values[wi] = v
                    changed_add(wi)
                    rescan_hit = True
                    for oi in readers[wi]:
                        dirty[oi] = 1
            if not rescan_hit and 1 not in dirty:
                self.eval_count += evals
                self.settle_count += 1
                return passes
        raise SimulationError(
            f"combinational logic did not settle in {max_iters} "
            f"iterations at cycle {sim.cycle}"
        )

    def _loop_error(self, group: List[int]) -> SimulationError:
        """Diagnose a non-settling group: evaluate each member once more
        and report which wires are still changing."""
        modules = self.sim.modules
        values = self._values
        unstable: set = set()
        for mi in group:
            modules[mi].eval_comb()
            for w, wi in self._scan[mi]:
                if w.value != values[wi]:
                    unstable.add(wi)
                    values[wi] = w.value
        mod_names = [modules[mi].name for mi in group]
        wire_names = sorted(self._wires[wi].name for wi in unstable)
        return SimulationError(
            f"combinational loop did not settle after "
            f"{self.sim.max_settle_iters} iterations at cycle "
            f"{self.sim.cycle}: unstable wires "
            f"[{', '.join(wire_names)}] in the cycle through modules "
            f"[{', '.join(mod_names)}]"
        )

    # -- fault injection ----------------------------------------------------
    def poke(self, wire, value: int) -> None:
        """Force ``wire`` to ``value`` at the current point in the cycle.

        The fault-injection hook runs between settle and the activity
        commit, where ``Wire.set`` alone would desynchronize the
        scheduler: the settled column and the changed set must see the
        corrupted value or the toggle accounting diverges from the
        brute engine (whose full scan reads ``wire.value`` directly).
        The corrupted wire needs no dirty propagation here -- the next
        settle starts with every module dirty, so the wire's writer
        recomputes it exactly as hardware would after a transient
        upset."""
        v = value & wire.mask
        wire.value = v
        if self.sim.engine == "brute":
            return
        self._ensure_built()
        for w, wi in self._scan_all:
            if w is wire:
                if self._values[wi] != v:
                    self._values[wi] = v
                    self._changed.add(wi)
                return
        raise SimulationError(
            f"cannot poke untracked wire {wire.name!r} in "
            f"{self.sim.name!r}"
        )

    # -- activity accounting ----------------------------------------------
    def sync_registry(self):
        """Make sure the wire registry reflects the current module set
        (used by the brute-force engine, which bypasses settle())."""
        self._ensure_built()

    def commit_activity(self):
        """Fold the settled values of this cycle's changed wires into the
        toggle counters (called once per clock step, after settle)."""
        values = self._values
        prev = self._prev_settled
        toggles = self._toggles
        for wi in self._changed:
            v = values[wi]
            p = prev[wi]
            if p is not None and p != v:
                toggles[wi] += (p ^ v).bit_count()
            prev[wi] = v
        self._changed.clear()
        if self._needs_prime:
            # first step a wire is seen: record its settled value as the
            # toggle baseline (matches the seed engine's first-cycle
            # behaviour)
            for wi, v in enumerate(values):
                if prev[wi] is None:
                    prev[wi] = v
            self._needs_prime = False

    def activity(self) -> Dict[Tuple[str, str], int]:
        """Toggle counts keyed by ``(module name, wire name)``.

        The owning module is the first module (in ``Simulator.add``
        order) that tracks the wire, so two same-named wires in different
        modules report separately."""
        self._ensure_built()
        modules = self.sim.modules
        out: Dict[Tuple[str, str], int] = {}
        for wi, count in enumerate(self._toggles):
            if not count:
                continue
            key = (modules[self._owner[wi]].name, self._wires[wi].name)
            out[key] = out.get(key, 0) + count
        return out

    def total_activity(self) -> int:
        return sum(self._toggles)


def _tarjan_scc(n: int, succ: List[set]) -> List[List[int]]:
    """Iterative Tarjan; returns SCCs in topological order (sources
    first)."""
    index = [0] * n
    low = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [1]

    for root in range(n):
        if visited[root]:
            continue
        work = [(root, iter(sorted(succ[root])))]
        visited[root] = True
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if not visited[w]:
                    visited[w] = True
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(sorted(succ[w]))))
                    advanced = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(scc)
    sccs.reverse()   # Tarjan emits sinks first; we evaluate sources first
    return sccs
