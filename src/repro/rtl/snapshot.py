"""Cycle-k snapshot/restore and the checkpoint tier.

A :class:`Snapshot` captures the complete observable state of a
simulator at a clock-cycle boundary:

* wire values, the scheduler's settled/previous columns and per-wire
  toggle counters (the activity model);
* the pending dirty set and prime flag, so a restored scheduler resumes
  with exactly the bookkeeping a from-0 run would have -- in particular
  ``values == prev_settled`` with an empty dirty set at a boundary,
  which is the precondition the compiled cycle kernel's fast path
  checks before engaging, so a restored kernel run re-enters the
  generated loop without bailing out (its flat locals are rebound from
  the scheduler columns at every kernel entry);
* every module's plain-data attributes (register files, pipeline
  latches, stimulus queues/cursors, Anvil activation bookkeeping) via a
  recursive pure-data encoder.  Attributes holding structural objects
  (wires, ports, modules, callables, plans) are never mutated mid-run
  by construction, so they are skipped at capture and left untouched at
  restore;
* the waveform series recorded so far and the monitor-visible cycle
  number, so a resumed run appends samples at absolute cycle numbers.

Snapshots contain only plain data, so they pickle across the process
pool and spill to disk.

The :class:`CheckpointStore` is the incremental-re-simulation tier on
top: checkpoints are content-addressed by *prefix key* -- topology
fingerprint (:func:`repro.rtl.kernel.topology_shape`, the same digest
the PR-8 result cache uses) + stimulus-prefix hash + cycle -- so a
re-run whose (topology, stimulus) matches a prior run restores the
longest checkpointed prefix and simulates only the tail.  Prefix
sharing is valid across *cycle counts* of one deterministic build
(scenario, seed, stim), not across stimulus edits: scenario builders
consume one shared RNG at build time, so any stimulus knob change
re-deals the whole deck.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

#: bump when the Snapshot layout changes; restore refuses mismatches
SNAPSHOT_VERSION = 1


# ---------------------------------------------------------------------------
# pure-data encoding of module state
# ---------------------------------------------------------------------------
class _Structural(Exception):
    """Raised when a value is not plain data (wires, ports, callables,
    plans): the whole attribute is structural and is skipped."""


_SCALARS = (type(None), bool, int, float, str, bytes)
_FSM_TYPES = None


def _fsm_types():
    """(Activation, _SlotView) from the Anvil runtime, imported lazily
    so rtl stays importable without the codegen package loaded."""
    global _FSM_TYPES
    if _FSM_TYPES is None:
        from ..codegen.simfsm import Activation, _SlotView

        _FSM_TYPES = (Activation, _SlotView)
    return _FSM_TYPES


def _encode(v):
    """Deep-copy ``v`` into an immutable, picklable form; raises
    :class:`_Structural` when any part is not plain data."""
    if isinstance(v, _SCALARS):
        return v
    t = type(v)
    if t is list:
        return ("l", tuple(_encode(x) for x in v))
    if t is tuple:
        return ("t", tuple(_encode(x) for x in v))
    if t is dict:
        return ("d", tuple((_encode(k), _encode(x)) for k, x in v.items()))
    if t is set:
        return ("s", tuple(_encode(x) for x in v))
    if t is frozenset:
        return ("f", tuple(_encode(x) for x in v))
    if t is bytearray:
        return ("b", bytes(v))
    activation, slot_view = _fsm_types()
    if t is activation:
        return ("a", v.start, _encode(v.fired), _encode(v.dead),
                _encode(v.slots), v.spawned, v.retired, _encode(v.cache))
    if t is slot_view:
        return ("v", _encode(v.base), _encode(v.overlay))
    raise _Structural(type(v).__name__)


def _decode(v):
    if isinstance(v, _SCALARS):
        return v
    tag = v[0]
    if tag == "l":
        return [_decode(x) for x in v[1]]
    if tag == "t":
        return tuple(_decode(x) for x in v[1])
    if tag == "d":
        return {_decode(k): _decode(x) for k, x in v[1]}
    if tag == "s":
        return {_decode(x) for x in v[1]}
    if tag == "f":
        return frozenset(_decode(x) for x in v[1])
    if tag == "b":
        return bytearray(v[1])
    if tag == "a":
        activation, _slot_view = _fsm_types()
        act = activation(v[1])
        act.fired = _decode(v[2])
        act.dead = _decode(v[3])
        act.slots = _decode(v[4])
        act.spawned = v[5]
        act.retired = v[6]
        act.cache = _decode(v[7])
        return act
    if tag == "v":
        activation, slot_view = _fsm_types()
        return slot_view(_decode(v[1]), _decode(v[2]))
    raise SimulationError(f"unknown snapshot encoding tag {tag!r}")


def _module_state(m) -> Tuple[Tuple[str, object], ...]:
    out = []
    for attr in sorted(m.__dict__):
        try:
            out.append((attr, _encode(m.__dict__[attr])))
        except _Structural:
            continue
    return tuple(out)


def _restore_module(m, state):
    captured = set()
    for attr, enc in state:
        captured.add(attr)
        setattr(m, attr, _decode(enc))
    # drop plain-data attributes the module grew *after* the snapshot
    # (lazily-added bookkeeping); structural attributes stay untouched
    for attr in list(m.__dict__):
        if attr in captured:
            continue
        try:
            _encode(m.__dict__[attr])
        except _Structural:
            continue
        delattr(m, attr)


# ---------------------------------------------------------------------------
# snapshot capture / restore
# ---------------------------------------------------------------------------
def structure_sig(sim) -> str:
    """SHA-256 over the module/wire identity of ``sim``: restore refuses
    a snapshot whose structure does not match the target simulator."""
    h = hashlib.sha256()
    for m in sim.modules:
        h.update(type(m).__name__.encode("utf-8"))
        h.update(b"\x00")
        h.update(m.name.encode("utf-8"))
        h.update(b"\x00")
        for w in m.wires():
            h.update(w.name.encode("utf-8"))
            h.update(b"\x01")
        h.update(b"\x02")
    return h.hexdigest()


@dataclass
class Snapshot:
    """Complete cycle-boundary state of one simulator (plain data only:
    picklable across the process pool, spillable to disk)."""

    version: int
    cycle: int
    engine: str                 # engine that produced it (informational)
    sig: str                    # structure_sig of the source simulator
    values: Tuple[int, ...]
    prev_settled: Tuple[Optional[int], ...]
    toggles: Tuple[int, ...]
    changed: Tuple[int, ...]
    needs_prime: bool
    eval_count: int
    settle_count: int
    module_state: Tuple[Tuple[Tuple[str, object], ...], ...]
    samples: Tuple[Tuple[str, Tuple[int, ...]], ...]
    scenario: str = ""          # provenance (informational)
    key: str = ""               # prefix key, when stored in a store

    def nbytes(self) -> int:
        """Approximate size (pickle length) -- store accounting."""
        return len(pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))


def capture(sim, scenario: str = "", key: str = "") -> Snapshot:
    """Snapshot ``sim`` at its current cycle boundary."""
    if sim.detached:
        raise SimulationError(
            f"cannot snapshot {sim.name!r}: it adopted a remote run, so "
            f"local module state never advanced"
        )
    sch = sim.scheduler
    sch._ensure_built()
    return Snapshot(
        version=SNAPSHOT_VERSION,
        cycle=sim.cycle,
        engine=sim.engine,
        sig=structure_sig(sim),
        values=tuple(w.value for w in sch._wires),
        prev_settled=tuple(sch._prev_settled),
        toggles=tuple(sch._toggles),
        changed=tuple(sorted(sch._changed)),
        needs_prime=sch._needs_prime,
        eval_count=sch.eval_count,
        settle_count=sch.settle_count,
        module_state=tuple(_module_state(m) for m in sim.modules),
        samples=tuple(
            (label, tuple(series))
            for label, _wire, series in sim.waveform._watched
        ),
        scenario=scenario,
        key=key,
    )


def restore(sim, snap: Snapshot) -> None:
    """Restore ``snap`` into ``sim`` (in place, or into a fresh
    deterministic rebuild of the same scenario).

    After restore the simulator is at the exact cycle-k boundary state
    of the run that produced the snapshot: wire values, scheduler
    columns, toggle counters, module registers/latches/queues, waveform
    series and cycle number all match bit-for-bit, across engines (the
    state model is engine-independent; the equivalence suites pin the
    engines to identical boundary states).
    """
    if snap.version != SNAPSHOT_VERSION:
        raise SimulationError(
            f"snapshot version {snap.version} != {SNAPSHOT_VERSION}"
        )
    if sim.detached:
        raise SimulationError(
            f"cannot restore into {sim.name!r}: it adopted a remote run"
        )
    sch = sim.scheduler
    sch._ensure_built()
    if structure_sig(sim) != snap.sig:
        raise SimulationError(
            f"snapshot does not match simulator {sim.name!r}: the "
            f"module/wire structure differs (was the snapshot taken "
            f"from a different scenario, seed or backend?)"
        )
    if len(sch._wires) != len(snap.values):
        raise SimulationError(
            f"snapshot has {len(snap.values)} wires, simulator has "
            f"{len(sch._wires)}"
        )
    for wi, w in enumerate(sch._wires):
        w.value = snap.values[wi]
    sch._values[:] = snap.values
    sch._prev_settled[:] = snap.prev_settled
    sch._toggles[:] = snap.toggles
    sch._changed.clear()
    sch._changed.update(snap.changed)
    sch._needs_prime = snap.needs_prime
    sch.eval_count = snap.eval_count
    sch.settle_count = snap.settle_count
    # brute-engine activity baseline: at a clean boundary the settled
    # value *is* the baseline, so the per-wire dict is synthesized
    # rather than carried (snapshots stay engine-portable)
    if snap.cycle > 0:
        sim._prev_values = {
            w: v for w, v in zip(map(id, sch._wires), snap.values)
        }
    else:
        sim._prev_values = {}
    for m, state in zip(sim.modules, snap.module_state):
        _restore_module(m, state)
    saved = dict(snap.samples)
    watched = {label for label, _w, _s in sim.waveform._watched}
    if watched != set(saved):
        raise SimulationError(
            f"snapshot watch list {sorted(saved)} does not match the "
            f"simulator's {sorted(watched)}"
        )
    for label, _wire, series in sim.waveform._watched:
        # in place: the kernel prebinds .append on these exact lists
        series[:] = saved[label]
    sim.cycle = snap.cycle


def save_checkpoint(path, snap: Snapshot) -> None:
    """Pickle ``snap`` to ``path`` (parent directories created)."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(snap, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_checkpoint(path) -> Snapshot:
    with open(os.fspath(path), "rb") as fh:
        snap = fh.read()
    obj = pickle.loads(snap)
    if not isinstance(obj, Snapshot):
        raise SimulationError(f"{path}: not a repro checkpoint file")
    return obj


# ---------------------------------------------------------------------------
# prefix keys (shared with the server's result cache)
# ---------------------------------------------------------------------------
def _sha(material) -> str:
    return hashlib.sha256(
        json.dumps(material, sort_keys=True, separators=(",", ":"))
        .encode("utf-8")
    ).hexdigest()


def stimulus_key(scenario: str, config) -> str:
    """Hash of the deterministic stimulus identity: builders are pure
    functions of (scenario, seed, stim), so this names the whole
    stimulus stream."""
    return _sha([scenario, config.seed, config.stim])


def topology_key(scenario: str, config, sim=None) -> str:
    """Topology fingerprint: the kernel-source digest from
    :func:`repro.rtl.kernel.topology_shape` when the topology has one
    (engine/backend-independent -- the equivalence suites pin them
    bit-identical), else a builder-identity fallback."""
    digest = None
    if sim is not None:
        from .kernel import topology_shape

        digest, _plan = topology_shape(sim)
    if digest is None:
        digest = f"builder:{scenario}:{config.engine}:{config.backend}"
    return digest


def state_sig(sim) -> str:
    """SHA-256 over the simulator's current plain-data module state.
    Computed on a freshly built simulator this fingerprints the entire
    stimulus content (builders precompute queues/tables at build time),
    which the shape-only topology digest cannot see."""
    blob = pickle.dumps(
        tuple(_module_state(m) for m in sim.modules),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return hashlib.sha256(blob).hexdigest()


def prefix_key(scenario: str, config, sim=None) -> str:
    """Content address of a run prefix: topology fingerprint +
    stimulus-prefix hash (+ the built simulator's initial-state
    fingerprint when available).  Cycle count deliberately excluded --
    that is what lets a longer re-run restore a shorter run's
    checkpoint."""
    material = ["prefix", topology_key(scenario, config, sim),
                stimulus_key(scenario, config)]
    if sim is not None:
        material.append(state_sig(sim))
    return _sha(material)


# ---------------------------------------------------------------------------
# the checkpoint store
# ---------------------------------------------------------------------------
class CheckpointStore:
    """LRU-bounded, content-addressed checkpoint store.

    Entries are keyed ``(prefix_key, cycle)``.  When ``disk_dir`` is
    set, entries evicted from the memory tier spill to pickle files and
    remain restorable; otherwise eviction drops them.  Thread-safe (the
    server's worker threads and direct Session callers share one
    process-wide store, like the compile caches).
    """

    def __init__(self, capacity: int = 128, disk_dir: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.disk_dir = os.fspath(disk_dir) if disk_dir else None
        self._lock = threading.Lock()
        self._mem: "OrderedDict[Tuple[str, int], Snapshot]" = OrderedDict()
        self._disk: Dict[Tuple[str, int], str] = {}
        self._stats = {
            "hits": 0, "misses": 0, "stores": 0,
            "evictions": 0, "spills": 0, "disk_hits": 0,
        }

    def put(self, key: str, cycle: int, snap: Snapshot) -> bool:
        """Store a checkpoint; returns False when the (key, cycle) slot
        is already filled (re-runs re-produce identical snapshots)."""
        k = (key, cycle)
        with self._lock:
            if k in self._mem:
                self._mem.move_to_end(k)
                return False
            if k in self._disk:
                return False
            self._mem[k] = snap
            self._stats["stores"] += 1
            while len(self._mem) > self.capacity:
                old_k, old_snap = self._mem.popitem(last=False)
                self._stats["evictions"] += 1
                if self.disk_dir is not None:
                    path = self._spill_path(old_k)
                    save_checkpoint(path, old_snap)
                    self._disk[old_k] = path
                    self._stats["spills"] += 1
            return True

    def best(self, key: str, max_cycle: int
             ) -> Optional[Tuple[int, Snapshot]]:
        """The deepest checkpoint for ``key`` at or below ``max_cycle``
        (None counts as a prefix-cache miss)."""
        with self._lock:
            mem_best = max(
                (c for (k, c) in self._mem if k == key and c <= max_cycle),
                default=None,
            )
            disk_best = max(
                (c for (k, c) in self._disk if k == key and c <= max_cycle),
                default=None,
            )
            if mem_best is None and disk_best is None:
                self._stats["misses"] += 1
                return None
            self._stats["hits"] += 1
            if disk_best is not None and (mem_best is None
                                          or disk_best > mem_best):
                self._stats["disk_hits"] += 1
                path = self._disk[(key, disk_best)]
            else:
                self._mem.move_to_end((key, mem_best))
                return mem_best, self._mem[(key, mem_best)]
        return disk_best, load_checkpoint(path)

    def cycles(self, key: str) -> List[int]:
        with self._lock:
            return sorted(
                {c for (k, c) in self._mem if k == key}
                | {c for (k, c) in self._disk if k == key}
            )

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._stats)
            out["entries"] = len(self._mem)
            out["disk_entries"] = len(self._disk)
            return out

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            self._disk.clear()
            for k in self._stats:
                self._stats[k] = 0

    def _spill_path(self, k: Tuple[str, int]) -> str:
        key, cycle = k
        return os.path.join(self.disk_dir, f"{key[:24]}-c{cycle}.ckpt")


_DEFAULT_STORE: Optional[CheckpointStore] = None
_DEFAULT_LOCK = threading.Lock()


def get_checkpoint_store() -> CheckpointStore:
    """The process-wide default store, shared by direct ``Session``
    callers, sweep workers and the server's job queue."""
    global _DEFAULT_STORE
    with _DEFAULT_LOCK:
        if _DEFAULT_STORE is None:
            _DEFAULT_STORE = CheckpointStore()
        return _DEFAULT_STORE


def reset_checkpoint_store() -> None:
    """Drop the process-wide store (tests)."""
    global _DEFAULT_STORE
    with _DEFAULT_LOCK:
        _DEFAULT_STORE = None


# ---------------------------------------------------------------------------
# checkpointed runs
# ---------------------------------------------------------------------------
def resume_longest_prefix(sim, key: str, cycles: int,
                          store: CheckpointStore) -> int:
    """Restore the deepest checkpoint for ``key`` at or below
    ``cycles`` into ``sim``; returns the cycle resumed from (0 when no
    usable checkpoint exists or ``sim`` already advanced past it)."""
    hit = store.best(key, cycles)
    if hit is None:
        return 0
    cycle, snap = hit
    if cycle <= sim.cycle:
        return 0
    restore(sim, snap)
    return cycle


def run_with_checkpoints(
    sim, cycles: int, every: Optional[int],
    store: Optional[CheckpointStore] = None, key: str = "",
    scenario: str = "",
    on_checkpoint: Optional[Callable[[int, Snapshot], None]] = None,
    max_wall_time: Optional[float] = None,
) -> int:
    """Advance ``sim`` to absolute cycle ``cycles``, snapshotting at
    every ``every``-cycle boundary (and at the final cycle); returns
    the number of checkpoints newly stored.  With ``every`` falsy this
    is a plain run of the remaining tail.  ``max_wall_time`` is one
    watchdog budget shared across all segments (see
    :func:`~repro.rtl.simulator.run_guarded`); checkpoints stored
    before the deadline trips survive, so a timed-out run can still be
    resumed from its last boundary."""
    from .simulator import run_guarded

    deadline = None
    if max_wall_time:
        deadline = time.monotonic() + max_wall_time
    if not every:
        if cycles > sim.cycle:
            run_guarded(sim, cycles - sim.cycle, deadline=deadline)
        return 0
    stored = 0
    while sim.cycle < cycles:
        nxt = min(cycles, ((sim.cycle // every) + 1) * every)
        run_guarded(sim, nxt - sim.cycle, deadline=deadline)
        if store is not None or on_checkpoint is not None:
            snap = capture(sim, scenario=scenario, key=key)
            if store is not None and store.put(key, sim.cycle, snap):
                stored += 1
            if on_checkpoint is not None:
                on_checkpoint(sim.cycle, snap)
    return stored
