"""Module base class for the RTL simulator.

A module is a bag of registers (Python attributes, updated only in
:meth:`Module.tick`) plus combinational logic (:meth:`Module.eval_comb`,
which may run several times per cycle until all wires settle).  The split
mirrors SystemVerilog's ``always_comb`` / ``always_ff`` discipline:

* ``eval_comb`` must compute wire values *only* from register state and
  input wires, and must be idempotent;
* ``tick`` samples wires and updates register state (the clock edge).
"""

from __future__ import annotations

from typing import List

from .signal import Wire


class Module:
    """Base class of everything the simulator schedules."""

    def __init__(self, name: str):
        self.name = name
        self._wires: List[Wire] = []

    # -- wiring helpers ---------------------------------------------------
    def wire(self, name: str, width: int = 1, value: int = 0) -> Wire:
        w = Wire(f"{self.name}.{name}", width, value)
        w.driver = self.name
        self._wires.append(w)
        return w

    def adopt(self, wire: Wire) -> Wire:
        """Track an externally-created wire for settling detection."""
        self._wires.append(wire)
        return wire

    def wires(self) -> List[Wire]:
        return self._wires

    # -- scheduler hints ---------------------------------------------------
    def comb_inputs(self):
        """Wires whose value :meth:`eval_comb` *reads*, or ``None``.

        ``None`` (the default) means "unknown": the levelized scheduler
        treats every tracked wire as a potential input, which is always
        safe but may force extra re-evaluations.  A module that knows its
        combinational sensitivity list can return it here and will only be
        re-evaluated when one of those wires changes.  If you override
        this, the list must cover *every* wire whose value can influence
        ``eval_comb``'s outputs (register state needs no declaration --
        registers only change at the clock edge)."""
        return None

    def comb_outputs(self):
        """Wires :meth:`eval_comb` may *write*, or ``None``.

        ``None`` (the default) means "unknown": the scheduler scans every
        tracked wire for changes after each evaluation.  Overriding this
        narrows the scan and the dependency edges; the list must cover
        every wire ``eval_comb`` can possibly write."""
        return None

    # -- simulation interface ----------------------------------------------
    def eval_comb(self):
        """Combinational logic; may be called repeatedly until stable."""

    def tick(self):
        """Clock edge: update registers from settled wire values."""

    def reset(self):
        """Return to the power-on state (optional)."""

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"
