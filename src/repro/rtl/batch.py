"""Concurrent execution of independent simulations and harness jobs.

The harness tables and figures are *sweeps*: many independent designs,
each elaborated into its own :class:`~repro.rtl.simulator.Simulator` (or
its own typecheck/BMC job), with no shared state.  ``run_batch`` executes
such a job list on one of the executors from :mod:`repro.rtl.executors`
and returns results keyed by job name in submission order;
:class:`BatchSimulator` is the simulator-specific convenience wrapper.

Jobs come in two shapes:

* a declarative :class:`~repro.rtl.executors.JobSpec` -- picklable, so
  it runs on *any* executor, including the ``process`` pool that buys
  real multi-core speedup;
* a legacy ``(name, thunk)`` pair -- a closure, confined to the
  ``serial``/``thread`` executors (closures do not pickle).

Parallelism policy:

* jobs must be independent -- nothing here synchronizes shared state;
* results are deterministic: each job owns its RNGs and simulators, and
  the output ordering never depends on completion order;
* the pool size defaults to ``min(len(jobs), os.cpu_count())``; it can
  be forced serial with ``parallel=False`` or ``REPRO_PARALLEL=0`` (or
  ``false``/``no``/``off``), and forced to N workers with ``parallel=N``
  or ``REPRO_PARALLEL=N`` (the environment variable wins -- it is the
  profiling/debugging override);
* the executor defaults to ``thread`` (the compatibility reference);
  pass ``executor="process"`` -- or set ``REPRO_EXECUTOR=process`` via
  the config layer -- for multi-core sweeps of JobSpecs.

GIL caveat: the harness jobs are pure-Python and CPU-bound, so on a
standard CPython build the *thread* executor interleaves rather than
truly runs in parallel -- expect isolation and uniform sweep structure,
not wall-clock speedup.  The *process* executor is the one that scales
with cores; anything whose *result* depends on wall-clock time budgets
(the BMC harness) should stay serial.

Exceptions propagate: the first failing job (in submission order)
re-raises in the caller, with the worker traceback attached when it
crossed a process boundary.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .executors import JobSpec, get_executor
from .simulator import Simulator

Job = Union[Tuple[str, Callable[[], object]], JobSpec]

#: REPRO_PARALLEL values that force a serial run
_FALSY = ("0", "false", "no", "off")
#: REPRO_PARALLEL values equivalent to leaving it unset
_AUTO = ("", "true", "yes", "on", "auto")


def _env_parallel() -> Union[int, None]:
    """Parse ``REPRO_PARALLEL``: ``None`` when unset/auto, ``0`` for the
    falsy spellings (force a fully serial run), a forced worker count
    for positive integers (``1`` keeps the chosen executor with one
    worker -- a one-process pool still crosses the pickling boundary);
    any other value is a user error and raises."""
    env = os.environ.get("REPRO_PARALLEL")
    if env is None:
        return None
    text = env.strip().lower()
    if text in _AUTO:
        return None
    if text in _FALSY:
        return 0
    try:
        forced = int(text)
    except ValueError:
        forced = -1
    if forced < 1:
        raise ValueError(
            f"invalid REPRO_PARALLEL value {env!r}: use a positive "
            f"integer worker count, one of {'/'.join(_FALSY)} to force "
            f"serial, or {'/'.join(a for a in _AUTO if a)}/unset for "
            f"the default"
        )
    return forced


#: hard cap on the lock-step batch width -- beyond this the generated
#: slot-unrolled kernel source stops paying for itself (compile time,
#: code-object size) long before any throughput win
MAX_BATCH = 1024


def _env_batch() -> Optional[int]:
    """Parse ``REPRO_BATCH``: ``None`` when unset/empty/``auto`` (the
    config default applies), a forced lock-step batch width for positive
    integers up to :data:`MAX_BATCH`; any other value is a user error
    and raises."""
    env = os.environ.get("REPRO_BATCH")
    if env is None:
        return None
    text = env.strip().lower()
    if text in ("", "auto"):
        return None
    try:
        width = int(text)
    except ValueError:
        width = 0
    if width < 1 or width > MAX_BATCH:
        raise ValueError(
            f"invalid REPRO_BATCH value {env!r}: use a positive integer "
            f"batch width up to {MAX_BATCH}, or auto/unset for the "
            f"default"
        )
    return width


def _pool_size(parallel: Union[bool, int, None], n_jobs: int) -> int:
    """Resolve the worker count; 1 means run serially."""
    forced = _env_parallel()
    if forced is not None:
        return max(1, forced)
    if parallel is False:
        return 1
    if parallel is None or parallel is True:
        return max(1, min(n_jobs, os.cpu_count() or 1))
    return max(1, int(parallel))


def run_batch(jobs: Sequence[Job],
              parallel: Union[bool, int, None] = None,
              executor: str = None) -> Dict[str, object]:
    """Run a job list, returning ``{name: result}`` in submission order.

    ``jobs`` may mix :class:`~repro.rtl.executors.JobSpec` entries and
    legacy ``(name, thunk)`` pairs; the ``process`` executor accepts
    JobSpecs only.  ``parallel`` resolves the worker count exactly as
    before (``False``/``0`` serial, ``N`` forced, ``None`` auto), and
    ``REPRO_PARALLEL`` overrides it either way.
    """
    jobs = list(jobs)
    names = [j.name if isinstance(j, JobSpec) else j[0] for j in jobs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(
            f"duplicate job name(s) {dupes!r}: results are keyed by "
            f"name, so every job in a batch needs a distinct one"
        )
    workers = _pool_size(parallel, len(jobs))
    name = executor or "thread"
    if workers <= 1 and name != "process":
        name = "serial"
    if name == "process" and (parallel is False or _env_parallel() == 0):
        name = "serial"              # the explicit serial escape hatch
    return get_executor(name, workers).run(jobs)


class BatchSimulator:
    """A set of independent simulators stepped as one sweep.

    >>> batch = BatchSimulator()
    >>> batch.add(sim_a)
    >>> batch.add(sim_b)
    >>> batch.run(1000)                    # both advance 1000 cycles
    >>> batch.total_activity()             # {'a': ..., 'b': ...}

    Simulators added through :meth:`add_scenario` carry their registry
    provenance, which is what lets :meth:`run` ship them to the
    ``process`` executor as declarative JobSpecs (directly-added sims
    are closures over live state and stay on the serial/thread path).
    """

    def __init__(self, parallel: Union[bool, int, None] = None,
                 executor: str = None):
        self.parallel = parallel
        self.executor = executor
        self.sims: Dict[str, Simulator] = {}
        self._specs: Dict[str, Tuple[str, object]] = {}

    def add(self, sim: Simulator) -> Simulator:
        if sim.name in self.sims:
            raise ValueError(f"duplicate simulator name {sim.name!r}")
        self.sims[sim.name] = sim
        return sim

    def add_scenario(self, name: str, config=None, *,
                     engine: str = None, seed: int = None, stim: int = None,
                     backend: str = None, anvil: bool = False,
                     as_name: str = None) -> Simulator:
        """Build a registered scenario straight into the batch.

        The preferred form passes a :class:`~repro.api.SimConfig`
        (``config``); lookup and elaboration go through the scenario
        registry, the same code path the benchmark sweep, the harness
        drivers and the CLI use.  The keyword arguments survive as a
        compatibility shim over the config (an explicit keyword beats
        the corresponding config field; ``config`` may also be a bare
        engine string, the old second positional argument).
        ``anvil=True`` maps a short family name to its ``anvil_*``
        registry entry.  ``as_name`` renames the simulator, so the same
        scenario can be swept under several engine x backend
        combinations in one batch."""
        from ..api import get_registry, resolve_config

        if isinstance(config, str):      # legacy positional engine
            config, engine = None, engine or config
        cfg = resolve_config(config, engine=engine, seed=seed, stim=stim,
                             backend=backend)
        if anvil and not name.startswith("anvil_"):
            name = f"anvil_{name}"
        sim = get_registry().build(name, cfg)
        if as_name:
            sim.name = as_name
        self.add(sim)
        self._specs[sim.name] = (name, cfg)
        return sim

    def __len__(self):
        return len(self.sims)

    def __getitem__(self, name: str) -> Simulator:
        return self.sims[name]

    def snapshot(self) -> Dict[str, object]:
        """Per-simulator cycle-boundary snapshots keyed by name (see
        :func:`repro.rtl.snapshot.capture`); the returned mapping is
        plain data and pickles as one checkpoint of the whole batch."""
        from .snapshot import capture

        return {name: capture(s, scenario=self._specs.get(name, ("",))[0])
                for name, s in self.sims.items()}

    def restore(self, snaps: Dict[str, object]) -> "BatchSimulator":
        """Restore a :meth:`snapshot` mapping into the batch's
        simulators (by name; a partial mapping restores a subset)."""
        from .snapshot import restore as restore_snapshot

        for name, snap in snaps.items():
            restore_snapshot(self.sims[name], snap)
        return self

    def _run_process(self, cycles: int,
                     parallel: Union[bool, int, None]) -> None:
        """Ship every scenario-provenance sim to the process pool and
        adopt the remote results into the local simulators.

        Already-advanced simulators ship a snapshot along with their
        JobSpec (``resume_from``): the worker rebuilds from provenance,
        restores the snapshot, and simulates only the tail -- the
        historical "one-shot only" restriction reduced to simulators
        that already adopted a remote run.

        Note the cost model: ``add_scenario`` already elaborated each
        simulator locally (callers may inspect or drive it before
        running), and the workers elaborate again from provenance -- so
        this path pays one redundant parent-side build per scenario.
        For pure sweeps prefer :meth:`repro.api.Session.sweep`, which
        describes jobs declaratively and never builds in the parent."""
        missing = [n for n in self.sims if n not in self._specs]
        if missing:
            raise ValueError(
                f"the process executor needs registry provenance (use "
                f"add_scenario); directly-added simulator(s) "
                f"{missing!r} cannot be described as JobSpecs"
            )
        adopted = [n for n, s in self.sims.items() if s.detached]
        if adopted:
            raise ValueError(
                f"simulator(s) {adopted!r} already adopted a remote run "
                f"and hold no local state to resume from (rebuild the "
                f"scenario to keep simulating)"
            )
        from .snapshot import capture

        specs = []
        for name, (scenario, cfg) in self._specs.items():
            sim = self.sims[name]
            params = ()
            if sim.cycle != 0:
                params = (("resume_from", capture(sim, scenario=scenario)),)
            specs.append(JobSpec(
                kind="run_scenario", name=name, scenario=scenario,
                config=cfg, cycles=sim.cycle + cycles, params=params))
        results = run_batch(specs, parallel=parallel, executor="process")
        for name, run in results.items():
            self.sims[name].adopt_remote(run.final_cycle, run.activity,
                                         run.samples,
                                         resumed_from=run.resumed_from)

    def run(self, cycles: int,
            parallel: Union[bool, int, None] = None,
            executor: str = None) -> "BatchSimulator":
        """Advance every simulator by ``cycles`` (concurrently when the
        pool allows)."""
        parallel = self.parallel if parallel is None else parallel
        executor = executor or self.executor
        if executor == "process" and self.sims:
            # workers rebuild from provenance; advanced sims ship a
            # snapshot and resume remotely (checked in _run_process)
            self._run_process(cycles, parallel)
            return self
        run_batch(
            [(name, (lambda s=s: s.run(cycles)))
             for name, s in self.sims.items()],
            parallel=parallel,
            executor=executor,
        )
        return self

    def run_until(self, predicates: Dict[str, Callable[[], bool]],
                  limit: int = 10000) -> Dict[str, int]:
        """Per-simulator ``run_until``; returns elapsed cycles by name.
        Predicates are closures over live simulators, so this always
        stays on the serial/thread path."""
        return run_batch(
            [(name, (lambda s=s, p=p: s.run_until(p, limit)))
             for name, s in self.sims.items()
             for p in (predicates[name],)],
            parallel=self.parallel,
        )

    def total_activity(self) -> Dict[str, int]:
        return {name: s.total_activity() for name, s in self.sims.items()}

    def cycles(self) -> Dict[str, int]:
        return {name: s.cycle for name, s in self.sims.items()}

    def __repr__(self):
        return f"BatchSimulator({list(self.sims)})"


# ---------------------------------------------------------------------------
# lock-step batched execution (columnar kernels)
# ---------------------------------------------------------------------------
class StopCondition:
    """A per-instance early-exit condition the batched kernel compiles
    inline: ``op`` from :data:`repro.rtl.kernel.STOP_OPS` applied to one
    designated wire per simulator, checked after every cycle.

    ``wires[k]`` is the watched wire of the k-th simulator handed to
    :func:`run_lockstep`; for ``eq``/``ne``, ``values[k]`` is the
    comparison value (runtime data, so slots with different targets
    share one compiled kernel).
    """

    __slots__ = ("op", "wires", "values")

    def __init__(self, op: str, wires: Sequence[object],
                 values: Optional[Sequence[int]] = None):
        from .kernel import STOP_OPS

        if op not in STOP_OPS:
            raise ValueError(
                f"unknown stop op {op!r}: known ops are "
                f"{', '.join(repr(o) for o in STOP_OPS)}"
            )
        wires = list(wires)
        if op == "nonzero":
            values = [None] * len(wires)
        else:
            if values is None or len(values) != len(wires):
                raise ValueError(
                    f"stop op {op!r} needs one comparison value per "
                    f"wire ({len(wires)} wire(s), "
                    f"{0 if values is None else len(values)} value(s))"
                )
            values = list(values)
        self.op = op
        self.wires = wires
        self.values = values

    def hit(self, k: int) -> bool:
        """Does slot ``k``'s condition hold right now?"""
        v = self.wires[k].value
        if self.op == "nonzero":
            return bool(v)
        if self.op == "eq":
            return v == self.values[k]
        return v != self.values[k]


@dataclass
class LockstepResult:
    """What :func:`run_lockstep` did, per simulator (list indices align
    with the input order)."""

    #: cycles actually advanced (== the request unless a stop fired)
    cycles: List[int] = field(default_factory=list)
    #: whether the stop condition fired within the budget
    stopped: List[bool] = field(default_factory=list)
    #: whether the instance ran in a lock-step batch (False: scalar path)
    batched: List[bool] = field(default_factory=list)
    #: number of distinct batched kernel groups used
    groups: int = 0


def run_stop_scalar(sim: Simulator, cycles: int,
                    stop: Optional[StopCondition] = None,
                    k: int = 0) -> Tuple[int, bool]:
    """The scalar reference for stop-condition runs: advance ``sim`` one
    cycle at a time, checking ``stop`` (slot ``k``) after each -- the
    exact semantics the batched kernel compiles inline.  Returns
    ``(cycles advanced, stop fired)``.
    """
    if stop is None:
        sim.run(cycles)
        return cycles, False
    advanced = 0
    while advanced < cycles:
        sim.run(1)
        advanced += 1
        if stop.hit(k):
            return advanced, True
    return advanced, False


def _stop_index(sim: Simulator, wire) -> Optional[int]:
    """``wire``'s index in ``sim``'s scheduler table, or ``None`` when
    the wire is not registered there (forces the scalar path)."""
    sch = sim.scheduler
    sch._ensure_built()
    for i, w in enumerate(sch._wires):
        if w is wire:
            return i
    return None


def _lockstep_group(sims: List[Simulator], plan, cycles: int,
                    stop: Optional[StopCondition],
                    slot_of: List[int]) -> Tuple[List[int], List[bool]]:
    """Advance one same-shape group lock-step through the batched
    kernel; returns per-sim ``(advanced, stopped)`` aligned with
    ``sims``.  ``slot_of`` maps group positions to ``stop`` slots.

    Priming cycles (unprimed activity baselines, pending settle state)
    and kernel bail-outs (monitors registered mid-run, mid-run ``add``)
    run interpreted per instance -- the same fallback discipline as
    :meth:`Simulator.run` -- so the result is bit-identical to scalar
    runs by construction.
    """
    from .kernel import batch_kernel_for

    m = len(sims)
    advanced = [0] * m
    stopped = [False] * m
    stop_idx = None
    stop_shape = None
    if stop is not None:
        stop_idx = _stop_index(sims[0], stop.wires[slot_of[0]])
        stop_shape = (stop.op, stop_idx)
    kern = batch_kernel_for(plan, m, stop_shape)
    stops = ([stop.values[slot_of[k]] for k in range(m)]
             if stop is not None else [None] * m)

    def _sub_stop(k):
        if stop is None:
            return None
        return StopCondition(stop.op, [stop.wires[slot_of[k]]],
                             None if stop.op == "nonzero"
                             else [stop.values[slot_of[k]]])

    while True:
        pend = [k for k in range(m)
                if not stopped[k] and advanced[k] < cycles]
        if not pend:
            return advanced, stopped
        # instances the kernel cannot take this round run one
        # interpreted/scalar cycle (stop-checked) and retry
        fallback = []
        for k in pend:
            sim = sims[k]
            sch = sim.scheduler
            sch._ensure_built()
            if sim._monitors or sch._needs_prime or sch._changed:
                fallback.append(k)
        if fallback:
            for k in fallback:
                a, st = run_stop_scalar(sims[k], 1, _sub_stop(k), 0)
                advanced[k] += a
                stopped[k] = st
            continue
        # late watches: pad once so the kernel's per-cycle sample is a
        # plain append (same contract as the scalar kernel entry)
        for k in pend:
            sim = sims[k]
            for _label, _wire, series in sim.waveform._watched:
                if len(series) < sim.cycle:
                    series.extend([0] * (sim.cycle - len(series)))
        n = min(cycles - advanced[k] for k in pend)
        actives = [1 if k in pend else 0 for k in range(m)]
        out = kern.fn(sims, [s.scheduler for s in sims], n, actives, stops)
        progressed = False
        for k in pend:
            dn, st = out[k]
            advanced[k] += dn
            stopped[k] = bool(st)
            progressed = progressed or dn
        if not progressed:
            # the guard tripped before a single cycle completed
            # (monitor/stale raced in): force one interpreted cycle per
            # pending instance so the loop always advances
            for k in pend:
                a, st = run_stop_scalar(sims[k], 1, _sub_stop(k), 0)
                advanced[k] += a
                stopped[k] = st


def run_lockstep(sims: Sequence[Simulator], cycles: int,
                 stop: Optional[StopCondition] = None,
                 width: Optional[int] = None) -> LockstepResult:
    """Advance independent simulators of the same topology *shape*
    lock-step through one compiled batched kernel pass per group.

    Simulators are grouped by :func:`repro.rtl.kernel.topology_shape`
    digest and split into chunks of at most ``width`` (default: one
    group per shape, capped at :data:`MAX_BATCH`); each chunk of two or
    more advances through a slot-unrolled ``_BATCH_KERNEL``.  Instances
    the batch cannot take -- ``engine="brute"`` (kept scalar as the
    semantic reference), detached simulators, registered monitors,
    unsupported plans, a stop wire outside the scheduler table or at a
    different table index than its group -- run the plain scalar path
    instead, so the call as a whole is always bit-identical to per-
    instance runs.  ``stop`` peels instances out of their batch the
    cycle the condition first holds.
    """
    sims = list(sims)
    if stop is not None and len(stop.wires) != len(sims):
        raise ValueError(
            f"stop condition covers {len(stop.wires)} instance(s) but "
            f"{len(sims)} simulator(s) were given"
        )
    from .kernel import topology_shape

    width = MAX_BATCH if width is None else max(1, min(width, MAX_BATCH))
    res = LockstepResult(cycles=[0] * len(sims),
                         stopped=[False] * len(sims),
                         batched=[False] * len(sims))

    groups: Dict[Tuple[str, Optional[int]], List[int]] = {}
    plans: Dict[Tuple[str, Optional[int]], object] = {}
    scalar: List[int] = []
    for i, sim in enumerate(sims):
        if sim.detached or sim._monitors or sim.engine == "brute":
            scalar.append(i)
            continue
        digest, plan = topology_shape(sim)
        if digest is None:
            scalar.append(i)
            continue
        sidx = None
        if stop is not None:
            sidx = _stop_index(sim, stop.wires[i])
            if sidx is None:
                scalar.append(i)
                continue
        key = (digest, sidx)
        groups.setdefault(key, []).append(i)
        plans[key] = plan

    for key, members in groups.items():
        if len(members) == 1:
            scalar.extend(members)
            continue
        for at in range(0, len(members), width):
            chunk = members[at:at + width]
            if len(chunk) == 1:
                scalar.extend(chunk)
                continue
            adv, stp = _lockstep_group([sims[i] for i in chunk],
                                       plans[key], cycles, stop, chunk)
            res.groups += 1
            for pos, i in enumerate(chunk):
                res.cycles[i] = adv[pos]
                res.stopped[i] = stp[pos]
                res.batched[i] = True

    for i in scalar:
        sub = None
        if stop is not None:
            sub = StopCondition(
                stop.op, [stop.wires[i]],
                None if stop.op == "nonzero" else [stop.values[i]])
        a, st = run_stop_scalar(sims[i], cycles, sub, 0)
        res.cycles[i] = a
        res.stopped[i] = st
    return res


class BatchRunner:
    """Groups simulators by topology shape and advances each group
    lock-step -- the object form of :func:`run_lockstep` for callers
    that carry a configured batch width around (Session, fuzzing,
    benchmarks).

    >>> runner = BatchRunner(width=16)
    >>> result = runner.run(sims, 1000)
    >>> result.groups          # how many compiled batch passes ran
    """

    def __init__(self, width: Optional[int] = None):
        if width is not None and width < 1:
            raise ValueError(f"batch width must be >= 1, got {width}")
        self.width = width

    def run(self, sims: Sequence[Simulator], cycles: int,
            stop: Optional[StopCondition] = None) -> LockstepResult:
        return run_lockstep(sims, cycles, stop=stop, width=self.width)

    def __repr__(self):
        return f"BatchRunner(width={self.width})"
