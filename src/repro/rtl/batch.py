"""Concurrent execution of independent simulations and harness jobs.

The harness tables and figures are *sweeps*: many independent designs,
each elaborated into its own :class:`~repro.rtl.simulator.Simulator` (or
its own typecheck/BMC job), with no shared state.  ``run_batch`` executes
such a job list on a thread pool and returns results keyed by job name in
submission order; :class:`BatchSimulator` is the simulator-specific
convenience wrapper.

Parallelism policy:

* jobs must be independent -- nothing here synchronizes shared state;
* results are deterministic: each job owns its RNGs and simulators, and
  the output ordering never depends on completion order;
* the pool size defaults to ``min(len(jobs), os.cpu_count())`` and can
  be forced serial with ``parallel=False`` or the environment variable
  ``REPRO_PARALLEL=0`` (useful for profiling and debugging).

GIL caveat: the harness jobs are pure-Python and CPU-bound, so on a
standard CPython build the threads interleave rather than truly run in
parallel -- expect isolation and uniform sweep structure, not wall-clock
speedup.  The structure pays off for jobs that release the GIL (I/O,
native extensions) and on free-threaded builds; process pools are not an
option here because harness specs close over lambdas (unpicklable).
Anything whose *result* depends on wall-clock time budgets (the BMC
harness) should stay serial.

Exceptions propagate: the first failing job (in submission order)
re-raises in the caller.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .simulator import Simulator

Job = Tuple[str, Callable[[], object]]


def _pool_size(parallel: Union[bool, int, None], n_jobs: int) -> int:
    """Resolve the worker count; 1 means run serially."""
    env = os.environ.get("REPRO_PARALLEL")
    if env is not None and env.strip() in ("0", "false", "no", "off"):
        return 1
    if parallel is False:
        return 1
    if parallel is None or parallel is True:
        return max(1, min(n_jobs, os.cpu_count() or 1))
    return max(1, int(parallel))


def run_batch(jobs: Sequence[Job],
              parallel: Union[bool, int, None] = None) -> Dict[str, object]:
    """Run ``(name, thunk)`` jobs, returning ``{name: result}`` in
    submission order."""
    jobs = list(jobs)
    workers = _pool_size(parallel, len(jobs))
    if workers <= 1 or len(jobs) <= 1:
        return {name: thunk() for name, thunk in jobs}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [(name, pool.submit(thunk)) for name, thunk in jobs]
        return {name: fut.result() for name, fut in futures}


class BatchSimulator:
    """A set of independent simulators stepped as one sweep.

    >>> batch = BatchSimulator()
    >>> batch.add(sim_a)
    >>> batch.add(sim_b)
    >>> batch.run(1000)                    # both advance 1000 cycles
    >>> batch.total_activity()             # {'a': ..., 'b': ...}
    """

    def __init__(self, parallel: Union[bool, int, None] = None):
        self.parallel = parallel
        self.sims: Dict[str, Simulator] = {}

    def add(self, sim: Simulator) -> Simulator:
        if sim.name in self.sims:
            raise ValueError(f"duplicate simulator name {sim.name!r}")
        self.sims[sim.name] = sim
        return sim

    def add_scenario(self, name: str, config=None, *,
                     engine: str = None, seed: int = None, stim: int = None,
                     backend: str = None, anvil: bool = False,
                     as_name: str = None) -> Simulator:
        """Build a registered scenario straight into the batch.

        The preferred form passes a :class:`~repro.api.SimConfig`
        (``config``); lookup and elaboration go through the scenario
        registry, the same code path the benchmark sweep, the harness
        drivers and the CLI use.  The keyword arguments survive as a
        compatibility shim over the config (an explicit keyword beats
        the corresponding config field; ``config`` may also be a bare
        engine string, the old second positional argument).
        ``anvil=True`` maps a short family name to its ``anvil_*``
        registry entry.  ``as_name`` renames the simulator, so the same
        scenario can be swept under several engine x backend
        combinations in one batch."""
        from ..api import get_registry, resolve_config

        if isinstance(config, str):      # legacy positional engine
            config, engine = None, engine or config
        cfg = resolve_config(config, engine=engine, seed=seed, stim=stim,
                             backend=backend)
        if anvil and not name.startswith("anvil_"):
            name = f"anvil_{name}"
        sim = get_registry().build(name, cfg)
        if as_name:
            sim.name = as_name
        return self.add(sim)

    def __len__(self):
        return len(self.sims)

    def __getitem__(self, name: str) -> Simulator:
        return self.sims[name]

    def run(self, cycles: int,
            parallel: Union[bool, int, None] = None) -> "BatchSimulator":
        """Advance every simulator by ``cycles`` (concurrently when the
        pool allows)."""
        run_batch(
            [(name, (lambda s=s: s.run(cycles)))
             for name, s in self.sims.items()],
            parallel=self.parallel if parallel is None else parallel,
        )
        return self

    def run_until(self, predicates: Dict[str, Callable[[], bool]],
                  limit: int = 10000) -> Dict[str, int]:
        """Per-simulator ``run_until``; returns elapsed cycles by name."""
        return run_batch(
            [(name, (lambda s=s, p=p: s.run_until(p, limit)))
             for name, s in self.sims.items()
             for p in (predicates[name],)],
            parallel=self.parallel,
        )

    def total_activity(self) -> Dict[str, int]:
        return {name: s.total_activity() for name, s in self.sims.items()}

    def cycles(self) -> Dict[str, int]:
        return {name: s.cycle for name, s in self.sims.items()}

    def __repr__(self):
        return f"BatchSimulator({list(self.sims)})"
