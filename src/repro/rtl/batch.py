"""Concurrent execution of independent simulations and harness jobs.

The harness tables and figures are *sweeps*: many independent designs,
each elaborated into its own :class:`~repro.rtl.simulator.Simulator` (or
its own typecheck/BMC job), with no shared state.  ``run_batch`` executes
such a job list on one of the executors from :mod:`repro.rtl.executors`
and returns results keyed by job name in submission order;
:class:`BatchSimulator` is the simulator-specific convenience wrapper.

Jobs come in two shapes:

* a declarative :class:`~repro.rtl.executors.JobSpec` -- picklable, so
  it runs on *any* executor, including the ``process`` pool that buys
  real multi-core speedup;
* a legacy ``(name, thunk)`` pair -- a closure, confined to the
  ``serial``/``thread`` executors (closures do not pickle).

Parallelism policy:

* jobs must be independent -- nothing here synchronizes shared state;
* results are deterministic: each job owns its RNGs and simulators, and
  the output ordering never depends on completion order;
* the pool size defaults to ``min(len(jobs), os.cpu_count())``; it can
  be forced serial with ``parallel=False`` or ``REPRO_PARALLEL=0`` (or
  ``false``/``no``/``off``), and forced to N workers with ``parallel=N``
  or ``REPRO_PARALLEL=N`` (the environment variable wins -- it is the
  profiling/debugging override);
* the executor defaults to ``thread`` (the compatibility reference);
  pass ``executor="process"`` -- or set ``REPRO_EXECUTOR=process`` via
  the config layer -- for multi-core sweeps of JobSpecs.

GIL caveat: the harness jobs are pure-Python and CPU-bound, so on a
standard CPython build the *thread* executor interleaves rather than
truly runs in parallel -- expect isolation and uniform sweep structure,
not wall-clock speedup.  The *process* executor is the one that scales
with cores; anything whose *result* depends on wall-clock time budgets
(the BMC harness) should stay serial.

Exceptions propagate: the first failing job (in submission order)
re-raises in the caller, with the worker traceback attached when it
crossed a process boundary.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Sequence, Tuple, Union

from .executors import JobSpec, get_executor
from .simulator import Simulator

Job = Union[Tuple[str, Callable[[], object]], JobSpec]

#: REPRO_PARALLEL values that force a serial run
_FALSY = ("0", "false", "no", "off")
#: REPRO_PARALLEL values equivalent to leaving it unset
_AUTO = ("", "true", "yes", "on", "auto")


def _env_parallel() -> Union[int, None]:
    """Parse ``REPRO_PARALLEL``: ``None`` when unset/auto, ``0`` for the
    falsy spellings (force a fully serial run), a forced worker count
    for positive integers (``1`` keeps the chosen executor with one
    worker -- a one-process pool still crosses the pickling boundary);
    any other value is a user error and raises."""
    env = os.environ.get("REPRO_PARALLEL")
    if env is None:
        return None
    text = env.strip().lower()
    if text in _AUTO:
        return None
    if text in _FALSY:
        return 0
    try:
        forced = int(text)
    except ValueError:
        forced = -1
    if forced < 1:
        raise ValueError(
            f"invalid REPRO_PARALLEL value {env!r}: use a positive "
            f"integer worker count, one of {'/'.join(_FALSY)} to force "
            f"serial, or {'/'.join(a for a in _AUTO if a)}/unset for "
            f"the default"
        )
    return forced


def _pool_size(parallel: Union[bool, int, None], n_jobs: int) -> int:
    """Resolve the worker count; 1 means run serially."""
    forced = _env_parallel()
    if forced is not None:
        return max(1, forced)
    if parallel is False:
        return 1
    if parallel is None or parallel is True:
        return max(1, min(n_jobs, os.cpu_count() or 1))
    return max(1, int(parallel))


def run_batch(jobs: Sequence[Job],
              parallel: Union[bool, int, None] = None,
              executor: str = None) -> Dict[str, object]:
    """Run a job list, returning ``{name: result}`` in submission order.

    ``jobs`` may mix :class:`~repro.rtl.executors.JobSpec` entries and
    legacy ``(name, thunk)`` pairs; the ``process`` executor accepts
    JobSpecs only.  ``parallel`` resolves the worker count exactly as
    before (``False``/``0`` serial, ``N`` forced, ``None`` auto), and
    ``REPRO_PARALLEL`` overrides it either way.
    """
    jobs = list(jobs)
    names = [j.name if isinstance(j, JobSpec) else j[0] for j in jobs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(
            f"duplicate job name(s) {dupes!r}: results are keyed by "
            f"name, so every job in a batch needs a distinct one"
        )
    workers = _pool_size(parallel, len(jobs))
    name = executor or "thread"
    if workers <= 1 and name != "process":
        name = "serial"
    if name == "process" and (parallel is False or _env_parallel() == 0):
        name = "serial"              # the explicit serial escape hatch
    return get_executor(name, workers).run(jobs)


class BatchSimulator:
    """A set of independent simulators stepped as one sweep.

    >>> batch = BatchSimulator()
    >>> batch.add(sim_a)
    >>> batch.add(sim_b)
    >>> batch.run(1000)                    # both advance 1000 cycles
    >>> batch.total_activity()             # {'a': ..., 'b': ...}

    Simulators added through :meth:`add_scenario` carry their registry
    provenance, which is what lets :meth:`run` ship them to the
    ``process`` executor as declarative JobSpecs (directly-added sims
    are closures over live state and stay on the serial/thread path).
    """

    def __init__(self, parallel: Union[bool, int, None] = None,
                 executor: str = None):
        self.parallel = parallel
        self.executor = executor
        self.sims: Dict[str, Simulator] = {}
        self._specs: Dict[str, Tuple[str, object]] = {}

    def add(self, sim: Simulator) -> Simulator:
        if sim.name in self.sims:
            raise ValueError(f"duplicate simulator name {sim.name!r}")
        self.sims[sim.name] = sim
        return sim

    def add_scenario(self, name: str, config=None, *,
                     engine: str = None, seed: int = None, stim: int = None,
                     backend: str = None, anvil: bool = False,
                     as_name: str = None) -> Simulator:
        """Build a registered scenario straight into the batch.

        The preferred form passes a :class:`~repro.api.SimConfig`
        (``config``); lookup and elaboration go through the scenario
        registry, the same code path the benchmark sweep, the harness
        drivers and the CLI use.  The keyword arguments survive as a
        compatibility shim over the config (an explicit keyword beats
        the corresponding config field; ``config`` may also be a bare
        engine string, the old second positional argument).
        ``anvil=True`` maps a short family name to its ``anvil_*``
        registry entry.  ``as_name`` renames the simulator, so the same
        scenario can be swept under several engine x backend
        combinations in one batch."""
        from ..api import get_registry, resolve_config

        if isinstance(config, str):      # legacy positional engine
            config, engine = None, engine or config
        cfg = resolve_config(config, engine=engine, seed=seed, stim=stim,
                             backend=backend)
        if anvil and not name.startswith("anvil_"):
            name = f"anvil_{name}"
        sim = get_registry().build(name, cfg)
        if as_name:
            sim.name = as_name
        self.add(sim)
        self._specs[sim.name] = (name, cfg)
        return sim

    def __len__(self):
        return len(self.sims)

    def __getitem__(self, name: str) -> Simulator:
        return self.sims[name]

    def _run_process(self, cycles: int,
                     parallel: Union[bool, int, None]) -> None:
        """Ship every scenario-provenance sim to the process pool and
        adopt the remote results into the local simulators.

        Note the cost model: ``add_scenario`` already elaborated each
        simulator locally (callers may inspect or drive it before
        running), and the workers elaborate again from provenance -- so
        this path pays one redundant parent-side build per scenario.
        For pure sweeps prefer :meth:`repro.api.Session.sweep`, which
        describes jobs declaratively and never builds in the parent."""
        missing = [n for n in self.sims if n not in self._specs]
        if missing:
            raise ValueError(
                f"the process executor needs registry provenance (use "
                f"add_scenario); directly-added simulator(s) "
                f"{missing!r} cannot be described as JobSpecs"
            )
        stale = [n for n, s in self.sims.items() if s.cycle != 0]
        if stale:
            raise ValueError(
                f"the process executor rebuilds simulators from scratch "
                f"in the workers; already-advanced simulator(s) "
                f"{stale!r} would lose state (run them on the serial/"
                f"thread executors instead)"
            )
        specs = [
            JobSpec(kind="run_scenario", name=name, scenario=scenario,
                    config=cfg, cycles=cycles)
            for name, (scenario, cfg) in self._specs.items()
        ]
        results = run_batch(specs, parallel=parallel, executor="process")
        for name, run in results.items():
            self.sims[name].adopt_remote(run.final_cycle, run.activity,
                                         run.samples)

    def run(self, cycles: int,
            parallel: Union[bool, int, None] = None,
            executor: str = None) -> "BatchSimulator":
        """Advance every simulator by ``cycles`` (concurrently when the
        pool allows)."""
        parallel = self.parallel if parallel is None else parallel
        executor = executor or self.executor
        if executor == "process" and self.sims:
            # one-shot only: workers rebuild from provenance, so the
            # local sims must still be fresh (checked in _run_process)
            self._run_process(cycles, parallel)
            return self
        run_batch(
            [(name, (lambda s=s: s.run(cycles)))
             for name, s in self.sims.items()],
            parallel=parallel,
            executor=executor,
        )
        return self

    def run_until(self, predicates: Dict[str, Callable[[], bool]],
                  limit: int = 10000) -> Dict[str, int]:
        """Per-simulator ``run_until``; returns elapsed cycles by name.
        Predicates are closures over live simulators, so this always
        stays on the serial/thread path."""
        return run_batch(
            [(name, (lambda s=s, p=p: s.run_until(p, limit)))
             for name, s in self.sims.items()
             for p in (predicates[name],)],
            parallel=self.parallel,
        )

    def total_activity(self) -> Dict[str, int]:
        return {name: s.total_activity() for name, s in self.sims.items()}

    def cycles(self) -> Dict[str, int]:
        return {name: s.cycle for name, s in self.sims.items()}

    def __repr__(self):
        return f"BatchSimulator({list(self.sims)})"
