"""Two-phase cycle-based RTL simulator.

Each cycle:

1. **settle** -- run every module's combinational logic repeatedly until no
   wire changes value (a bounded fixpoint; divergence indicates a
   combinational loop and raises :class:`~repro.errors.SimulationError`);
2. **sample** -- the waveform recorder captures the settled wire values
   (this is what the paper's waveform figures show);
3. **tick** -- every module's clock edge updates its registers.

The simulator also exposes an *activity* counter per wire (toggle counts),
which feeds the dynamic-power estimate of the synthesis cost model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .module import Module
from .waveform import Waveform


class Simulator:
    def __init__(self, name: str = "sim", max_settle_iters: int = 64):
        self.name = name
        self.modules: List[Module] = []
        self.cycle = 0
        self.max_settle_iters = max_settle_iters
        self.waveform = Waveform()
        self.activity: Dict[str, int] = {}
        self._prev_values: Dict[int, int] = {}
        self._monitors: List[Callable[[int], None]] = []

    def add(self, module: Module) -> Module:
        self.modules.append(module)
        return module

    def watch(self, wire, label: str = ""):
        """Record a wire in the waveform output."""
        self.waveform.watch(wire, label)

    def on_cycle(self, fn: Callable[[int], None]):
        """Register a monitor callback invoked after each settle phase."""
        self._monitors.append(fn)

    # ------------------------------------------------------------------
    def _all_wires(self):
        for m in self.modules:
            yield from m.wires()

    def settle(self):
        for iteration in range(self.max_settle_iters):
            before = {id(w): w.value for w in self._all_wires()}
            for m in self.modules:
                m.eval_comb()
            after = {id(w): w.value for w in self._all_wires()}
            if before == after:
                return iteration + 1
        raise SimulationError(
            f"combinational logic did not settle in "
            f"{self.max_settle_iters} iterations at cycle {self.cycle}"
        )

    def step(self):
        """Advance one full clock cycle."""
        self.settle()
        # toggle counting for the power model
        for w in self._all_wires():
            prev = self._prev_values.get(id(w))
            if prev is not None and prev != w.value:
                self.activity[w.name] = (
                    self.activity.get(w.name, 0)
                    + bin(prev ^ w.value).count("1")
                )
            self._prev_values[id(w)] = w.value
        self.waveform.sample(self.cycle)
        for fn in self._monitors:
            fn(self.cycle)
        for m in self.modules:
            m.tick()
        self.cycle += 1

    def run(self, cycles: int):
        for _ in range(cycles):
            self.step()

    def run_until(self, predicate: Callable[[], bool], limit: int = 10000):
        """Step until ``predicate()`` or the cycle limit; returns cycles
        elapsed."""
        start = self.cycle
        while not predicate():
            if self.cycle - start >= limit:
                raise SimulationError(
                    f"run_until exceeded {limit} cycles"
                )
            self.step()
        return self.cycle - start

    def total_activity(self) -> int:
        return sum(self.activity.values())

    def __repr__(self):
        return f"Simulator({self.name!r}, cycle={self.cycle})"
